# NOTE: gnuplot is not installed in the build container; this script is
# provided for plotting the CSVs on a workstation.
# Regenerate the paper's plots from the bench CSVs.
#   P2PLAB_RESULTS_DIR=results ./build/bench/<fig...>   (per figure)
#   gnuplot -e "dir='results'" plots/figures.gp
# Produces PNGs next to the CSVs.
if (!exists("dir")) dir = "results"
set datafile separator ","
set terminal pngcairo size 900,600
set key outside
set grid

set output dir."/fig1.png"
set title "Figure 1: avg per-process time vs concurrency"
set xlabel "concurrent processes"; set ylabel "seconds"
plot dir."/fig1_concurrent_cpu.csv" using 1:($0>0 && strcol(2) eq "ULE" ? $3:1/0) w lp t "ULE", \
     "" using 1:(strcol(2) eq "4BSD" ? $3:1/0) w lp t "4BSD", \
     "" using 1:(strcol(2) eq "Linux-2.6" ? $3:1/0) w lp t "Linux 2.6"

set output dir."/fig2.png"
set title "Figure 2: memory-intensive processes"
plot dir."/fig2_memory_pressure.csv" using 1:(strcol(2) eq "4BSD" ? $3:1/0) w lp t "FreeBSD 4BSD", \
     "" using 1:(strcol(2) eq "Linux-2.6" ? $3:1/0) w lp t "Linux 2.6"

set output dir."/fig3.png"
set title "Figure 3: CDF of completion times (100 processes)"
set xlabel "execution time (s)"; set ylabel "F(x)"
plot dir."/fig3_fairness_cdf.csv" using 2:(strcol(1) eq "ULE" ? $3:1/0) w steps t "ULE", \
     "" using 2:(strcol(1) eq "4BSD" ? $3:1/0) w steps t "4BSD", \
     "" using 2:(strcol(1) eq "Linux-2.6" ? $3:1/0) w steps t "Linux 2.6", \
     "" using 2:(strcol(1) eq "ULE-FreeBSD5" ? $3:1/0) w steps t "ULE (FreeBSD 5)"

set output dir."/fig6.png"
set title "Figure 6: ping RTT vs firewall rules"
set xlabel "rules"; set ylabel "RTT (ms)"
plot dir."/fig6_ipfw_rules.csv" using 1:2 w lp t "avg RTT"

set output dir."/fig8.png"
set title "Figure 8: 160-client download envelope"
set xlabel "time (s)"; set ylabel "% of file"
plot dir."/fig8_progress_envelope.csv" using 1:2 w l t "min", \
     "" using 1:4 w l t "median", "" using 1:6 w l t "max"

set output dir."/fig9.png"
set title "Figure 9: folding ratio"
set ylabel "total bytes received"
plot dir."/fig9_folding_ratio.csv" using 1:2 w l t "1x", \
     "" using 1:3 w l t "10x", "" using 1:4 w l t "20x", \
     "" using 1:5 w l t "40x", "" using 1:6 w l t "80x"

set output dir."/fig11.png"
set title "Figure 11: clients having completed"
set ylabel "clients complete"
plot dir."/fig11_completion_curve.csv" using 1:2 w steps t "completions"
