// Figure 6: round-trip time of ping between two nodes as the number of
// IPFW rules on the first node grows.
//
// Paper shape: "latency increases nearly linearly with the number of
// rules, because the rules are evaluated linearly by the firewall" —
// roughly 5 ms RTT at 50,000 rules. Each packet crosses the padded rule
// list twice (outgoing on the way there, incoming on the way back).
//
// Thin wrapper over scenarios/fig6.scn: the sweep lives in the catalog
// spec, executed by the ExperimentRunner exactly as `p2plab_run` would.
#include "bench_env.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace p2plab;

int main() {
  bench::banner("Figure 6", "ping RTT vs number of firewall rules");
  scenario::ExperimentRunner runner(scenario::catalog::fig6());
  return runner.run();
}
