// Figure 6: round-trip time of ping between two nodes as the number of
// IPFW rules on the first node grows.
//
// Paper shape: "latency increases nearly linearly with the number of
// rules, because the rules are evaluated linearly by the firewall" —
// roughly 5 ms RTT at 50,000 rules. Each packet crosses the padded rule
// list twice (outgoing on the way there, incoming on the way back).
#include "bench_env.hpp"
#include "core/platform.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

int main() {
  bench::banner("Figure 6", "ping RTT vs number of firewall rules");
  core::PlatformConfig pconfig{.physical_nodes = 2};
  metrics::CsvWriter csv("fig6_ipfw_rules",
                         {"rules", "rtt_avg_ms", "rtt_min_ms", "rtt_max_ms"});
  csv.comment("seed=" + std::to_string(pconfig.seed));

  // No health monitor here: its periodic task would keep Simulation::run
  // (drain-until-empty) from ever returning. The registry report at the
  // end still covers the kernel and firewall totals. Declared before the
  // platform: teardown still increments bound counters.
  metrics::Registry registry;
  core::Platform platform(topology::homogeneous_dsl(2), pconfig);
  platform.bind_metrics(registry);
  const Ipv4Addr a = platform.network().host(0).admin_ip();
  const Ipv4Addr b = platform.network().host(1).admin_ip();

  std::uint32_t installed = 0;
  std::uint32_t next_rule_number = 1000;
  for (std::uint32_t rules = 0; rules <= 50000; rules += 5000) {
    if (rules > installed) {
      platform.network().host(0).firewall().add_filler_rules(
          next_rule_number, rules - installed);
      next_rule_number += rules - installed;
      installed = rules;
    }
    metrics::Summary rtt;
    for (int probe = 0; probe < 10; ++probe) {
      platform.ping(a, b, [&](Duration d) { rtt.add(d.to_millis()); });
      platform.sim().run();
    }
    csv.row({std::to_string(rules), std::to_string(rtt.mean()),
             std::to_string(rtt.min()), std::to_string(rtt.max())});
  }
  csv.comment("paper: ~linear, reaching ~5 ms RTT at 50k rules "
              "(2 traversals x 50 ns/rule)");
  metrics::print_registry_report(registry);
  return 0;
}
