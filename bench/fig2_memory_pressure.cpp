// Figure 2: average per-process execution time for CPU- and memory-
// intensive processes (matrix workload, 60 MiB working set each) vs.
// concurrency, on a 2 GiB host.
//
// Paper shape: FreeBSD's execution time blows up as soon as virtual memory
// (swap) is needed (~9 s/process at n=50); Linux 2.6 stays nearly flat.
#include "bench_env.hpp"
#include "metrics/trace.hpp"
#include "sched/scheduler.hpp"
#include "workload/tasks.hpp"

using namespace p2plab;

int main() {
  bench::banner("Figure 2",
                "memory-intensive processes: FreeBSD swaps, Linux copes");
  metrics::CsvWriter csv("fig2_memory_pressure",
                         {"n_processes", "scheduler", "avg_time_s",
                          "working_set_total_mib"});
  csv.comment("seed=1");

  const sched::SchedulerKind kinds[] = {sched::SchedulerKind::kUle,
                                        sched::SchedulerKind::kBsd4,
                                        sched::SchedulerKind::kLinuxOne};
  for (const auto kind : kinds) {
    for (std::size_t n = 5; n <= 50; n += 5) {
      sched::HostConfig config;
      config.kind = kind;
      config.seed = 1;
      sched::CpuHost host(config);
      const auto spec = workload::matrix_task();
      const auto result = host.run(workload::batch(spec, n));
      csv.row({std::to_string(n), sched::to_string(kind),
               std::to_string(result.avg_normalized_time_sec(
                   host.traits().batch_fixed_cost)),
               std::to_string(n * spec.working_set.count_bytes() >> 20)});
    }
  }
  csv.comment("paper: FreeBSD rises steeply once total working set exceeds "
              "RAM (~31 processes); Linux 2.6 stays near 1.2 s");
  return 0;
}
