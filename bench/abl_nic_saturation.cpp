// Ablation: where folding breaks down.
//
// The paper found "the first limiting factor was the network speed: with
// other (slightly faster) emulated network settings, the platform's
// Gigabit network was saturated by the downloads". This ablation makes the
// mechanism visible: the same swarm on fast emulated links (20 Mb/s down /
// 10 Mb/s up) is run unfolded and heavily folded onto hosts with a
// deliberately small (200 Mb/s) NIC; once the aggregate emulated bandwidth
// exceeds NIC capacity, the folded run diverges — completion times stretch
// and the NIC shows drops.
#include <algorithm>
#include <cstdio>

#include "bench_env.hpp"
#include "bittorrent/swarm.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

namespace {

struct Outcome {
  double median_completion_s = 0;
  double last_completion_s = 0;
  std::uint64_t nic_drops = 0;
};

Outcome run(std::size_t pnodes, Bandwidth nic) {
  bt::SwarmConfig config;
  config.clients = bench::env_size("P2PLAB_ABL_CLIENTS", 64);
  config.file_size = DataSize::mib(8);
  config.start_interval = Duration::millis(500);
  // A "ten-times-faster DSL" than the paper's: aggregate upload demand of
  // the folded deployment (~32 vnodes x 1.28 Mb/s per host, half of it
  // crossing the fabric each way) exceeds the constrained NIC below.
  topology::LinkClass fast{.down = Bandwidth::mbps(20),
                           .up = Bandwidth::bps(1280000),
                           .latency = Duration::ms(10)};
  core::PlatformConfig platform_config;
  platform_config.physical_nodes = pnodes;
  platform_config.host.nic_bandwidth = nic;
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config), fast),
      platform_config);
  bt::Swarm swarm(platform, config);
  swarm.run();

  Outcome outcome;
  metrics::Distribution times;
  for (double t : swarm.completion_times_sec()) times.add(t);
  if (!times.empty()) {
    outcome.median_completion_s = times.median();
    outcome.last_completion_s = times.max();
  }
  for (std::size_t p = 0; p < platform.physical_node_count(); ++p) {
    outcome.nic_drops += platform.network().host(p).nic_tx().stats().dropped +
                         platform.network().host(p).nic_rx().stats().dropped;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "NIC saturation under folding with fast emulated links");
  metrics::CsvWriter csv("abl_nic_saturation",
                         {"deployment", "median_completion_s",
                          "last_completion_s", "nic_drops"});
  csv.comment("seed=" + std::to_string(bt::SwarmConfig{}.content_seed));

  // Unfolded on constrained NICs: one vnode per machine never stresses a
  // 25 Mb/s NIC — the emulation is transparent.
  const Outcome spread = run(67, Bandwidth::mbps(25));
  csv.row({"unfolded_25m_nic", std::to_string(spread.median_completion_s),
           std::to_string(spread.last_completion_s),
           std::to_string(spread.nic_drops)});

  // Folded ~33:1 onto NICs with half the swarm's cross-fabric demand:
  // drops appear and completions stretch — the emulation is no longer
  // transparent.
  const Outcome folded = run(2, Bandwidth::mbps(12));
  csv.row({"folded_12m_nic", std::to_string(folded.median_completion_s),
           std::to_string(folded.last_completion_s),
           std::to_string(folded.nic_drops)});

  // Same folding with an ample NIC: transparency restored.
  const Outcome big_nic = run(2, Bandwidth::gbps(1));
  csv.row({"folded_1g_nic", std::to_string(big_nic.median_completion_s),
           std::to_string(big_nic.last_completion_s),
           std::to_string(big_nic.nic_drops)});

  std::printf("# paper: folding is free until aggregate emulated bandwidth "
              "meets the physical NIC; then the platform, not the "
              "application, shapes the results\n");
  return 0;
}
