// The virtualization-section microbenchmark: cost of the libc
// interception on a local TCP connect/disconnect cycle.
//
// Paper numbers: 10.22 us unmodified vs 10.79 us with the modified libc
// (an extra getenv + bind per connect/listen). Both emerge from the
// syscall cost model; the bench also demonstrates the behavioural side:
// an intercepted process binds to its vnode alias, a statically linked one
// leaks the physical node's identity.
#include <cstdio>

#include "bench_env.hpp"
#include "core/platform.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

int main() {
  bench::banner("Table (virtualization)",
                "libc interception overhead on connect/disconnect");
  metrics::CsvWriter csv("tbl_intercept_overhead",
                         {"case", "connect_cycle_us"});
  csv.comment("seed=" + std::to_string(core::PlatformConfig{}.seed));

  const vnode::SyscallCosts costs;
  csv.row({"unmodified_libc",
           std::to_string(costs.base_connect_cycle().to_micros())});
  csv.row({"intercepted_libc",
           std::to_string(costs.intercepted_connect_cycle().to_micros())});
  csv.row({"overhead",
           std::to_string((costs.intercepted_connect_cycle() -
                           costs.base_connect_cycle())
                              .to_micros())});
  csv.comment("paper: 10.22 us -> 10.79 us");

  // Behavioural demonstration on the platform.
  core::Platform platform(topology::homogeneous_dsl(2),
                          core::PlatformConfig{.physical_nodes = 2});
  Ipv4Addr seen_dynamic;
  Ipv4Addr seen_static;
  auto listener = platform.api(1).listen(
      7000, [&](sockets::StreamSocketPtr sock) {
        if (seen_dynamic == Ipv4Addr{}) {
          seen_dynamic = sock->remote_ip();
        } else {
          seen_static = sock->remote_ip();
        }
      });
  platform.api(0).connect(platform.vnode(1).ip(), 7000,
                          [](sockets::StreamSocketPtr) {});
  platform.sim().run();
  vnode::Process static_proc(platform.vnode(0), vnode::LinkMode::kStatic);
  sockets::SocketApi static_api(platform.sockets(), static_proc);
  static_api.connect(platform.vnode(1).ip(), 7000,
                     [](sockets::StreamSocketPtr) {});
  platform.sim().run();

  std::printf("# dynamic binary appears as %s (its vnode alias)\n",
              seen_dynamic.to_string().c_str());
  std::printf("# static binary appears as %s (the physical node: "
              "interception bypassed — the paper's failure case)\n",
              seen_static.to_string().c_str());
  return 0;
}
