// Churn experiment: the Figure 8 swarm under node churn and faults.
//
// Runs the 160-client / 16 MB download twice with the same content seed:
// once clean (the Figure 8 baseline) and once with the deterministic fault
// plan of scenarios/churn.scn — a configurable fraction of the clients
// crashes mid-download (half rejoin after 30-120 s and resume, half depart
// for good), plus a tracker outage and a couple of link faults for
// coverage. The runner checks the robustness invariants this subsystem
// promises (survivors complete, faults pair with recoveries, the queue
// drains once the applications stop) and the exit status is nonzero if
// any fails, so CI can gate on it.
//
// Knobs: P2PLAB_CHURN_CLIENTS (default 160), P2PLAB_CHURN_PCT (default 30),
// P2PLAB_CHURN_BASELINE=0 skips the clean reference run, --shards=N (or
// P2PLAB_SHARDS=N) runs both passes on the parallel engine.
#include <cstdio>

#include "bench_env.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  bench::banner("Churn", "160-client swarm under crash/rejoin churn");
  const std::size_t clients = bench::env_size("P2PLAB_CHURN_CLIENTS", 160);
  const double churn_pct =
      static_cast<double>(bench::env_size("P2PLAB_CHURN_PCT", 30));
  const bool run_baseline =
      bench::env_size("P2PLAB_CHURN_BASELINE", 1) != 0;
  const std::size_t shards = bench::shards(argc, argv);
  const bool profile = bench::profile_enabled(argc, argv);

  int failures = 0;
  double baseline_median = -1.0;
  if (run_baseline) {
    scenario::ScenarioSpec spec = scenario::catalog::churn_baseline(clients);
    spec.engine.shards = shards;
    spec.engine.profile = profile;
    scenario::ExperimentRunner baseline(std::move(spec));
    baseline.setup();
    baseline.execute();
    baseline_median = baseline.median_completion_sec();
    const bool ok = baseline.swarm().all_complete();
    std::printf("# check %-46s %s\n", "baseline: all clients complete",
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }

  scenario::ScenarioSpec spec = scenario::catalog::churn(clients, churn_pct);
  spec.engine.shards = shards;
  spec.engine.profile = profile;
  scenario::ExperimentRunner runner(std::move(spec));
  runner.set_baseline_median(baseline_median);
  failures += runner.run();
  return failures == 0 ? 0 : 1;
}
