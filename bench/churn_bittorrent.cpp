// Churn experiment: the Figure 8 swarm under node churn and faults.
//
// Runs the 160-client / 16 MB download twice with the same content seed:
// once clean (the Figure 8 baseline) and once with a deterministic fault
// plan — a configurable fraction of the clients crashes mid-download (half
// rejoin after 30-120 s and resume, half depart for good), plus a tracker
// outage and a couple of link faults for coverage. The run then checks the
// robustness invariants this subsystem promises:
//
//   * every surviving leecher (never faulted, or crashed-and-rejoined)
//     finishes the download despite the churn,
//   * every injected fault has a matching recovery (stats.unrecovered()==0
//     and the paired fault_injected/fault_recovered events in trace.jsonl),
//   * nothing is wedged: once every client stops, the event queue drains
//     to empty — no orphaned retransmit timers, no stuck periodic tasks.
//
// Exit status is nonzero if any invariant fails, so CI can gate on it.
//
// Knobs: P2PLAB_CHURN_CLIENTS (default 160), P2PLAB_CHURN_PCT (default 30),
// P2PLAB_CHURN_BASELINE=0 skips the clean reference run, --shards=N (or
// P2PLAB_SHARDS=N) runs both passes on the parallel engine.
#include <cstdio>
#include <vector>

#include "bench_env.hpp"
#include "bittorrent/swarm.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

namespace {

double median_completion(bt::Swarm& swarm) {
  metrics::Distribution d;
  for (const double t : swarm.completion_times_sec()) d.add(t);
  return d.count() > 0 ? d.median() : -1.0;
}

/// Drive the platform until the queue is empty (bounded): proves no wedged
/// timers survive once the application layer stopped.
bool drain_events(core::Platform& platform, Duration grace) {
  return platform.run(platform.now() + grace) ==
         core::Platform::RunResult::kDrained;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Churn", "160-client swarm under crash/rejoin churn");
  bt::SwarmConfig config;
  config.clients = bench::env_size("P2PLAB_CHURN_CLIENTS", 160);
  const double churn_pct =
      static_cast<double>(bench::env_size("P2PLAB_CHURN_PCT", 30));
  const bool run_baseline =
      bench::env_size("P2PLAB_CHURN_BASELINE", 1) != 0;
  const std::size_t shards = bench::shards(argc, argv);

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("# check %-46s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  double baseline_median = -1.0;
  if (run_baseline) {
    core::Platform platform(
        topology::homogeneous_dsl(bt::swarm_vnodes(config)),
        core::PlatformConfig{.physical_nodes = bt::swarm_vnodes(config),
                             .shards = shards});
    bt::Swarm swarm(platform, config);
    swarm.run();
    baseline_median = median_completion(swarm);
    check(swarm.all_complete(), "baseline: all clients complete");
  }

  // --- churn run -------------------------------------------------------
  metrics::Registry registry;
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config)),
      core::PlatformConfig{.physical_nodes = bt::swarm_vnodes(config),
                           .shards = shards});
  // Ring tracing works in both modes (one ring per shard in engine mode);
  // the fault subsystem's paired injected/recovered events land here.
  platform.enable_tracing();
  bt::Swarm swarm(platform, config);
  swarm.bind_metrics(registry);

  // Client c lives on this vnode (Swarm's layout contract).
  const std::size_t first_client_vnode = 1 + config.seeders;
  auto client_of_vnode = [&](std::size_t vnode) -> bt::Client& {
    return swarm.client(vnode - first_client_vnode);
  };

  // The fault plan: churn_pct% of the clients fail mid-download (the
  // window covers the middle of the baseline's ~1500-2000 s run), half of
  // them rejoining after 30-120 s. Plus a tracker outage (announce
  // backoff + cached peers must carry the swarm) and link faults on two
  // never-crashed clients for coverage.
  Rng churn_rng = platform.rng().fork(0xfa017);
  fault::ChurnConfig churn;
  churn.first_node = first_client_vnode;
  churn.last_node = first_client_vnode + config.clients - 1;
  churn.fraction = churn_pct / 100.0;
  churn.window_start = SimTime::zero() + Duration::sec(200);
  churn.window_end = SimTime::zero() + Duration::sec(1200);
  churn.rejoin_fraction = 0.5;
  churn.rejoin_min = Duration::sec(30);
  churn.rejoin_max = Duration::sec(120);
  fault::FaultPlan plan = fault::FaultPlan::churn(churn, churn_rng);
  plan.tracker_outage(SimTime::zero() + Duration::sec(400),
                      Duration::sec(120));
  plan.link_down(first_client_vnode, SimTime::zero() + Duration::sec(300),
                 Duration::sec(20));
  plan.burst_loss(first_client_vnode + 1,
                  SimTime::zero() + Duration::sec(500), Duration::sec(60),
                  ipfw::GilbertElliott{.p_good_to_bad = 0.02,
                                       .p_bad_to_good = 0.3,
                                       .loss_bad = 0.7});
  plan.latency_spike(first_client_vnode + 2,
                     SimTime::zero() + Duration::sec(600),
                     Duration::ms(200), Duration::sec(60));
  plan.sort();

  // Which clients fail, and which of those come back.
  std::vector<bool> faulted(config.clients, false);
  std::vector<bool> rejoins(config.clients, false);
  std::size_t crashes = 0;
  for (const fault::FaultSpec& spec : plan.specs()) {
    if (spec.kind != fault::FaultKind::kCrash &&
        spec.kind != fault::FaultKind::kLeave) {
      continue;
    }
    ++crashes;
    faulted[spec.node - first_client_vnode] = true;
    rejoins[spec.node - first_client_vnode] = spec.rejoin;
  }
  std::printf("# plan: %zu faults, %zu node failures (%.0f%% of %zu)\n",
              plan.size(), crashes, churn_pct, config.clients);

  fault::FaultInjector injector(platform, plan);
  injector.bind_metrics(registry);
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) { client_of_vnode(v).crash(); },
      .on_leave = [&](std::size_t v) { client_of_vnode(v).stop(); },
      .on_rejoin = [&](std::size_t v) { client_of_vnode(v).start(); }});
  injector.set_service_hooks(fault::ServiceHooks{
      .on_tracker_outage = [&] { swarm.tracker().set_online(false); },
      .on_tracker_restore = [&] { swarm.tracker().set_online(true); }});
  injector.arm();

  // The health monitor samples from inside one simulation: classic-only.
  metrics::HealthMonitor monitor(
      metrics::HealthMonitor::Options{.csv_name = "churn_metrics"});
  if (!platform.engine_mode()) monitor.start(platform.sim(), registry);

  // Run until every *surviving* leecher finished (permanent departures
  // can't complete). Swarm::run would wait for all, so use a predicate.
  std::size_t expected = 0;
  for (std::size_t c = 0; c < config.clients; ++c) {
    expected += !faulted[c] || rejoins[c];
  }
  auto count_survivors = [&] {
    std::size_t done = 0;
    for (std::size_t c = 0; c < config.clients; ++c) {
      done += (!faulted[c] || rejoins[c]) && swarm.client(c).has_completed();
    }
    return done;
  };
  platform.run(SimTime::zero() + config.max_duration,
               [&] { return count_survivors() == expected; },
               Duration::sec(5));
  const std::size_t survivors = count_survivors();
  if (!platform.engine_mode()) monitor.stop();

  check(survivors == expected, "churn: every surviving leecher completes");
  std::printf("# survivors complete: %zu/%zu (of %zu clients)\n", survivors,
              expected, config.clients);

  // Recovery pairing: once every scheduled window closed, no fault may be
  // left open (windows end by max_duration by construction).
  check(injector.stats().unrecovered() == 0,
        "every injected fault recovered");
  std::printf("# faults: injected=%llu recovered=%llu\n",
              static_cast<unsigned long long>(injector.stats().injected),
              static_cast<unsigned long long>(injector.stats().recovered));

  // Nothing wedged: stop the world and the event queue must drain — any
  // surviving retransmit timer or periodic task would keep it non-empty.
  for (std::size_t c = 0; c < config.clients; ++c) swarm.client(c).stop();
  for (std::size_t s = 0; s < config.seeders; ++s) swarm.seeder(s).stop();
  swarm.tracker().set_online(false);
  check(drain_events(platform, Duration::sec(700)),
        "event queue drains after stop (no wedged timers)");

  metrics::CsvWriter summary("churn_summary",
                             {"median_completion_s", "baseline_median_s",
                              "failed_nodes", "rejoined_nodes",
                              "faults_injected", "faults_recovered"});
  std::size_t rejoined = 0;
  for (std::size_t c = 0; c < config.clients; ++c) rejoined += rejoins[c];
  summary.row({median_completion(swarm), baseline_median,
               static_cast<double>(crashes),
               static_cast<double>(rejoined),
               static_cast<double>(injector.stats().injected),
               static_cast<double>(injector.stats().recovered)});

  platform.flush_trace_to_results("trace.jsonl");
  return failures == 0 ? 0 : 1;
}
