// Figure 1: average per-process execution time vs. number of concurrent
// CPU-bound processes (Ackermann benchmark, ~1.65 s alone), for FreeBSD's
// ULE and 4BSD schedulers and Linux 2.6.
//
// Paper shape: flat (no scheduler overhead as concurrency grows), with a
// slight *decrease* as fixed per-batch costs amortize; all three curves
// within ~2% of 1.65 s.
#include "bench_env.hpp"
#include "metrics/trace.hpp"
#include "sched/scheduler.hpp"
#include "workload/tasks.hpp"

using namespace p2plab;

int main() {
  bench::banner("Figure 1",
                "avg per-process execution time vs #concurrent processes");
  metrics::CsvWriter csv("fig1_concurrent_cpu",
                         {"n_processes", "scheduler", "avg_time_s"});
  csv.comment("seed=1");

  const sched::SchedulerKind kinds[] = {sched::SchedulerKind::kUle,
                                        sched::SchedulerKind::kBsd4,
                                        sched::SchedulerKind::kLinuxOne};
  const std::size_t counts[] = {1,   2,   5,   10,  20,  50,  100,
                                200, 300, 400, 500, 600, 700, 800,
                                900, 1000};
  for (const auto kind : kinds) {
    for (const std::size_t n : counts) {
      sched::HostConfig config;
      config.kind = kind;
      config.seed = 1;
      sched::CpuHost host(config);
      const auto result =
          host.run(workload::batch(workload::ackermann_task(), n));
      csv.row({std::to_string(n), sched::to_string(kind),
               std::to_string(result.avg_normalized_time_sec(
                   host.traits().batch_fixed_cost))});
    }
  }
  csv.comment("paper: flat ~1.65 s, slightly decreasing; no overhead up to "
              "1000 processes");
  return 0;
}
