// Figure 8: evolution of the download of a 16 MB file by 160 BitTorrent
// clients (4 initial seeders, DSL links: 2 Mb/s down / 128 kb/s up /
// 30 ms, clients started 10 s apart, seeding after completion).
//
// Thin wrapper over scenarios/fig8.scn (kept for the P2PLAB_FIG8_CLIENTS
// knob and CI muscle memory): the experiment itself is the catalog spec,
// executed by the ExperimentRunner exactly as `p2plab_run` would.
//
// `--shards=N` (or P2PLAB_SHARDS=N) runs on the parallel engine; the event
// stream — and therefore every output row — is bit-identical for any N.
#include "bench_env.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  bench::banner("Figure 8", "160-client download of a 16 MB file");
  scenario::ScenarioSpec spec =
      scenario::catalog::fig8(bench::env_size("P2PLAB_FIG8_CLIENTS", 160));
  spec.engine.shards = bench::shards(argc, argv);
  spec.engine.profile = bench::profile_enabled(argc, argv);
  scenario::ExperimentRunner runner(std::move(spec));
  return runner.run();
}
