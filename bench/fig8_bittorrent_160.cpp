// Figure 8: evolution of the download of a 16 MB file by 160 BitTorrent
// clients (4 initial seeders, DSL links: 2 Mb/s down / 128 kb/s up /
// 30 ms, clients started 10 s apart, seeding after completion).
//
// Paper shape: all three phases of a BitTorrent download are visible —
// (1) a short first phase where only the initial seeders upload,
// (2) a long middle phase where downloaders feed each other,
// (3) a final phase where early finishers seed and the tail accelerates —
// and the completion times cluster.
//
// Output: the percent-done distribution across clients on a 10 s grid
// (min/quartiles/max reproduce the visual envelope of the 160 curves),
// plus each client's completion time.
//
// `--shards=N` (or P2PLAB_SHARDS=N) runs on the parallel engine; the event
// stream — and therefore every output row — is bit-identical for any N.
#include "bench_env.hpp"
#include "bittorrent/swarm.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  bench::banner("Figure 8", "160-client download of a 16 MB file");
  bt::SwarmConfig config;  // defaults are the paper's parameters
  config.clients = bench::env_size("P2PLAB_FIG8_CLIENTS", 160);
  const std::size_t shards = bench::shards(argc, argv);

  // Declared before the platform: teardown (client timers cancelling
  // events) still increments bound kernel counters.
  metrics::Registry registry;
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config)),
      core::PlatformConfig{.physical_nodes = bt::swarm_vnodes(config),
                           .shards = shards});
  bt::Swarm swarm(platform, config);
  swarm.bind_metrics(registry);
  // The health monitor samples from inside one simulation: classic-only.
  metrics::HealthMonitor monitor(
      metrics::HealthMonitor::Options{.csv_name = "fig8_metrics"});
  if (!platform.engine_mode()) monitor.start(platform.sim(), registry);
  swarm.run();
  if (!platform.engine_mode()) {
    monitor.stop();
    monitor.print_report();
  }

  metrics::CsvWriter envelope(
      "fig8_progress_envelope",
      {"time_s", "pct_min", "pct_p25", "pct_median", "pct_p75", "pct_max",
       "clients_complete"});
  envelope.comment("seed=" + std::to_string(config.content_seed));
  const SimTime end = platform.now() + Duration::sec(10);
  for (SimTime t = SimTime::zero(); t <= end; t += Duration::sec(10)) {
    metrics::Distribution pct;
    std::size_t complete = 0;
    for (std::size_t i = 0; i < swarm.client_count(); ++i) {
      pct.add(swarm.client(i).progress().value_at(t));
      complete += swarm.client(i).has_completed() &&
                  swarm.client(i).completion_time() <= t;
    }
    envelope.row({t.to_seconds(), pct.min(), pct.quantile(0.25),
                  pct.median(), pct.quantile(0.75), pct.max(),
                  static_cast<double>(complete)});
  }

  metrics::CsvWriter completions("fig8_completion_times",
                                 {"client", "start_s", "completion_s"});
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    completions.row(
        {static_cast<double>(i),
         static_cast<double>(i) * config.start_interval.to_seconds(),
         swarm.client(i).has_completed()
             ? swarm.client(i).completion_time().to_seconds()
             : -1.0});
  }
  completions.comment(
      "paper: three swarm phases visible; completions cluster ~1500-2000 s");
  return 0;
}
