// Hot-path allocation microbench: the headline number behind the
// zero-allocation work (pooled packets + inline event callbacks).
//
// Two phases, both measured after a warmup so slabs, pools and pipe queues
// are at steady-state capacity:
//
//   events:  self-rescheduling timer chains through the bare simulation
//            kernel — isolates schedule/dispatch cost.
//   packets: a ping-pong workload between two shaped hosts through the
//            full emulated path (firewall scan, Dummynet pipes, NICs,
//            switch, demux delivery) — the per-packet cost that bounds
//            the paper's Figs 6/9/10 reproduction.
//
// Allocations are counted by interposing the global operator new/delete of
// this binary (an atomic tick per call; works in every build type). The
// steady-state claim is "allocations/event ~ 0 and the InlineCallback
// heap-fallback counter stays flat over the measured window"; the gate
// script (scripts/bench_gate.sh) enforces the events/sec floor against the
// committed baseline.
//
// Output: CSV on stdout plus the standardized BENCH_hotpath.json (also
// into $P2PLAB_RESULTS_DIR when set).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "bench_env.hpp"
#include "common/ipv4.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "profile/profiler.hpp"
#include "sim/inline_callback.hpp"
#include "sim/simulation.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Interposed allocation counter. Covers every operator-new form the
// platform uses; deletes are forwarded untouched (the count of interest is
// allocations, and free() of nullptr-safe storage needs no bookkeeping).
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace p2plab {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

struct PhaseResult {
  double wall_seconds = 0.0;
  std::uint64_t units = 0;     // events or packets
  std::uint64_t events = 0;    // kernel events dispatched in the window
  std::uint64_t allocs = 0;    // operator-new calls in the window
  std::uint64_t fallbacks = 0;  // InlineCallback heap fallbacks in the window
  std::uint64_t start_ns = 0;  // profiler clock at window start
};

/// Phase 1: raw kernel throughput. `chains` timers each reschedule
/// themselves until `total` events have been dispatched.
PhaseResult run_event_phase(profile::Profiler& prof, std::uint64_t warmup,
                            std::uint64_t total, std::size_t chains) {
  sim::Simulation sim;
  std::uint64_t fired = 0;
  // Each event captures what the network layer's completion closures
  // capture — a few pointers plus a handle-sized payload (~32 bytes).
  // That is over std::function's small-object budget but well inside
  // InlineCallback's, which is exactly the gap being measured.
  struct Chain {
    sim::Simulation* sim;
    std::uint64_t* fired;
    Duration period;
    void arm() {
      sim->schedule_after(period,
                          [this, fired = fired, tick = std::uint64_t{0}] {
                            ++*fired;
                            (void)tick;
                            arm();
                          });
    }
  };
  std::vector<Chain> all(chains);
  for (std::size_t i = 0; i < chains; ++i) {
    all[i] = Chain{&sim, &fired, Duration::us(10 + static_cast<int>(i))};
    all[i].arm();
  }
  while (sim.dispatched_events() < warmup) sim.step();

  const std::uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t events0 = sim.dispatched_events();
  const std::uint64_t fb0 = sim::InlineCallback::heap_fallbacks();
  PhaseResult r;
  r.start_ns = prof.now_ns();
  bench::WallTimer timer;
  while (sim.dispatched_events() < warmup + total) sim.step();
  r.wall_seconds = timer.elapsed_seconds();
  r.events = sim.dispatched_events() - events0;
  r.units = r.events;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  r.fallbacks = sim::InlineCallback::heap_fallbacks() - fb0;
  return r;
}

/// Phase 2: the full per-packet path. Two hosts with shaped access links
/// ping-pong `inflight` packets; the demux response is the only
/// application logic, so the measured cost is the emulated network itself.
PhaseResult run_packet_phase(profile::Profiler& prof, std::uint64_t warmup,
                             std::uint64_t total, std::size_t inflight) {
  sim::Simulation sim;
  net::Network network{sim, Rng{42}};
  const Ipv4Addr addr_a = ip("192.168.38.1");
  const Ipv4Addr addr_b = ip("192.168.38.2");
  net::Host& a = network.add_host("a", addr_a);
  net::Host& b = network.add_host("b", addr_b);
  // The paper's standard vnode access link: 100 ms / shaped bandwidth on
  // both directions of both hosts, via pipe rules like core/platform.
  for (net::Host* host : {&a, &b}) {
    const CidrBlock self{host->admin_ip(), 32};
    const ipfw::PipeId up = host->firewall().create_pipe(
        {.bandwidth = Bandwidth::mbps(100), .delay = Duration::ms(1)});
    const ipfw::PipeId down = host->firewall().create_pipe(
        {.bandwidth = Bandwidth::mbps(100), .delay = Duration::ms(1)});
    host->firewall().add_rule({.number = 100,
                               .src = self,
                               .dir = ipfw::RuleDir::kOut,
                               .action = ipfw::RuleAction::kPipe,
                               .pipe = up});
    host->firewall().add_rule({.number = 110,
                               .dst = self,
                               .dir = ipfw::RuleDir::kIn,
                               .action = ipfw::RuleAction::kPipe,
                               .pipe = down});
  }

  std::uint64_t delivered = 0;
  auto make_packet = [](Ipv4Addr src, Ipv4Addr dst, std::uint64_t flow) {
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.src_port = 7;
    p.dst_port = 7;
    p.wire_size = DataSize::bytes(1500);
    p.flow = flow;
    p.socket_demux = true;
    return p;
  };
  // The demux is the steady-state driver: every delivery sends the reply.
  network.set_socket_demux([&](net::Packet&& p) {
    ++delivered;
    network.send(make_packet(p.dst, p.src, p.flow));
  });
  for (std::size_t i = 0; i < inflight; ++i) {
    network.send(make_packet(addr_a, addr_b, 1000 + i));
  }

  while (delivered < warmup && sim.step()) {
  }
  const std::uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t events0 = sim.dispatched_events();
  const std::uint64_t delivered0 = delivered;
  const std::uint64_t fb0 = sim::InlineCallback::heap_fallbacks();
  PhaseResult r;
  r.start_ns = prof.now_ns();
  bench::WallTimer timer;
  while (delivered < delivered0 + total && sim.step()) {
  }
  r.wall_seconds = timer.elapsed_seconds();
  r.units = delivered - delivered0;
  r.events = sim.dispatched_events() - events0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  r.fallbacks = sim::InlineCallback::heap_fallbacks() - fb0;
  return r;
}

int run(int argc, char** argv) {
  (void)bench::shards(argc, argv);  // accepted for interface parity; unused
  const bool profiling = bench::profile_enabled(argc, argv);
  const std::uint64_t event_total =
      bench::env_size("P2PLAB_HOTPATH_EVENTS", 4'000'000);
  const std::uint64_t packet_total =
      bench::env_size("P2PLAB_HOTPATH_PACKETS", 400'000);

  // The profiler always exists (one ring, one phase-level sample per
  // measured window — two clock reads outside the hot loops); `profiling`
  // only controls whether the timeline and rollup are emitted. That keeps
  // the gate's "with profiling on" run identical in work to the baseline.
  profile::Profiler prof(1);
  const PhaseResult ev =
      run_event_phase(prof, event_total / 10, event_total, /*chains=*/64);
  const PhaseResult pk =
      run_packet_phase(prof, packet_total / 10, packet_total,
                       /*inflight=*/64);
  for (std::uint64_t window = 0; const PhaseResult* r : {&ev, &pk}) {
    profile::PhaseSample sample;
    sample.start_ns = r->start_ns;
    sample.dur_ns =
        static_cast<std::uint64_t>(r->wall_seconds * 1e9);
    sample.window = window++;
    sample.events = r->events;
    sample.phase = profile::Phase::kExecute;
    prof.shard_ring(0).push(sample);
  }

  const double events_per_second =
      ev.wall_seconds > 0 ? static_cast<double>(ev.events) / ev.wall_seconds
                          : 0.0;
  const double packets_per_second =
      pk.wall_seconds > 0 ? static_cast<double>(pk.units) / pk.wall_seconds
                          : 0.0;
  const double ev_allocs_per_event =
      ev.events > 0 ? static_cast<double>(ev.allocs) /
                          static_cast<double>(ev.events)
                    : 0.0;
  const double pk_allocs_per_event =
      pk.events > 0 ? static_cast<double>(pk.allocs) /
                          static_cast<double>(pk.events)
                    : 0.0;

  std::printf("phase,units,events,wall_seconds,units_per_second,allocs,"
              "allocs_per_event\n");
  std::printf("events,%llu,%llu,%.6f,%.0f,%llu,%.6f\n",
              static_cast<unsigned long long>(ev.units),
              static_cast<unsigned long long>(ev.events), ev.wall_seconds,
              events_per_second, static_cast<unsigned long long>(ev.allocs),
              ev_allocs_per_event);
  std::printf("packets,%llu,%llu,%.6f,%.0f,%llu,%.6f\n",
              static_cast<unsigned long long>(pk.units),
              static_cast<unsigned long long>(pk.events), pk.wall_seconds,
              packets_per_second, static_cast<unsigned long long>(pk.allocs),
              pk_allocs_per_event);

  std::vector<std::pair<std::string, double>> fields = {
      {"cores", static_cast<double>(profile::Profiler::online_cores())},
      {"events", static_cast<double>(ev.events)},
      {"wall_seconds", ev.wall_seconds},
      {"events_per_second", events_per_second},
      {"packets", static_cast<double>(pk.units)},
      {"packets_per_second", packets_per_second},
      {"event_allocs_per_event", ev_allocs_per_event},
      {"packet_allocs_per_event", pk_allocs_per_event},
      // "stays flat over the run" is the steady-state claim the gate
      // checks: fallbacks in the measured windows, not since process start.
      {"callback_heap_fallbacks",
       static_cast<double>(ev.fallbacks + pk.fallbacks)},
      {"peak_rss_bytes", static_cast<double>(bench::peak_rss_bytes())}};
  if (profiling) {
    const profile::Rollup roll = prof.rollup();
    fields.emplace_back("shard0_utilization_pct",
                        roll.shards[0].utilization_pct);
    fields.emplace_back("barrier_wait_share", roll.barrier_wait_share);
    fields.emplace_back("merge_share", roll.merge_share);
    fields.emplace_back("imbalance_ratio", roll.imbalance_ratio);
    fields.emplace_back("profile_ring_dropped",
                        static_cast<double>(roll.ring_dropped));
    prof.write_perfetto_to_results("profile_hotpath.json");
  }
  std::string json = "{\"scenario\": \"hotpath_alloc\"";
  char buffer[64];
  for (const auto& [key, value] : fields) {
    std::snprintf(buffer, sizeof(buffer), "%.15g", value);
    json += ", \"" + std::string(key) + "\": " + buffer;
  }
  json += "}";
  std::printf("# BENCH_hotpath %s\n", json.c_str());
  if (const char* dir = std::getenv("P2PLAB_RESULTS_DIR")) {
    const std::string path = std::string(dir) + "/BENCH_hotpath.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr,
                   "# P2PLAB_RESULTS_DIR=%s is not writable; BENCH_hotpath "
                   "only on stdout\n", dir);
    }
  }
  return 0;
}

}  // namespace
}  // namespace p2plab

int main(int argc, char** argv) { return p2plab::run(argc, argv); }
