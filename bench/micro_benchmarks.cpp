// Microbenchmarks of the platform's hot paths (google-benchmark).
//
// These are engineering benchmarks, not paper figures: they bound the
// wall-clock cost of the mechanisms that the 10^8-event experiments lean
// on (event queue, rule scan, pipes, SHA-1, picker).
#include <benchmark/benchmark.h>

#include "bittorrent/bencode.hpp"
#include "bittorrent/picker.hpp"
#include "bittorrent/sha1.hpp"
#include "common/rng.hpp"
#include "core/platform.hpp"
#include "ipfw/firewall.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"

using namespace p2plab;

namespace {

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  sim::Simulation sim;
  const auto horizon = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  // Keep `horizon` events pending; each iteration schedules one and
  // dispatches one.
  for (std::int64_t i = 0; i < horizon; ++i) {
    sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleDispatch)->Arg(1000)->Arg(100000);

void BM_EventQueueScheduleDispatchInstrumented(benchmark::State& state) {
  // Same loop with kernel metrics bound: the delta against the plain
  // variant is the registry's per-event overhead (budget: <= 2%).
  sim::Simulation sim;
  metrics::Registry registry;
  sim.bind_metrics(registry);
  const auto horizon = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  for (std::int64_t i = 0; i < horizon; ++i) {
    sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleDispatchInstrumented)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Timer-heavy protocol behavior: nearly every scheduled event (a
  // retransmit or keepalive timer) is cancelled before it fires. Each
  // iteration schedules one event and cancels the oldest pending one, so
  // the queue never dispatches — this isolates the O(1) slab cancel from
  // heap dispatch. Cancelled slots are reclaimed lazily on dispatch, so a
  // trickle of step() calls keeps the heap from accumulating tombstones
  // the way a real run's dispatch stream would.
  sim::Simulation sim;
  const auto horizon = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<sim::EventId> pending(horizon);
  for (std::size_t i = 0; i < horizon; ++i) {
    pending[i] = sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
  }
  std::size_t oldest = 0;
  std::uint64_t cancelled = 0;
  for (auto _ : state) {
    cancelled += sim.cancel(pending[oldest]);
    pending[oldest] = sim.schedule_after(
        Duration::us(static_cast<std::int64_t>(rng.uniform(1000))), [] {});
    oldest = (oldest + 1) % horizon;
    if ((cancelled & 0xff) == 0) sim.step();
  }
  benchmark::DoNotOptimize(cancelled);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(100000);

void BM_LinearClassifierScan(benchmark::State& state) {
  sim::Simulation sim;
  ipfw::Firewall fw(sim, {}, Rng{1});
  fw.add_filler_rules(1000, static_cast<std::uint32_t>(state.range(0)));
  const auto src = *Ipv4Addr::parse("10.0.0.1");
  const auto dst = *Ipv4Addr::parse("10.0.0.2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.classify(src, dst, ipfw::RuleDir::kOut));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LinearClassifierScan)->Arg(64)->Arg(1000)->Arg(50000);

void BM_HashClassifierScan(benchmark::State& state) {
  sim::Simulation sim;
  ipfw::Firewall fw(sim, {.use_hash_classifier = true}, Rng{1});
  fw.add_filler_rules(1000, static_cast<std::uint32_t>(state.range(0)));
  const auto src = *Ipv4Addr::parse("10.0.0.1");
  const auto dst = *Ipv4Addr::parse("10.0.0.2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.classify(src, dst, ipfw::RuleDir::kOut));
  }
}
BENCHMARK(BM_HashClassifierScan)->Arg(50000);

void BM_PipeTransit(benchmark::State& state) {
  sim::Simulation sim;
  ipfw::Pipe pipe(sim,
                  {.bandwidth = Bandwidth::gbps(10),
                   .queue_limit = DataSize::mib(64)},
                  Rng{1});
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    pipe.enqueue(ipfw::Pipe::Segment{.size = DataSize::kib(16),
                                     .flow = delivered % 8,
                                     .on_exit = [&delivered] { ++delivered; }});
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_PipeTransit);

void BM_Sha1Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(16 * 1024)->Arg(256 * 1024);

void BM_BencodeRoundTrip(benchmark::State& state) {
  bt::BDict info;
  info.emplace("length", bt::BValue{16777216});
  info.emplace("name", bt::BValue{"experiment.dat"});
  info.emplace("piece length", bt::BValue{262144});
  info.emplace("pieces", bt::BValue{std::string(20 * 64, 'x')});
  const bt::BValue value{info};
  for (auto _ : state) {
    const std::string encoded = bt::bencode(value);
    benchmark::DoNotOptimize(bt::bdecode(encoded));
  }
}
BENCHMARK(BM_BencodeRoundTrip);

void BM_PickerPick(benchmark::State& state) {
  const auto meta =
      bt::MetaInfo::make_synthetic("f", DataSize::mib(16), 1, false);
  bt::PieceStore store(meta, false);
  bt::PiecePicker picker(meta, store, Rng{1});
  bt::Bitfield have(meta.piece_count());
  have.set_all();
  picker.peer_has_bitfield(have);
  for (auto _ : state) {
    const auto ref = picker.pick(have);
    benchmark::DoNotOptimize(ref);
    if (ref) {
      picker.on_requested(*ref);
      picker.on_request_discarded(*ref);  // keep state steady
    }
  }
}
BENCHMARK(BM_PickerPick);

void BM_PingRoundTrip(benchmark::State& state) {
  // Whole-platform packet path cost (both directions, all layers).
  core::Platform platform(topology::homogeneous_dsl(2),
                          core::PlatformConfig{.physical_nodes = 2});
  for (auto _ : state) {
    bool done = false;
    platform.ping(platform.vnode(0).ip(), platform.vnode(1).ip(),
                  [&](Duration) { done = true; });
    platform.sim().run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PingRoundTrip);

}  // namespace

BENCHMARK_MAIN();
