// Ablation: linear vs hash-based rule classification.
//
// The paper laments that IPFW cannot "evaluate the rules in a hierarchical
// way, or with a hash table" — the linear scan is P2PLab's main
// scalability limit (Figure 6). This ablation re-runs the Figure 6 sweep
// with a classifier that indexes host-addressed rules: the RTT curve
// flattens, quantifying what a better firewall would buy the platform.
#include "bench_env.hpp"
#include "core/platform.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

namespace {

double rtt_with(bool use_hash, std::uint32_t rules) {
  core::PlatformConfig config;
  config.physical_nodes = 2;
  config.host.firewall.use_hash_classifier = use_hash;
  core::Platform platform(topology::homogeneous_dsl(2), config);
  if (rules > 0) {
    platform.network().host(0).firewall().add_filler_rules(1000, rules);
  }
  metrics::Summary rtt;
  for (int probe = 0; probe < 5; ++probe) {
    platform.ping(platform.network().host(0).admin_ip(),
                  platform.network().host(1).admin_ip(),
                  [&](Duration d) { rtt.add(d.to_millis()); });
    platform.sim().run();
  }
  return rtt.mean();
}

}  // namespace

int main() {
  bench::banner("Ablation", "linear vs hash rule classifier (Figure 6 sweep)");
  metrics::CsvWriter csv("abl_classifier",
                         {"rules", "rtt_linear_ms", "rtt_hash_ms"});
  csv.comment("seed=" + std::to_string(core::PlatformConfig{}.seed));
  for (std::uint32_t rules = 0; rules <= 50000; rules += 10000) {
    csv.row({std::to_string(rules), std::to_string(rtt_with(false, rules)),
             std::to_string(rtt_with(true, rules))});
  }
  csv.comment("linear grows ~0.1 ms per 1000 rules; hash stays flat — the "
              "classifier, not Dummynet, limits P2PLab's rule budget");
  return 0;
}
