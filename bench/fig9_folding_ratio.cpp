// Figure 9: the folding-ratio validation. The same 160-client download is
// deployed at 1, 10, 20, 40 and 80 virtual nodes per physical node; the
// curves of total data received over time must be nearly identical
// ("results are nearly identical ... even with 80 virtual nodes on each
// physical node").
//
// Each fold is one catalog::fig9_fold spec run through the
// ExperimentRunner; this harness only interposes the cross-fold pieces —
// one flight recorder and one health timeline spanning all five runs
// (rows tagged by the label column), the merged per-fold byte curves, and
// the divergence metric.
//
// Output: one total-bytes-received column per folding ratio on a common
// 10 s grid, plus the maximum relative divergence from the unfolded run.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "core/bench_report.hpp"
#include "metrics/health.hpp"
#include "metrics/recorder.hpp"
#include "metrics/trace.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  bench::banner("Figure 9", "folding ratio: 1/10/20/40/80 vnodes per node");
  const std::size_t clients = bench::env_size("P2PLAB_FIG9_CLIENTS", 160);
  const std::size_t shards = bench::shards(argc, argv);
  const bool profile = bench::profile_enabled(argc, argv);
  const std::size_t foldings[] = {1, 10, 20, 40, 80};

  const Duration step = Duration::sec(10);
  std::vector<std::vector<double>> curves;
  SimTime longest_end = SimTime::zero();
  std::uint64_t content_seed = 0;

  // Observability: low-rate trace events land in trace.jsonl; one health
  // timeline spans all folds (rows tagged by the label column).
  metrics::FlightRecorder recorder;
  metrics::FlightRecorder::set_active(&recorder);
  metrics::HealthMonitor monitor(metrics::HealthMonitor::Options{
      .period = Duration::sec(60),
      .csv_name = "metrics",
      .tracked = {"sim.events.dispatched", "ipfw.rules_scanned",
                  "net.nic.tx_bytes", "net.nic.rx_bytes"}});

  const std::size_t last_fold = foldings[std::size(foldings) - 1];
  for (const std::size_t fold : foldings) {
    bench::WallTimer fold_timer;
    scenario::ScenarioSpec spec = scenario::catalog::fig9_fold(clients, fold);
    spec.engine.shards = shards;
    spec.engine.profile = profile;
    scenario::ExperimentRunner runner(std::move(spec));
    content_seed = runner.spec().swarm.content_seed;
    runner.setup();
    core::Platform& platform = runner.platform();
    // The health timeline samples through the classic simulation clock;
    // under the parallel engine state is per shard, so it stays off.
    const bool classic = runner.spec().effective_shards() == 0;
    if (classic) {
      monitor.set_label("fold=" + std::to_string(fold));
      monitor.start(platform.sim(), runner.registry());
    }
    runner.execute();
    if (classic) monitor.stop();  // final sample; precedes destruction
    const SimTime end = platform.now() + step;
    longest_end = std::max(longest_end, end);
    curves.push_back(runner.swarm().total_bytes_curve(step, longest_end));
    // The paper: "we monitored the system load, the memory usage, and the
    // disk I/O on every physical node. None of them was a problem."
    // (Host CPU accounting also lives in the classic network.)
    double max_cpu = 0.0;
    if (classic) {
      for (std::size_t p = 0; p < platform.physical_node_count(); ++p) {
        max_cpu = std::max(max_cpu,
                           platform.network().host(p).cpu_utilization());
      }
    }
    std::printf("# folding %zux: %zu pnodes, done at %.0f s, %zu/%zu "
                "complete, max host CPU %.1f%%\n",
                fold, platform.physical_node_count(),
                platform.now().to_seconds(),
                runner.swarm().completed_count(),
                runner.swarm().client_count(), 100.0 * max_cpu);
    // End-of-run health report: sim-kernel throughput, ipfw scan totals and
    // the per-link byte counters, per fold.
    if (classic) monitor.print_report();
    if (fold == last_fold) {
      // Standard run summary from the densest deployment (the paper's
      // stress case), profiler rollup included under --profile.
      core::write_bench_json(
          "fig9", "BENCH_fig9",
          core::bench_fields(platform, "fold", static_cast<double>(fold),
                             runner.spec().engine.seed,
                             fold_timer.elapsed_seconds()));
    }
  }
  recorder.flush_to_results();
  metrics::FlightRecorder::set_active(nullptr);

  metrics::CsvWriter csv("fig9_folding_ratio",
                         {"time_s", "bytes_fold1", "bytes_fold10",
                          "bytes_fold20", "bytes_fold40", "bytes_fold80"});
  csv.comment("seed=" + std::to_string(content_seed));
  const std::size_t n_points = static_cast<std::size_t>(
      longest_end.count_ns() / step.count_ns()) + 1;
  for (std::size_t i = 0; i < n_points; ++i) {
    std::vector<double> row{static_cast<double>(i) * step.to_seconds()};
    for (const auto& curve : curves) {
      row.push_back(i < curve.size() ? curve[i] : curve.back());
    }
    csv.row(row);
  }

  // Divergence metric: max relative gap vs the unfolded deployment over
  // the mid-experiment window (ends are trivially equal).
  double worst = 0.0;
  for (std::size_t i = n_points / 10; i < 9 * n_points / 10; ++i) {
    const double base = curves[0][std::min(i, curves[0].size() - 1)];
    if (base < 1e6) continue;
    for (std::size_t f = 1; f < curves.size(); ++f) {
      const double v = curves[f][std::min(i, curves[f].size() - 1)];
      worst = std::max(worst, std::abs(v - base) / base);
    }
  }
  std::printf("# max mid-run divergence from 1x deployment: %.1f%% "
              "(paper: curves nearly identical)\n",
              100.0 * worst);
  return 0;
}
