// Shared helpers for the figure harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace p2plab::bench {

/// Integer knob from the environment (experiment scaling overrides).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline void banner(const char* figure, const std::string& description) {
  std::printf("# === %s: %s ===\n", figure, description.c_str());
}

}  // namespace p2plab::bench
