// Shared helpers for the figure harnesses.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace p2plab::bench {

/// Integer knob from the environment (experiment scaling overrides).
/// A set-but-malformed or negative value is fatal (exit 2) — silently
/// falling back to the default used to turn e.g. P2PLAB_CHURN_BASELINE=0
/// into 1 and typos into full-scale runs. 0 is a valid value.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "%s='%s' is not a non-negative integer\n", name,
                 value);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

/// Boolean switch value: on|off|1|0|true|false. Anything else is fatal
/// (exit 2) — a typo like --profile=yse must not silently disable
/// profiling on the run someone is waiting on.
inline bool parse_switch(const char* what, std::string_view text) {
  if (text == "on" || text == "1" || text == "true") return true;
  if (text == "off" || text == "0" || text == "false") return false;
  std::fprintf(stderr,
               "bad value '%.*s' for %s (expected on|off|1|0|true|false)\n",
               static_cast<int>(text.size()), text.data(), what);
  std::exit(2);
}

/// Whether this bench run profiles: `--profile` / `--profile=on|off` on
/// the command line, else P2PLAB_PROFILE (on|off|1|0|true|false), else
/// off. Malformed values are fatal (exit 2).
inline bool profile_enabled(int argc, char** argv) {
  bool result = false;
  if (const char* env = std::getenv("P2PLAB_PROFILE")) {
    if (*env != '\0') result = parse_switch("P2PLAB_PROFILE", env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view prefix = "--profile=";
    if (arg == "--profile") {
      result = true;
    } else if (arg.substr(0, prefix.size()) == prefix) {
      result = parse_switch("--profile", arg.substr(prefix.size()));
    }
  }
  return result;
}

/// Shard count for the parallel engine: `--shards=N` on the command line,
/// else P2PLAB_SHARDS, else 0 (the classic single-threaded path). Any
/// other argument except the `--profile` forms (owned by
/// profile_enabled(), accepted by every harness that calls this), or an
/// unparseable count, is fatal (exit 2) — flags must never be silently
/// swallowed.
inline std::size_t shards(int argc, char** argv) {
  std::size_t result = env_size("P2PLAB_SHARDS", 0);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view prefix = "--shards=";
    if (arg == "--profile" || arg.substr(0, 10) == "--profile=") {
      continue;  // validated by profile_enabled()
    }
    if (arg.substr(0, prefix.size()) == prefix) {
      const char* text = argv[i] + prefix.size();
      char* end = nullptr;
      const long long parsed = std::strtoll(text, &end, 10);
      if (end == text || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "bad shard count in '%s'\n", argv[i]);
        std::exit(2);
      }
      result = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --shards=N, "
                   "--profile[=on|off])\n", argv[i]);
      std::exit(2);
    }
  }
  return result;
}

/// Peak resident set size of this process, in bytes (ru_maxrss is KiB on
/// Linux).
inline std::size_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// Wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  double elapsed_seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Machine-readable run summary: a flat JSON object written to
/// $P2PLAB_RESULTS_DIR/<name>.json (and echoed to stdout as a comment).
/// Values print with up to 15 significant digits, so event counts up to
/// 2^53 survive the double round-trip.
inline void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string json = "{";
  char buffer[64];
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.15g", fields[i].second);
    json += (i == 0 ? "\"" : ", \"") + fields[i].first + "\": " + buffer;
  }
  json += "}";
  std::printf("# %s %s\n", name.c_str(), json.c_str());
  if (const char* dir = std::getenv("P2PLAB_RESULTS_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "# P2PLAB_RESULTS_DIR=%s is not writable; %s "
                           "only on stdout\n", dir, name.c_str());
    }
  }
}

inline void banner(const char* figure, const std::string& description) {
  std::printf("# === %s: %s ===\n", figure, description.c_str());
}

}  // namespace p2plab::bench
