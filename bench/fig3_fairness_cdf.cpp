// Figure 3: cumulative distribution of the execution times of 100
// identical CPU-bound processes (~5 s alone) started simultaneously.
//
// Paper shape: with 4BSD and Linux 2.6 most processes finish nearly at the
// same time (near-vertical CDF around 250 s); ULE shows a wide spread.
// We additionally plot the FreeBSD 5 ULE pathology the authors reported in
// their earlier paper (some processes excessively privileged).
#include "bench_env.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"
#include "sched/scheduler.hpp"
#include "workload/tasks.hpp"

using namespace p2plab;

int main() {
  bench::banner("Figure 3", "CDF of completion times, 100 processes");
  metrics::CsvWriter csv("fig3_fairness_cdf",
                         {"scheduler", "execution_time_s", "cdf"});
  csv.comment("seed=7");

  const sched::SchedulerKind kinds[] = {
      sched::SchedulerKind::kUle, sched::SchedulerKind::kBsd4,
      sched::SchedulerKind::kLinuxOne, sched::SchedulerKind::kUleFreebsd5};
  for (const auto kind : kinds) {
    sched::HostConfig config;
    config.kind = kind;
    config.seed = 7;
    config.work_noise = 0.01;  // real benchmark run-to-run variance
    sched::CpuHost host(config);
    const auto result =
        host.run(workload::batch(workload::fairness_task(), 100));
    metrics::Distribution finish;
    for (const auto& proc : result.procs) {
      finish.add(proc.finish.to_seconds());
    }
    for (const auto& [time, cdf] : finish.cdf_points()) {
      csv.row({sched::to_string(kind), std::to_string(time),
               std::to_string(cdf)});
    }
  }
  csv.comment("paper: 4BSD/Linux near-vertical ~250 s; ULE spread over tens "
              "of seconds (fixed vs FreeBSD 5, but still unfair)");
  return 0;
}
