// Figure 7: the worked example on the emulated topology.
//
// The paper measures 853 ms between 10.1.3.207 and 10.2.2.117 and
// decomposes it: 20 ms out + 400 ms inter-group + 5 ms in, 425 ms for the
// return, ~3 ms of firewall evaluation and underlying network. This bench
// reproduces the measurement and several other pair latencies implied by
// the topology, plus the per-node rule budget of the worked example.
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string_view>

#include "bench_env.hpp"
#include "core/bench_report.hpp"
#include "core/platform.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

namespace {
Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 7", "emulated topology latency decomposition");
  const bool profile = bench::profile_enabled(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg != "--profile" && arg.substr(0, 10) != "--profile=") {
      std::fprintf(stderr, "unknown argument '%s' (supported: "
                           "--profile[=on|off])\n", argv[i]);
      return 2;
    }
  }
  bench::WallTimer timer;
  metrics::CsvWriter csv("fig7_topology_latency",
                         {"src", "dst", "rtt_ms", "paper_expected_ms"});
  core::PlatformConfig pconfig{.physical_nodes = 11};
  csv.comment("seed=" + std::to_string(pconfig.seed));

  core::Platform platform(topology::figure7(), pconfig);
  if (profile) platform.enable_profiling();

  const struct {
    const char* src;
    const char* dst;
    double expected_ms;  // 2*(src_lat + group_lat + dst_lat) + overhead
  } probes[] = {
      {"10.1.3.207", "10.2.2.117", 853.0},  // the paper's measurement
      {"10.1.3.207", "10.1.1.5", 2 * (20.0 + 100 + 100)},
      {"10.1.3.207", "10.1.2.5", 2 * (20.0 + 100 + 40)},
      {"10.1.3.207", "10.1.3.5", 2 * (20.0 + 0 + 20)},
      {"10.1.3.207", "10.3.0.7", 2 * (20.0 + 600 + 10)},
      {"10.2.2.117", "10.3.0.7", 2 * (5.0 + 1000 + 10)},
      {"10.1.1.9", "10.2.0.50", 2 * (100.0 + 400 + 5)},
  };
  for (const auto& probe : probes) {
    platform.ping(ip(probe.src), ip(probe.dst), [&](Duration rtt) {
      csv.row({probe.src, probe.dst, std::to_string(rtt.to_millis()),
               std::to_string(probe.expected_ms)});
    });
    platform.sim().run();
  }

  // The rule budget of the paper's example: the node hosting 10.1.3.207.
  const auto& fw = platform.host_of_vnode(250 + 250 + 206).firewall();
  std::printf("# host of 10.1.3.207: %zu rules (paper: 2 per hosted vnode "
              "+ 4 inter-group rules)\n",
              fw.rule_count());
  csv.comment("paper decomposition of 853 ms: 20+400+5 out, 425 return, "
              "~3 firewall/underlay overhead");
  core::write_bench_json(
      "fig7", "BENCH_fig7",
      core::bench_fields(platform, "probes",
                         static_cast<double>(std::size(probes)),
                         pconfig.seed, timer.elapsed_seconds()));
  return 0;
}
