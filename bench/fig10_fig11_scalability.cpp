// Figures 10 and 11: the scalability experiment. 5760 virtual nodes (5754
// clients, 4 seeders, 1 tracker) on 180 physical nodes — 32 virtual nodes
// per physical node — downloading the 16 MB file; clients start every
// 0.25 s and seed after completion.
//
// Paper shape (Fig 10): the progress curves of the sampled clients
// (numbers 50, 100, ..., 5750) rise together and "most clients finish
// their downloads nearly at the same time"; (Fig 11) the completion count
// over time is an S-curve ending at 5754 by ~2500 s.
//
// The full 5754-client run dispatches ~5x10^9 events (over an hour of
// wall clock); the default reproduces the experiment at 1440 clients with
// the same 32:1 folding ratio and 0.25 s start interval, which preserves
// every shape criterion (~13 minutes). Set P2PLAB_FIG10_CLIENTS=5754 for
// the full-scale run, or lower for a quick look.
//
// `--shards=N` (or P2PLAB_SHARDS=N) runs on the parallel engine with N
// worker threads; the event stream is bit-identical to --shards=1. A
// BENCH_fig10.json summary (events/sec, wall seconds, peak RSS, shard and
// core count) lands in $P2PLAB_RESULTS_DIR for speedup comparisons.
#include <cstdio>
#include <thread>

#include "bench_env.hpp"
#include "bittorrent/swarm.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "metrics/trace.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  bt::SwarmConfig config;
  config.clients = bench::env_size("P2PLAB_FIG10_CLIENTS", 1440);
  config.start_interval = Duration::millis(250);
  config.max_duration = Duration::sec(30000);
  const std::size_t shards = bench::shards(argc, argv);

  bench::banner("Figures 10+11", "scalability: " +
                                     std::to_string(config.clients) +
                                     " clients at 32 vnodes per pnode, " +
                                     (shards == 0
                                          ? std::string("classic engine")
                                          : std::to_string(shards) +
                                                " shard(s)"));
  const std::size_t vnodes = bt::swarm_vnodes(config);
  const std::size_t pnodes = (vnodes + 31) / 32;  // the paper's 32:1
  // Declared before the platform: teardown (client timers cancelling
  // events) still increments bound kernel counters.
  metrics::Registry registry;
  core::Platform platform(
      topology::homogeneous_dsl(vnodes),
      core::PlatformConfig{.physical_nodes = pnodes, .shards = shards});
  bt::Swarm swarm(platform, config);
  swarm.bind_metrics(registry);
  // The long run this harness exists for is exactly where the health
  // heartbeat matters: progress is visible every ~10 wall seconds. The
  // monitor samples from inside one simulation, so it is classic-only.
  metrics::HealthMonitor monitor(
      metrics::HealthMonitor::Options{.csv_name = "fig10_metrics"});
  if (!platform.engine_mode()) monitor.start(platform.sim(), registry);
  const bench::WallTimer timer;
  swarm.run();
  const double wall_seconds = timer.elapsed_seconds();
  if (!platform.engine_mode()) {
    monitor.stop();
    monitor.print_report();
  }
  std::printf("# %zu/%zu clients complete at t=%.0f s; %llu events; "
              "%zu pnodes x %zu vnodes\n",
              swarm.completed_count(), swarm.client_count(),
              platform.now().to_seconds(),
              static_cast<unsigned long long>(platform.dispatched_events()),
              pnodes, platform.folding_ratio());
  const double events = static_cast<double>(platform.dispatched_events());
  bench::write_bench_json(
      "BENCH_fig10",
      {{"clients", static_cast<double>(config.clients)},
       {"shards", static_cast<double>(platform.shard_count())},
       {"cores", static_cast<double>(std::thread::hardware_concurrency())},
       {"events", events},
       {"wall_seconds", wall_seconds},
       {"events_per_second", wall_seconds > 0 ? events / wall_seconds : 0},
       {"peak_rss_bytes", static_cast<double>(bench::peak_rss_bytes())}});

  // Figure 10: progress of the sampled clients (every 50th), resampled on
  // a 10 s grid, in long format (client, time, pct).
  metrics::CsvWriter fig10("fig10_sampled_progress",
                           {"client", "time_s", "pct_done"});
  fig10.comment("seed=" + std::to_string(config.content_seed));
  const SimTime end = platform.now() + Duration::sec(10);
  for (std::size_t c = 50; c <= swarm.client_count(); c += 50) {
    const auto& series = swarm.client(c - 1).progress();
    for (SimTime t = SimTime::zero(); t <= end; t += Duration::sec(10)) {
      fig10.row({static_cast<double>(c), t.to_seconds(),
                 series.value_at(t)});
    }
  }

  // Figure 11: number of clients having completed over time.
  metrics::CsvWriter fig11("fig11_completion_curve",
                           {"time_s", "clients_complete"});
  const auto curve = swarm.completion_curve();
  for (const auto& [t, count] : curve.points()) {
    fig11.row({t.to_seconds(), count});
  }
  fig11.comment("paper: S-curve; most of the swarm completes together");
  return 0;
}
