// Figures 10 and 11: the scalability experiment. 5760 virtual nodes (5754
// clients, 4 seeders, 1 tracker) on 180 physical nodes — 32 virtual nodes
// per physical node — downloading the 16 MB file; clients start every
// 0.25 s and seed after completion.
//
// The full 5754-client run dispatches ~5x10^9 events (over an hour of
// wall clock); the default reproduces the experiment at 1440 clients with
// the same 32:1 folding ratio, which preserves every shape criterion.
// Set P2PLAB_FIG10_CLIENTS=5754 for the full-scale run.
//
// Thin wrapper over scenarios/fig10.scn: the experiment is the catalog
// spec, executed by the ExperimentRunner exactly as `p2plab_run` would.
// `--shards=N` (or P2PLAB_SHARDS=N) runs on the parallel engine; the
// event stream is bit-identical to --shards=1.
#include <string>

#include "bench_env.hpp"
#include "scenario/catalog.hpp"
#include "scenario/runner.hpp"

using namespace p2plab;

int main(int argc, char** argv) {
  scenario::ScenarioSpec spec = scenario::catalog::fig10(
      bench::env_size("P2PLAB_FIG10_CLIENTS", 1440));
  spec.engine.shards = bench::shards(argc, argv);
  spec.engine.profile = bench::profile_enabled(argc, argv);
  bench::banner("Figures 10+11",
                "scalability: " + std::to_string(spec.swarm.clients) +
                    " clients at 32 vnodes per pnode, " +
                    (spec.engine.shards == 0
                         ? std::string("classic engine")
                         : std::to_string(spec.engine.shards) +
                               " shard(s)"));
  scenario::ExperimentRunner runner(std::move(spec));
  return runner.run();
}
