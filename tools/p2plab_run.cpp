// p2plab_run: the one experiment driver.
//
//   p2plab_run <file.scn> [--set section.key=value]... [--print-outputs]
//
// Parses the scenario, applies the overrides, and executes it through the
// ExperimentRunner — every shipped experiment (scenarios/*.scn) runs
// through this binary with zero experiment-specific C++. The exit code is
// the run's: nonzero on a parse error, an unknown flag, or a failed
// invariant check.
//
// --print-outputs lists the files the scenario will write into
// $P2PLAB_RESULTS_DIR (one per line) without running anything; the CI
// smoke matrix diffs this against what a run actually produced.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/parser.hpp"
#include "scenario/runner.hpp"
#include "scenario/workload.hpp"

namespace {

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: p2plab_run <file.scn> [--set section.key=value]... "
               "[--profile] [--print-outputs]\n"
               "       p2plab_run --list-workloads\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> overrides;
  bool print_outputs = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--list-workloads") {
      // The registry is the single source of truth: this list is exactly
      // what `[workload] type` accepts.
      for (const auto* plugin :
           p2plab::scenario::WorkloadRegistry::instance().plugins()) {
        std::printf("%-12s %s\n", plugin->name(), plugin->description());
      }
      return 0;
    }
    if (arg == "--print-outputs") {
      print_outputs = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--set") {
      if (i + 1 == argc) {
        std::fprintf(stderr, "p2plab_run: --set needs section.key=value\n");
        return usage(stderr);
      }
      overrides.emplace_back(argv[++i]);
    } else if (arg.rfind("--set=", 0) == 0) {
      overrides.push_back(arg.substr(std::strlen("--set=")));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "p2plab_run: unknown flag '%s'\n", arg.c_str());
      return usage(stderr);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "p2plab_run: more than one scenario file "
                           "('%s' and '%s')\n", path.c_str(), arg.c_str());
      return usage(stderr);
    }
  }
  if (path.empty()) return usage(stderr);

  auto result = p2plab::scenario::parse_scenario_file(path, overrides);
  if (!result.spec) {
    std::fprintf(stderr, "p2plab_run: %s: %s\n", path.c_str(),
                 result.error.c_str());
    return 2;
  }
  p2plab::scenario::ScenarioSpec spec = std::move(*result.spec);
  // Applied before --print-outputs so the declared list matches what a
  // `--profile` run would actually write.
  if (profile) spec.engine.profile = true;

  if (print_outputs) {
    for (const std::string& file : spec.declared_outputs()) {
      std::printf("%s\n", file.c_str());
    }
    return 0;
  }

  std::printf("# === scenario %s: %s workload, %zu vnodes on %zu pnodes, "
              "shards=%zu ===\n",
              spec.name.c_str(),
              spec.workload.c_str(),
              spec.vnodes(), spec.resolved_physical_nodes(),
              spec.effective_shards());
  p2plab::scenario::ExperimentRunner runner(std::move(spec));
  return runner.run();
}
