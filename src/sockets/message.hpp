// Application messages carried by stream sockets.
//
// The emulation exchanges *typed* messages instead of raw byte buffers:
// `size` is what goes on the wire (the pipes serialize it), `body` is the
// in-memory payload handed to the receiving application. This keeps the
// 5760-node runs affordable — no payload bytes are copied through the
// simulated network — while preserving exact byte accounting.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"

namespace p2plab::sockets {

struct Message {
  /// Application-level tag (protocol message id); opaque to the transport.
  std::uint32_t type = 0;
  /// Application payload bytes on the wire.
  DataSize size = DataSize::zero();
  /// In-memory payload; the receiver knows the concrete type from `type`.
  std::shared_ptr<const void> body;

  template <typename T>
  const T& as() const {
    return *static_cast<const T*>(body.get());
  }
};

/// Modeled per-segment header overhead (TCP/IP headers).
inline constexpr std::uint64_t kHeaderBytes = 40;

}  // namespace p2plab::sockets
