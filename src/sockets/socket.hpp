// BSD-style sockets over the emulated network.
//
// The studied applications (our BitTorrent client, the tracker, the example
// programs) use this API exactly as they would use the real one; the
// interception layer (vnode/interceptor.hpp) rewrites their binds to the
// virtual node's aliased IP, which is the whole point of P2PLab's
// process-level virtualization.
//
// Transport: a reliable, in-order message stream —
//   - connection establishment with SYN/SYN-ACK (client retries SYNs);
//   - a byte-windowed sender (default 256 KiB) with cumulative ACKs;
//   - go-back-N retransmission on RTO (RTT estimated per Jacobson/Karn);
//   - FIN teardown notifying the remote's on_close.
// Two selectable congestion regimes (StreamConfig::transport, DESIGN.md
// §13):
//   - kFlow (default): no congestion control; fair sharing of bottleneck
//     links across connections — TCP's role on the real platform — is
//     provided by deficit-round-robin in the Dummynet pipes (DESIGN.md §6).
//   - kTcp: a loss-and-RTT-responsive NewReno-style model. Slow start and
//     AIMD congestion avoidance grow a byte-counted cwnd; three duplicate
//     cumulative ACKs trigger fast retransmit (ssthresh = flight/2, cwnd =
//     ssthresh) ahead of the RTO path, which collapses cwnd to one MSS and
//     retransmits only the oldest segment (the rest recover via further
//     dup-acks or timeouts instead of a go-back-N burst).
// Both regimes share the sequencing, RTO and teardown machinery and are
// deterministic: same inputs, same shard count, bit-identical schedules.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/ipv4.hpp"
#include "metrics/registry.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sockets/message.hpp"
#include "vnode/interceptor.hpp"
#include "vnode/vnode.hpp"

namespace p2plab::sockets {

class StreamSocket;
class Listener;
class DatagramSocket;
class SocketManager;
using StreamSocketPtr = std::shared_ptr<StreamSocket>;
using ListenerPtr = std::shared_ptr<Listener>;
using DatagramSocketPtr = std::shared_ptr<DatagramSocket>;

/// Transport protocol namespaces share the address space but not ports.
enum class Proto : std::uint8_t { kTcp = 0, kUdp = 1 };

/// Which congestion regime the stream sender runs (see the header comment).
enum class TransportModel : std::uint8_t { kFlow = 0, kTcp = 1 };

struct StreamConfig {
  TransportModel transport = TransportModel::kFlow;
  DataSize send_window = DataSize::kib(256);
  /// kTcp only: the byte-counting unit for cwnd growth (one "segment" of
  /// congestion-avoidance credit per cwnd of acked bytes). Messages are
  /// application-sized, so this is an accounting unit, not a wire MTU.
  DataSize tcp_mss = DataSize::bytes(1460);
  /// kTcp only: initial congestion window (RFC 6928's IW10).
  DataSize tcp_initial_cwnd = DataSize::bytes(14600);
  /// kTcp only: duplicate cumulative ACKs that trigger fast retransmit.
  int tcp_dupack_threshold = 3;
  /// RFC 6298's conservative floor. Access links here serialize a 16 KiB
  /// message in over a second, so an aggressive floor guarantees spurious
  /// retransmission storms from the handshake-derived RTT.
  Duration min_rto = Duration::sec(1);
  Duration max_rto = Duration::sec(60);
  Duration initial_rto = Duration::sec(3);
  int max_syn_retries = 5;
  /// Consecutive RTOs without progress before the connection aborts (the
  /// remote's on_close cannot fire; the local one does, like ETIMEDOUT).
  int max_retransmit_timeouts = 12;
  size_t max_reorder_buffer = 1024;  // out-of-order messages kept
};

/// Shared "sockets.*" registry handles for every socket of one manager.
struct SocketMetrics {
  metrics::Counter connects_started;
  metrics::Counter connects_established;
  metrics::Counter connects_failed;  // SYN retries exhausted
  metrics::Counter accepts;
  metrics::Counter closes;  // orderly close() / received FIN
  metrics::Counter aborts;  // retransmit timeouts exhausted (ETIMEDOUT)
  metrics::Counter resets;      // RST received (ECONNRESET/ECONNREFUSED)
  metrics::Counter rsts_sent;   // RSTs emitted for endpoint-less segments
  metrics::Counter crash_aborts;  // endpoints torn down by a vnode crash
  metrics::Counter msgs_sent;
  metrics::Counter msgs_received;
  metrics::Counter bytes_sent;
  metrics::Counter bytes_received;
  metrics::Counter retransmits;          // segments resent (RTO or fast)
  metrics::Counter backpressure_stalls;  // pump left data queued (full window)
  metrics::Counter fast_retransmits;  // kTcp: triple-dup-ack retransmissions
  metrics::Counter rto_recoveries;    // kTcp: RTOs that collapsed cwnd to 1 MSS
  metrics::Counter cwnd_halvings;     // kTcp: ssthresh reductions (any cause)
};

/// Owns the port table and transport-wide configuration for one network.
class SocketManager {
 public:
  class Endpoint {
   public:
    virtual ~Endpoint() = default;
    virtual void handle_packet(net::Packet&& packet) = 0;
    /// The owning process died (vnode crash): release transport state and
    /// timers immediately and silently — no FIN, no local callbacks; the
    /// dead process cannot observe anything. Remote ends discover the loss
    /// via RST (if the address returns) or retransmit-timeout exhaustion.
    virtual void abort_for_crash() = 0;
  };

  /// Construction installs this manager as the network's socket demux:
  /// packets flagged socket_demux deliver through dispatch(). One manager
  /// per network (per shard under the parallel engine).
  SocketManager(net::Network& network, vnode::Interceptor interceptor = {},
                StreamConfig config = {});
  ~SocketManager();

  SocketManager(const SocketManager&) = delete;
  SocketManager& operator=(const SocketManager&) = delete;

  net::Network& network() { return network_; }
  sim::Simulation& sim() { return network_.sim(); }
  const vnode::Interceptor& interceptor() const { return interceptor_; }
  const StreamConfig& stream_config() const { return config_; }

  std::uint16_t alloc_ephemeral_port(Ipv4Addr addr, Proto proto = Proto::kTcp);

  void bind_endpoint(Ipv4Addr addr, std::uint16_t port, Endpoint* endpoint,
                     Proto proto = Proto::kTcp);
  void unbind_endpoint(Ipv4Addr addr, std::uint16_t port,
                       Proto proto = Proto::kTcp);
  Endpoint* endpoint_at(Ipv4Addr addr, std::uint16_t port,
                        Proto proto = Proto::kTcp);

  /// Deliver handler installed on every packet the socket layer sends.
  void dispatch(net::Packet&& packet);

  /// Abort every endpoint bound at `addr` (all ports, both protocols) —
  /// the socket-table sweep of a vnode crash. Safe against endpoints
  /// unbinding themselves mid-sweep.
  void abort_endpoints_of(Ipv4Addr addr);

  /// Resolve "sockets.*" handles from `reg` (affects all sockets of this
  /// manager, existing and future — the handles are read through here).
  void bind_metrics(metrics::Registry& reg);
  const SocketMetrics& metrics() const { return metrics_; }

 private:
  /// Reply to an endpoint-less stream segment with a reset.
  void send_rst(const net::Packet& original);

  static std::uint64_t key(Ipv4Addr addr, std::uint16_t port, Proto proto) {
    return (std::uint64_t{addr.to_u32()} << 17) |
           (std::uint64_t{port} << 1) | static_cast<std::uint64_t>(proto);
  }

  net::Network& network_;
  vnode::Interceptor interceptor_;
  StreamConfig config_;
  SocketMetrics metrics_;
  std::unordered_map<std::uint64_t, Endpoint*> endpoints_;
  std::unordered_map<std::uint64_t, std::uint16_t> next_ephemeral_;
};

/// One endpoint of an established (or connecting) stream.
class StreamSocket final : public SocketManager::Endpoint,
                           public std::enable_shared_from_this<StreamSocket> {
 public:
  using MessageHandler = std::function<void(Message&&)>;
  using VoidHandler = std::function<void()>;

  ~StreamSocket() override;

  /// Queue a message for reliable in-order delivery. No-op after close.
  void send(Message message);

  void on_message(MessageHandler handler) { on_message_ = std::move(handler); }
  void on_close(VoidHandler handler) { on_close_ = std::move(handler); }

  /// Send FIN and tear down. The remote's on_close fires when (if) the FIN
  /// arrives; local handlers do not fire.
  void close();

  bool connected() const { return state_ == State::kEstablished; }
  bool closed() const { return state_ == State::kClosed; }
  Ipv4Addr local_ip() const { return local_ip_; }
  Ipv4Addr remote_ip() const { return remote_ip_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint16_t remote_port() const { return remote_port_; }
  std::uint64_t conn_id() const { return conn_id_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Bytes accepted by send() but not yet acknowledged by the remote —
  /// the send-buffer depth an application polls for backpressure.
  std::uint64_t unsent_bytes() const { return pending_bytes_ + inflight_bytes_; }
  /// Fire `handler` whenever acknowledged progress brings unsent_bytes()
  /// to or below `watermark` (a poor man's EPOLLOUT).
  void on_writable(DataSize watermark, VoidHandler handler) {
    writable_watermark_ = watermark.count_bytes();
    on_writable_ = std::move(handler);
  }
  /// Smoothed RTT estimate; zero until the first measurement.
  Duration srtt() const { return Duration::seconds(srtt_s_); }
  /// Congestion window / slow-start threshold in bytes (kTcp; under kFlow
  /// cwnd() reports the static send window and ssthresh() is unused).
  std::uint64_t cwnd() const { return cwnd_; }
  std::uint64_t ssthresh() const { return ssthresh_; }

  void handle_packet(net::Packet&& packet) override;
  void abort_for_crash() override;

 private:
  friend class SocketApi;
  friend class Listener;

  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  StreamSocket(SocketManager& mgr, net::Host& host);

  // Client-side setup (SocketApi::connect).
  void start_connect(Ipv4Addr local, std::uint16_t local_port, Ipv4Addr remote,
                     std::uint16_t remote_port,
                     std::function<void(StreamSocketPtr)> on_connected,
                     VoidHandler on_fail);
  // Server-side setup (Listener, on SYN).
  void start_accepted(Ipv4Addr local, std::uint16_t local_port,
                      Ipv4Addr remote, std::uint16_t remote_port,
                      std::uint64_t conn_id);

  void pump();
  void transmit_data(std::uint64_t seq, const Message& message);
  void send_control(net::PacketKind kind, std::uint64_t seq,
                    DataSize wire_size = DataSize::bytes(kHeaderBytes));
  void send_syn();
  void send_ack();
  void on_data(net::Packet&& packet);
  void on_ack(std::uint64_t cumulative);
  void deliver_in_order();
  void promote_established();

  void arm_timer(SimTime due);
  void timer_fired();
  Duration rto() const;
  void observe_rtt(Duration sample);
  void teardown();  // unregister + mark closed (no FIN)

  SocketManager& mgr_;
  net::Host& host_;
  State state_ = State::kClosed;

  Ipv4Addr local_ip_;
  Ipv4Addr remote_ip_;
  std::uint16_t local_port_ = 0;
  std::uint16_t remote_port_ = 0;
  std::uint64_t conn_id_ = 0;

  bool tcp_mode() const;
  /// Bytes the sender may keep in flight right now: the static send window
  /// under kFlow, min(send_window, cwnd) under kTcp.
  std::uint64_t effective_window() const;
  void enter_loss_recovery(bool fast);

  // Sender.
  struct InFlight {
    std::uint64_t seq;
    Message message;
    SimTime sent_at;        // most recent (re)transmission
    SimTime first_sent_at;  // original transmission (Karn-clamp fallback)
    bool retransmitted = false;
  };
  std::deque<Message> pending_;
  std::uint64_t pending_bytes_ = 0;
  std::deque<InFlight> inflight_;
  std::uint64_t inflight_bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t writable_watermark_ = 0;
  VoidHandler on_writable_;

  // Congestion control (kTcp; idle under kFlow). cwnd_/ssthresh_ are
  // byte-counted; ca_credit_ accumulates acked bytes in congestion
  // avoidance until a full cwnd has been acked (≈ +1 MSS per RTT), keeping
  // the growth rule in integer arithmetic for bit-identical replays.
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  std::uint64_t ca_credit_ = 0;
  std::uint64_t last_cumulative_ = 0;  // highest cumulative ack seen
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;  // NewReno: recovery ends at this seq

  // Receiver.
  std::uint64_t expected_seq_ = 1;
  std::map<std::uint64_t, Message> reorder_;

  // RTT / RTO state.
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  int backoff_ = 0;  // exponent applied to rto on consecutive timeouts
  int consecutive_timeouts_ = 0;  // RTOs since the last acked progress

  // Retransmission timer. The pending event is tracked by id and cancelled
  // on teardown and when re-armed earlier: a churning swarm aborts
  // thousands of sockets whose RTO events (up to max_rto out) would
  // otherwise sit dead in the kernel heap. Stale fires are additionally
  // ignored via armed_until_.
  bool timer_armed_ = false;
  SimTime armed_until_;
  sim::EventId timer_event_;
  /// Time of the last cumulative-ack progress. The transport network is
  /// per-flow FIFO, so as long as acks arrive the window is draining and a
  /// retransmission would be spurious; the RTO counts from the *later* of
  /// the oldest send and the last progress (ack-silence-based loss
  /// detection, immune to queueing delay).
  SimTime last_progress_;

  // Handshake.
  SimTime syn_sent_at_;
  int syn_retries_ = 0;
  std::function<void(StreamSocketPtr)> on_connected_;
  VoidHandler on_connect_fail_;

  MessageHandler on_message_;
  VoidHandler on_close_;
  /// Installed by the owner (listener/manager) to drop demux entries.
  VoidHandler on_teardown_;
  /// Client sockets keep themselves alive from connect() until the
  /// application receives them (or the connect fails).
  StreamSocketPtr self_ref_;

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// A listening socket producing accepted StreamSockets.
class Listener final : public SocketManager::Endpoint,
                       public std::enable_shared_from_this<Listener> {
 public:
  using AcceptHandler = std::function<void(StreamSocketPtr)>;

  ~Listener() override;

  Ipv4Addr local_ip() const { return local_ip_; }
  std::uint16_t local_port() const { return local_port_; }
  size_t connection_count() const { return conns_.size(); }

  /// Stop accepting new connections (existing ones keep running).
  void stop_accepting() { accepting_ = false; }

  void handle_packet(net::Packet&& packet) override;
  void abort_for_crash() override;

 private:
  friend class SocketApi;
  Listener(SocketManager& mgr, net::Host& host, Ipv4Addr ip,
           std::uint16_t port, AcceptHandler on_accept);

  static std::uint64_t conn_key(Ipv4Addr remote, std::uint16_t port) {
    return (std::uint64_t{remote.to_u32()} << 16) | port;
  }

  SocketManager& mgr_;
  net::Host& host_;
  Ipv4Addr local_ip_;
  std::uint16_t local_port_;
  bool accepting_ = true;
  bool bound_ = true;  // false once abort_for_crash unbound the port
  AcceptHandler on_accept_;
  std::unordered_map<std::uint64_t, StreamSocketPtr> conns_;
};

/// A connectionless datagram socket (the paper notes the interception
/// approach "is possible for UDP" — the same $BINDIP rewrite applies to
/// the explicit bind). No reliability: what the pipes drop stays dropped.
class DatagramSocket final
    : public SocketManager::Endpoint,
      public std::enable_shared_from_this<DatagramSocket> {
 public:
  /// (message, source address, source port)
  using DatagramHandler =
      std::function<void(Message&&, Ipv4Addr, std::uint16_t)>;

  ~DatagramSocket() override;

  void send_to(Ipv4Addr remote, std::uint16_t remote_port, Message message);
  void on_message(DatagramHandler handler) { handler_ = std::move(handler); }
  void close();

  Ipv4Addr local_ip() const { return local_ip_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }

  void handle_packet(net::Packet&& packet) override;
  void abort_for_crash() override { close(); }

 private:
  friend class SocketApi;
  DatagramSocket(SocketManager& mgr, net::Host& host, Ipv4Addr ip,
                 std::uint16_t port);

  SocketManager& mgr_;
  net::Host& host_;
  Ipv4Addr local_ip_;
  std::uint16_t local_port_;
  bool open_ = true;
  std::uint64_t flow_;
  DatagramHandler handler_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Modeled UDP/IP header overhead per datagram.
inline constexpr std::uint64_t kUdpHeaderBytes = 28;

/// The BSD-call surface bound to one virtual node's process. Calls charge
/// the modeled syscall costs to the host CPU and route through the
/// interception layer, exactly as on the real platform.
class SocketApi {
 public:
  SocketApi(SocketManager& mgr, vnode::Process& process)
      : mgr_(mgr), process_(process) {}

  /// The address this process's sockets bind to (via $BINDIP when the
  /// interception applies; the host's primary address otherwise).
  Ipv4Addr effective_bind_address() const;

  /// Asynchronous connect(); exactly one of the callbacks fires.
  void connect(Ipv4Addr remote, std::uint16_t remote_port,
               std::function<void(StreamSocketPtr)> on_connected,
               std::function<void()> on_fail = {});

  /// listen()+accept() loop: `on_accept` fires per inbound connection.
  ListenerPtr listen(std::uint16_t port, Listener::AcceptHandler on_accept);

  /// UDP socket bound via the interception layer; port 0 picks an
  /// ephemeral port.
  DatagramSocketPtr udp_bind(std::uint16_t port = 0);

  vnode::Process& process() { return process_; }

 private:
  SocketManager& mgr_;
  vnode::Process& process_;
};

}  // namespace p2plab::sockets
