#include "sockets/socket.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::sockets {

// ---------------------------------------------------------------- manager

SocketManager::SocketManager(net::Network& network,
                             vnode::Interceptor interceptor,
                             StreamConfig config)
    : network_(network), interceptor_(interceptor), config_(config) {
  network_.set_socket_demux(
      [this](net::Packet&& packet) { dispatch(std::move(packet)); });
}

SocketManager::~SocketManager() { network_.set_socket_demux(nullptr); }

void SocketManager::bind_metrics(metrics::Registry& reg) {
  metrics_.connects_started = reg.counter("sockets.connects_started");
  metrics_.connects_established = reg.counter("sockets.connects_established");
  metrics_.connects_failed = reg.counter("sockets.connects_failed");
  metrics_.accepts = reg.counter("sockets.accepts");
  metrics_.closes = reg.counter("sockets.closes");
  metrics_.aborts = reg.counter("sockets.aborts");
  metrics_.resets = reg.counter("sockets.resets");
  metrics_.rsts_sent = reg.counter("sockets.rsts_sent");
  metrics_.crash_aborts = reg.counter("sockets.crash_aborts");
  metrics_.msgs_sent = reg.counter("sockets.msgs_sent");
  metrics_.msgs_received = reg.counter("sockets.msgs_received");
  metrics_.bytes_sent = reg.counter("sockets.bytes_sent");
  metrics_.bytes_received = reg.counter("sockets.bytes_received");
  metrics_.retransmits = reg.counter("sockets.retransmits");
  metrics_.backpressure_stalls = reg.counter("sockets.backpressure_stalls");
  metrics_.fast_retransmits = reg.counter("sockets.fast_retransmits");
  metrics_.rto_recoveries = reg.counter("sockets.rto_recoveries");
  metrics_.cwnd_halvings = reg.counter("sockets.cwnd_halvings");
}

std::uint16_t SocketManager::alloc_ephemeral_port(Ipv4Addr addr,
                                                  Proto proto) {
  std::uint16_t& next =
      next_ephemeral_[(std::uint64_t{addr.to_u32()} << 1) |
                      static_cast<std::uint64_t>(proto)];
  if (next == 0) next = 49152;
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const std::uint16_t candidate = next;
    next = (next >= 65535) ? 49152 : static_cast<std::uint16_t>(next + 1);
    if (endpoints_.find(key(addr, candidate, proto)) == endpoints_.end()) {
      return candidate;
    }
  }
  P2PLAB_ASSERT_MSG(false, "ephemeral port space exhausted");
}

void SocketManager::bind_endpoint(Ipv4Addr addr, std::uint16_t port,
                                  Endpoint* endpoint, Proto proto) {
  const auto [it, inserted] =
      endpoints_.emplace(key(addr, port, proto), endpoint);
  P2PLAB_ASSERT_MSG(inserted, "port already bound");
  (void)it;
}

void SocketManager::unbind_endpoint(Ipv4Addr addr, std::uint16_t port,
                                    Proto proto) {
  endpoints_.erase(key(addr, port, proto));
}

SocketManager::Endpoint* SocketManager::endpoint_at(Ipv4Addr addr,
                                                    std::uint16_t port,
                                                    Proto proto) {
  const auto it = endpoints_.find(key(addr, port, proto));
  return it == endpoints_.end() ? nullptr : it->second;
}

void SocketManager::dispatch(net::Packet&& packet) {
  const Proto proto = packet.kind == net::PacketKind::kDatagram
                          ? Proto::kUdp
                          : Proto::kTcp;
  Endpoint* endpoint = endpoint_at(packet.dst, packet.dst_port, proto);
  if (endpoint == nullptr) {
    // No socket at this port: answer stream segments with RST, like a real
    // stack (closed port -> ECONNREFUSED, vanished connection ->
    // ECONNRESET). Never answer a RST (no loops) or a datagram (UDP has no
    // reset; what the pipes drop stays dropped).
    if (proto == Proto::kTcp && packet.kind != net::PacketKind::kRst) {
      send_rst(packet);
    }
    return;
  }
  endpoint->handle_packet(std::move(packet));
}

void SocketManager::send_rst(const net::Packet& original) {
  metrics_.rsts_sent.inc();
  net::Packet rst;
  rst.src = original.dst;
  rst.dst = original.src;
  rst.src_port = original.dst_port;
  rst.dst_port = original.src_port;
  rst.wire_size = DataSize::bytes(kHeaderBytes);
  // Ride the control flow of the dead connection (see send_control).
  rst.flow = original.conn | (std::uint64_t{1} << 63);
  rst.kind = net::PacketKind::kRst;
  rst.conn = original.conn;
  rst.socket_demux = true;
  network_.send(std::move(rst));
}

void SocketManager::abort_endpoints_of(Ipv4Addr addr) {
  // Aborting unbinds (mutating endpoints_); collect the victims first.
  // Sorted by key: the sweep order must not depend on unordered_map
  // iteration order, which varies with the table's insertion history (the
  // parallel engine replays the same crashes under different shardings).
  std::vector<std::pair<std::uint64_t, Endpoint*>> victims;
  for (const auto& [k, endpoint] : endpoints_) {
    // key layout: address in the high bits (see key()).
    if (static_cast<std::uint32_t>(k >> 17) == addr.to_u32()) {
      victims.emplace_back(k, endpoint);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& [k, endpoint] : victims) {
    metrics_.crash_aborts.inc();
    endpoint->abort_for_crash();
  }
}

// ----------------------------------------------------------------- socket

StreamSocket::StreamSocket(SocketManager& mgr, net::Host& host)
    : mgr_(mgr), host_(host) {
  const StreamConfig& cfg = mgr_.stream_config();
  cwnd_ = tcp_mode() ? cfg.tcp_initial_cwnd.count_bytes()
                     : cfg.send_window.count_bytes();
  ssthresh_ = cfg.send_window.count_bytes();
}

bool StreamSocket::tcp_mode() const {
  return mgr_.stream_config().transport == TransportModel::kTcp;
}

std::uint64_t StreamSocket::effective_window() const {
  const std::uint64_t wnd = mgr_.stream_config().send_window.count_bytes();
  return tcp_mode() ? std::min(wnd, cwnd_) : wnd;
}

StreamSocket::~StreamSocket() {
  if (state_ != State::kClosed) teardown();
}

void StreamSocket::start_connect(
    Ipv4Addr local, std::uint16_t local_port, Ipv4Addr remote,
    std::uint16_t remote_port, std::function<void(StreamSocketPtr)> on_connected,
    VoidHandler on_fail) {
  local_ip_ = local;
  local_port_ = local_port;
  remote_ip_ = remote;
  remote_port_ = remote_port;
  conn_id_ = host_.next_conn_id();
  on_connected_ = std::move(on_connected);
  on_connect_fail_ = std::move(on_fail);
  state_ = State::kSynSent;
  mgr_.metrics().connects_started.inc();
  // Like a kernel socket, the connection owns itself until teardown: data
  // queued by an application that drops its reference still flushes.
  self_ref_ = shared_from_this();
  // Client sockets own their demux entry; teardown unbinds it.
  mgr_.bind_endpoint(local_ip_, local_port_, this);
  on_teardown_ = [this] { mgr_.unbind_endpoint(local_ip_, local_port_); };
  send_syn();
}

void StreamSocket::start_accepted(Ipv4Addr local, std::uint16_t local_port,
                                  Ipv4Addr remote, std::uint16_t remote_port,
                                  std::uint64_t conn_id) {
  local_ip_ = local;
  local_port_ = local_port;
  remote_ip_ = remote;
  remote_port_ = remote_port;
  conn_id_ = conn_id;
  state_ = State::kSynReceived;
  // Demux happens through the listener; on_teardown_ is set by it.
}

void StreamSocket::send(Message message) {
  if (state_ == State::kClosed) return;
  const Duration cpu =
      host_.charge_cpu(mgr_.interceptor().costs().sys_send);
  pending_bytes_ += message.size.count_bytes();
  pending_.push_back(std::move(message));
  if (cpu == Duration::zero()) {
    pump();
  } else {
    std::weak_ptr<StreamSocket> weak = weak_from_this();
    mgr_.sim().schedule_after(cpu, [weak] {
      if (auto self = weak.lock()) self->pump();
    });
  }
}

void StreamSocket::close() {
  if (state_ == State::kClosed) return;
  mgr_.metrics().closes.inc();
  if (state_ != State::kSynSent) {
    send_control(net::PacketKind::kFin, 0);
  }
  teardown();
}

void StreamSocket::abort_for_crash() {
  // The owner crashed: release everything silently. on_close_ must not
  // fire (there is no process left to observe it) and nothing goes on the
  // wire.
  if (state_ == State::kClosed) return;
  on_message_ = nullptr;
  on_close_ = nullptr;
  on_writable_ = nullptr;
  on_connected_ = nullptr;
  on_connect_fail_ = nullptr;
  teardown();
}

void StreamSocket::teardown() {
  // Moving the self-reference out may make `this` expire at scope end —
  // after every member access below.
  StreamSocketPtr keep = std::move(self_ref_);
  state_ = State::kClosed;
  if (timer_armed_) {
    mgr_.sim().cancel(timer_event_);
    timer_armed_ = false;
    timer_event_ = sim::EventId{};
  }
  pending_.clear();
  pending_bytes_ = 0;
  inflight_.clear();
  inflight_bytes_ = 0;
  reorder_.clear();
  if (on_teardown_) {
    auto cb = std::move(on_teardown_);
    on_teardown_ = nullptr;
    cb();
  }
}

void StreamSocket::pump() {
  if (state_ != State::kEstablished && state_ != State::kSynReceived) return;
  bool sent = false;
  // Under kTcp the congestion window can shrink below one message; an
  // empty flight still always admits one message so the connection cannot
  // deadlock on cwnd.
  const std::uint64_t window = effective_window();
  while (!pending_.empty() && inflight_bytes_ < window) {
    Message message = std::move(pending_.front());
    pending_.pop_front();
    pending_bytes_ -= message.size.count_bytes();
    const std::uint64_t seq = next_seq_++;
    inflight_bytes_ += message.size.count_bytes();
    mgr_.metrics().msgs_sent.inc();
    mgr_.metrics().bytes_sent.inc(message.size.count_bytes());
    const SimTime now = mgr_.sim().now();
    inflight_.push_back(InFlight{seq, message, now, now, false});
    transmit_data(seq, message);
    sent = true;
  }
  if (!pending_.empty()) {
    // Send window full with data still queued: the application is being
    // backpressured until acks drain the window.
    mgr_.metrics().backpressure_stalls.inc();
  }
  if (sent && !inflight_.empty()) {
    arm_timer(inflight_.front().sent_at + rto());
  }
}

void StreamSocket::transmit_data(std::uint64_t seq, const Message& message) {
  bytes_sent_ += message.size.count_bytes();
  net::Packet packet;
  packet.src = local_ip_;
  packet.dst = remote_ip_;
  packet.src_port = local_port_;
  packet.dst_port = remote_port_;
  packet.wire_size =
      DataSize::bytes(message.size.count_bytes() + kHeaderBytes);
  packet.flow = conn_id_;
  packet.kind = net::PacketKind::kData;
  packet.conn = conn_id_;
  packet.seq = seq;
  packet.body = std::make_shared<Message>(message);
  packet.socket_demux = true;
  mgr_.network().send(std::move(packet));
}

void StreamSocket::send_control(net::PacketKind kind, std::uint64_t seq,
                                DataSize wire_size) {
  net::Packet packet;
  packet.src = local_ip_;
  packet.dst = remote_ip_;
  packet.src_port = local_port_;
  packet.dst_port = remote_port_;
  packet.wire_size = wire_size;
  // Control segments ride a sibling flow: inside the Dummynet pipes they
  // round-robin *against* this connection's data instead of queueing
  // behind it. A 40 B ACK stuck behind 16 KiB of our own outgoing pieces
  // would throttle every mutual (tit-for-tat) edge to stop-and-wait.
  packet.flow = conn_id_ | (std::uint64_t{1} << 63);
  packet.kind = kind;
  packet.conn = conn_id_;
  packet.seq = seq;
  packet.socket_demux = true;
  mgr_.network().send(std::move(packet));
}

void StreamSocket::send_syn() {
  syn_sent_at_ = mgr_.sim().now();
  send_control(net::PacketKind::kSyn, 0, DataSize::bytes(64));
  arm_timer(syn_sent_at_ + rto());
}

void StreamSocket::send_ack() {
  send_control(net::PacketKind::kAck, expected_seq_);
}

void StreamSocket::handle_packet(net::Packet&& packet) {
  if (state_ == State::kClosed) return;
  // Teardown paths (FIN, connect failure) may drop the last owning
  // reference while we are still executing.
  StreamSocketPtr guard = shared_from_this();
  switch (packet.kind) {
    case net::PacketKind::kSynAck:
      if (state_ == State::kSynSent) {
        // Prime the estimator with the handshake sample but keep the
        // conservative initial RTO until a *data* segment is acked: a 64 B
        // SYN says nothing about the serialization delay of full messages,
        // and an under-estimated first RTO retransmits the whole opening
        // window.
        const Duration sample = mgr_.sim().now() - syn_sent_at_;
        srtt_s_ = sample.to_seconds();
        rttvar_s_ = srtt_s_ / 2.0;
        state_ = State::kEstablished;
        mgr_.metrics().connects_established.inc();
        if (on_connected_) {
          auto cb = std::move(on_connected_);
          on_connected_ = nullptr;
          cb(shared_from_this());
        }
        // Data that overtook the SYN-ACK (control packets ride a separate
        // pipe flow) was parked in the reorder buffer; deliver it now that
        // the application handler is attached.
        deliver_in_order();
        send_ack();
        pump();
      } else {
        send_ack();  // duplicate SYN-ACK: our ACK was lost
      }
      break;
    case net::PacketKind::kData:
      if (state_ == State::kSynSent) {
        // Handshake not complete on our side yet: park the payload until
        // the SYN-ACK arrives (see the kSynAck case).
        if (reorder_.size() < mgr_.stream_config().max_reorder_buffer) {
          reorder_.emplace(packet.seq,
                           *static_cast<const Message*>(packet.body.get()));
        }
        break;
      }
      if (state_ == State::kSynReceived) promote_established();
      on_data(std::move(packet));
      break;
    case net::PacketKind::kAck:
      if (state_ == State::kSynReceived) promote_established();
      on_ack(packet.seq);
      break;
    case net::PacketKind::kFin: {
      mgr_.metrics().closes.inc();
      teardown();
      if (on_close_) {
        auto handler = on_close_;
        handler();
      }
      break;
    }
    case net::PacketKind::kRst: {
      // Guard against stale resets addressed to a previous connection that
      // held this (addr, port) pair.
      if (packet.conn != conn_id_) break;
      if (state_ == State::kSynSent) {
        // ECONNREFUSED: no listener at the remote port.
        mgr_.metrics().connects_failed.inc();
        auto fail = std::move(on_connect_fail_);
        on_connected_ = nullptr;
        teardown();
        if (fail) fail();
        break;
      }
      // ECONNRESET: the remote end is gone; surface it to the owner
      // immediately instead of grinding through RTO exhaustion.
      mgr_.metrics().resets.inc();
      teardown();
      if (on_close_) {
        auto handler = on_close_;
        handler();
      }
      break;
    }
    case net::PacketKind::kSyn:
    case net::PacketKind::kDatagram:
      break;  // not meaningful on an established socket
  }
}

void StreamSocket::promote_established() {
  if (state_ == State::kSynReceived) {
    state_ = State::kEstablished;
    pump();
  }
}

void StreamSocket::on_data(net::Packet&& packet) {
  const std::uint64_t seq = packet.seq;
  if (seq < expected_seq_) {
    send_ack();  // duplicate; re-ack so the sender advances
    return;
  }
  if (seq > expected_seq_) {
    if (reorder_.size() < mgr_.stream_config().max_reorder_buffer) {
      reorder_.emplace(seq, *static_cast<const Message*>(packet.body.get()));
    }
    send_ack();  // dup-ack carrying the hole
    return;
  }
  Message message = *static_cast<const Message*>(packet.body.get());
  ++expected_seq_;
  bytes_received_ += message.size.count_bytes();
  mgr_.metrics().msgs_received.inc();
  mgr_.metrics().bytes_received.inc(message.size.count_bytes());
  if (on_message_) {
    // Invoke through a copy: the handler may replace or clear itself
    // (e.g. an application tearing the connection down mid-dispatch).
    auto handler = on_message_;
    handler(std::move(message));
  }
  deliver_in_order();
  send_ack();
}

void StreamSocket::deliver_in_order() {
  auto it = reorder_.begin();
  while (it != reorder_.end() && it->first == expected_seq_) {
    Message message = std::move(it->second);
    it = reorder_.erase(it);
    ++expected_seq_;
    bytes_received_ += message.size.count_bytes();
    mgr_.metrics().msgs_received.inc();
    mgr_.metrics().bytes_received.inc(message.size.count_bytes());
    if (on_message_) {
      auto handler = on_message_;
      handler(std::move(message));
    }
  }
}

void StreamSocket::on_ack(std::uint64_t cumulative) {
  bool progressed = false;
  bool rtt_sample_valid = false;
  SimTime sample_sent_at;
  bool have_clamp_sample = false;
  SimTime clamp_first_sent_at;
  std::uint64_t acked_bytes = 0;
  while (!inflight_.empty() && inflight_.front().seq < cumulative) {
    const InFlight& entry = inflight_.front();
    inflight_bytes_ -= entry.message.size.count_bytes();
    acked_bytes += entry.message.size.count_bytes();
    if (!entry.retransmitted) {  // Karn's rule
      rtt_sample_valid = true;
      sample_sent_at = entry.sent_at;
    } else {
      have_clamp_sample = true;
      clamp_first_sent_at = entry.first_sent_at;
    }
    inflight_.pop_front();
    progressed = true;
  }
  if (!progressed) {
    // No cumulative progress: the receiver saw something out of order or
    // redundant. Under kFlow recovery stays timeout-driven; under kTcp the
    // third duplicate of the highest ack we have already seen signals a
    // hole at the front of the flight and triggers fast retransmit.
    if (!tcp_mode() || state_ != State::kEstablished || inflight_.empty() ||
        cumulative != inflight_.front().seq) {
      return;
    }
    if (cumulative != last_cumulative_) {
      // First ack at this level (e.g. the handshake ack); only repeats of
      // it count as duplicates.
      last_cumulative_ = cumulative;
      dup_acks_ = 0;
      return;
    }
    ++dup_acks_;
    if (dup_acks_ == mgr_.stream_config().tcp_dupack_threshold &&
        !in_recovery_) {
      enter_loss_recovery(/*fast=*/true);
    }
    return;
  }
  last_cumulative_ = std::max(last_cumulative_, cumulative);
  dup_acks_ = 0;
  // Only a clean (never-retransmitted) sample proves the current RTO is
  // adequate; resetting the backoff on *any* progress would let a
  // spurious-retransmission cycle sustain itself (Karn's rule blocks the
  // samples that would otherwise raise the estimate).
  if (rtt_sample_valid) {
    backoff_ = 0;
    consecutive_timeouts_ = 0;
    observe_rtt(mgr_.sim().now() - sample_sent_at);
  } else if (tcp_mode()) {
    // Under kTcp, ack silence — not sample cleanliness — is the abort
    // criterion (see last_progress_): any cumulative progress proves the
    // peer is alive, so a fault window full of retransmitted-only acks
    // must not accumulate toward the ETIMEDOUT abort.
    consecutive_timeouts_ = 0;
    if (have_clamp_sample) {
      // Karn-clamp: every popped segment was retransmitted, so no sample
      // is unambiguous — but (now - first transmission) is a hard upper
      // bound on the path RTT whichever copy this ack answers. Feeding it
      // in the raising direction only lets the estimator learn that the
      // path got *slower* (a latency-spike fault window) instead of
      // staying pinned at the pre-spike RTO and re-sending the window
      // once per timeout for the whole spike. kFlow keeps its historical
      // timeout dynamics untouched — fig8's flow-model output is pinned
      // byte-for-byte by the scenario suite.
      const Duration upper = mgr_.sim().now() - clamp_first_sent_at;
      if (upper.to_seconds() > srtt_s_) observe_rtt(upper);
    }
  }
  last_progress_ = mgr_.sim().now();
  if (tcp_mode()) {
    const StreamConfig& cfg = mgr_.stream_config();
    const std::uint64_t mss = cfg.tcp_mss.count_bytes();
    const std::uint64_t cap = cfg.send_window.count_bytes();
    if (in_recovery_) {
      if (cumulative >= recovery_point_) {
        // Full ack: everything outstanding at the loss is repaired.
        in_recovery_ = false;
        cwnd_ = std::max(ssthresh_, mss);
        ca_credit_ = 0;
      } else if (!inflight_.empty()) {
        // NewReno partial ack: the next hole was lost in the same event;
        // retransmit it now instead of waiting for three more dup-acks.
        InFlight& front = inflight_.front();
        front.sent_at = mgr_.sim().now();
        front.retransmitted = true;
        mgr_.metrics().retransmits.inc();
        bytes_sent_ -= front.message.size.count_bytes();  // recounted below
        transmit_data(front.seq, front.message);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cwnd_ + acked_bytes, cap);  // slow start
    } else {
      // Congestion avoidance, byte-counted: +1 MSS per cwnd of acked data.
      ca_credit_ += acked_bytes;
      while (ca_credit_ >= cwnd_) {
        ca_credit_ -= cwnd_;
        cwnd_ = std::min(cwnd_ + mss, cap);
      }
    }
  }
  pump();
  if (!inflight_.empty()) {
    arm_timer(inflight_.front().sent_at + rto());
  }
  if (on_writable_ && unsent_bytes() <= writable_watermark_) {
    auto handler = on_writable_;  // may replace itself
    handler();
  }
}

void StreamSocket::enter_loss_recovery(bool fast) {
  const StreamConfig& cfg = mgr_.stream_config();
  const std::uint64_t mss = cfg.tcp_mss.count_bytes();
  ssthresh_ = std::max(inflight_bytes_ / 2, 2 * mss);
  mgr_.metrics().cwnd_halvings.inc();
  if (fast) {
    // Fast retransmit / NewReno fast recovery: halve and repair the front
    // hole; recovery ends when everything in flight at this point is acked.
    mgr_.metrics().fast_retransmits.inc();
    cwnd_ = ssthresh_;
    in_recovery_ = true;
    recovery_point_ = next_seq_;
  } else {
    // RTO: collapse to one MSS and slow-start back. Only the oldest
    // segment is resent; later holes are repaired by dup-acks or further
    // timeouts, never by a go-back-N whole-window burst.
    mgr_.metrics().rto_recoveries.inc();
    cwnd_ = mss;
    in_recovery_ = false;
    dup_acks_ = 0;
  }
  ca_credit_ = 0;
  if (!inflight_.empty()) {
    InFlight& front = inflight_.front();
    front.sent_at = mgr_.sim().now();
    front.retransmitted = true;
    mgr_.metrics().retransmits.inc();
    bytes_sent_ -= front.message.size.count_bytes();  // recounted below
    transmit_data(front.seq, front.message);
  }
  arm_timer(mgr_.sim().now() + rto());
}

Duration StreamSocket::rto() const {
  const StreamConfig& cfg = mgr_.stream_config();
  Duration base = cfg.initial_rto;
  if (have_rtt_) {
    base = Duration::seconds(srtt_s_ + 4.0 * rttvar_s_);
    base = std::clamp(base, cfg.min_rto, cfg.max_rto);
  }
  for (int i = 0; i < backoff_; ++i) {
    base = base * 2;
    if (base >= cfg.max_rto) return cfg.max_rto;
  }
  return base;
}

void StreamSocket::observe_rtt(Duration sample) {
  const double s = sample.to_seconds();
  if (!have_rtt_ || s > 4.0 * srtt_s_) {
    // First sample, or a regime change (e.g. from 64 B handshake RTTs to
    // multi-second serialization of full messages): restart the estimator
    // rather than converge over dozens of samples.
    srtt_s_ = s;
    rttvar_s_ = s / 2.0;
    have_rtt_ = true;
    return;
  }
  rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - s);
  srtt_s_ = 0.875 * srtt_s_ + 0.125 * s;
}

void StreamSocket::arm_timer(SimTime due) {
  // The due time can already be in the past (e.g. the new oldest in-flight
  // segment was sent long ago); fire on the next tick instead.
  due = std::max(due, mgr_.sim().now());
  if (timer_armed_ && armed_until_ <= due) return;
  // Arming earlier supersedes the pending event; cancel it instead of
  // leaving a dead entry in the kernel heap (stale fires are still caught
  // via armed_until_ in case the cancel scan missed).
  if (timer_armed_) mgr_.sim().cancel(timer_event_);
  timer_armed_ = true;
  armed_until_ = due;
  std::weak_ptr<StreamSocket> weak = weak_from_this();
  timer_event_ = mgr_.sim().schedule_at(due, [weak, due] {
    auto self = weak.lock();
    if (!self) return;
    if (!self->timer_armed_ || self->armed_until_ != due) return;  // stale
    self->timer_armed_ = false;
    self->timer_event_ = sim::EventId{};
    self->timer_fired();
  });
}

void StreamSocket::timer_fired() {
  if (state_ == State::kClosed) return;
  const SimTime now = mgr_.sim().now();

  if (state_ == State::kSynSent) {
    const SimTime due = syn_sent_at_ + rto();
    if (now < due) {
      arm_timer(due);
      return;
    }
    if (++syn_retries_ > mgr_.stream_config().max_syn_retries) {
      mgr_.metrics().connects_failed.inc();
      auto fail = std::move(on_connect_fail_);
      teardown();
      if (fail) fail();
      return;
    }
    ++backoff_;
    send_syn();
    return;
  }

  if (inflight_.empty()) return;  // everything acked; stay disarmed
  const SimTime base = std::max(inflight_.front().sent_at, last_progress_);
  const SimTime due = base + rto();
  if (now < due) {
    arm_timer(due);
    return;
  }
  if (++consecutive_timeouts_ > mgr_.stream_config().max_retransmit_timeouts) {
    // The peer is unreachable: abort like ETIMEDOUT.
    mgr_.metrics().aborts.inc();
    teardown();
    if (on_close_) {
      auto handler = on_close_;
      handler();
    }
    return;
  }
  ++backoff_;
  if (backoff_ > 8) backoff_ = 8;
  if (tcp_mode()) {
    // RTO under kTcp: multiplicative decrease + single-segment repair.
    enter_loss_recovery(/*fast=*/false);
    return;
  }
  // kFlow go-back-N: retransmit the whole window.
  for (InFlight& entry : inflight_) {
    entry.sent_at = now;
    entry.retransmitted = true;
    mgr_.metrics().retransmits.inc();
    bytes_sent_ -= entry.message.size.count_bytes();  // counted again below
    transmit_data(entry.seq, entry.message);
  }
  arm_timer(now + rto());
}

// --------------------------------------------------------------- listener

Listener::Listener(SocketManager& mgr, net::Host& host, Ipv4Addr ip,
                   std::uint16_t port, AcceptHandler on_accept)
    : mgr_(mgr),
      host_(host),
      local_ip_(ip),
      local_port_(port),
      on_accept_(std::move(on_accept)) {
  mgr_.bind_endpoint(local_ip_, local_port_, this);
}

Listener::~Listener() {
  if (bound_) mgr_.unbind_endpoint(local_ip_, local_port_);
}

void Listener::abort_for_crash() {
  // Abort accepted connections first (they demux through us, not through
  // the manager's port table), then release the port. The unbind must not
  // run again from the destructor: by then a rejoined process may have
  // bound a fresh listener to the same (addr, port).
  accepting_ = false;
  on_accept_ = nullptr;
  auto conns = std::move(conns_);
  conns_.clear();
  // Sorted sweep: abort order must not depend on hash-table history (see
  // SocketManager::abort_endpoints_of).
  std::vector<std::pair<std::uint64_t, StreamSocketPtr>> victims(
      std::make_move_iterator(conns.begin()),
      std::make_move_iterator(conns.end()));
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [key, socket] : victims) socket->abort_for_crash();
  if (bound_) {
    mgr_.unbind_endpoint(local_ip_, local_port_);
    bound_ = false;
  }
}

void Listener::handle_packet(net::Packet&& packet) {
  const std::uint64_t key = conn_key(packet.src, packet.src_port);
  if (packet.kind == net::PacketKind::kSyn) {
    const auto existing = conns_.find(key);
    if (existing != conns_.end()) {
      // Duplicate SYN: our SYN-ACK was lost; resend it.
      existing->second->send_control(net::PacketKind::kSynAck, 0,
                                     DataSize::bytes(64));
      return;
    }
    if (!accepting_) return;
    mgr_.metrics().accepts.inc();
    host_.charge_cpu(mgr_.interceptor().costs().sys_accept);
    StreamSocketPtr socket{new StreamSocket(mgr_, host_)};
    socket->start_accepted(local_ip_, local_port_, packet.src,
                           packet.src_port, packet.conn);
    std::weak_ptr<Listener> weak = weak_from_this();
    socket->on_teardown_ = [weak, key] {
      if (auto self = weak.lock()) self->conns_.erase(key);
    };
    conns_.emplace(key, socket);
    socket->send_control(net::PacketKind::kSynAck, 0, DataSize::bytes(64));
    if (on_accept_) on_accept_(socket);
    return;
  }
  const auto it = conns_.find(key);
  if (it == conns_.end()) return;  // stale packet for a gone connection
  // Keep the socket alive through the handler even if it closes itself.
  StreamSocketPtr socket = it->second;
  socket->handle_packet(std::move(packet));
}

// -------------------------------------------------------------------- api

Ipv4Addr SocketApi::effective_bind_address() const {
  return mgr_.interceptor()
      .on_connect_or_listen(process_, std::nullopt)
      .address;
}

void SocketApi::connect(Ipv4Addr remote, std::uint16_t remote_port,
                        std::function<void(StreamSocketPtr)> on_connected,
                        std::function<void()> on_fail) {
  const auto decision =
      mgr_.interceptor().on_connect_or_listen(process_, std::nullopt);
  const auto& costs = mgr_.interceptor().costs();
  const Duration cpu = process_.host().charge_cpu(
      costs.sys_socket + costs.sys_connect + decision.added_cost);

  StreamSocketPtr socket{new StreamSocket(mgr_, process_.host())};
  const Ipv4Addr local = decision.address;
  const std::uint16_t local_port = mgr_.alloc_ephemeral_port(local);
  auto begin = [socket, local, local_port, remote, remote_port,
                cb = std::move(on_connected),
                fail = std::move(on_fail)]() mutable {
    socket->start_connect(local, local_port, remote, remote_port,
                          std::move(cb), std::move(fail));
  };
  if (cpu == Duration::zero()) {
    begin();
  } else {
    mgr_.sim().schedule_after(cpu, std::move(begin));
  }
}

// ---------------------------------------------------------------- datagram

DatagramSocket::DatagramSocket(SocketManager& mgr, net::Host& host,
                               Ipv4Addr ip, std::uint16_t port)
    : mgr_(mgr),
      host_(host),
      local_ip_(ip),
      local_port_(port),
      flow_(host.next_conn_id()) {
  mgr_.bind_endpoint(local_ip_, local_port_, this, Proto::kUdp);
}

DatagramSocket::~DatagramSocket() {
  if (open_) mgr_.unbind_endpoint(local_ip_, local_port_, Proto::kUdp);
}

void DatagramSocket::close() {
  if (!open_) return;
  open_ = false;
  mgr_.unbind_endpoint(local_ip_, local_port_, Proto::kUdp);
}

void DatagramSocket::send_to(Ipv4Addr remote, std::uint16_t remote_port,
                             Message message) {
  if (!open_) return;
  host_.charge_cpu(mgr_.interceptor().costs().sys_send);
  ++sent_;
  net::Packet packet;
  packet.src = local_ip_;
  packet.dst = remote;
  packet.src_port = local_port_;
  packet.dst_port = remote_port;
  packet.wire_size =
      DataSize::bytes(message.size.count_bytes() + kUdpHeaderBytes);
  packet.flow = flow_;
  packet.kind = net::PacketKind::kDatagram;
  packet.body = std::make_shared<Message>(std::move(message));
  packet.socket_demux = true;
  mgr_.network().send(std::move(packet));
}

void DatagramSocket::handle_packet(net::Packet&& packet) {
  if (!open_) return;
  ++received_;
  if (!handler_) return;
  Message message = *static_cast<const Message*>(packet.body.get());
  auto handler = handler_;  // may replace itself mid-dispatch
  handler(std::move(message), packet.src, packet.src_port);
}

ListenerPtr SocketApi::listen(std::uint16_t port,
                              Listener::AcceptHandler on_accept) {
  const auto decision =
      mgr_.interceptor().on_connect_or_listen(process_, std::nullopt);
  const auto& costs = mgr_.interceptor().costs();
  process_.host().charge_cpu(costs.sys_socket + costs.sys_listen +
                             decision.added_cost);
  return ListenerPtr{new Listener(mgr_, process_.host(), decision.address,
                                  port, std::move(on_accept))};
}

DatagramSocketPtr SocketApi::udp_bind(std::uint16_t port) {
  // Explicit bind(): the interception layer rewrites the address to
  // $BINDIP (the "similar approach is possible for UDP" of the paper).
  const auto decision = mgr_.interceptor().on_bind(
      process_, process_.host().admin_ip());
  const auto& costs = mgr_.interceptor().costs();
  process_.host().charge_cpu(costs.sys_socket + costs.sys_bind +
                             decision.added_cost);
  const Ipv4Addr local = decision.address;
  const std::uint16_t bound =
      port != 0 ? port : mgr_.alloc_ephemeral_port(local, Proto::kUdp);
  return DatagramSocketPtr{
      new DatagramSocket(mgr_, process_.host(), local, bound)};
}

}  // namespace p2plab::sockets
