#include "ipfw/pipe.hpp"

#include <utility>

#include "common/assert.hpp"

namespace p2plab::ipfw {

PipeMetrics PipeMetrics::resolve(metrics::Registry& reg) {
  PipeMetrics m;
  m.segments_in = reg.counter("ipfw.pipe.segments_in");
  m.segments_out = reg.counter("ipfw.pipe.segments_out");
  m.bytes_in = reg.counter("ipfw.pipe.bytes_in");
  m.bytes_out = reg.counter("ipfw.pipe.bytes_out");
  m.drops_loss = reg.counter("ipfw.pipe.drops_loss");
  m.drops_burst = reg.counter("ipfw.pipe.drops_burst");
  m.drops_down = reg.counter("ipfw.pipe.drops_down");
  m.drops_overflow = reg.counter("ipfw.pipe.drops_overflow");
  // Buckets up to the default 50-frame queue bound and beyond (custom
  // limits may exceed it).
  m.queue_bytes = reg.histogram(
      "ipfw.pipe.queue_bytes",
      {0, 1500, 4500, 15000, 37500, 75000, 150000, 600000});
  return m;
}

Pipe::Pipe(sim::Simulation& sim, PipeConfig config, Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  P2PLAB_ASSERT(config_.loss_rate >= 0.0 && config_.loss_rate <= 1.0);
}

void Pipe::enqueue(Segment seg) {
  ++stats_.segments_in;
  stats_.bytes_in += seg.size.count_bytes();
  metrics_.segments_in.inc();
  metrics_.bytes_in.inc(seg.size.count_bytes());
  metrics_.queue_bytes.record(static_cast<double>(queued_bytes_));

  if (down_) {
    ++stats_.segments_dropped;
    ++stats_.segments_dropped_down;
    metrics_.drops_down.inc();
    if (seg.on_drop) seg.on_drop();
    return;
  }

  if (config_.loss_rate > 0.0 && rng_.chance(config_.loss_rate)) {
    ++stats_.segments_dropped;
    metrics_.drops_loss.inc();
    if (seg.on_drop) seg.on_drop();
    return;
  }

  if (config_.burst_loss.enabled()) {
    // Advance the two-state chain once per arrival, then lose by state.
    const GilbertElliott& ge = config_.burst_loss;
    if (burst_bad_) {
      if (rng_.chance(ge.p_bad_to_good)) burst_bad_ = false;
    } else {
      if (rng_.chance(ge.p_good_to_bad)) burst_bad_ = true;
    }
    const double p = burst_bad_ ? ge.loss_bad : ge.loss_good;
    if (p > 0.0 && rng_.chance(p)) {
      ++stats_.segments_dropped;
      ++stats_.segments_dropped_burst;
      metrics_.drops_burst.inc();
      if (seg.on_drop) seg.on_drop();
      return;
    }
  }

  // Pure delay element: no queueing, no serialization.
  if (config_.bandwidth.is_unlimited()) {
    ++stats_.segments_out;
    stats_.bytes_out += seg.size.count_bytes();
    metrics_.segments_out.inc();
    metrics_.bytes_out.inc(seg.size.count_bytes());
    auto cb = std::move(seg.on_exit);
    if (seg.defer_delay != nullptr) {
      *seg.defer_delay += config_.delay;
      cb();
    } else if (config_.delay == Duration::zero()) {
      cb();
    } else {
      sim_.schedule_after(config_.delay, std::move(cb));
    }
    return;
  }

  if (queued_bytes_ + seg.size.count_bytes() >
          config_.queue_limit.count_bytes() &&
      busy_) {
    // Queue full (the in-service segment does not count against the queue).
    ++stats_.segments_dropped;
    metrics_.drops_overflow.inc();
    if (seg.on_drop) seg.on_drop();
    return;
  }

  if (!busy_) {
    // Idle server: begin service immediately, bypassing the queue.
    start_service(std::move(seg));
    return;
  }

  queued_bytes_ += seg.size.count_bytes();
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  if (config_.fair_queue) {
    auto [it, inserted] = flows_.try_emplace(seg.flow);
    if (it->second.segments.empty()) ring_add(seg.flow);
    it->second.segments.push_back(std::move(seg));
  } else {
    fifo_.push_back(std::move(seg));
  }
}

void Pipe::ring_add(FlowId flow) {
  // Reuse a parked ring node if one exists: flows blink in and out of the
  // ring once per burst of queue pressure, and list nodes splice for free.
  if (spare_.empty()) {
    active_.push_back(flow);
  } else {
    spare_.front() = flow;
    active_.splice(active_.end(), spare_, spare_.begin());
  }
}

void Pipe::maybe_sweep_flows() {
  // Parked (empty) flow entries make returning flows allocation-free, but
  // under long-run connection churn dead entries would pile up. When they
  // dominate, give the memory back; the next arrival of each flow simply
  // re-allocates once.
  if (flows_.size() < kSweepMinFlows ||
      flows_.size() < 4 * (active_.size() + 1)) {
    return;
  }
  std::erase_if(flows_,
                [](const auto& kv) { return kv.second.segments.empty(); });
  spare_.clear();
}

void Pipe::serve_next() {
  P2PLAB_ASSERT(busy_);
  if (!config_.fair_queue) {
    if (fifo_.empty()) {
      busy_ = false;
      return;
    }
    Segment seg = std::move(fifo_.front());
    fifo_.pop_front();
    queued_bytes_ -= seg.size.count_bytes();
    start_service(std::move(seg));
    return;
  }

  if (active_.empty()) {
    busy_ = false;
    return;
  }
  // Deficit round robin: visit flows in ring order, topping up the deficit
  // until the head segment fits. Bounded: each visit adds a quantum.
  for (;;) {
    const FlowId fid = active_.front();
    auto it = flows_.find(fid);
    P2PLAB_ASSERT(it != flows_.end() && !it->second.segments.empty());
    FlowQueue& fq = it->second;
    const std::uint64_t head_bytes = fq.segments.front().size.count_bytes();
    if (fq.deficit_bytes >= head_bytes) {
      fq.deficit_bytes -= head_bytes;
      Segment seg = std::move(fq.segments.front());
      fq.segments.pop_front();
      queued_bytes_ -= head_bytes;
      if (fq.segments.empty()) {
        // An emptied flow leaves the ring and forfeits its deficit (classic
        // DRR — prevents a returning flow from bursting). The map entry and
        // ring node are parked for reuse rather than freed — identical
        // scheduling behaviour, zero allocator traffic when the flow
        // returns.
        fq.deficit_bytes = 0;
        spare_.splice(spare_.end(), active_, active_.begin());
        maybe_sweep_flows();
      }
      start_service(std::move(seg));
      return;
    }
    fq.deficit_bytes += kDrrQuantumBytes;
    active_.splice(active_.end(), active_, active_.begin());  // rotate
  }
}

void Pipe::start_service(Segment seg) {
  busy_ = true;
  const Duration service = config_.bandwidth.transmission_time(seg.size);
  // The in-service segment waits inside the pipe itself, so the completion
  // event captures one pointer. Moving it out *before* depart/serve_next
  // frees the slot for whatever those start serving next.
  in_service_ = std::move(seg);
  sim_.schedule_after(service, [this] {
    Segment done = std::move(in_service_);
    depart(std::move(done));
    serve_next();
  });
}

void Pipe::depart(Segment seg) {
  ++stats_.segments_out;
  stats_.bytes_out += seg.size.count_bytes();
  metrics_.segments_out.inc();
  metrics_.bytes_out.inc(seg.size.count_bytes());
  auto cb = std::move(seg.on_exit);
  if (seg.defer_delay != nullptr) {
    *seg.defer_delay += config_.delay;
    cb();
  } else if (config_.delay == Duration::zero()) {
    cb();
  } else {
    sim_.schedule_after(config_.delay, std::move(cb));
  }
}

}  // namespace p2plab::ipfw
