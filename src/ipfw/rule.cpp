#include "ipfw/rule.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace p2plab::ipfw {

MatchResult LinearClassifier::classify(Ipv4Addr src, Ipv4Addr dst,
                                       RuleDir pass) const {
  MatchResult result;
  for (const Rule& rule : rules_) {
    ++result.rules_scanned;
    if (!rule.matches(src, dst, pass)) continue;
    switch (rule.action) {
      case RuleAction::kPipe:
        result.pipes.push_back(rule.pipe);
        break;  // one_pass=0: keep scanning
      case RuleAction::kAllow:
        return result;
      case RuleAction::kDeny:
        result.denied = true;
        return result;
    }
  }
  return result;  // implicit allow at end of list
}

void HashClassifier::rebuild(const std::vector<Rule>& rules) {
  by_src_host_.clear();
  by_dst_host_.clear();
  residual_.clear();
  sorted_ = false;
  for (size_t i = 0; i < rules.size(); ++i) {
    IndexedRule ir{rules[i], i};
    if (rules[i].src.prefix_len() == 32) {
      by_src_host_.emplace_back(rules[i].src.base().to_u32(), ir);
    } else if (rules[i].dst.prefix_len() == 32) {
      by_dst_host_.emplace_back(rules[i].dst.base().to_u32(), ir);
    } else {
      residual_.push_back(ir);
    }
  }
  sort_buckets();
}

void HashClassifier::sort_buckets() {
  auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(by_src_host_.begin(), by_src_host_.end(), by_key);
  std::sort(by_dst_host_.begin(), by_dst_host_.end(), by_key);
  sorted_ = true;
}

MatchResult HashClassifier::classify(Ipv4Addr src, Ipv4Addr dst,
                                     RuleDir pass) const {
  P2PLAB_ASSERT(sorted_);
  MatchResult result;

  // Gather candidate rules: host-indexed hits plus all residual rules.
  // Candidates must then be applied in original rule order to preserve
  // allow/deny semantics, so collect (order, rule) and sort. Candidate sets
  // are tiny (a handful), which is the point of the ablation.
  std::vector<const IndexedRule*> candidates;
  auto collect = [&](const std::vector<std::pair<std::uint32_t, IndexedRule>>&
                         bucket,
                     std::uint32_t key) {
    auto [lo, hi] = std::equal_range(
        bucket.begin(), bucket.end(), std::make_pair(key, IndexedRule{}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = lo; it != hi; ++it) candidates.push_back(&it->second);
  };
  collect(by_src_host_, src.to_u32());
  collect(by_dst_host_, dst.to_u32());
  for (const IndexedRule& ir : residual_) candidates.push_back(&ir);

  std::sort(candidates.begin(), candidates.end(),
            [](const IndexedRule* a, const IndexedRule* b) {
              return a->order < b->order;
            });

  for (const IndexedRule* ir : candidates) {
    ++result.rules_scanned;
    if (!ir->rule.matches(src, dst, pass)) continue;
    switch (ir->rule.action) {
      case RuleAction::kPipe:
        result.pipes.push_back(ir->rule.pipe);
        break;
      case RuleAction::kAllow:
        return result;
      case RuleAction::kDeny:
        result.denied = true;
        return result;
    }
  }
  return result;
}

}  // namespace p2plab::ipfw
