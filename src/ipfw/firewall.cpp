#include "ipfw/firewall.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace p2plab::ipfw {

Firewall::Firewall(sim::Simulation& sim, FirewallConfig config, Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  if (config_.use_hash_classifier) {
    classifier_ = std::make_unique<HashClassifier>();
  } else {
    classifier_ = std::make_unique<LinearClassifier>();
  }
  classifier_->rebuild(rules_);
}

PipeId Firewall::create_pipe(const PipeConfig& config) {
  pipes_.push_back(std::make_unique<Pipe>(
      sim_, config, rng_.fork(pipes_.size() + 1)));
  pipes_.back()->bind_metrics(pipe_metrics_);
  return static_cast<PipeId>(pipes_.size());  // ids start at 1
}

Pipe& Firewall::pipe(PipeId id) {
  P2PLAB_ASSERT(id != kNoPipe && id <= pipes_.size());
  return *pipes_[id - 1];
}

const Pipe& Firewall::pipe(PipeId id) const {
  P2PLAB_ASSERT(id != kNoPipe && id <= pipes_.size());
  return *pipes_[id - 1];
}

void Firewall::add_rule(Rule rule) {
  if (rule.action == RuleAction::kPipe) {
    P2PLAB_ASSERT_MSG(rule.pipe != kNoPipe && rule.pipe <= pipes_.size(),
                      "pipe rule references unknown pipe");
  }
  // Insert before the first rule with a larger number (stable for equals).
  auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const Rule& a, const Rule& b) { return a.number < b.number; });
  rules_.insert(pos, rule);
  rebuild_classifier();
}

void Firewall::add_filler_rules(std::uint32_t first_number,
                                std::uint32_t count) {
  // Never-matching src: 255.255.255.255/32 is not used as a node address.
  const CidrBlock nomatch{Ipv4Addr::from_octets(255, 255, 255, 255), 32};
  rules_.reserve(rules_.size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Rule rule;
    rule.number = first_number + i;
    rule.src = nomatch;
    rule.action = RuleAction::kDeny;
    auto pos = std::upper_bound(
        rules_.begin(), rules_.end(), rule,
        [](const Rule& a, const Rule& b) { return a.number < b.number; });
    rules_.insert(pos, rule);
  }
  rebuild_classifier();
}

MatchResult Firewall::classify(Ipv4Addr src, Ipv4Addr dst,
                               RuleDir pass) const {
  MatchResult result = classifier_->classify(src, dst, pass);
  metrics_.packets_classified.inc();
  metrics_.rules_scanned.inc(result.rules_scanned);
  metrics_.scan_len.record(static_cast<double>(result.rules_scanned));
  metrics_.scan_cpu_ns.inc(
      static_cast<std::uint64_t>(scan_cost(result).count_ns()));
  if (result.denied) metrics_.denied.inc();
  return result;
}

void Firewall::bind_metrics(metrics::Registry& reg) {
  metrics_.packets_classified = reg.counter("ipfw.packets_classified");
  metrics_.rules_scanned = reg.counter("ipfw.rules_scanned");
  metrics_.denied = reg.counter("ipfw.denied");
  metrics_.scan_cpu_ns = reg.counter("ipfw.scan_cpu_ns");
  metrics_.scan_len = reg.histogram(
      "ipfw.scan_len", {1, 4, 16, 64, 256, 1024, 4096});
  pipe_metrics_ = PipeMetrics::resolve(reg);
  for (auto& pipe : pipes_) pipe->bind_metrics(pipe_metrics_);
}

void Firewall::rebuild_classifier() { classifier_->rebuild(rules_); }

}  // namespace p2plab::ipfw
