// Dummynet-style pipes.
//
// A pipe is Dummynet's shaping element: a bounded queue drained at a fixed
// bandwidth, followed by a fixed-delay line, with optional random loss.
// P2PLab attaches two pipes to every virtual node (one per direction,
// emulating the node<->ISP access link) plus pure-delay pipes for
// inter-group latency.
//
// One deliberate refinement over FIFO Dummynet: the bandwidth server can
// share the link across flows with deficit-round-robin. Real P2PLab relies
// on TCP to share a Dummynet pipe fairly among a node's connections; we do
// not simulate TCP congestion control, so DRR stands in for that fairness
// (DESIGN.md §6). FIFO mode is available for faithfulness studies.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "metrics/registry.hpp"
#include "sim/simulation.hpp"

namespace p2plab::ipfw {

using FlowId = std::uint64_t;

/// Gilbert-Elliott two-state bursty-loss model. The chain advances one step
/// per arriving segment: in the good state segments are lost with
/// `loss_good`, in the bad state with `loss_bad`, and the state flips with
/// the configured transition probabilities. Expected burst length is
/// 1/p_bad_to_good segments; the stationary bad-state share is
/// p_good_to_bad / (p_good_to_bad + p_bad_to_good). Disabled (both
/// transition probabilities zero) it costs nothing beyond the enable check.
struct GilbertElliott {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;
  bool enabled() const { return p_good_to_bad > 0.0 || p_bad_to_good > 0.0; }
};

struct PipeConfig {
  Bandwidth bandwidth = Bandwidth::unlimited();  // 0 = pure delay element
  Duration delay = Duration::zero();
  double loss_rate = 0.0;  // applied at enqueue, like Dummynet's plr
  /// Bursty loss applied at enqueue in addition to the uniform loss_rate
  /// (either may be zero; real links show both a background rate and
  /// correlated outbursts).
  GilbertElliott burst_loss;
  /// Queue bound in bytes (Dummynet defaults to 50 slots; 50 full-size
  /// Ethernet frames is the equivalent here).
  DataSize queue_limit = DataSize::bytes(50 * 1500);
  bool fair_queue = true;  // DRR across flows; false = strict FIFO
};

struct PipeStats {
  std::uint64_t segments_in = 0;
  std::uint64_t segments_out = 0;
  std::uint64_t segments_dropped = 0;  // queue overflow + any loss + down
  std::uint64_t segments_dropped_burst = 0;  // Gilbert-Elliott share
  std::uint64_t segments_dropped_down = 0;   // administratively down share
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t max_queue_bytes = 0;
};

/// Registry handles shared by every pipe in a firewall: the same metric
/// names resolve to the same cells, so thousands of access-link pipes
/// aggregate into one set of emulator-wide pipe counters. Copyable by
/// design — Firewall resolves once and hands a copy to each pipe.
struct PipeMetrics {
  metrics::Counter segments_in;
  metrics::Counter segments_out;
  metrics::Counter bytes_in;
  metrics::Counter bytes_out;
  metrics::Counter drops_loss;      // random loss (plr)
  metrics::Counter drops_burst;     // Gilbert-Elliott bad-state loss
  metrics::Counter drops_down;      // link administratively down (fault)
  metrics::Counter drops_overflow;  // bounded-queue overflow
  metrics::Histogram queue_bytes;   // occupancy sampled at enqueue

  /// Resolve the shared "ipfw.pipe.*" cells from `reg`.
  static PipeMetrics resolve(metrics::Registry& reg);
};

class Pipe {
 public:
  /// `on_exit` runs when the segment leaves the delay line; `on_drop` (may
  /// be empty) runs if the segment is lost at enqueue. When `defer_delay`
  /// is set, the fixed delay stage is not simulated here: the pipe adds its
  /// configured delay to `*defer_delay` and runs `on_exit` as soon as the
  /// bandwidth stage completes. The parallel engine uses this on source-side
  /// pipes so the cross-shard handoff timestamp carries the delay — that is
  /// what makes the inter-host latency usable as conservative lookahead.
  struct Segment {
    DataSize size;
    FlowId flow = 0;
    // InlineCallback, not std::function: the network layer's continuations
    // carry a move-only pooled PacketRef, and the whole point of the pipe
    // walk is to move it stage to stage without touching the allocator.
    sim::InlineCallback on_exit;
    sim::InlineCallback on_drop;
    Duration* defer_delay = nullptr;
  };

  Pipe(sim::Simulation& sim, PipeConfig config, Rng rng);

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  void enqueue(Segment seg);

  const PipeConfig& config() const { return config_; }
  const PipeStats& stats() const { return stats_; }
  DataSize queued() const { return DataSize::bytes(queued_bytes_); }

  /// Reconfigure bandwidth/delay/loss in place (ipfw pipe N config ...).
  /// Queued segments keep draining at the new rate from the next service.
  /// The Gilbert-Elliott chain state survives reconfiguration.
  void reconfigure(const PipeConfig& config) { config_ = config; }

  /// Administratively down: every arriving segment is dropped, as on a
  /// flapped interface. Queued segments keep draining (they are already
  /// "on the wire"). Fault injection toggles this.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Point this pipe's instrumentation at resolved registry cells.
  void bind_metrics(const PipeMetrics& metrics) { metrics_ = metrics; }

 private:
  struct FlowQueue {
    std::deque<Segment> segments;
    std::uint64_t deficit_bytes = 0;
  };

  void serve_next();
  void start_service(Segment seg);
  void depart(Segment seg);  // bandwidth stage done -> delay line
  void ring_add(FlowId flow);
  void maybe_sweep_flows();

  static constexpr std::uint64_t kDrrQuantumBytes = 4096;
  static constexpr std::size_t kSweepMinFlows = 64;

  sim::Simulation& sim_;
  PipeConfig config_;
  Rng rng_;
  PipeStats stats_;
  PipeMetrics metrics_;

  bool busy_ = false;
  bool down_ = false;
  bool burst_bad_ = false;  // Gilbert-Elliott chain state
  std::uint64_t queued_bytes_ = 0;

  /// The segment occupying the bandwidth server. Parking it here lets the
  /// service-completion event capture only `this` (one pointer, no heap
  /// boxing); valid exactly while `busy_` between start_service and the
  /// completion event moving it back out.
  Segment in_service_;

  // DRR state: per-flow queues plus an active ring in service order.
  // Entries whose queue is empty are parked (not erased) and their ring
  // nodes rest on spare_, so a flow re-entering the ring costs nothing;
  // maybe_sweep_flows bounds the parked population.
  std::unordered_map<FlowId, FlowQueue> flows_;
  std::list<FlowId> active_;
  std::list<FlowId> spare_;  // recycled ring nodes

  // FIFO state (fair_queue == false).
  std::deque<Segment> fifo_;
};

}  // namespace p2plab::ipfw
