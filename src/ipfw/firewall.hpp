// The per-physical-node firewall: rule table + pipe table.
//
// Each physical node runs its own firewall (P2PLab's decentralized network
// emulation): it shapes the traffic of the virtual nodes it hosts and adds
// inter-group latency, and charges CPU time proportional to the number of
// rules scanned (the linear-evaluation cost behind Figure 6).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ipv4.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "ipfw/pipe.hpp"
#include "ipfw/rule.hpp"
#include "sim/simulation.hpp"

namespace p2plab::ipfw {

struct FirewallConfig {
  /// CPU cost of examining one rule; the Figure 6 calibration constant.
  Duration per_rule_cost = Duration::ns(50);
  bool use_hash_classifier = false;  // ablation switch
};

/// Shared "ipfw.*" registry handles; one set aggregates every per-host
/// firewall (same names resolve to the same cells).
struct FirewallMetrics {
  metrics::Counter packets_classified;
  metrics::Counter rules_scanned;  // sum over packets; Figure 6's x-axis
  metrics::Counter denied;
  metrics::Counter scan_cpu_ns;  // CPU charged for rule scans, in sim ns
  metrics::Histogram scan_len;   // rules scanned per packet
};

class Firewall {
 public:
  Firewall(sim::Simulation& sim, FirewallConfig config, Rng rng);

  /// Create a pipe and return its id (ipfw pipe N config ...).
  PipeId create_pipe(const PipeConfig& config);
  Pipe& pipe(PipeId id);
  const Pipe& pipe(PipeId id) const;
  size_t pipe_count() const { return pipes_.size(); }

  /// Append a rule (kept sorted by rule number; equal numbers keep
  /// insertion order, matching ipfw add semantics).
  void add_rule(Rule rule);
  /// Append `count` never-matching filler rules (used by the Figure 6
  /// sweep, where the rule list is padded to measure scan cost).
  void add_filler_rules(std::uint32_t first_number, std::uint32_t count);
  size_t rule_count() const { return rules_.size(); }

  /// Classify a packet. The scan itself costs
  /// result.rules_scanned * per_rule_cost of CPU latency; scan_cost() turns
  /// a MatchResult into that Duration.
  MatchResult classify(Ipv4Addr src, Ipv4Addr dst,
                       RuleDir pass = RuleDir::kAny) const;
  Duration scan_cost(const MatchResult& result) const {
    return config_.per_rule_cost *
           static_cast<std::int64_t>(result.rules_scanned);
  }

  const FirewallConfig& config() const { return config_; }
  const char* classifier_name() const { return classifier_->name(); }

  /// Resolve "ipfw.*" handles from `reg` for this firewall and all of its
  /// pipes (present and future).
  void bind_metrics(metrics::Registry& reg);

 private:
  void rebuild_classifier();

  sim::Simulation& sim_;
  FirewallConfig config_;
  Rng rng_;
  std::vector<Rule> rules_;
  std::vector<std::unique_ptr<Pipe>> pipes_;  // index = PipeId - 1
  std::unique_ptr<Classifier> classifier_;
  FirewallMetrics metrics_;
  PipeMetrics pipe_metrics_;  // copied into each pipe
};

}  // namespace p2plab::ipfw
