// IPFW-style firewall rules and classifiers.
//
// The paper's scalability limit is the firewall: "latency increases nearly
// linearly with the number of rules, because the rules are evaluated
// linearly by the firewall. With IPFW, it is not possible to evaluate the
// rules in a hierarchical way, or with a hash table." (Figure 6.)
//
// LinearClassifier is the faithful model: every packet walks the rule list
// in rule-number order, and the walk length is reported so the network
// layer can charge per-rule CPU latency. HashClassifier is the ablation the
// paper wishes IPFW had: host-addressed rules are indexed by exact IP, so
// the walk length stays O(#group rules).
//
// Matching semantics follow Dummynet with net.inet.ip.fw.one_pass=0: a
// matching pipe rule shapes the packet and the scan *continues* (the paper
// applies both the per-vnode pipe and an inter-group latency pipe to the
// same packet); allow/deny terminate the scan.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "common/ipv4.hpp"

namespace p2plab::ipfw {

using PipeId = std::uint32_t;
inline constexpr PipeId kNoPipe = 0;

/// The matched pipes of one classification, in rule order. Inline storage
/// covers the real configurations (a vnode's access pipe plus an
/// inter-group delay pipe); a rule set matching more than kInlinePipes
/// pipes spills to the heap. Keeping this off the allocator matters:
/// classify() runs twice per packet on the hot path, and its result rides
/// inside the pipe-walk closure's inline capture.
class PipeList {
 public:
  static constexpr std::size_t kInlinePipes = 4;

  PipeList() = default;
  PipeList(std::initializer_list<PipeId> ids) {
    for (PipeId id : ids) push_back(id);
  }
  PipeList(PipeList&& other) noexcept
      : size_(other.size_),
        inline_(other.inline_),
        spill_(std::move(other.spill_)) {
    other.size_ = 0;
  }
  PipeList& operator=(PipeList&& other) noexcept {
    if (this != &other) {
      size_ = other.size_;
      inline_ = other.inline_;
      spill_ = std::move(other.spill_);
      other.size_ = 0;
    }
    return *this;
  }
  PipeList(const PipeList& other)
      : size_(other.size_),
        inline_(other.inline_),
        spill_(other.spill_ ? std::make_unique<std::vector<PipeId>>(
                                  *other.spill_)
                            : nullptr) {}
  PipeList& operator=(const PipeList& other) {
    if (this != &other) *this = PipeList(other);
    return *this;
  }

  void push_back(PipeId id) {
    if (spill_ == nullptr) {
      if (size_ < kInlinePipes) {
        inline_[size_++] = id;
        return;
      }
      spill_ = std::make_unique<std::vector<PipeId>>(inline_.begin(),
                                                     inline_.end());
    }
    spill_->push_back(id);
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  PipeId operator[](std::size_t i) const { return data()[i]; }
  const PipeId* begin() const { return data(); }
  const PipeId* end() const { return data() + size_; }

  friend bool operator==(const PipeList& a, const PipeList& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const PipeList& a, const std::vector<PipeId>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  const PipeId* data() const {
    return spill_ ? spill_->data() : inline_.data();
  }

  std::uint32_t size_ = 0;
  std::array<PipeId, kInlinePipes> inline_{};
  std::unique_ptr<std::vector<PipeId>> spill_;
};

enum class RuleAction { kPipe, kAllow, kDeny };

/// Direction qualifier (ipfw's "in"/"out" keywords). Essential once
/// virtual nodes fold onto one host: the uplink rule must only apply on
/// the outgoing pass and the downlink rule on the incoming pass, or
/// co-located peers would be shaped twice.
enum class RuleDir { kAny, kIn, kOut };

struct Rule {
  std::uint32_t number = 0;  // evaluated in ascending number order
  CidrBlock src = CidrBlock::any();
  CidrBlock dst = CidrBlock::any();
  RuleDir dir = RuleDir::kAny;
  RuleAction action = RuleAction::kAllow;
  PipeId pipe = kNoPipe;

  bool matches(Ipv4Addr s, Ipv4Addr d, RuleDir pass) const {
    // A kAny *pass* (diagnostic classification) matches regardless of the
    // rule's direction; a directed pass skips rules of the other direction.
    if (dir != RuleDir::kAny && pass != RuleDir::kAny && dir != pass) {
      return false;
    }
    return src.contains(s) && dst.contains(d);
  }
};

struct MatchResult {
  /// Rules examined during classification; the linear classifier's latency
  /// cost is proportional to this (Figure 6).
  std::uint32_t rules_scanned = 0;
  bool denied = false;
  /// Matched pipe rules in rule order; the packet traverses them in order.
  PipeList pipes;
};

/// Classification strategy interface.
class Classifier {
 public:
  virtual ~Classifier() = default;
  /// Called whenever the rule set changed.
  virtual void rebuild(const std::vector<Rule>& rules) = 0;
  virtual MatchResult classify(Ipv4Addr src, Ipv4Addr dst,
                               RuleDir pass) const = 0;
  virtual const char* name() const = 0;
};

/// Faithful IPFW behaviour: O(#rules) scan per packet.
class LinearClassifier final : public Classifier {
 public:
  void rebuild(const std::vector<Rule>& rules) override { rules_ = rules; }
  MatchResult classify(Ipv4Addr src, Ipv4Addr dst,
                       RuleDir pass) const override;
  const char* name() const override { return "linear"; }

 private:
  std::vector<Rule> rules_;
};

/// Ablation: rules whose src or dst is a /32 host address are indexed by
/// that address; only the remaining (group-level) rules are scanned. The
/// scan-count reported reflects the cheap lookup, so the Figure-6 curve
/// flattens.
class HashClassifier final : public Classifier {
 public:
  void rebuild(const std::vector<Rule>& rules) override;
  MatchResult classify(Ipv4Addr src, Ipv4Addr dst,
                       RuleDir pass) const override;
  const char* name() const override { return "hash"; }

 private:
  struct IndexedRule {
    Rule rule;
    size_t order = 0;  // original position, to preserve rule-order semantics
  };
  // Host-keyed buckets (keyed by the /32 side of the rule).
  std::vector<std::pair<std::uint32_t, IndexedRule>> by_src_host_;
  std::vector<std::pair<std::uint32_t, IndexedRule>> by_dst_host_;
  std::vector<IndexedRule> residual_;  // group-level rules, scanned linearly
  bool sorted_ = false;

  void sort_buckets();
};

}  // namespace p2plab::ipfw
