#include "bittorrent/picker.hpp"

#include "common/assert.hpp"

namespace p2plab::bt {

PiecePicker::PiecePicker(const MetaInfo& meta, const PieceStore& store,
                         Rng rng)
    : meta_(&meta), store_(&store), rng_(rng) {
  availability_.assign(meta.piece_count(), 0);
  outstanding_per_piece_.assign(meta.piece_count(), 0);
  request_counts_.resize(meta.piece_count());
  for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
    request_counts_[p].assign(meta.blocks_in_piece(p), 0);
  }
}

void PiecePicker::peer_has(std::uint32_t piece) {
  P2PLAB_ASSERT(piece < availability_.size());
  ++availability_[piece];
}

void PiecePicker::peer_has_bitfield(const Bitfield& have) {
  P2PLAB_ASSERT(have.size() == availability_.size());
  for (std::uint32_t p = 0; p < have.size(); ++p) {
    if (have.get(p)) ++availability_[p];
  }
}

void PiecePicker::peer_lost(const Bitfield& have) {
  P2PLAB_ASSERT(have.size() == availability_.size());
  for (std::uint32_t p = 0; p < have.size(); ++p) {
    if (have.get(p)) {
      P2PLAB_ASSERT(availability_[p] > 0);
      --availability_[p];
    }
  }
}

void PiecePicker::on_requested(BlockRef ref) {
  if (request_counts_[ref.piece][ref.block]++ == 0) {
    ++outstanding_per_piece_[ref.piece];
  }
}

void PiecePicker::on_request_discarded(BlockRef ref) {
  std::uint8_t& count = request_counts_[ref.piece][ref.block];
  if (count == 0) return;  // already released (e.g. block arrived meanwhile)
  if (--count == 0) {
    P2PLAB_ASSERT(outstanding_per_piece_[ref.piece] > 0);
    --outstanding_per_piece_[ref.piece];
  }
}

void PiecePicker::on_block_received(BlockRef ref) {
  std::uint8_t& count = request_counts_[ref.piece][ref.block];
  if (count > 0) {
    count = 0;
    P2PLAB_ASSERT(outstanding_per_piece_[ref.piece] > 0);
    --outstanding_per_piece_[ref.piece];
  }
}

bool PiecePicker::piece_pickable(std::uint32_t piece,
                                 const Bitfield& peer_have) const {
  return peer_have.get(piece) && !store_->have_piece(piece) &&
         first_unrequested_block(piece).has_value();
}

std::optional<std::uint32_t> PiecePicker::first_unrequested_block(
    std::uint32_t piece) const {
  for (std::uint32_t b = 0; b < request_counts_[piece].size(); ++b) {
    if (request_counts_[piece][b] == 0 && !store_->have_block(piece, b)) {
      return b;
    }
  }
  return std::nullopt;
}

std::optional<BlockRef> PiecePicker::pick(const Bitfield& peer_have) {
  const std::uint32_t n = meta_->piece_count();

  // Strict priority: a piece with progress (received or requested blocks)
  // is finished before any new piece is started.
  std::optional<std::uint32_t> best_partial;
  std::uint32_t best_partial_avail = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (store_->have_piece(p)) continue;
    const bool active =
        store_->blocks_received(p) > 0 || outstanding_per_piece_[p] > 0;
    if (!active || !piece_pickable(p, peer_have)) continue;
    if (!best_partial || availability_[p] < best_partial_avail ||
        (availability_[p] == best_partial_avail && rng_.chance(0.5))) {
      best_partial = p;
      best_partial_avail = availability_[p];
    }
  }
  if (best_partial) {
    return BlockRef{*best_partial, *first_unrequested_block(*best_partial)};
  }

  // Fresh pieces: random until we own a first complete piece, rarest after.
  std::vector<std::uint32_t> candidates;
  std::uint32_t min_avail = ~std::uint32_t{0};
  const bool random_first = store_->have().count() == 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (!piece_pickable(p, peer_have)) continue;
    if (random_first) {
      candidates.push_back(p);
      continue;
    }
    if (availability_[p] < min_avail) {
      min_avail = availability_[p];
      candidates.clear();
    }
    if (availability_[p] == min_avail) candidates.push_back(p);
  }
  if (candidates.empty()) return std::nullopt;
  const std::uint32_t piece =
      candidates[rng_.uniform(candidates.size())];
  return BlockRef{piece, *first_unrequested_block(piece)};
}

std::vector<BlockRef> PiecePicker::missing_blocks(
    const Bitfield& peer_have) const {
  std::vector<BlockRef> missing;
  for (std::uint32_t p = 0; p < meta_->piece_count(); ++p) {
    if (store_->have_piece(p) || !peer_have.get(p)) continue;
    for (std::uint32_t b = 0; b < request_counts_[p].size(); ++b) {
      if (!store_->have_block(p, b)) missing.push_back(BlockRef{p, b});
    }
  }
  return missing;
}

bool PiecePicker::all_missing_requested() const {
  for (std::uint32_t p = 0; p < meta_->piece_count(); ++p) {
    if (store_->have_piece(p)) continue;
    for (std::uint32_t b = 0; b < request_counts_[p].size(); ++b) {
      if (request_counts_[p][b] == 0 && !store_->have_block(p, b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace p2plab::bt
