// Piece bitfields (the BITFIELD/HAVE bookkeeping unit).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace p2plab::bt {

class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::uint32_t size) : size_(size), words_((size + 63) / 64) {}

  std::uint32_t size() const { return size_; }
  std::uint32_t count() const { return count_; }
  bool all() const { return count_ == size_; }
  bool none() const { return count_ == 0; }

  bool get(std::uint32_t i) const {
    P2PLAB_ASSERT(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::uint32_t i) {
    P2PLAB_ASSERT(i < size_);
    std::uint64_t& word = words_[i / 64];
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if ((word & mask) == 0) {
      word |= mask;
      ++count_;
    }
  }

  void clear(std::uint32_t i) {
    P2PLAB_ASSERT(i < size_);
    std::uint64_t& word = words_[i / 64];
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if ((word & mask) != 0) {
      word &= ~mask;
      --count_;
    }
  }

  void set_all() {
    for (std::uint32_t i = 0; i < size_; ++i) set(i);
  }

  /// True if `other` has any piece this bitfield lacks.
  bool other_has_missing(const Bitfield& other) const {
    P2PLAB_ASSERT(other.size_ == size_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((other.words_[w] & ~words_[w]) != 0) return true;
    }
    return false;
  }

  /// Wire size of a BITFIELD message payload (one bit per piece).
  std::uint32_t wire_bytes() const { return (size_ + 7) / 8; }

  bool operator==(const Bitfield& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  std::uint32_t size_ = 0;
  std::uint32_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace p2plab::bt
