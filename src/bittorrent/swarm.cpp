#include "bittorrent/swarm.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::bt {

Swarm::Swarm(core::Platform& platform, SwarmConfig config)
    : platform_(&platform),
      config_(config),
      meta_(MetaInfo::make_synthetic("experiment.dat", config.file_size,
                                     config.content_seed,
                                     config.verify_hashes,
                                     config.piece_length)) {
  P2PLAB_ASSERT_MSG(platform.vnode_count() >= swarm_vnodes(config),
                    "platform too small for this swarm");
  Rng rng = platform.rng().fork(0xb17700);

  // vnode 0: tracker.
  tracker_ = std::make_unique<Tracker>(platform.api(0), Tracker::Config{},
                                       rng.fork(1));
  tracker_->start();
  const PeerInfo tracker_info{platform.vnode(0).ip(), tracker_->port()};

  ClientConfig client_config = config_.client;
  client_config.verify_hashes = config_.verify_hashes;

  // vnodes 1..seeders: initial seeders, online from t=0. Each client runs
  // on the simulation owning its vnode — the single simulation in classic
  // mode, its shard's in engine mode.
  for (std::size_t s = 0; s < config_.seeders; ++s) {
    const std::size_t v = 1 + s;
    seeders_.push_back(std::make_unique<Client>(
        platform.sim_of_vnode(v), platform.api(v), meta_, tracker_info,
        client_config, /*start_as_seed=*/true, rng.fork(100 + v)));
    seeders_.back()->start();
  }

  // Remaining vnodes: downloading clients, started start_interval apart.
  for (std::size_t c = 0; c < config_.clients; ++c) {
    const std::size_t v = 1 + config_.seeders + c;
    clients_.push_back(std::make_unique<Client>(
        platform.sim_of_vnode(v), platform.api(v), meta_, tracker_info,
        client_config, /*start_as_seed=*/false, rng.fork(1000 + v)));
    Client* client = clients_.back().get();
    // A fault plan may crash (or crash-and-rejoin) this vnode before the
    // staggered start fires: skip the start if the node is offline or the
    // rejoin hook already started the client.
    core::Platform* plat = &platform;
    platform.sim_of_vnode(v).schedule_at(
        SimTime::zero() +
            config_.start_interval * static_cast<std::int64_t>(c),
        [client, plat, v] {
          if (!client->started() && plat->vnode_online(v)) client->start();
        });
  }
}

void Swarm::bind_metrics(metrics::Registry& reg) {
  platform_->bind_metrics(reg);
  // Clients bind to their vnode's registry: `reg` itself in classic mode,
  // the owning shard's single-writer registry in engine mode (merged into
  // `reg` at the end of every Platform::run).
  for (std::size_t s = 0; s < seeders_.size(); ++s) {
    seeders_[s]->bind_metrics(platform_->registry_of_vnode(1 + s));
  }
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    clients_[c]->bind_metrics(
        platform_->registry_of_vnode(1 + config_.seeders + c));
  }
}

void Swarm::run() {
  // Completion is checked every 5 s of simulated time: per event it would
  // cost an O(clients) scan on every one of the ~10^8 events of a
  // full-scale run.
  const SimTime cutoff = SimTime::zero() + config_.max_duration;
  platform_->run(cutoff, [this] { return all_complete(); }, Duration::sec(5));
  if (!all_complete()) {
    P2PLAB_LOG_WARN("swarm run ended with %zu/%zu clients complete",
                    completed_count(), clients_.size());
  }
}

void Swarm::run_until(SimTime deadline) { platform_->run(deadline); }

std::size_t Swarm::completed_count() const {
  std::size_t count = 0;
  for (const auto& client : clients_) count += client->has_completed();
  return count;
}

std::vector<double> Swarm::completion_times_sec() const {
  std::vector<double> times;
  times.reserve(clients_.size());
  for (const auto& client : clients_) {
    if (client->has_completed()) {
      times.push_back(client->completion_time().to_seconds());
    }
  }
  return times;
}

metrics::TimeSeries Swarm::completion_curve() const {
  std::vector<double> times = completion_times_sec();
  std::sort(times.begin(), times.end());
  metrics::TimeSeries curve("clients_complete");
  for (std::size_t i = 0; i < times.size(); ++i) {
    curve.add(SimTime::zero() + Duration::seconds(times[i]),
              static_cast<double>(i + 1));
  }
  return curve;
}

std::vector<double> Swarm::total_bytes_curve(Duration step,
                                             SimTime end) const {
  std::vector<const metrics::TimeSeries*> series;
  series.reserve(clients_.size());
  for (const auto& client : clients_) {
    series.push_back(&client->bytes_down_series());
  }
  return metrics::sum_resampled(series, step, end);
}

}  // namespace p2plab::bt
