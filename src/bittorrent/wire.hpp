// The peer wire protocol: message kinds and exact wire sizes.
//
// Payload bytes are never materialized (the content is synthetic), but
// every message is accounted at its real protocol size, so bandwidth
// dynamics match the real client's.
#pragma once

#include <cstdint>
#include <memory>

#include "bittorrent/bitfield.hpp"
#include "bittorrent/metainfo.hpp"
#include "sockets/message.hpp"

namespace p2plab::bt {

enum class MsgType : std::uint32_t {
  kHandshake = 1,
  kChoke,
  kUnchoke,
  kInterested,
  kNotInterested,
  kHave,
  kBitfield,
  kRequest,
  kPiece,
  kCancel,
  // Tracker protocol (modeled over the same socket substrate; the real
  // client uses HTTP, sized equivalently).
  kTrackerAnnounce = 100,
  kTrackerResponse,
};

struct WireMsg {
  MsgType type = MsgType::kChoke;
  std::uint32_t piece = 0;   // have / request / piece / cancel
  std::uint32_t begin = 0;   // block byte offset within the piece
  std::uint32_t length = 0;  // request/piece block length
  bool intact = true;        // piece payload integrity (corruption model)
  Bitfield bitfield;         // kBitfield only
  Sha1Digest info_hash{};    // kHandshake only
  std::uint32_t peer_id = 0; // kHandshake only
};

/// Exact size of a message on the wire (BitTorrent protocol framing).
inline std::uint32_t wire_size(const WireMsg& m) {
  switch (m.type) {
    case MsgType::kHandshake:
      return 68;  // 1 + 19 + 8 + 20 + 20
    case MsgType::kChoke:
    case MsgType::kUnchoke:
    case MsgType::kInterested:
    case MsgType::kNotInterested:
      return 5;  // length prefix + id
    case MsgType::kHave:
      return 9;
    case MsgType::kBitfield:
      return 5 + m.bitfield.wire_bytes();
    case MsgType::kRequest:
    case MsgType::kCancel:
      return 17;
    case MsgType::kPiece:
      return 13 + m.length;
    default:
      return 0;  // tracker messages size themselves (tracker.hpp)
  }
}

/// Wrap a wire message for the socket layer.
inline sockets::Message to_socket_message(WireMsg msg) {
  sockets::Message out;
  out.type = static_cast<std::uint32_t>(msg.type);
  out.size = DataSize::bytes(wire_size(msg));
  out.body = std::make_shared<const WireMsg>(std::move(msg));
  return out;
}

}  // namespace p2plab::bt
