#include "bittorrent/sha1.hpp"

#include <cstring>

namespace p2plab::bt {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301u;
  state_[1] = 0xefcdab89u;
  state_[2] = 0x98badcfeu;
  state_[3] = 0x10325476u;
  state_[4] = 0xc3d2e1f0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_bytes, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state_[i] >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state_[i] >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state_[i] >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1Digest Sha1::hash(std::string_view text) {
  Sha1 h;
  h.update(text);
  return h.finish();
}

std::string to_hex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace p2plab::bt
