// SHA-1, as used by BitTorrent for piece verification and infohashes.
//
// A from-scratch implementation of FIPS 180-1. BitTorrent's integrity
// model (and therefore our metainfo/verification path) depends on it; no
// external crypto library is used.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace p2plab::bt {

using Sha1Digest = std::array<std::uint8_t, 20>;

class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  /// Finalize and return the digest; the object must be reset() for reuse.
  Sha1Digest finish();

  /// One-shot convenience.
  static Sha1Digest hash(std::span<const std::uint8_t> data);
  static Sha1Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[5];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

/// Lowercase hex rendering (for tests and logs).
std::string to_hex(const Sha1Digest& digest);

}  // namespace p2plab::bt
