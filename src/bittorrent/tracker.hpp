// The BitTorrent tracker.
//
// Peers announce themselves per infohash and receive a random sample of
// other participants (numwant, default 50) plus a re-announce interval.
// The real tracker speaks HTTP; ours exchanges equivalently-sized messages
// over the same stream sockets, which preserves the traffic pattern without
// an HTTP stack (the tracker is not the object of study).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ipv4.hpp"
#include "common/rng.hpp"
#include "bittorrent/sha1.hpp"
#include "bittorrent/wire.hpp"
#include "sockets/socket.hpp"

namespace p2plab::bt {

enum class AnnounceEvent : std::uint8_t { kStarted, kCompleted, kStopped,
                                          kPeriodic };

struct PeerInfo {
  Ipv4Addr ip;
  std::uint16_t port = 6881;
  bool operator==(const PeerInfo&) const = default;
};

struct AnnounceRequest {
  Sha1Digest info_hash{};
  PeerInfo peer;
  AnnounceEvent event = AnnounceEvent::kStarted;
  std::uint32_t numwant = 50;
  std::uint64_t left = 0;  // bytes remaining (tracker scrape statistics)
};

struct AnnounceResponse {
  Duration interval = Duration::sec(1800);
  std::vector<PeerInfo> peers;
  std::uint32_t complete = 0;    // seeders in swarm
  std::uint32_t incomplete = 0;  // leechers in swarm
};

/// Approximate HTTP GET /announce?... request size.
inline DataSize announce_request_wire_size() { return DataSize::bytes(310); }
/// Approximate bencoded response size: headers + 6 bytes per compact peer.
inline DataSize announce_response_wire_size(std::size_t n_peers) {
  return DataSize::bytes(120 + 6 * n_peers);
}

class Tracker {
 public:
  struct Config {
    std::uint16_t port = 6969;
    Duration interval = Duration::sec(1800);
  };

  Tracker(sockets::SocketApi& api, Config config, Rng rng);

  void start();
  Ipv4Addr ip() const { return api_->effective_bind_address(); }
  std::uint16_t port() const { return config_.port; }

  /// Service fault: take the tracker offline (the listener closes, so
  /// announces are refused like a dead HTTP server) and back online. Swarm
  /// state survives an outage — real trackers restart with their DB.
  void set_online(bool online);
  bool online() const { return listener_ != nullptr; }

  std::size_t swarm_size(const Sha1Digest& info_hash) const;
  std::uint64_t announces_served() const { return announces_; }

  /// Policy core, exposed for tests: register the announce and build the
  /// response (random peer sample excluding the requester).
  AnnounceResponse handle_announce(const AnnounceRequest& request);

 private:
  struct Swarm {
    std::vector<PeerInfo> peers;
    std::uint32_t complete = 0;
  };

  std::string key_of(const Sha1Digest& digest) const {
    return std::string(reinterpret_cast<const char*>(digest.data()),
                       digest.size());
  }

  sockets::SocketApi* api_;
  Config config_;
  Rng rng_;
  sockets::ListenerPtr listener_;
  std::map<std::string, Swarm> swarms_;
  std::uint64_t announces_ = 0;
};

/// Tracker-protocol payloads carried in socket messages.
struct TrackerAnnounceMsg {
  AnnounceRequest request;
};
struct TrackerResponseMsg {
  AnnounceResponse response;
};

}  // namespace p2plab::bt
