// Rolling-window transfer-rate estimator.
//
// BitTorrent's choker ranks peers by their recent transfer rate over a
// ~20 s window. The estimator buckets bytes into one-second slots of a
// ring and needs no timers: buckets rotate lazily on access.
#pragma once

#include <array>
#include <cstdint>

#include "common/time.hpp"

namespace p2plab::bt {

class RateEstimator {
 public:
  explicit RateEstimator(Duration window = Duration::sec(20))
      : bucket_span_(Duration::ns(
            window.count_ns() /
            static_cast<std::int64_t>(kBucketCount))) {}

  void add(SimTime now, std::uint64_t bytes) {
    rotate_to(now);
    buckets_[static_cast<std::size_t>(head_index_) % kBuckets] += bytes;
    total_ += bytes;
  }

  /// Bytes per second over the window ending at `now`.
  double rate_bps(SimTime now) {
    rotate_to(now);
    const double window_s =
        bucket_span_.to_seconds() * static_cast<double>(kBuckets);
    return static_cast<double>(total_) / window_s;
  }

  std::uint64_t total_in_window(SimTime now) {
    rotate_to(now);
    return total_;
  }

 private:
  static constexpr std::int64_t kBucketCount = 20;
  static constexpr std::size_t kBuckets = 20;

  void rotate_to(SimTime now) {
    const std::int64_t index = now.count_ns() / bucket_span_.count_ns();
    if (index <= head_index_) return;
    const std::int64_t advance = index - head_index_;
    const std::int64_t to_clear =
        advance >= static_cast<std::int64_t>(kBuckets)
            ? static_cast<std::int64_t>(kBuckets)
            : advance;
    for (std::int64_t i = 1; i <= to_clear; ++i) {
      auto& bucket =
          buckets_[static_cast<std::size_t>(head_index_ + i) % kBuckets];
      total_ -= bucket;
      bucket = 0;
    }
    head_index_ = index;
  }

  Duration bucket_span_;
  std::int64_t head_index_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace p2plab::bt
