// The choking algorithm ("Incentives build robustness in BitTorrent").
//
// Every 10 s the client re-decides which peers may download from it:
//   - 3 regular slots go to the interested peers with the best transfer
//     rate (download rate towards us while leeching — tit-for-tat; upload
//     rate from us while seeding, distributing capacity to fast sinks);
//   - 1 optimistic slot rotates every 30 s to a random interested choked
//     peer, discovering better partners and bootstrapping newcomers;
//   - peers that stopped sending despite outstanding requests ("snubbed")
//     are excluded from regular slots.
// The choker is a pure policy object: the client feeds it a snapshot and
// applies the returned unchoke set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace p2plab::bt {

using PeerKey = std::uint64_t;
inline constexpr PeerKey kNoPeer = 0;

struct ChokerConfig {
  int unchoke_slots = 4;  // 3 regular + 1 optimistic
  Duration optimistic_interval = Duration::sec(30);
};

struct PeerSnapshot {
  PeerKey key = kNoPeer;
  bool interested = false;
  bool snubbed = false;
  double rate_bps = 0.0;  // down-rate (leeching) or up-rate (seeding)
};

class Choker {
 public:
  explicit Choker(ChokerConfig config = {}) : config_(config) {}

  const ChokerConfig& config() const { return config_; }
  PeerKey optimistic() const { return optimistic_; }

  /// Decide the unchoke set. Deterministic given the rng state.
  std::vector<PeerKey> rechoke(SimTime now,
                               const std::vector<PeerSnapshot>& peers,
                               Rng& rng);

 private:
  ChokerConfig config_;
  PeerKey optimistic_ = kNoPeer;
  SimTime optimistic_since_;
};

}  // namespace p2plab::bt
