#include "bittorrent/client.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "metrics/recorder.hpp"

namespace p2plab::bt {

namespace {
constexpr std::uint32_t key_of(Ipv4Addr ip) { return ip.to_u32(); }
}  // namespace

void Client::bind_metrics(metrics::Registry& reg) {
  metrics_.announces = reg.counter("bt.announces");
  metrics_.piece_completions = reg.counter("bt.piece_completions");
  metrics_.torrent_completions = reg.counter("bt.torrent_completions");
  metrics_.chokes_sent = reg.counter("bt.chokes_sent");
  metrics_.unchokes_sent = reg.counter("bt.unchokes_sent");
  // Rate buckets span dial-up to past the 128 KiB/s access links of the
  // paper's reference scenario (bytes per second).
  const std::vector<double> rate_bounds{0,     4096,   16384,  65536,
                                        131072, 262144, 1048576};
  metrics_.peer_down_rate_bps = reg.histogram("bt.peer_down_rate_bps",
                                              rate_bounds);
  metrics_.peer_up_rate_bps = reg.histogram("bt.peer_up_rate_bps",
                                            rate_bounds);
}

Client::Client(sim::Simulation& sim, sockets::SocketApi& api,
               const MetaInfo& meta, PeerInfo tracker, ClientConfig config,
               bool start_as_seed, Rng rng)
    : sim_(&sim),
      api_(&api),
      meta_(&meta),
      tracker_(tracker),
      config_(config),
      rng_(rng),
      store_(meta, config.verify_hashes),
      picker_(meta, store_, rng.fork(1)),
      choker_(config.choker),
      was_seed_at_start_(start_as_seed),
      progress_("progress"),
      down_series_("bytes_down") {
  if (start_as_seed) store_.fill_complete();
}

Client::~Client() {
  if (started_) stop();
}

void Client::start() {
  P2PLAB_ASSERT(!started_);
  started_ = true;
  listener_ = api_->listen(
      config_.listen_port, [this](sockets::StreamSocketPtr sock) {
        if (static_cast<int>(peers_.size()) >= config_.max_connections) {
          ++stats_.accepts_rejected;
          sock->close();
          return;
        }
        add_peer(std::move(sock), /*initiated=*/false);
      });
  announce(AnnounceEvent::kStarted);
  // Desynchronize choker ticks across clients (the real platform's clients
  // start at different wall-clock instants).
  const Duration first_tick = Duration::ns(static_cast<std::int64_t>(
      rng_.uniform(static_cast<std::uint64_t>(
          config_.rechoke_interval.count_ns()))));
  rechoke_task_.start(*sim_, config_.rechoke_interval, first_tick,
                      [this] { rechoke(); });
  announce_task_.start(*sim_, Duration::sec(1800), Duration::sec(1800),
                       [this] { announce(AnnounceEvent::kPeriodic); });
}

void Client::stop() {
  if (!started_) return;
  started_ = false;
  rechoke_task_.stop();
  announce_task_.stop();
  sim_->cancel(refill_event_);
  refill_event_ = sim::EventId{};
  sim_->cancel(announce_retry_event_);
  announce_retry_event_ = sim::EventId{};
  announce(AnnounceEvent::kStopped);
  while (!peers_.empty()) {
    remove_peer(peers_.begin()->first, /*close_socket=*/true);
  }
  if (listener_) listener_->stop_accepting();
  listener_.reset();
}

void Client::crash() {
  if (!started_) return;
  started_ = false;
  rechoke_task_.stop();
  announce_task_.stop();
  sim_->cancel(refill_event_);
  refill_event_ = sim::EventId{};
  sim_->cancel(announce_retry_event_);
  announce_retry_event_ = sim::EventId{};
  announce_failures_streak_ = 0;
  // No "stopped" announce, no socket closes: the platform's crash_vnode
  // already aborted every socket at our address, so releasing them here
  // sends nothing. Session state dies; store_/picker_ survive like a
  // resume file for a later start().
  while (!peers_.empty()) {
    remove_peer(peers_.begin()->first, /*close_socket=*/false,
                /*refill=*/false);
  }
  dialing_.clear();
  initiated_connections_ = 0;
  known_peers_.clear();
  if (listener_) listener_->stop_accepting();
  listener_.reset();
}

std::vector<Client::PeerDebug> Client::debug_peers() {
  std::vector<PeerDebug> out;
  for (const auto& [key, peer] : peers_) {
    out.push_back(PeerDebug{
        .ip = peer->ip,
        .am_choking = peer->am_choking,
        .am_interested = peer->am_interested,
        .peer_choking = peer->peer_choking,
        .peer_interested = peer->peer_interested,
        .inflight = peer->inflight.size(),
        .upload_queue = peer->upload_queue.size(),
        .sock_unsent = peer->sock->unsent_bytes(),
        .down_rate_bps = peer->down_rate.rate_bps(sim_->now()),
        .up_rate_bps = peer->up_rate.rate_bps(sim_->now())});
  }
  return out;
}

// ------------------------------------------------------------ connections

void Client::announce(AnnounceEvent event) {
  ++stats_.announces;
  metrics_.announces.inc();
  api_->connect(
      tracker_.ip, tracker_.port,
      [this, event](sockets::StreamSocketPtr sock) {
        // Death before a response (tracker crashed mid-request, connection
        // reset) counts as an announce failure. Weak capture: the close
        // handler must not keep the socket alive.
        std::weak_ptr<sockets::StreamSocket> weak = sock;
        sock->on_close([this, event, weak] {
          if (const auto s = weak.lock()) s->on_message(nullptr);
          on_announce_failure(event);
        });
        sock->on_message([this, sock](sockets::Message&& msg) {
          if (msg.type !=
              static_cast<std::uint32_t>(MsgType::kTrackerResponse)) {
            return;
          }
          announce_failures_streak_ = 0;
          sock->on_close(nullptr);
          handle_tracker_response(msg.as<TrackerResponseMsg>().response);
          sock->close();
        });
        AnnounceRequest request;
        request.info_hash = meta_->info_hash;
        request.peer = PeerInfo{ip(), config_.listen_port};
        request.event = event;
        request.numwant = config_.numwant;
        request.left =
            meta_->total_size.count_bytes() -
            store_.bytes_downloaded().count_bytes();
        sockets::Message msg;
        msg.type = static_cast<std::uint32_t>(MsgType::kTrackerAnnounce);
        msg.size = announce_request_wire_size();
        msg.body = std::make_shared<const TrackerAnnounceMsg>(
            TrackerAnnounceMsg{request});
        sock->send(std::move(msg));
      },
      [this, event] { on_announce_failure(event); });
}

Duration Client::announce_backoff() const {
  if (announce_failures_streak_ == 0) return Duration::zero();
  // base * 2^(streak-1), saturating at the cap (shift bounded first so the
  // multiply cannot overflow).
  const std::uint32_t doublings =
      std::min<std::uint32_t>(announce_failures_streak_ - 1, 16);
  const Duration raw = config_.announce_retry_base
                       * static_cast<std::int64_t>(1u << doublings);
  return std::min(raw, config_.announce_retry_cap);
}

void Client::on_announce_failure(AnnounceEvent event) {
  ++stats_.announce_failures;
  if (!started_) return;  // farewell announce: nobody left to retry for
  ++announce_failures_streak_;
  P2PLAB_TRACE(sim_->now(), "bt", "announce_failed",
               {{"ip", ip().to_string()},
                {"streak", announce_failures_streak_}});
  // Graceful degradation: fall back on the cached peer list from earlier
  // responses — the swarm outlives its tracker.
  connect_more();
  if (announce_retry_event_.valid()) return;  // a retry is already pending
  const double jitter =
      1.0 + config_.announce_retry_jitter * (2.0 * rng_.uniform01() - 1.0);
  const Duration delay = announce_backoff().scaled(jitter);
  announce_retry_event_ = sim_->schedule_after(delay, [this, event] {
    announce_retry_event_ = sim::EventId{};
    if (!started_) return;
    ++stats_.announce_retries;
    announce(event);
  });
}

void Client::handle_tracker_response(const AnnounceResponse& response) {
  if (!started_) return;
  if (announce_retry_event_.valid()) {
    // A parallel announce (periodic tick) got through first; the backoff
    // retry is moot.
    sim_->cancel(announce_retry_event_);
    announce_retry_event_ = sim::EventId{};
  }
  for (const PeerInfo& info : response.peers) {
    if (info.ip == ip()) continue;
    const bool known =
        std::any_of(known_peers_.begin(), known_peers_.end(),
                    [&](const PeerInfo& p) { return p.ip == info.ip; });
    if (!known) known_peers_.push_back(info);
  }
  connect_more();
}

void Client::connect_more() {
  for (const PeerInfo& info : known_peers_) {
    // initiated_connections_ counts dials in progress plus established
    // outgoing connections; max_connections bounds the total.
    if (initiated_connections_ >= config_.max_initiate) break;
    if (peers_.size() + dialing_.size() >=
        static_cast<std::size_t>(config_.max_connections)) {
      break;
    }
    const std::uint32_t key = key_of(info.ip);
    if (peers_.count(key) != 0 || dialing_.count(key) != 0) continue;
    dialing_.insert(key);
    ++initiated_connections_;
    api_->connect(
        info.ip, info.port,
        [this, key](sockets::StreamSocketPtr sock) {
          dialing_.erase(key);
          if (!started_) {
            --initiated_connections_;
            sock->close();
            return;
          }
          add_peer(std::move(sock), /*initiated=*/true);
        },
        [this, key] {
          dialing_.erase(key);
          --initiated_connections_;
        });
  }
}

Client::Peer* Client::add_peer(sockets::StreamSocketPtr sock, bool initiated) {
  const std::uint32_t key = key_of(sock->remote_ip());

  if (Peer* existing = find_peer(key)) {
    // Simultaneous open: both sides dialed. Deterministic tie-break — keep
    // the connection initiated by the lower-IP side, on both ends.
    const bool keep_mine_dialed = ip() < sock->remote_ip();
    const bool existing_is_mine = existing->initiated;
    const bool new_is_mine = initiated;
    const bool keep_new = (new_is_mine == keep_mine_dialed) &&
                          (existing_is_mine != keep_mine_dialed);
    if (!keep_new) {
      ++stats_.removals_collision;
      if (initiated) --initiated_connections_;
      sock->on_message(nullptr);
      sock->on_close(nullptr);
      sock->close();
      return existing;
    }
    ++stats_.removals_collision;
    // No refill here: the winning connection is inserted right below, and
    // a synchronous connect_more() would re-dial this very peer while the
    // map entry is momentarily absent (dial/collide/re-dial livelock).
    remove_peer(key, /*close_socket=*/true, /*refill=*/false);
  }

  auto peer = std::make_unique<Peer>();
  Peer* raw = peer.get();
  peer->sock = std::move(sock);
  peer->ip = peer->sock->remote_ip();
  peer->initiated = initiated;
  peer->have = Bitfield(meta_->piece_count());
  peer->last_block_at = sim_->now();
  peers_.emplace(key, std::move(peer));

  sockets::StreamSocket* sock_id = raw->sock.get();
  raw->sock->on_message([this, key, sock_id](sockets::Message&& msg) {
    Peer* p = find_peer(key);
    if (p == nullptr || p->sock.get() != sock_id) return;  // superseded
    if (msg.type >= static_cast<std::uint32_t>(MsgType::kTrackerAnnounce)) {
      return;  // not a peer-wire message
    }
    on_wire(key, msg.as<WireMsg>());
  });
  raw->sock->on_close([this, key, sock_id] {
    Peer* p = find_peer(key);
    if (p == nullptr || p->sock.get() != sock_id) return;
    ++stats_.removals_close;
    remove_peer(key, /*close_socket=*/false);
  });
  raw->sock->on_writable(config_.upload_watermark, [this, key, sock_id] {
    Peer* p = find_peer(key);
    if (p == nullptr || p->sock.get() != sock_id) return;
    pump_uploads(*p);
  });

  // Both sides open with handshake (+ bitfield when non-empty).
  WireMsg handshake;
  handshake.type = MsgType::kHandshake;
  handshake.info_hash = meta_->info_hash;
  handshake.peer_id = key_of(ip());
  send_msg(*raw, std::move(handshake));
  raw->handshake_sent = true;
  if (store_.have().count() > 0) {
    WireMsg bitfield;
    bitfield.type = MsgType::kBitfield;
    bitfield.bitfield = store_.have();
    send_msg(*raw, std::move(bitfield));
  }
  return raw;
}

void Client::remove_peer(std::uint32_t key, bool close_socket, bool refill) {
  const auto it = peers_.find(key);
  if (it == peers_.end()) return;
  Peer& peer = *it->second;
  // Release picker state for anything we were waiting on from this peer.
  const bool had_inflight = !peer.inflight.empty();
  for (const Peer::Outstanding& out : peer.inflight) {
    picker_.on_request_discarded(out.ref);
  }
  if (peer.handshake_rx) picker_.peer_lost(peer.have);
  if (peer.initiated) --initiated_connections_;
  peer.sock->on_message(nullptr);
  peer.sock->on_close(nullptr);
  if (close_socket) peer.sock->close();
  peers_.erase(it);
  if (refill && started_ && !refill_event_.valid()) {
    refill_event_ = sim_->schedule_after(Duration::sec(2), [this] {
      refill_event_ = sim::EventId{};
      if (started_) connect_more();
    });
  }
  // The dead peer's blocks went back to the picker; hand them to the
  // surviving peers now (see sweep_requests).
  if (started_ && had_inflight) sweep_requests();
}

Client::Peer* Client::find_peer(std::uint32_t key) {
  const auto it = peers_.find(key);
  return it == peers_.end() ? nullptr : it->second.get();
}

// ----------------------------------------------------------------- wiring

void Client::send_msg(Peer& peer, WireMsg msg) {
  const auto type_index = static_cast<std::size_t>(msg.type);
  if (type_index < 16) ++stats_.msgs_sent[type_index];
  if (msg.type == MsgType::kPiece) {
    stats_.bytes_up += msg.length;
    peer.up_rate.add(sim_->now(), msg.length);
  }
  peer.sock->send(to_socket_message(std::move(msg)));
}

void Client::on_wire(std::uint32_t key, const WireMsg& msg) {
  Peer* peer = find_peer(key);
  if (peer == nullptr) return;
  if (!peer->handshake_rx) {
    if (msg.type != MsgType::kHandshake) {
      ++stats_.removals_protocol;
      remove_peer(key, /*close_socket=*/true);  // protocol violation
      return;
    }
    on_handshake(*peer, msg);
    return;
  }
  switch (msg.type) {
    case MsgType::kHandshake:
      break;  // duplicate; ignore
    case MsgType::kChoke: {
      peer->peer_choking = true;
      // Outstanding requests are void once choked.
      const bool had_inflight = !peer->inflight.empty();
      for (const Peer::Outstanding& out : peer->inflight) {
        picker_.on_request_discarded(out.ref);
      }
      peer->inflight.clear();
      if (had_inflight) sweep_requests();
      break;
    }
    case MsgType::kUnchoke:
      peer->peer_choking = false;
      try_request(*peer);
      break;
    case MsgType::kInterested:
      peer->peer_interested = true;
      break;
    case MsgType::kNotInterested:
      peer->peer_interested = false;
      break;
    case MsgType::kHave:
      if (msg.piece < meta_->piece_count() && !peer->have.get(msg.piece)) {
        peer->have.set(msg.piece);
        picker_.peer_has(msg.piece);
        update_interest(*peer);
        if (!peer->peer_choking) try_request(*peer);
      }
      break;
    case MsgType::kBitfield:
      if (msg.bitfield.size() == meta_->piece_count() &&
          peer->have.count() == 0) {
        peer->have = msg.bitfield;
        picker_.peer_has_bitfield(peer->have);
        update_interest(*peer);
        if (!peer->peer_choking) try_request(*peer);
      }
      break;
    case MsgType::kRequest: {
      if (peer->am_choking) break;  // requests while choked are dropped
      if (msg.piece >= meta_->piece_count() ||
          !store_.have_piece(msg.piece)) {
        break;
      }
      peer->upload_queue.push_back(msg);
      pump_uploads(*peer);
      break;
    }
    case MsgType::kPiece:
      on_piece_msg(*peer, msg);
      break;
    case MsgType::kCancel: {
      // Retract the request if it has not been served yet (endgame).
      auto& queue = peer->upload_queue;
      const auto it = std::find_if(
          queue.begin(), queue.end(), [&](const WireMsg& queued) {
            return queued.piece == msg.piece && queued.begin == msg.begin;
          });
      if (it != queue.end()) queue.erase(it);
      break;
    }
    default:
      break;
  }
}

void Client::on_handshake(Peer& peer, const WireMsg& msg) {
  if (msg.info_hash != meta_->info_hash) {
    ++stats_.removals_badhash;
    remove_peer(key_of(peer.ip), /*close_socket=*/true);
    return;
  }
  peer.handshake_rx = true;
  // An empty bitfield is implicit; availability starts at zero and HAVEs
  // update it. (peer.have was registered as all-zero at add time.)
}

void Client::on_piece_msg(Peer& peer, const WireMsg& msg) {
  if (msg.piece >= meta_->piece_count()) return;
  const std::uint32_t block = msg.begin / kBlockLength;
  if (block >= meta_->blocks_in_piece(msg.piece)) return;
  const BlockRef ref{msg.piece, block};

  const auto inflight_it = std::find_if(
      peer.inflight.begin(), peer.inflight.end(),
      [&](const Peer::Outstanding& out) { return out.ref == ref; });
  if (inflight_it != peer.inflight.end()) peer.inflight.erase(inflight_it);

  peer.last_block_at = sim_->now();
  peer.down_rate.add(sim_->now(), msg.length);
  stats_.bytes_down += msg.length;

  picker_.on_block_received(ref);
  const auto result = store_.add_block(msg.piece, block, msg.intact);
  switch (result) {
    case PieceStore::BlockResult::kDuplicate:
      ++stats_.duplicate_blocks;
      break;
    case PieceStore::BlockResult::kAccepted:
      cancel_duplicates(ref, key_of(peer.ip));
      break;
    case PieceStore::BlockResult::kPieceComplete: {
      cancel_duplicates(ref, key_of(peer.ip));
      metrics_.piece_completions.inc();
      progress_.add(sim_->now(), 100.0 * store_.fraction_complete());
      down_series_.add(
          sim_->now(),
          static_cast<double>(store_.bytes_downloaded().count_bytes()));
      broadcast_have(msg.piece);
      for (auto& [k, p] : peers_) update_interest(*p);
      if (store_.complete()) on_torrent_complete();
      break;
    }
    case PieceStore::BlockResult::kPieceRejected:
      P2PLAB_LOG_WARN("client %s: piece %u failed verification",
                      ip().to_string().c_str(), msg.piece);
      break;
  }
  try_request(peer);
}

void Client::update_interest(Peer& peer) {
  const bool want = !store_.complete() &&
                    store_.have().other_has_missing(peer.have);
  if (want == peer.am_interested) return;
  peer.am_interested = want;
  WireMsg msg;
  msg.type = want ? MsgType::kInterested : MsgType::kNotInterested;
  send_msg(peer, std::move(msg));
}

int Client::backlog_for(Peer& peer) {
  const double rate = peer.down_rate.rate_bps(sim_->now());
  const int dynamic = 2 + static_cast<int>(rate / kBlockLength);
  return std::clamp(dynamic, 4, config_.max_backlog);
}

void Client::try_request(Peer& peer) {
  if (store_.complete() || peer.peer_choking || !peer.am_interested) return;
  const int backlog = backlog_for(peer);

  while (static_cast<int>(peer.inflight.size()) < backlog) {
    std::optional<BlockRef> ref = picker_.pick(peer.have);
    if (!ref && config_.endgame && picker_.all_missing_requested()) {
      // Endgame: re-request missing blocks from this peer too.
      for (const BlockRef& candidate : picker_.missing_blocks(peer.have)) {
        if (picker_.request_count(candidate) >=
            static_cast<std::uint32_t>(config_.endgame_max_duplication)) {
          continue;
        }
        const bool already = std::any_of(
            peer.inflight.begin(), peer.inflight.end(),
            [&](const Peer::Outstanding& out) {
              return out.ref == candidate;
            });
        if (!already) {
          ref = candidate;
          break;
        }
      }
    }
    if (!ref) return;
    picker_.on_requested(*ref);
    peer.inflight.push_back(Peer::Outstanding{*ref, sim_->now()});
    WireMsg request;
    request.type = MsgType::kRequest;
    request.piece = ref->piece;
    request.begin = ref->block * kBlockLength;
    request.length = meta_->block_size(ref->piece, ref->block);
    send_msg(peer, std::move(request));
  }
}

void Client::sweep_requests() {
  if (store_.complete()) return;
  for (auto& [key, peer] : peers_) {
    if (peer->handshake_rx && !peer->peer_choking) try_request(*peer);
  }
}

void Client::pump_uploads(Peer& peer) {
  // Serve queued requests only while the socket's send buffer is shallow:
  // blocks not yet handed to the transport can still be retracted by a
  // CHOKE or CANCEL, exactly like the real client's upload queue.
  while (!peer.upload_queue.empty() &&
         peer.sock->unsent_bytes() <=
             config_.upload_watermark.count_bytes()) {
    const WireMsg request = peer.upload_queue.front();
    peer.upload_queue.pop_front();
    WireMsg piece;
    piece.type = MsgType::kPiece;
    piece.piece = request.piece;
    piece.begin = request.begin;
    piece.length = request.length;
    send_msg(peer, std::move(piece));
  }
}

void Client::broadcast_have(std::uint32_t piece) {
  for (auto& [key, peer] : peers_) {
    if (!peer->handshake_rx) continue;
    WireMsg have;
    have.type = MsgType::kHave;
    have.piece = piece;
    send_msg(*peer, std::move(have));
  }
}

void Client::cancel_duplicates(BlockRef ref, std::uint32_t except_key) {
  for (auto& [key, peer] : peers_) {
    if (key == except_key) continue;
    const auto it = std::find_if(
        peer->inflight.begin(), peer->inflight.end(),
        [&](const Peer::Outstanding& out) { return out.ref == ref; });
    if (it == peer->inflight.end()) continue;
    peer->inflight.erase(it);
    WireMsg cancel;
    cancel.type = MsgType::kCancel;
    cancel.piece = ref.piece;
    cancel.begin = ref.block * kBlockLength;
    cancel.length = meta_->block_size(ref.piece, ref.block);
    send_msg(*peer, std::move(cancel));
  }
}

void Client::on_torrent_complete() {
  if (!was_seed_at_start_ && !completed_at_) {
    completed_at_ = sim_->now();
    metrics_.torrent_completions.inc();
    P2PLAB_TRACE(sim_->now(), "bt", "torrent_complete",
                 {{"ip", ip().to_string()},
                  {"bytes_down", stats_.bytes_down},
                  {"bytes_up", stats_.bytes_up}});
    announce(AnnounceEvent::kCompleted);
    P2PLAB_LOG_INFO("client %s completed at %s", ip().to_string().c_str(),
                    sim_->now().to_string().c_str());
  }
}

// ---------------------------------------------------------------- choking

bool Client::is_snubbed(Peer& peer) const {
  if (peer.inflight.empty()) return false;
  const SimTime oldest = peer.inflight.front().requested_at;
  const SimTime now = sim_->now();
  return now - oldest > config_.snub_timeout &&
         now - peer.last_block_at > config_.snub_timeout;
}

void Client::release_stalled_requests(Peer& peer) {
  const SimTime now = sim_->now();
  auto it = peer.inflight.begin();
  while (it != peer.inflight.end()) {
    if (now - it->requested_at > config_.snub_timeout) {
      picker_.on_request_discarded(it->ref);
      it = peer.inflight.erase(it);
    } else {
      ++it;
    }
  }
}

void Client::rechoke() {
  std::vector<PeerSnapshot> snapshot;
  snapshot.reserve(peers_.size());
  const bool seeding = store_.complete();
  for (auto& [key, peer] : peers_) {
    if (!peer->handshake_rx) continue;
    const bool snubbed = is_snubbed(*peer);
    if (snubbed) release_stalled_requests(*peer);
    metrics_.peer_down_rate_bps.record(peer->down_rate.rate_bps(sim_->now()));
    metrics_.peer_up_rate_bps.record(peer->up_rate.rate_bps(sim_->now()));
    snapshot.push_back(PeerSnapshot{
        .key = key,
        .interested = peer->peer_interested,
        .snubbed = snubbed,
        .rate_bps = seeding ? peer->up_rate.rate_bps(sim_->now())
                            : peer->down_rate.rate_bps(sim_->now())});
  }
  const std::vector<PeerKey> unchoked =
      choker_.rechoke(sim_->now(), snapshot, rng_);

  for (auto& [key, peer] : peers_) {
    if (!peer->handshake_rx) continue;
    const bool should_unchoke =
        std::find(unchoked.begin(), unchoked.end(), key) != unchoked.end();
    if (should_unchoke && peer->am_choking) {
      ++stats_.choke_transitions;
      metrics_.unchokes_sent.inc();
      peer->am_choking = false;
      WireMsg msg;
      msg.type = MsgType::kUnchoke;
      send_msg(*peer, std::move(msg));
    } else if (!should_unchoke && !peer->am_choking) {
      metrics_.chokes_sent.inc();
      peer->am_choking = true;
      peer->upload_queue.clear();  // unserved requests die with the choke
      WireMsg msg;
      msg.type = MsgType::kChoke;
      send_msg(*peer, std::move(msg));
    }
  }
  // Safety net for the download tail: any blocks released above (stalled
  // requests of snubbed peers) or still parked since a peer died must get
  // re-requested even when no PIECE arrival will trigger it.
  sweep_requests();
}

}  // namespace p2plab::bt
