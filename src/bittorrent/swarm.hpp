// Swarm experiment driver: the paper's BitTorrent evaluation setup.
//
// Builds a torrent, places one tracker, a few initial seeders and N
// downloading clients on a P2PLab platform, starts the clients at a fixed
// interval ("the clients are started with a 10 s interval" / "every
// 0.25 s"), runs the simulation, and collects what the paper plots:
// per-client progress curves (Figs 8, 10), cumulative bytes (Fig 9) and
// the completion-count-over-time series (Fig 11).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bittorrent/client.hpp"
#include "bittorrent/tracker.hpp"
#include "core/platform.hpp"
#include "metrics/timeseries.hpp"

namespace p2plab::bt {

struct SwarmConfig {
  DataSize file_size = DataSize::mib(16);
  DataSize piece_length = DataSize::kib(256);
  std::size_t seeders = 4;
  std::size_t clients = 160;
  Duration start_interval = Duration::sec(10);
  /// Hash and verify pieces (CPU-heavy at scale; see DESIGN.md §6).
  bool verify_hashes = false;
  ClientConfig client;
  std::uint64_t content_seed = 42;
  /// Simulation cutoff (safety net; experiments normally end on their own).
  Duration max_duration = Duration::sec(20000);
};

/// Total virtual nodes this swarm needs: tracker + seeders + clients.
inline std::size_t swarm_vnodes(const SwarmConfig& config) {
  return 1 + config.seeders + config.clients;
}

class Swarm {
 public:
  /// The platform must provide at least swarm_vnodes(config) vnodes.
  /// vnode 0 hosts the tracker, vnodes 1..seeders the seeders, the rest
  /// the downloading clients.
  Swarm(core::Platform& platform, SwarmConfig config);

  /// Run until every client completed (or max_duration).
  void run();
  /// Run until the given simulated time only.
  void run_until(SimTime deadline);

  const MetaInfo& metainfo() const { return meta_; }
  Tracker& tracker() { return *tracker_; }
  std::size_t client_count() const { return clients_.size(); }
  Client& client(std::size_t i) { return *clients_.at(i); }
  Client& seeder(std::size_t i) { return *seeders_.at(i); }

  std::size_t completed_count() const;
  bool all_complete() const { return completed_count() == clients_.size(); }

  /// Bind platform + every client (seeders included) to `reg`.
  void bind_metrics(metrics::Registry& reg);

  /// Completion times of the clients that finished, in client order.
  std::vector<double> completion_times_sec() const;
  /// The Figure 11 series: (t, #clients complete) steps.
  metrics::TimeSeries completion_curve() const;
  /// The Figure 9 series: total bytes received by all clients on a grid.
  std::vector<double> total_bytes_curve(Duration step, SimTime end) const;

 private:
  core::Platform* platform_;
  SwarmConfig config_;
  MetaInfo meta_;
  std::unique_ptr<Tracker> tracker_;
  std::vector<std::unique_ptr<Client>> seeders_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace p2plab::bt
