// The BitTorrent client.
//
// A faithful model of the BitTorrent 4.x client the paper runs (written by
// Bram Cohen; "slightly modified to allow data collection — a time-stamp
// was added to the default output"): tracker announces, peer wire
// protocol, rarest-first piece picking with strict priority and endgame,
// tit-for-tat choking with a 30 s optimistic slot, snubbing, and seeding
// after completion ("when the clients have finished the download of the
// file, they stay online and become seeders").
//
// The client runs *unmodified* on the emulation platform — it only talks
// to the sockets API of its virtual node, which is the paper's whole
// point: study the real application in a synthetic environment.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "bittorrent/choker.hpp"
#include "bittorrent/metainfo.hpp"
#include "bittorrent/picker.hpp"
#include "bittorrent/piece_store.hpp"
#include "bittorrent/rate.hpp"
#include "bittorrent/tracker.hpp"
#include "bittorrent/wire.hpp"
#include "sim/simulation.hpp"
#include "sockets/socket.hpp"

namespace p2plab::bt {

struct ClientConfig {
  std::uint16_t listen_port = 6881;
  int max_connections = 55;
  int max_initiate = 40;
  ChokerConfig choker;
  Duration rechoke_interval = Duration::sec(10);
  std::uint32_t numwant = 50;
  /// No block for this long despite outstanding requests => snubbed, and
  /// the stalled requests are released for re-picking.
  Duration snub_timeout = Duration::sec(60);
  int max_backlog = 16;  // request pipeline depth ceiling
  bool endgame = true;
  /// A block may be requested from at most this many peers at once during
  /// endgame (caps duplicate traffic, like production clients do).
  int endgame_max_duplication = 2;
  /// Upload pacing: pump the next block once the peer's socket holds at
  /// most this much unacknowledged PIECE data (2-3 blocks in transport —
  /// enough pipeline to cover the ack round trip). Further requests wait
  /// in the upload queue, where a CHOKE or CANCEL can still retract them
  /// (matching the real client's behaviour). Larger values bloat the
  /// access-link queues and stall the choker's rate estimates.
  DataSize upload_watermark = DataSize::kib(32);
  /// Verify piece SHA-1s on completion (requires hashed metainfo). Costs
  /// real CPU proportional to the file size; scalability runs disable it.
  bool verify_hashes = false;
  /// Failed announces retry with exponential backoff: base * 2^(n-1),
  /// capped, with +/-jitter (fraction of the delay) to desynchronize the
  /// swarm's retry storm when a tracker outage ends.
  Duration announce_retry_base = Duration::sec(5);
  Duration announce_retry_cap = Duration::sec(300);
  double announce_retry_jitter = 0.25;
};

struct ClientStats {
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t duplicate_blocks = 0;  // endgame cost
  std::uint64_t announces = 0;
  // Wire-message counters (diagnostics and the micro benches).
  std::uint64_t msgs_sent[16] = {};
  std::uint64_t choke_transitions = 0;
  std::uint64_t removals_protocol = 0;   // non-handshake first message
  std::uint64_t removals_close = 0;      // remote FIN / timeout abort
  std::uint64_t removals_collision = 0;  // simultaneous-open tie-break
  std::uint64_t removals_badhash = 0;    // wrong infohash
  std::uint64_t accepts_rejected = 0;    // listener at max_connections
  std::uint64_t announce_failures = 0;   // tracker unreachable / no reply
  std::uint64_t announce_retries = 0;    // backoff retries fired
};

/// Shared "bt.*" registry handles; the same cells aggregate every client
/// in a swarm (Swarm::bind_metrics binds seeders and leechers alike).
struct BtMetrics {
  metrics::Counter announces;
  metrics::Counter piece_completions;
  metrics::Counter torrent_completions;
  metrics::Counter chokes_sent;
  metrics::Counter unchokes_sent;
  metrics::Histogram peer_down_rate_bps;  // sampled at each rechoke
  metrics::Histogram peer_up_rate_bps;
};

class Client {
 public:
  Client(sim::Simulation& sim, sockets::SocketApi& api, const MetaInfo& meta,
         PeerInfo tracker, ClientConfig config, bool start_as_seed, Rng rng);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void start();
  void stop();
  /// kill -9: drop all session state with no goodbyes — no CHOKEs, FINs or
  /// "stopped" announce. Call under Platform::crash_vnode (which silences
  /// the sockets); downloaded pieces survive like on-disk data, so a
  /// subsequent start() resumes the download, modelling a process restart.
  void crash();

  /// Current announce-retry backoff delay (zero when healthy); for tests.
  Duration announce_backoff() const;

  Ipv4Addr ip() const { return api_->effective_bind_address(); }
  bool started() const { return started_; }
  bool complete() const { return store_.complete(); }
  bool has_completed() const { return completed_at_.has_value(); }
  SimTime completion_time() const { return *completed_at_; }
  double fraction_complete() const { return store_.fraction_complete(); }
  std::size_t peer_count() const { return peers_.size(); }
  const ClientStats& stats() const { return stats_; }
  const PieceStore& store() const { return store_; }

  /// Timestamped download progress in percent — the paper's data
  /// collection hook (Figures 8 and 10).
  const metrics::TimeSeries& progress() const { return progress_; }
  /// Timestamped cumulative payload bytes received (Figure 9's series).
  const metrics::TimeSeries& bytes_down_series() const { return down_series_; }

  /// Resolve "bt.*" handles from `reg`; every bound client shares cells.
  void bind_metrics(metrics::Registry& reg);

  /// Peer-state snapshot for diagnostics and tests.
  struct PeerDebug {
    Ipv4Addr ip;
    bool am_choking, am_interested, peer_choking, peer_interested;
    std::size_t inflight, upload_queue;
    std::uint64_t sock_unsent;
    double down_rate_bps, up_rate_bps;
  };
  std::vector<PeerDebug> debug_peers();

 private:
  struct Peer {
    sockets::StreamSocketPtr sock;
    Ipv4Addr ip;
    bool initiated = false;  // we dialed out
    bool handshake_sent = false;
    bool handshake_rx = false;
    Bitfield have;
    bool am_choking = true;
    bool am_interested = false;
    bool peer_choking = true;
    bool peer_interested = false;
    RateEstimator down_rate;  // payload from them to us
    RateEstimator up_rate;    // payload from us to them
    struct Outstanding {
      BlockRef ref;
      SimTime requested_at;
    };
    std::vector<Outstanding> inflight;  // requests we sent them
    std::deque<WireMsg> upload_queue;   // their requests awaiting service
    SimTime last_block_at;
  };

  // -- connection management ----------------------------------------------
  void announce(AnnounceEvent event);
  void handle_tracker_response(const AnnounceResponse& response);
  void on_announce_failure(AnnounceEvent event);
  void connect_more();
  Peer* add_peer(sockets::StreamSocketPtr sock, bool initiated);
  void remove_peer(std::uint32_t key, bool close_socket,
                   bool refill = true);
  Peer* find_peer(std::uint32_t key);

  // -- protocol --------------------------------------------------------------
  void send_msg(Peer& peer, WireMsg msg);
  void on_wire(std::uint32_t key, const WireMsg& msg);
  void on_handshake(Peer& peer, const WireMsg& msg);
  void on_piece_msg(Peer& peer, const WireMsg& msg);
  void update_interest(Peer& peer);
  void try_request(Peer& peer);
  /// Re-drive requests on every unchoked peer. Run after picker blocks are
  /// re-queued (peer death, choke, stalled-request release): without it the
  /// re-queued blocks sit unrequested until the next PIECE arrival, which
  /// near the end of a download may never come (the wedge under churn).
  void sweep_requests();
  int backlog_for(Peer& peer);
  void pump_uploads(Peer& peer);
  void broadcast_have(std::uint32_t piece);
  void cancel_duplicates(BlockRef ref, std::uint32_t except_key);
  void on_torrent_complete();

  // -- choking ----------------------------------------------------------------
  void rechoke();
  bool is_snubbed(Peer& peer) const;
  void release_stalled_requests(Peer& peer);

  sim::Simulation* sim_;
  sockets::SocketApi* api_;
  const MetaInfo* meta_;
  PeerInfo tracker_;
  ClientConfig config_;
  Rng rng_;

  PieceStore store_;
  PiecePicker picker_;
  Choker choker_;

  bool started_ = false;
  bool was_seed_at_start_ = false;
  std::optional<SimTime> completed_at_;

  sockets::ListenerPtr listener_;
  std::map<std::uint32_t, std::unique_ptr<Peer>> peers_;  // key: ip u32
  std::vector<PeerInfo> known_peers_;
  std::set<std::uint32_t> dialing_;  // dials awaiting connect/fail
  int initiated_connections_ = 0;    // dials in progress + established out

  sim::PeriodicTask rechoke_task_;
  sim::PeriodicTask announce_task_;
  /// Pending backoff retry after a failed announce (at most one).
  sim::EventId announce_retry_event_;
  std::uint32_t announce_failures_streak_ = 0;
  /// Refills after a disconnect are delayed (and coalesced): re-dialing the
  /// instant a FIN arrives races the winner SYN of a simultaneous-open
  /// tie-break and causes useless connection churn.
  sim::EventId refill_event_;

  ClientStats stats_;
  BtMetrics metrics_;
  metrics::TimeSeries progress_;
  metrics::TimeSeries down_series_;
};

}  // namespace p2plab::bt
