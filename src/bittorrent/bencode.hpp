// Bencoding (the BitTorrent metainfo/tracker wire format).
//
// Full encoder/decoder for the four bencode types. Used to build the
// metainfo "info" dictionary whose SHA-1 is the infohash, exactly like the
// real protocol; the decoder exists so tests can round-trip and so the
// format behaves as a first-class substrate rather than a stub.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace p2plab::bt {

class BValue;
using BList = std::vector<BValue>;
/// std::map: bencode requires dictionary keys in sorted order.
using BDict = std::map<std::string, BValue>;

class BValue {
 public:
  BValue() : value_(std::int64_t{0}) {}
  BValue(std::int64_t v) : value_(v) {}           // NOLINT(runtime/explicit)
  BValue(int v) : value_(std::int64_t{v}) {}      // NOLINT(runtime/explicit)
  BValue(std::string v) : value_(std::move(v)) {} // NOLINT(runtime/explicit)
  BValue(const char* v) : value_(std::string(v)) {}  // NOLINT
  BValue(BList v) : value_(std::move(v)) {}       // NOLINT(runtime/explicit)
  BValue(BDict v) : value_(std::move(v)) {}       // NOLINT(runtime/explicit)

  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_list() const { return std::holds_alternative<BList>(value_); }
  bool is_dict() const { return std::holds_alternative<BDict>(value_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const BList& as_list() const { return std::get<BList>(value_); }
  const BDict& as_dict() const { return std::get<BDict>(value_); }
  BDict& as_dict() { return std::get<BDict>(value_); }

  /// Dictionary lookup; nullptr when absent or not a dict.
  const BValue* find(const std::string& key) const;

  bool operator==(const BValue& other) const { return value_ == other.value_; }

 private:
  std::variant<std::int64_t, std::string, BList, BDict> value_;
};

/// Canonical bencoding of a value.
std::string bencode(const BValue& value);

/// Strict decode: the whole input must be one well-formed value.
/// Returns nullopt on any malformation (truncation, bad lengths, trailing
/// garbage, unsorted keys are accepted on input but re-sorted).
std::optional<BValue> bdecode(std::string_view input);

}  // namespace p2plab::bt
