#include "bittorrent/metainfo.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "bittorrent/bencode.hpp"

namespace p2plab::bt {

std::uint32_t MetaInfo::piece_size(std::uint32_t index) const {
  P2PLAB_ASSERT(index < piece_count());
  const std::uint64_t pl = piece_length.count_bytes();
  const std::uint64_t start = std::uint64_t{index} * pl;
  return static_cast<std::uint32_t>(
      std::min(pl, total_size.count_bytes() - start));
}

std::uint32_t MetaInfo::blocks_in_piece(std::uint32_t index) const {
  return (piece_size(index) + kBlockLength - 1) / kBlockLength;
}

std::uint32_t MetaInfo::block_size(std::uint32_t piece,
                                   std::uint32_t block) const {
  P2PLAB_ASSERT(block < blocks_in_piece(piece));
  const std::uint32_t size = piece_size(piece);
  const std::uint32_t start = block * kBlockLength;
  return std::min(kBlockLength, size - start);
}

std::vector<std::uint8_t> MetaInfo::generate_piece(std::uint32_t index) const {
  const std::uint32_t size = piece_size(index);
  std::vector<std::uint8_t> data(size);
  // 8 bytes per SplitMix64 step, keyed by (seed, absolute 8-byte offset):
  // random-access so any node regenerates any piece independently.
  const std::uint64_t base =
      (std::uint64_t{index} * piece_length.count_bytes()) / 8;
  for (std::uint32_t i = 0; i < size; i += 8) {
    std::uint64_t sm = content_seed ^ ((base + i / 8) * 0x9e3779b97f4a7c15ull);
    const std::uint64_t word = splitmix64(sm);
    for (std::uint32_t b = 0; b < 8 && i + b < size; ++b) {
      data[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return data;
}

MetaInfo MetaInfo::make_synthetic(std::string name, DataSize total_size,
                                  std::uint64_t content_seed,
                                  bool hash_pieces, DataSize piece_length) {
  P2PLAB_ASSERT(total_size.count_bytes() > 0);
  P2PLAB_ASSERT(piece_length.count_bytes() % kBlockLength == 0);
  MetaInfo meta;
  meta.name = std::move(name);
  meta.total_size = total_size;
  meta.piece_length = piece_length;
  meta.content_seed = content_seed;

  std::string pieces_blob;
  if (hash_pieces) {
    meta.piece_hashes.reserve(meta.piece_count());
    for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
      const auto data = meta.generate_piece(p);
      meta.piece_hashes.push_back(Sha1::hash(data));
      pieces_blob.append(
          reinterpret_cast<const char*>(meta.piece_hashes.back().data()), 20);
    }
  } else {
    // The infohash must still be stable and unique per torrent; stand in
    // for the 20N-byte pieces string with a seed-derived marker.
    std::uint64_t sm = content_seed;
    pieces_blob = "unhashed:" + std::to_string(splitmix64(sm));
  }

  BDict info;
  info.emplace("length",
               BValue{static_cast<std::int64_t>(total_size.count_bytes())});
  info.emplace("name", BValue{meta.name});
  info.emplace("piece length", BValue{static_cast<std::int64_t>(
                                   piece_length.count_bytes())});
  info.emplace("pieces", BValue{std::move(pieces_blob)});
  meta.info_hash = Sha1::hash(bencode(BValue{std::move(info)}));
  return meta;
}

}  // namespace p2plab::bt
