#include "bittorrent/bencode.hpp"

#include <charconv>

namespace p2plab::bt {

const BValue* BValue::find(const std::string& key) const {
  if (!is_dict()) return nullptr;
  const auto& dict = as_dict();
  const auto it = dict.find(key);
  return it == dict.end() ? nullptr : &it->second;
}

namespace {

void encode_into(const BValue& value, std::string& out) {
  if (value.is_int()) {
    out += 'i';
    out += std::to_string(value.as_int());
    out += 'e';
  } else if (value.is_string()) {
    const std::string& s = value.as_string();
    out += std::to_string(s.size());
    out += ':';
    out += s;
  } else if (value.is_list()) {
    out += 'l';
    for (const BValue& item : value.as_list()) encode_into(item, out);
    out += 'e';
  } else {
    out += 'd';
    for (const auto& [key, item] : value.as_dict()) {
      out += std::to_string(key.size());
      out += ':';
      out += key;
      encode_into(item, out);
    }
    out += 'e';
  }
}

class Decoder {
 public:
  explicit Decoder(std::string_view input) : input_(input) {}

  std::optional<BValue> decode_all() {
    auto value = decode_value(0);
    if (!value || pos_ != input_.size()) return std::nullopt;
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::optional<BValue> decode_value(int depth) {
    if (depth > kMaxDepth || pos_ >= input_.size()) return std::nullopt;
    const char c = input_[pos_];
    if (c == 'i') return decode_int();
    if (c == 'l') return decode_list(depth);
    if (c == 'd') return decode_dict(depth);
    if (c >= '0' && c <= '9') return decode_string();
    return std::nullopt;
  }

  std::optional<BValue> decode_int() {
    ++pos_;  // 'i'
    const std::size_t end = input_.find('e', pos_);
    if (end == std::string_view::npos || end == pos_) return std::nullopt;
    const std::string_view digits = input_.substr(pos_, end - pos_);
    // Reject "i-0e" and leading zeros (canonical form only).
    if (digits == "-" || (digits.size() > 1 && digits[0] == '0') ||
        (digits.size() > 2 && digits[0] == '-' && digits[1] == '0') ||
        digits == "-0") {
      return std::nullopt;
    }
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return std::nullopt;
    }
    pos_ = end + 1;
    return BValue{value};
  }

  std::optional<BValue> decode_string() {
    const std::size_t colon = input_.find(':', pos_);
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view digits = input_.substr(pos_, colon - pos_);
    if (digits.empty() || (digits.size() > 1 && digits[0] == '0')) {
      return std::nullopt;
    }
    std::uint64_t length = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), length);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return std::nullopt;
    }
    if (colon + 1 + length > input_.size()) return std::nullopt;
    BValue result{std::string(input_.substr(colon + 1, length))};
    pos_ = colon + 1 + length;
    return result;
  }

  std::optional<BValue> decode_list(int depth) {
    ++pos_;  // 'l'
    BList list;
    while (pos_ < input_.size() && input_[pos_] != 'e') {
      auto item = decode_value(depth + 1);
      if (!item) return std::nullopt;
      list.push_back(std::move(*item));
    }
    if (pos_ >= input_.size()) return std::nullopt;
    ++pos_;  // 'e'
    return BValue{std::move(list)};
  }

  std::optional<BValue> decode_dict(int depth) {
    ++pos_;  // 'd'
    BDict dict;
    while (pos_ < input_.size() && input_[pos_] != 'e') {
      auto key = decode_string();
      if (!key) return std::nullopt;
      auto value = decode_value(depth + 1);
      if (!value) return std::nullopt;
      dict.emplace(key->as_string(), std::move(*value));
    }
    if (pos_ >= input_.size()) return std::nullopt;
    ++pos_;  // 'e'
    return BValue{std::move(dict)};
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string bencode(const BValue& value) {
  std::string out;
  encode_into(value, out);
  return out;
}

std::optional<BValue> bdecode(std::string_view input) {
  return Decoder(input).decode_all();
}

}  // namespace p2plab::bt
