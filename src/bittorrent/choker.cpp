#include "bittorrent/choker.hpp"

#include <algorithm>

namespace p2plab::bt {

std::vector<PeerKey> Choker::rechoke(SimTime now,
                                     const std::vector<PeerSnapshot>& peers,
                                     Rng& rng) {
  std::vector<PeerKey> unchoked;
  const int regular_slots = std::max(0, config_.unchoke_slots - 1);

  // Regular slots: best-rate interested, non-snubbed peers.
  std::vector<const PeerSnapshot*> ranked;
  for (const PeerSnapshot& p : peers) {
    if (p.interested && !p.snubbed) ranked.push_back(&p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const PeerSnapshot* a, const PeerSnapshot* b) {
                     return a->rate_bps > b->rate_bps;
                   });
  for (int i = 0; i < regular_slots && i < static_cast<int>(ranked.size());
       ++i) {
    unchoked.push_back(ranked[static_cast<size_t>(i)]->key);
  }

  // Optimistic slot: rotate every optimistic_interval among interested
  // peers not already unchoked.
  const bool optimistic_still_valid = [&] {
    if (optimistic_ == kNoPeer) return false;
    for (const PeerSnapshot& p : peers) {
      if (p.key == optimistic_) return p.interested;
    }
    return false;  // peer left
  }();
  const bool rotate = !optimistic_still_valid ||
                      now - optimistic_since_ >= config_.optimistic_interval;
  if (rotate) {
    std::vector<PeerKey> candidates;
    for (const PeerSnapshot& p : peers) {
      if (!p.interested) continue;
      if (std::find(unchoked.begin(), unchoked.end(), p.key) !=
          unchoked.end()) {
        continue;
      }
      candidates.push_back(p.key);
    }
    if (candidates.empty()) {
      optimistic_ = kNoPeer;
    } else {
      optimistic_ = candidates[rng.uniform(candidates.size())];
      optimistic_since_ = now;
    }
  }
  if (optimistic_ != kNoPeer &&
      std::find(unchoked.begin(), unchoked.end(), optimistic_) ==
          unchoked.end()) {
    unchoked.push_back(optimistic_);
  }
  return unchoked;
}

}  // namespace p2plab::bt
