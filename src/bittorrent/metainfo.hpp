// Torrent metainfo (.torrent content).
//
// BitTorrent divides the file into pieces (256 KiB in the client the paper
// uses: "the file is always divided in pieces of 256 KB") and stores one
// SHA-1 per piece in the metainfo's "info" dictionary; the SHA-1 of the
// bencoded info dictionary is the torrent's infohash.
//
// Content is synthetic: block payloads are a deterministic pseudorandom
// function of (content seed, offset), so every node can regenerate — and
// therefore verify — any piece without 16 MiB buffers being copied through
// the simulated network.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "bittorrent/sha1.hpp"

namespace p2plab::bt {

inline constexpr std::uint32_t kBlockLength = 16 * 1024;  // request granularity

struct MetaInfo {
  std::string name;
  DataSize total_size;
  DataSize piece_length = DataSize::kib(256);
  std::uint64_t content_seed = 0;
  /// Per-piece SHA-1 over the synthetic content; empty if hashing was
  /// skipped (scalability runs — see DESIGN.md §6).
  std::vector<Sha1Digest> piece_hashes;
  Sha1Digest info_hash{};

  std::uint32_t piece_count() const {
    const std::uint64_t pl = piece_length.count_bytes();
    return static_cast<std::uint32_t>(
        (total_size.count_bytes() + pl - 1) / pl);
  }
  /// Byte size of piece `index` (the last piece may be short).
  std::uint32_t piece_size(std::uint32_t index) const;
  /// Blocks in piece `index` (16 KiB granularity, last may be short).
  std::uint32_t blocks_in_piece(std::uint32_t index) const;
  std::uint32_t block_size(std::uint32_t piece, std::uint32_t block) const;

  /// Regenerate the synthetic content of one piece.
  std::vector<std::uint8_t> generate_piece(std::uint32_t index) const;

  /// Build a torrent for a synthetic file. When `hash_pieces` is set the
  /// per-piece SHA-1s are computed (CPU-proportional to the file size);
  /// the infohash is always computed from the bencoded info dict.
  static MetaInfo make_synthetic(std::string name, DataSize total_size,
                                 std::uint64_t content_seed,
                                 bool hash_pieces,
                                 DataSize piece_length = DataSize::kib(256));
};

}  // namespace p2plab::bt
