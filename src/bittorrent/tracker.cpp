#include "bittorrent/tracker.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace p2plab::bt {

Tracker::Tracker(sockets::SocketApi& api, Config config, Rng rng)
    : api_(&api), config_(config), rng_(rng) {}

void Tracker::start() {
  listener_ = api_->listen(
      config_.port, [this](sockets::StreamSocketPtr socket) {
        socket->on_message([this, socket](sockets::Message&& msg) {
          if (msg.type !=
              static_cast<std::uint32_t>(MsgType::kTrackerAnnounce)) {
            return;
          }
          const auto& announce = msg.as<TrackerAnnounceMsg>();
          AnnounceResponse response = handle_announce(announce.request);

          sockets::Message reply;
          reply.type = static_cast<std::uint32_t>(MsgType::kTrackerResponse);
          reply.size = announce_response_wire_size(response.peers.size());
          reply.body = std::make_shared<const TrackerResponseMsg>(
              TrackerResponseMsg{std::move(response)});
          socket->send(std::move(reply));
        });
      });
}

void Tracker::set_online(bool online) {
  if (online == this->online()) return;
  if (online) {
    start();
  } else {
    listener_.reset();  // connects now meet a closed port -> fast refusal
  }
}

std::size_t Tracker::swarm_size(const Sha1Digest& info_hash) const {
  const auto it = swarms_.find(key_of(info_hash));
  return it == swarms_.end() ? 0 : it->second.peers.size();
}

AnnounceResponse Tracker::handle_announce(const AnnounceRequest& request) {
  ++announces_;
  Swarm& swarm = swarms_[key_of(request.info_hash)];

  const auto existing = std::find_if(
      swarm.peers.begin(), swarm.peers.end(),
      [&](const PeerInfo& p) { return p == request.peer; });

  switch (request.event) {
    case AnnounceEvent::kStarted:
    case AnnounceEvent::kPeriodic:
      if (existing == swarm.peers.end()) swarm.peers.push_back(request.peer);
      break;
    case AnnounceEvent::kCompleted:
      ++swarm.complete;
      if (existing == swarm.peers.end()) swarm.peers.push_back(request.peer);
      break;
    case AnnounceEvent::kStopped:
      if (existing != swarm.peers.end()) swarm.peers.erase(existing);
      break;
  }

  AnnounceResponse response;
  response.interval = config_.interval;
  response.complete = swarm.complete;
  response.incomplete = static_cast<std::uint32_t>(
      swarm.peers.size() - std::min<std::size_t>(swarm.complete,
                                                 swarm.peers.size()));
  // Random sample excluding the requester.
  std::vector<PeerInfo> others;
  others.reserve(swarm.peers.size());
  for (const PeerInfo& p : swarm.peers) {
    if (!(p == request.peer)) others.push_back(p);
  }
  response.peers = rng_.sample(others, request.numwant);
  return response;
}

}  // namespace p2plab::bt
