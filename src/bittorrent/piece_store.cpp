#include "bittorrent/piece_store.hpp"

#include "common/assert.hpp"

namespace p2plab::bt {

PieceStore::PieceStore(const MetaInfo& meta, bool verify_hashes)
    : meta_(&meta), verify_hashes_(verify_hashes), have_(meta.piece_count()) {
  if (verify_hashes_) {
    P2PLAB_ASSERT_MSG(meta.piece_hashes.size() == meta.piece_count(),
                      "verification requested but metainfo has no hashes");
  }
  blocks_.reserve(meta.piece_count());
  for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
    blocks_.emplace_back(meta.blocks_in_piece(p));
  }
  piece_tainted_.assign(meta.piece_count(), false);
}

void PieceStore::fill_complete() {
  have_.set_all();
  for (auto& piece_blocks : blocks_) piece_blocks.set_all();
}

double PieceStore::fraction_complete() const {
  // Count at block granularity so progress curves are smooth (the paper's
  // Figure 8 plots "percentage of the file transferred").
  std::uint64_t got = 0;
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < meta_->piece_count(); ++p) {
    got += blocks_[p].count();
    total += blocks_[p].size();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(got) / static_cast<double>(total);
}

bool PieceStore::have_block(std::uint32_t piece, std::uint32_t block) const {
  return blocks_[piece].get(block);
}

std::uint32_t PieceStore::blocks_received(std::uint32_t piece) const {
  return blocks_[piece].count();
}

PieceStore::BlockResult PieceStore::add_block(std::uint32_t piece,
                                              std::uint32_t block,
                                              bool payload_intact) {
  P2PLAB_ASSERT(piece < meta_->piece_count());
  P2PLAB_ASSERT(block < meta_->blocks_in_piece(piece));
  if (blocks_[piece].get(block)) return BlockResult::kDuplicate;

  blocks_[piece].set(block);
  bytes_down_ += meta_->block_size(piece, block);
  if (!payload_intact) piece_tainted_[piece] = true;

  if (!blocks_[piece].all()) return BlockResult::kAccepted;

  const bool intact = !piece_tainted_[piece] &&
                      (!verify_hashes_ || verify_piece(piece));
  if (intact) {
    have_.set(piece);
    return BlockResult::kPieceComplete;
  }
  // Hash failure: drop the whole piece, as the real client does.
  ++hash_failures_;
  blocks_[piece] = Bitfield(meta_->blocks_in_piece(piece));
  piece_tainted_[piece] = false;
  bytes_down_ -= meta_->piece_size(piece);
  return BlockResult::kPieceRejected;
}

bool PieceStore::verify_piece(std::uint32_t piece) const {
  const auto data = meta_->generate_piece(piece);
  return Sha1::hash(data) == meta_->piece_hashes[piece];
}

}  // namespace p2plab::bt
