// Piece selection: random-first-piece, strict priority, rarest-first,
// endgame — the BitTorrent 4.x policy set.
//
//  - Until the first piece completes, pieces are picked at random (getting
//    *some* complete piece fast matters more than rarity).
//  - Partially downloaded/requested pieces have strict priority (finish
//    what is started so it can be shared).
//  - Otherwise pick among the rarest pieces (minimum availability over the
//    connected peers), breaking ties randomly.
//  - Endgame: once every missing block is requested somewhere, remaining
//    blocks may be requested from multiple peers at once (the client sends
//    CANCELs when a duplicate arrives).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "bittorrent/bitfield.hpp"
#include "bittorrent/metainfo.hpp"
#include "bittorrent/piece_store.hpp"

namespace p2plab::bt {

struct BlockRef {
  std::uint32_t piece = 0;
  std::uint32_t block = 0;
  bool operator==(const BlockRef&) const = default;
};

class PiecePicker {
 public:
  PiecePicker(const MetaInfo& meta, const PieceStore& store, Rng rng);

  // -- availability bookkeeping (from HAVE/BITFIELD/peer departure) --------
  void peer_has(std::uint32_t piece);
  void peer_has_bitfield(const Bitfield& have);
  void peer_lost(const Bitfield& have);
  std::uint32_t availability(std::uint32_t piece) const {
    return availability_[piece];
  }

  // -- request bookkeeping --------------------------------------------------
  void on_requested(BlockRef ref);
  /// A request was discarded without a block arriving (choke, peer loss,
  /// snub release): the block becomes pickable again.
  void on_request_discarded(BlockRef ref);
  void on_block_received(BlockRef ref);

  /// Pick the next block to request from a peer advertising `peer_have`.
  /// Returns nullopt when every block this peer could give us is already
  /// held or requested — the endgame trigger.
  std::optional<BlockRef> pick(const Bitfield& peer_have);

  /// Endgame: missing blocks (not yet received) the peer has, regardless of
  /// outstanding requests elsewhere. The caller filters blocks it already
  /// requested from this same peer.
  std::vector<BlockRef> missing_blocks(const Bitfield& peer_have) const;

  /// True once no unrequested missing block remains anywhere.
  bool all_missing_requested() const;

  /// Outstanding request count for one block (endgame duplication cap).
  std::uint32_t request_count(BlockRef ref) const {
    return request_counts_[ref.piece][ref.block];
  }

 private:
  bool piece_pickable(std::uint32_t piece, const Bitfield& peer_have) const;
  std::optional<std::uint32_t> first_unrequested_block(
      std::uint32_t piece) const;

  const MetaInfo* meta_;
  const PieceStore* store_;
  Rng rng_;
  std::vector<std::uint32_t> availability_;
  std::vector<std::vector<std::uint8_t>> request_counts_;  // [piece][block]
  std::vector<std::uint32_t> outstanding_per_piece_;
};

}  // namespace p2plab::bt
