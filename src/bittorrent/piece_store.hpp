// Per-client piece/block storage state.
//
// Tracks which blocks of which pieces have arrived, runs SHA-1
// verification when a piece completes (against the synthetic content
// model), and rejects corrupted pieces wholesale — the real client's
// behaviour on hash failure is to drop and re-download the entire piece.
#pragma once

#include <cstdint>
#include <vector>

#include "bittorrent/bitfield.hpp"
#include "bittorrent/metainfo.hpp"

namespace p2plab::bt {

class PieceStore {
 public:
  /// `verify_hashes` requires meta.piece_hashes to be populated.
  PieceStore(const MetaInfo& meta, bool verify_hashes);

  /// Mark every piece present (seeders).
  void fill_complete();

  const Bitfield& have() const { return have_; }
  bool complete() const { return have_.all(); }
  std::uint32_t piece_count() const { return meta_->piece_count(); }
  DataSize bytes_downloaded() const { return DataSize::bytes(bytes_down_); }
  double fraction_complete() const;

  bool have_piece(std::uint32_t piece) const { return have_.get(piece); }
  bool have_block(std::uint32_t piece, std::uint32_t block) const;
  std::uint32_t blocks_received(std::uint32_t piece) const;

  enum class BlockResult {
    kDuplicate,       // already had it
    kAccepted,        // stored, piece still incomplete
    kPieceComplete,   // stored and the piece verified
    kPieceRejected,   // stored but verification failed: piece was reset
  };

  /// Record an arriving block. `payload_intact` is the integrity flag the
  /// wire carries (false models on-the-wire corruption).
  BlockResult add_block(std::uint32_t piece, std::uint32_t block,
                        bool payload_intact);

  std::uint64_t hash_failures() const { return hash_failures_; }

 private:
  bool verify_piece(std::uint32_t piece) const;

  const MetaInfo* meta_;
  bool verify_hashes_;
  Bitfield have_;
  std::vector<Bitfield> blocks_;       // per piece
  std::vector<bool> piece_tainted_;    // any corrupted block present
  std::uint64_t bytes_down_ = 0;
  std::uint64_t hash_failures_ = 0;
};

}  // namespace p2plab::bt
