// Network topology description: the paper's edge-centric Internet model.
//
// P2PLab does not emulate the Internet core; it models what an edge node
// sees: a shaped access link to its ISP (bandwidth up/down, latency,
// loss), plus latencies between *groups* of nodes (same ISP, country,
// continent). A Topology is therefore a set of zones — CIDR blocks that
// either contain nodes (with a link class) or merely group other zones —
// and a symmetric latency relation between zones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace p2plab::topology {

/// Access-link parameters of a node class (down/up follow ISP convention).
struct LinkClass {
  Bandwidth down = Bandwidth::mbps(2);
  Bandwidth up = Bandwidth::kbps(128);
  Duration latency = Duration::ms(30);
  double loss_rate = 0.0;
  /// Gilbert-Elliott bursty loss on the access link (zero transition
  /// probabilities = disabled). Kept as plain numbers so the topology layer
  /// stays independent of ipfw; Platform maps them onto the pipes.
  double burst_p_good_bad = 0.0;
  double burst_p_bad_good = 0.0;
  double burst_loss_bad = 1.0;
};

/// The paper's experimental DSL profile: 2 Mb/s down, 128 kb/s up, 30 ms.
LinkClass dsl_2m();
/// Figure 7 profiles.
LinkClass modem_56k();   // 56 kb/s down, 33.6 kb/s up, 100 ms
LinkClass dsl_512k();    // 512 kb/s down, 128 kb/s up, 40 ms
LinkClass dsl_8m();      // 8 Mb/s down, 1 Mb/s up, 20 ms
LinkClass sym_10m();     // 10 Mb/s symmetric, 5 ms
LinkClass sym_1m();      // 1 Mb/s symmetric, 10 ms

using ZoneId = std::size_t;

struct Zone {
  std::string name;
  CidrBlock subnet;
  /// Number of virtual nodes; 0 for container zones used only as a latency
  /// aggregate (e.g. 10.1.0.0/16 containing three ISP subnets).
  std::size_t node_count = 0;
  LinkClass link;
};

struct LatencyPair {
  ZoneId a;
  ZoneId b;
  Duration latency;
};

class Topology {
 public:
  /// Add a node zone. Node addresses are subnet.host(1..node_count).
  /// Node subnets must be pairwise disjoint and must fit the node count.
  ZoneId add_zone(std::string name, CidrBlock subnet, std::size_t node_count,
                  LinkClass link);
  /// Add a container zone (latency aggregate, no nodes of its own).
  ZoneId add_container(std::string name, CidrBlock subnet);

  /// Declare symmetric latency between two zones. The zone pair's subnets
  /// must be disjoint (a packet must match at most one pair rule).
  void add_latency(ZoneId a, ZoneId b, Duration latency);

  const std::vector<Zone>& zones() const { return zones_; }
  const std::vector<LatencyPair>& latencies() const { return latencies_; }

  /// Total virtual nodes across all zones.
  std::size_t total_nodes() const;

  /// Global node index -> address (zones in insertion order).
  Ipv4Addr node_address(std::size_t node_index) const;
  /// Global node index -> its zone.
  ZoneId zone_of_node(std::size_t node_index) const;
  /// Address -> most specific zone containing it (if any).
  std::optional<ZoneId> zone_of(Ipv4Addr addr) const;
  /// The link class shaping `addr`'s access (from its node zone).
  const LinkClass& link_of_node(std::size_t node_index) const;

  /// The configured latency between the zones of two addresses: the most
  /// specific declared pair matching (src, dst), if any. This is what the
  /// compiled rule set will impose.
  std::optional<Duration> inter_zone_latency(Ipv4Addr src, Ipv4Addr dst) const;

  /// Minimum access-link latency over all node zones: a lower bound on the
  /// delay any inter-host packet pays at its source pipe, and therefore the
  /// parallel engine's lookahead (plus switch latency). Zero if the
  /// topology has no nodes.
  Duration min_access_latency() const;

 private:
  std::vector<Zone> zones_;
  std::vector<LatencyPair> latencies_;
  std::vector<std::size_t> node_zone_begin_;  // prefix sums of node counts
};

/// A small homogeneous swarm topology: `nodes` DSL nodes in 10.0.0.0/16
/// (the configuration of the paper's BitTorrent experiments).
Topology homogeneous_dsl(std::size_t nodes, LinkClass link = dsl_2m());

/// The exact emulated topology of Figure 7: three ISP subnets under
/// 10.1.0.0/16 (100 ms apart), 10.2.0.0/16 and 10.3.0.0/16 with 400/600 ms
/// to 10.1 and 1 s between each other.
Topology figure7();

}  // namespace p2plab::topology
