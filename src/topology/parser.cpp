#include "topology/parser.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace p2plab::topology {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  return tokens;
}

std::optional<double> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> handles the full numeric prefix.
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// "key=value" -> value for the expected key.
std::optional<std::string_view> value_of(std::string_view token,
                                         std::string_view key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return std::nullopt;
  }
  return token.substr(key.size() + 1);
}

}  // namespace

std::optional<Bandwidth> parse_bandwidth(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double multiplier = 1.0;
  const char suffix = text.back();
  std::string_view digits = text;
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1e3;
    digits.remove_suffix(1);
  } else if (suffix == 'M') {
    multiplier = 1e6;
    digits.remove_suffix(1);
  } else if (suffix == 'G') {
    multiplier = 1e9;
    digits.remove_suffix(1);
  }
  const auto value = parse_number(digits);
  if (!value || *value <= 0) return std::nullopt;
  return Bandwidth::bps(static_cast<std::uint64_t>(*value * multiplier));
}

std::optional<Duration> parse_duration(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double to_ms = 1.0;  // bare numbers are milliseconds
  std::string_view digits = text;
  if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    digits.remove_suffix(2);
  } else if (text.size() > 2 && text.substr(text.size() - 2) == "us") {
    to_ms = 1e-3;
    digits.remove_suffix(2);
  } else if (text.back() == 's') {
    to_ms = 1e3;
    digits.remove_suffix(1);
  }
  const auto value = parse_number(digits);
  if (!value || *value < 0) return std::nullopt;
  return Duration::millis(*value * to_ms);
}

ParseResult parse_topology(std::string_view text) {
  Topology topo;
  std::map<std::string, ZoneId> by_name;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;

  auto fail = [&](const std::string& message) {
    ParseResult result;
    result.error =
        "line " + std::to_string(line_number) + ": " + message;
    return result;
  };

  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "container") {
      if (tokens.size() != 3) return fail("container <name> <cidr>");
      const auto cidr = CidrBlock::parse(tokens[2]);
      if (!cidr) return fail("bad CIDR '" + tokens[2] + "'");
      if (by_name.count(tokens[1]) != 0) {
        return fail("duplicate zone name '" + tokens[1] + "'");
      }
      by_name[tokens[1]] = topo.add_container(tokens[1], *cidr);
      continue;
    }

    if (directive == "zone") {
      if (tokens.size() < 7) {
        return fail("zone <name> <cidr> nodes= down= up= latency= [loss=]");
      }
      const auto cidr = CidrBlock::parse(tokens[2]);
      if (!cidr) return fail("bad CIDR '" + tokens[2] + "'");
      if (by_name.count(tokens[1]) != 0) {
        return fail("duplicate zone name '" + tokens[1] + "'");
      }
      std::optional<std::size_t> nodes;
      LinkClass link;
      bool have_down = false;
      bool have_up = false;
      bool have_latency = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (const auto v = value_of(tokens[i], "nodes")) {
          const auto n = parse_number(*v);
          if (!n || *n < 1) return fail("bad nodes count");
          nodes = static_cast<std::size_t>(*n);
        } else if (const auto v2 = value_of(tokens[i], "down")) {
          const auto bw = parse_bandwidth(*v2);
          if (!bw) return fail("bad down bandwidth");
          link.down = *bw;
          have_down = true;
        } else if (const auto v3 = value_of(tokens[i], "up")) {
          const auto bw = parse_bandwidth(*v3);
          if (!bw) return fail("bad up bandwidth");
          link.up = *bw;
          have_up = true;
        } else if (const auto v4 = value_of(tokens[i], "latency")) {
          const auto d = parse_duration(*v4);
          if (!d) return fail("bad latency");
          link.latency = *d;
          have_latency = true;
        } else if (const auto v5 = value_of(tokens[i], "loss")) {
          const auto p = parse_number(*v5);
          if (!p || *p < 0 || *p > 1) return fail("bad loss rate");
          link.loss_rate = *p;
        } else if (const auto v6 = value_of(tokens[i], "burst")) {
          // burst=p_good_bad:p_bad_good[:loss_bad] (Gilbert-Elliott).
          const std::string spec(*v6);
          const auto first = spec.find(':');
          if (first == std::string::npos) {
            return fail("burst=p_good_bad:p_bad_good[:loss_bad]");
          }
          const auto second = spec.find(':', first + 1);
          const auto pgb = parse_number(spec.substr(0, first));
          const auto pbg = parse_number(
              second == std::string::npos
                  ? spec.substr(first + 1)
                  : spec.substr(first + 1, second - first - 1));
          std::optional<double> lb = 1.0;
          if (second != std::string::npos) {
            lb = parse_number(spec.substr(second + 1));
          }
          if (!pgb || !pbg || !lb || *pgb < 0 || *pgb > 1 || *pbg <= 0 ||
              *pbg > 1 || *lb < 0 || *lb > 1) {
            return fail("bad burst parameters");
          }
          link.burst_p_good_bad = *pgb;
          link.burst_p_bad_good = *pbg;
          link.burst_loss_bad = *lb;
        } else {
          return fail("unknown attribute '" + tokens[i] + "'");
        }
      }
      if (!nodes || !have_down || !have_up || !have_latency) {
        return fail("zone needs nodes=, down=, up= and latency=");
      }
      if (*nodes >= cidr->size()) return fail("subnet too small for nodes");
      for (const Zone& existing : topo.zones()) {
        if (existing.node_count > 0 && existing.subnet.overlaps(*cidr)) {
          return fail("zone '" + tokens[1] + "' overlaps '" + existing.name +
                      "'");
        }
      }
      by_name[tokens[1]] = topo.add_zone(tokens[1], *cidr, *nodes, link);
      continue;
    }

    if (directive == "latency") {
      if (tokens.size() != 4) return fail("latency <zoneA> <zoneB> <dur>");
      const auto a = by_name.find(tokens[1]);
      const auto b = by_name.find(tokens[2]);
      if (a == by_name.end()) return fail("unknown zone '" + tokens[1] + "'");
      if (b == by_name.end()) return fail("unknown zone '" + tokens[2] + "'");
      const auto d = parse_duration(tokens[3]);
      if (!d) return fail("bad latency '" + tokens[3] + "'");
      if (topo.zones()[a->second].subnet.overlaps(
              topo.zones()[b->second].subnet)) {
        return fail("latency pair zones overlap");
      }
      topo.add_latency(a->second, b->second, *d);
      continue;
    }

    return fail("unknown directive '" + directive + "'");
  }

  if (topo.total_nodes() == 0) {
    line_number = 0;
    return fail("no nodes declared");
  }
  ParseResult result;
  result.topology = std::move(topo);
  return result;
}

}  // namespace p2plab::topology
