// Text format for experiment topologies.
//
// The real P2PLab configures experiments from description files; this is
// our equivalent. One directive per line, '#' comments:
//
//   zone <name> <cidr> nodes=<n> down=<bw> up=<bw> latency=<dur> [loss=<p>]
//   container <name> <cidr>
//   latency <nameA> <nameB> <dur>
//
// Bandwidths accept 56k / 512k / 2M / 1G / plain bits-per-second;
// durations accept 30ms / 2s / 400ms / plain milliseconds. Example — the
// paper's Figure 7 topology:
//
//   container isp1 10.1.0.0/16
//   zone modems 10.1.1.0/24 nodes=250 down=56k  up=33600 latency=100ms
//   zone dsl    10.1.2.0/24 nodes=250 down=512k up=128k  latency=40ms
//   zone fast   10.1.3.0/24 nodes=250 down=8M   up=1M    latency=20ms
//   zone g2     10.2.0.0/16 nodes=1000 down=10M up=10M   latency=5ms
//   zone g3     10.3.0.0/16 nodes=1000 down=1M  up=1M    latency=10ms
//   latency modems dsl 100ms
//   latency modems fast 100ms
//   latency dsl fast 100ms
//   latency isp1 g2 400ms
//   latency isp1 g3 600ms
//   latency g2 g3 1s
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "topology/topology.hpp"

namespace p2plab::topology {

struct ParseResult {
  std::optional<Topology> topology;  // nullopt on error
  std::string error;                 // human-readable, with line number
};

ParseResult parse_topology(std::string_view text);

/// Building blocks, exposed for reuse and tests.
std::optional<Bandwidth> parse_bandwidth(std::string_view text);
std::optional<Duration> parse_duration(std::string_view text);

}  // namespace p2plab::topology
