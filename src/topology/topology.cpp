#include "topology/topology.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace p2plab::topology {

LinkClass dsl_2m() {
  return {.down = Bandwidth::mbps(2),
          .up = Bandwidth::kbps(128),
          .latency = Duration::ms(30)};
}
LinkClass modem_56k() {
  return {.down = Bandwidth::kbps(56),
          .up = Bandwidth::bps(33600),
          .latency = Duration::ms(100)};
}
LinkClass dsl_512k() {
  return {.down = Bandwidth::kbps(512),
          .up = Bandwidth::kbps(128),
          .latency = Duration::ms(40)};
}
LinkClass dsl_8m() {
  return {.down = Bandwidth::mbps(8),
          .up = Bandwidth::mbps(1),
          .latency = Duration::ms(20)};
}
LinkClass sym_10m() {
  return {.down = Bandwidth::mbps(10),
          .up = Bandwidth::mbps(10),
          .latency = Duration::ms(5)};
}
LinkClass sym_1m() {
  return {.down = Bandwidth::mbps(1),
          .up = Bandwidth::mbps(1),
          .latency = Duration::ms(10)};
}

ZoneId Topology::add_zone(std::string name, CidrBlock subnet,
                          std::size_t node_count, LinkClass link) {
  P2PLAB_ASSERT_MSG(node_count < subnet.size(),
                    "subnet too small for node count");
  for (const Zone& other : zones_) {
    if (other.node_count > 0) {
      P2PLAB_ASSERT_MSG(!other.subnet.overlaps(subnet) || node_count == 0,
                        "node zones must be disjoint");
    }
  }
  const std::size_t prev_total = total_nodes();
  zones_.push_back(Zone{std::move(name), subnet, node_count, link});
  node_zone_begin_.push_back(prev_total);
  return zones_.size() - 1;
}

ZoneId Topology::add_container(std::string name, CidrBlock subnet) {
  zones_.push_back(Zone{std::move(name), subnet, 0, LinkClass{}});
  node_zone_begin_.push_back(total_nodes());
  return zones_.size() - 1;
}

void Topology::add_latency(ZoneId a, ZoneId b, Duration latency) {
  P2PLAB_ASSERT(a < zones_.size() && b < zones_.size() && a != b);
  P2PLAB_ASSERT_MSG(!zones_[a].subnet.overlaps(zones_[b].subnet),
                    "latency pair zones must be disjoint");
  latencies_.push_back(LatencyPair{a, b, latency});
}

std::size_t Topology::total_nodes() const {
  std::size_t total = 0;
  for (const Zone& z : zones_) total += z.node_count;
  return total;
}

ZoneId Topology::zone_of_node(std::size_t node_index) const {
  P2PLAB_ASSERT(node_index < total_nodes());
  // Zones are few; linear scan over prefix sums.
  for (std::size_t z = zones_.size(); z-- > 0;) {
    if (zones_[z].node_count > 0 && node_zone_begin_[z] <= node_index &&
        node_index < node_zone_begin_[z] + zones_[z].node_count) {
      return z;
    }
  }
  P2PLAB_ASSERT_MSG(false, "node index out of range");
}

Ipv4Addr Topology::node_address(std::size_t node_index) const {
  const ZoneId z = zone_of_node(node_index);
  const std::size_t offset = node_index - node_zone_begin_[z];
  // Host numbering starts at .1 (the .0 base is the network address).
  return zones_[z].subnet.host(static_cast<std::uint32_t>(offset + 1));
}

std::optional<ZoneId> Topology::zone_of(Ipv4Addr addr) const {
  std::optional<ZoneId> best;
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (!zones_[z].subnet.contains(addr)) continue;
    if (!best || zones_[z].subnet.prefix_len() >
                     zones_[*best].subnet.prefix_len()) {
      best = z;
    }
  }
  return best;
}

const LinkClass& Topology::link_of_node(std::size_t node_index) const {
  return zones_[zone_of_node(node_index)].link;
}

std::optional<Duration> Topology::inter_zone_latency(Ipv4Addr src,
                                                     Ipv4Addr dst) const {
  // Most specific declared pair matching (src, dst); specificity is the
  // combined prefix length, mirroring how the compiled rules are ordered.
  std::optional<Duration> best;
  int best_specificity = -1;
  for (const LatencyPair& pair : latencies_) {
    const Zone& za = zones_[pair.a];
    const Zone& zb = zones_[pair.b];
    const bool forward = za.subnet.contains(src) && zb.subnet.contains(dst);
    const bool reverse = zb.subnet.contains(src) && za.subnet.contains(dst);
    if (!forward && !reverse) continue;
    const int specificity =
        za.subnet.prefix_len() + zb.subnet.prefix_len();
    if (specificity > best_specificity) {
      best_specificity = specificity;
      best = pair.latency;
    }
  }
  return best;
}

Duration Topology::min_access_latency() const {
  Duration min = Duration::max();
  for (const Zone& zone : zones_) {
    if (zone.node_count > 0) min = std::min(min, zone.link.latency);
  }
  return min == Duration::max() ? Duration::zero() : min;
}

Topology homogeneous_dsl(std::size_t nodes, LinkClass link) {
  Topology topo;
  topo.add_zone("swarm", *CidrBlock::parse("10.0.0.0/16"), nodes, link);
  return topo;
}

Topology figure7() {
  Topology topo;
  const ZoneId isp1 =
      topo.add_container("10.1.0.0/16", *CidrBlock::parse("10.1.0.0/16"));
  const ZoneId isp1a = topo.add_zone(
      "10.1.1.0/24", *CidrBlock::parse("10.1.1.0/24"), 250, modem_56k());
  const ZoneId isp1b = topo.add_zone(
      "10.1.2.0/24", *CidrBlock::parse("10.1.2.0/24"), 250, dsl_512k());
  const ZoneId isp1c = topo.add_zone(
      "10.1.3.0/24", *CidrBlock::parse("10.1.3.0/24"), 250, dsl_8m());
  const ZoneId g2 = topo.add_zone(
      "10.2.0.0/16", *CidrBlock::parse("10.2.0.0/16"), 1000, sym_10m());
  const ZoneId g3 = topo.add_zone(
      "10.3.0.0/16", *CidrBlock::parse("10.3.0.0/16"), 1000, sym_1m());

  // 100 ms between the three ISP subnets.
  topo.add_latency(isp1a, isp1b, Duration::ms(100));
  topo.add_latency(isp1a, isp1c, Duration::ms(100));
  topo.add_latency(isp1b, isp1c, Duration::ms(100));
  // Continental latencies between the top-level groups.
  topo.add_latency(isp1, g2, Duration::ms(400));
  topo.add_latency(isp1, g3, Duration::ms(600));
  topo.add_latency(g2, g3, Duration::sec(1));
  return topo;
}

}  // namespace p2plab::topology
