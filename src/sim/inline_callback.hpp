// Small-buffer-optimized move-only callable for the event hot path.
//
// std::function is the wrong tool for a 10^8-event run: it requires
// copy-constructible targets, its small-object budget (16 bytes in
// libstdc++) is blown by any capture beyond one pointer, and every miss is
// a malloc/free round-trip on the critical path. InlineCallback stores up
// to kInlineBytes of capture in place — sized for the platform's real
// closures, which carry a few pointers plus a packet handle — and falls
// back to the heap only beyond that. Fallbacks are counted (a relaxed
// atomic tick, off the common path) so regressions surface as a moving
// `sim.alloc.callback_heap_fallbacks` counter instead of a silent perf
// cliff.
//
// Move-only on purpose: event callbacks are scheduled once and dispatched
// once, and move-only targets (a pooled PacketRef, a unique_ptr) are
// exactly what the zero-allocation path wants to carry. The dispatcher of
// a type-erased callable never needs to copy it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace p2plab::sim {

class InlineCallback {
 public:
  /// Inline capture budget. 64 bytes holds the largest steady-state
  /// closure in the stack (the pipe-walk continuation: ref + host + pipe
  /// list + stage) and is one cache line together with the ops pointer.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  /// Invoke the target (repeatedly invocable; PeriodicTask relies on it).
  void operator()() {
    P2PLAB_ASSERT_MSG(ops_ != nullptr, "invoking an empty InlineCallback");
    ops_->invoke(buf_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the target lives on the heap (capture exceeded kInlineBytes
  /// or is not nothrow-move-constructible). The simulation kernel samples
  /// this per schedule into sim.alloc.callback_heap_fallbacks.
  bool on_heap() const { return ops_ != nullptr && ops_->heap; }

  /// Process-wide count of heap-fallback constructions, for benches and
  /// tests that have no registry at hand. Relaxed: diagnostic only.
  static std::uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the target from `src` storage into `dst` storage and
    /// destroy the source (storage relocation for slab/queue moves).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
        [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
        /*heap=*/false};
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<D**>(p))(); },
        [](void* dst, void* src) noexcept {
          *static_cast<D**>(dst) = *static_cast<D**>(src);
        },
        [](void* p) noexcept { delete *static_cast<D**>(p); },
        /*heap=*/true};
    return &ops;
  }

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = heap_ops<D>();
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void steal(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  inline static std::atomic<std::uint64_t> heap_fallbacks_{0};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace p2plab::sim
