// Discrete-event simulation kernel.
//
// A Simulation owns the virtual clock and a 4-ary-heap event queue. Events
// are closures scheduled at absolute or relative times; ties dispatch in
// scheduling order (FIFO), which the rest of the platform relies on for
// determinism.
//
// Storage is split: callbacks live in a slab (stable slots, recycled via a
// free list) and the heap orders compact 24-byte {when, seq, slot} entries.
// That makes cancel() a true O(1) slab store (no scan, no heap surgery —
// the entry is dropped lazily at pop time) and keeps sift swaps small: a
// swap moves 24 bytes instead of a whole closure, which matters because
// dispatch cost dominates 10^8-event runs.
//
// The kernel itself is single-threaded: one Simulation is one logical
// timeline and must only ever be driven from one thread at a time. The
// parallel engine (src/engine) runs K independent Simulations — one per
// shard — and merges cross-shard traffic deterministically; see
// engine/engine.hpp for the synchronization protocol, which uses
// next_event_time() / advance_to() / run_before() to interleave a shard's
// heap with its cross-shard ingress.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "metrics/registry.hpp"
#include "sim/inline_callback.hpp"

namespace p2plab::sim {

/// Handle identifying a scheduled event; valid until the event fires or is
/// cancelled. The default-constructed id is "invalid" and safe to cancel.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return seq_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class Simulation;
  constexpr EventId(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

class Simulation {
 public:
  /// Event closures are small-buffer-optimized and move-only; typical
  /// captures (a few pointers + a packet handle) never touch the
  /// allocator. Oversized captures still work — they fall back to the
  /// heap and tick sim.alloc.callback_heap_fallbacks.
  using Callback = InlineCallback;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Callback cb) {
    P2PLAB_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    if (cb.on_heap()) metrics_.callback_heap_fallbacks.inc();
    const std::uint64_t seq = ++next_seq_;
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(Slot{seq, std::move(cb), false});
      metrics_.slab_capacity.set(static_cast<double>(slab_.capacity()));
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = Slot{seq, std::move(cb), false};
    }
    heap_.push_back(HeapEntry{when, seq, slot});
    sift_up(heap_.size() - 1);
    ++live_events_;
    metrics_.scheduled.inc();
    return EventId{seq, slot};
  }

  /// Schedule `cb` after a relative delay (>= 0).
  EventId schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event in O(1): the slab slot is flagged and the heap
  /// entry is discarded when it reaches the top. Returns true if the event
  /// was still pending. Safe to call with an invalid/fired/already-cancelled
  /// id (slot recycling is disambiguated by the sequence number).
  bool cancel(EventId id) {
    if (!id.valid() || id.slot_ >= slab_.size()) return false;
    Slot& s = slab_[id.slot_];
    if (s.seq != id.seq_ || s.cancelled) return false;
    s.cancelled = true;
    s.cb = nullptr;  // release captures promptly
    --live_events_;
    metrics_.cancelled.inc();
    return true;
  }

  /// Number of pending (non-cancelled) events.
  size_t pending_events() const { return live_events_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched_events() const { return dispatched_; }

  /// Time of the next pending event, skipping cancelled entries; nullopt if
  /// the queue is empty.
  std::optional<SimTime> next_event_time() {
    prune_cancelled_top();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().when;
  }

  /// Advance the clock without running events. Used by the parallel engine
  /// to move a quiescent shard to a window boundary (and by tests); all
  /// pending events must lie at or after `t`.
  void advance_to(SimTime t) {
    P2PLAB_ASSERT_MSG(t >= now_, "cannot advance the clock backwards");
    now_ = t;
  }

  /// Run one event. Returns false if the queue is empty.
  bool step() {
    for (;;) {
      if (heap_.empty()) return false;
      const HeapEntry top = pop_top();
      Slot& s = slab_[top.slot];
      if (s.cancelled) {
        free_slots_.push_back(top.slot);
        continue;
      }
      P2PLAB_ASSERT(top.when >= now_);
      now_ = top.when;
      Callback cb = std::move(s.cb);
      s.cb = nullptr;
      s.cancelled = true;  // slot is dead until recycled
      free_slots_.push_back(top.slot);
      --live_events_;
      ++dispatched_;
      metrics_.dispatched.inc();
      metrics_.queue_depth.set(static_cast<double>(live_events_));
      if (profile_dispatch_ &&
          (dispatched_ & (kDispatchSamplePeriod - 1)) == 0) {
        // Wall-clock one callback in kDispatchSamplePeriod: the histogram
        // stays representative while the two clock reads are amortized to
        // noise on the 10^8-event hot path.
        const auto t0 = std::chrono::steady_clock::now();
        cb();
        const auto t1 = std::chrono::steady_clock::now();
        metrics_.dispatch_ns.record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      } else {
        cb();
      }
      return true;
    }
  }

  /// Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run until the clock would pass `deadline`; the clock is left at
  /// min(deadline, time of last event). Events at exactly `deadline` run.
  void run_until(SimTime deadline) {
    for (;;) {
      const auto next = next_event_time();
      if (!next || *next > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Run events strictly before `end`; the clock is NOT advanced to `end`
  /// (the parallel engine owns window-boundary clock advancement).
  void run_before(SimTime end) {
    for (;;) {
      const auto next = next_event_time();
      if (!next || *next >= end) break;
      step();
    }
  }

  /// Run while `predicate()` is true and events remain.
  void run_while(const std::function<bool()>& predicate) {
    while (predicate() && step()) {
    }
  }

  /// Slots currently allocated in the slab (capacity watermark; the gauge
  /// sim.slab.capacity tracks the backing vector's capacity).
  size_t slab_size() const { return slab_.size(); }

  /// Shrink kernel storage after a burst: recycle every cancelled heap
  /// entry, pop dead trailing slab slots, and release excess vector
  /// capacity. Dispatch order is untouched — the heap is rebuilt on the
  /// same (when, seq) total order — so this is safe at any quiescent
  /// point; the parallel engine calls maybe_compact() at window
  /// boundaries, where each shard's kernel is between events by
  /// construction.
  void compact() {
    if (compact_hook_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      compact_impl();
      const auto dur = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0);
      compact_hook_(compact_ctx_, static_cast<std::uint64_t>(dur.count()));
      return;
    }
    compact_impl();
  }

  /// Wall-clock observer for compact(): invoked after each compaction with
  /// the wall nanoseconds it took. A bare function pointer + context keeps
  /// the kernel dependency-free (the BSP profiler installs itself here);
  /// virtual time and event order are untouched. nullptr clears the hook.
  using CompactHook = void (*)(void* ctx, std::uint64_t wall_dur_ns);
  void set_compact_hook(CompactHook hook, void* ctx) {
    compact_hook_ = hook;
    compact_ctx_ = ctx;
  }

 private:
  void compact_impl() {
    std::erase_if(heap_, [this](const HeapEntry& e) {
      if (!slab_[e.slot].cancelled) return false;
      free_slots_.push_back(e.slot);
      return true;
    });
    // A sorted array satisfies the heap invariant for any arity.
    std::sort(heap_.begin(), heap_.end(),
              [](const HeapEntry& a, const HeapEntry& b) { return a.before(b); });
    // Only trailing dead slots can be returned; interior ones must stay,
    // since live heap entries index into the slab.
    while (!slab_.empty() && slab_.back().cancelled) slab_.pop_back();
    std::erase_if(free_slots_, [this](std::uint32_t s) {
      return s >= slab_.size();
    });
    if (slab_.capacity() > 2 * slab_.size()) slab_.shrink_to_fit();
    if (heap_.capacity() > 2 * heap_.size()) heap_.shrink_to_fit();
    if (free_slots_.capacity() > 2 * free_slots_.size()) {
      free_slots_.shrink_to_fit();
    }
    last_compact_slots_ = slab_.size();
    metrics_.slab_capacity.set(static_cast<double>(slab_.capacity()));
  }

 public:
  /// compact() when the slab is mostly dead after a burst (occupancy
  /// < 25% over at least kCompactMinSlots). The slab-size memo makes the
  /// check O(1) between growths: a compact that could not shrink (a live
  /// slot pins the tail) is not retried until the slab grows again.
  void maybe_compact() {
    if (slab_.size() >= kCompactMinSlots &&
        live_events_ * 4 < slab_.size() &&
        slab_.size() != last_compact_slots_) {
      compact();
    }
  }

  /// Resolve kernel metrics from `reg`. Call before running: the counters
  /// count from the moment they are bound (a fresh simulation keeps
  /// `sim.events.dispatched` equal to dispatched_events()). Binding also
  /// enables the sampled dispatch-time histogram. `reg` must outlive the
  /// simulation AND its users: component teardown that cancels events
  /// still increments the bound counters.
  void bind_metrics(metrics::Registry& reg) {
    metrics_.scheduled = reg.counter("sim.events.scheduled");
    metrics_.dispatched = reg.counter("sim.events.dispatched");
    metrics_.cancelled = reg.counter("sim.events.cancelled");
    metrics_.queue_depth = reg.gauge("sim.queue.depth");
    metrics_.callback_heap_fallbacks =
        reg.counter("sim.alloc.callback_heap_fallbacks");
    metrics_.slab_capacity = reg.gauge("sim.slab.capacity");
    metrics_.slab_capacity.set(static_cast<double>(slab_.capacity()));
    metrics_.dispatch_ns = reg.histogram(
        "sim.dispatch.wall_ns",
        {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000, 1000000});
    profile_dispatch_ = true;
  }

 private:
  /// Slab cell: the closure plus the seq that disambiguates slot reuse.
  struct Slot {
    std::uint64_t seq = 0;
    Callback cb;
    bool cancelled = false;
  };

  /// Compact heap entry; ordering key only, so sift swaps stay cheap.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
    std::uint32_t slot = 0;

    bool before(const HeapEntry& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };

  // 4-ary heap: half the depth of a binary heap and fewer cache misses,
  // which matters because dispatch cost dominates 10^8-event runs.
  static constexpr size_t kArity = 4;

  void sift_up(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      const size_t first_child = kArity * i + 1;
      if (first_child >= n) break;
      const size_t last_child = std::min(first_child + kArity, n);
      size_t smallest = i;
      for (size_t c = first_child; c < last_child; ++c) {
        if (heap_[c].before(heap_[smallest])) smallest = c;
      }
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  HeapEntry pop_top() {
    P2PLAB_ASSERT(!heap_.empty());
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Drop cancelled entries off the heap top so front() is a live event.
  void prune_cancelled_top() {
    while (!heap_.empty() && slab_[heap_.front().slot].cancelled) {
      free_slots_.push_back(pop_top().slot);
    }
  }

  // Kernel instrumentation. Default handles write to no-op sinks, so an
  // unbound simulation pays two dead stores per event and no branches.
  struct KernelMetrics {
    metrics::Counter scheduled;
    metrics::Counter dispatched;
    metrics::Counter cancelled;
    metrics::Counter callback_heap_fallbacks;
    metrics::Gauge queue_depth;
    metrics::Gauge slab_capacity;
    metrics::Histogram dispatch_ns;
  };
  static constexpr std::uint64_t kDispatchSamplePeriod = 64;
  static constexpr size_t kCompactMinSlots = 1024;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  size_t live_events_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  size_t last_compact_slots_ = 0;
  KernelMetrics metrics_;
  bool profile_dispatch_ = false;
  CompactHook compact_hook_ = nullptr;
  void* compact_ctx_ = nullptr;
};

/// A repeating task: reschedules itself every `period` until stopped.
/// Holds no ownership of the simulation; stop() before destroying it if the
/// simulation outlives this object.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Start firing `cb` every `period`, first at now+`initial_delay`.
  void start(Simulation& sim, Duration period, Duration initial_delay,
             Simulation::Callback cb) {
    P2PLAB_ASSERT(period > Duration::zero());
    stop();
    sim_ = &sim;
    period_ = period;
    cb_ = std::move(cb);
    arm(initial_delay);
  }

  void stop() {
    if (sim_ != nullptr) sim_->cancel(pending_);
    pending_ = EventId{};
    sim_ = nullptr;
  }

  bool running() const { return sim_ != nullptr; }

  ~PeriodicTask() { stop(); }

 private:
  void arm(Duration delay) {
    pending_ = sim_->schedule_after(delay, [this] {
      // Re-arm first so cb_ may call stop() to end the cycle.
      arm(period_);
      cb_();
    });
  }

  Simulation* sim_ = nullptr;
  Duration period_ = Duration::zero();
  EventId pending_;
  Simulation::Callback cb_;
};

}  // namespace p2plab::sim
