// Discrete-event simulation kernel.
//
// A Simulation owns the virtual clock and a 4-ary-heap event queue. Events
// are closures scheduled at absolute or relative times; ties dispatch in
// scheduling order (FIFO), which the rest of the platform relies on for
// determinism. Cancellation is lazy: a cancelled event stays in the heap
// and is skipped at pop time, keeping cancel() O(1).
//
// The kernel is single-threaded by design: a P2PLab experiment is one
// logical timeline, and runs at the 5760-node scale push ~10^8 events, so
// dispatch cost (one heap pop + one indirect call) dominates engineering
// choices here.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "metrics/registry.hpp"

namespace p2plab::sim {

/// Handle identifying a scheduled event; valid until the event fires or is
/// cancelled. The default-constructed id is "invalid" and safe to cancel.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return seq_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class Simulation;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Callback cb) {
    P2PLAB_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    const std::uint64_t seq = ++next_seq_;
    heap_.push_back(Event{when, seq, std::move(cb), false});
    sift_up(heap_.size() - 1);
    ++live_events_;
    metrics_.scheduled.inc();
    return EventId{seq};
  }

  /// Schedule `cb` after a relative delay (>= 0).
  EventId schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Returns true if it was still pending. Safe to
  /// call with an invalid/fired/already-cancelled id.
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    // Lazy cancellation: find is O(n) in the worst case, so we instead keep
    // a side index only when needed. In practice cancels target recently
    // scheduled timers; we scan from the back where they usually live.
    for (size_t i = heap_.size(); i-- > 0;) {
      if (heap_[i].seq == id.seq_) {
        if (heap_[i].cancelled) return false;
        heap_[i].cancelled = true;
        heap_[i].cb = nullptr;  // release captures promptly
        --live_events_;
        metrics_.cancelled.inc();
        metrics_.cancel_scan.record(static_cast<double>(heap_.size() - i));
        return true;
      }
    }
    metrics_.cancel_scan.record(static_cast<double>(heap_.size()));
    return false;
  }

  /// Number of pending (non-cancelled) events.
  size_t pending_events() const { return live_events_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched_events() const { return dispatched_; }

  /// Run one event. Returns false if the queue is empty.
  bool step() {
    for (;;) {
      if (heap_.empty()) return false;
      Event ev = pop_top();
      if (ev.cancelled) continue;
      P2PLAB_ASSERT(ev.when >= now_);
      now_ = ev.when;
      --live_events_;
      ++dispatched_;
      metrics_.dispatched.inc();
      metrics_.queue_depth.set(static_cast<double>(live_events_));
      if (profile_dispatch_ &&
          (dispatched_ & (kDispatchSamplePeriod - 1)) == 0) {
        // Wall-clock one callback in kDispatchSamplePeriod: the histogram
        // stays representative while the two clock reads are amortized to
        // noise on the 10^8-event hot path.
        const auto t0 = std::chrono::steady_clock::now();
        ev.cb();
        const auto t1 = std::chrono::steady_clock::now();
        metrics_.dispatch_ns.record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      } else {
        ev.cb();
      }
      return true;
    }
  }

  /// Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run until the clock would pass `deadline`; the clock is left at
  /// min(deadline, time of last event). Events at exactly `deadline` run.
  void run_until(SimTime deadline) {
    for (;;) {
      // Skip cancelled entries to expose the real next event time.
      while (!heap_.empty() && heap_.front().cancelled) pop_top();
      if (heap_.empty()) break;
      if (heap_.front().when > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  /// Run while `predicate()` is true and events remain.
  void run_while(const std::function<bool()>& predicate) {
    while (predicate() && step()) {
    }
  }

  /// Resolve kernel metrics from `reg`. Call before running: the counters
  /// count from the moment they are bound (a fresh simulation keeps
  /// `sim.events.dispatched` equal to dispatched_events()). Binding also
  /// enables the sampled dispatch-time histogram. `reg` must outlive the
  /// simulation AND its users: component teardown that cancels events
  /// still increments the bound counters.
  void bind_metrics(metrics::Registry& reg) {
    metrics_.scheduled = reg.counter("sim.events.scheduled");
    metrics_.dispatched = reg.counter("sim.events.dispatched");
    metrics_.cancelled = reg.counter("sim.events.cancelled");
    metrics_.queue_depth = reg.gauge("sim.queue.depth");
    metrics_.cancel_scan = reg.histogram(
        "sim.cancel.scan_len", {1, 4, 16, 64, 256, 1024, 4096, 16384});
    metrics_.dispatch_ns = reg.histogram(
        "sim.dispatch.wall_ns",
        {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000, 1000000});
    profile_dispatch_ = true;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
    Callback cb;
    bool cancelled = false;

    bool before(const Event& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };

  // 4-ary heap: half the depth of a binary heap and fewer cache misses,
  // which matters because dispatch cost dominates 10^8-event runs.
  static constexpr size_t kArity = 4;

  void sift_up(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      const size_t first_child = kArity * i + 1;
      if (first_child >= n) break;
      const size_t last_child = std::min(first_child + kArity, n);
      size_t smallest = i;
      for (size_t c = first_child; c < last_child; ++c) {
        if (heap_[c].before(heap_[smallest])) smallest = c;
      }
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  Event pop_top() {
    P2PLAB_ASSERT(!heap_.empty());
    Event top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  // Kernel instrumentation. Default handles write to no-op sinks, so an
  // unbound simulation pays two dead stores per event and no branches.
  struct KernelMetrics {
    metrics::Counter scheduled;
    metrics::Counter dispatched;
    metrics::Counter cancelled;
    metrics::Gauge queue_depth;
    metrics::Histogram cancel_scan;
    metrics::Histogram dispatch_ns;
  };
  static constexpr std::uint64_t kDispatchSamplePeriod = 64;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  size_t live_events_ = 0;
  std::vector<Event> heap_;
  KernelMetrics metrics_;
  bool profile_dispatch_ = false;
};

/// A repeating task: reschedules itself every `period` until stopped.
/// Holds no ownership of the simulation; stop() before destroying it if the
/// simulation outlives this object.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Start firing `cb` every `period`, first at now+`initial_delay`.
  void start(Simulation& sim, Duration period, Duration initial_delay,
             std::function<void()> cb) {
    P2PLAB_ASSERT(period > Duration::zero());
    stop();
    sim_ = &sim;
    period_ = period;
    cb_ = std::move(cb);
    arm(initial_delay);
  }

  void stop() {
    if (sim_ != nullptr) sim_->cancel(pending_);
    pending_ = EventId{};
    sim_ = nullptr;
  }

  bool running() const { return sim_ != nullptr; }

  ~PeriodicTask() { stop(); }

 private:
  void arm(Duration delay) {
    pending_ = sim_->schedule_after(delay, [this] {
      // Re-arm first so cb_ may call stop() to end the cycle.
      arm(period_);
      cb_();
    });
  }

  Simulation* sim_ = nullptr;
  Duration period_ = Duration::zero();
  EventId pending_;
  std::function<void()> cb_;
};

}  // namespace p2plab::sim
