#include "fault/injector.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "metrics/recorder.hpp"

namespace p2plab::fault {

FaultInjector::FaultInjector(core::Platform& platform, FaultPlan plan,
                             InjectorConfig config)
    : platform_(platform), plan_(std::move(plan)), config_(config) {
  plan_.sort();
}

void FaultInjector::bind_metrics(metrics::Registry& reg) {
  metrics_.injected = reg.counter("fault.injected");
  metrics_.recovered = reg.counter("fault.recovered");
  metrics_.active = reg.gauge("fault.active");
}

sim::Simulation& FaultInjector::sim_for(const FaultSpec& spec) {
  const std::size_t vnode =
      spec.kind == FaultKind::kTrackerOutage ? 0 : spec.node;
  return platform_.sim_of_vnode(vnode);
}

void FaultInjector::arm() {
  P2PLAB_ASSERT_MSG(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  std::uint64_t next_id = 0;
  for (const FaultSpec& spec : plan_.specs()) {
    const std::uint64_t id = next_id++;
    // Each fault is scheduled on the simulation owning its target, so in
    // engine mode the injection executes on that shard's worker thread and
    // only ever touches that shard's infrastructure.
    sim::Simulation& sim = sim_for(spec);
    const SimTime at = spec.at < sim.now() ? sim.now() : spec.at;
    sim.schedule_at(at, [this, spec, id] { inject(spec, id); });
  }
}

void FaultInjector::mark_injected(const FaultSpec& spec, std::uint64_t id,
                                  SimTime at) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected;
    metrics_.injected.inc();
    metrics_.active.set(static_cast<double>(stats_.unrecovered()));
  }
  P2PLAB_TRACE(at, "fault", "fault_injected",
               {{"id", id},
                {"type", fault_kind_name(spec.kind)},
                {"node", spec.node}});
}

void FaultInjector::mark_recovered(const FaultSpec& spec, std::uint64_t id,
                                   SimTime at) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.recovered;
    metrics_.recovered.inc();
    metrics_.active.set(static_cast<double>(stats_.unrecovered()));
  }
  P2PLAB_TRACE(at, "fault", "fault_recovered",
               {{"id", id},
                {"type", fault_kind_name(spec.kind)},
                {"node", spec.node}});
}

void FaultInjector::inject(const FaultSpec& spec, std::uint64_t id) {
  sim::Simulation& sim = sim_for(spec);
  mark_injected(spec, id, sim.now());

  switch (spec.kind) {
    case FaultKind::kCrash:
      // Infrastructure dies first (sockets aborted silently, address
      // detached), then the application forgets its session state; with
      // the sockets already closed, nothing the hook does can leak onto
      // the wire.
      platform_.crash_vnode(spec.node);
      if (node_hooks_.on_crash) node_hooks_.on_crash(spec.node);
      if (spec.rejoin) {
        sim.schedule_after(spec.duration, [this, spec, id] {
          platform_.rejoin_vnode(spec.node);
          if (node_hooks_.on_rejoin) node_hooks_.on_rejoin(spec.node);
          mark_recovered(spec, id, sim_for(spec).now());
        });
      } else {
        // Permanent departure: the teardown itself is the recovery — the
        // platform is in its intended post-fault state right away.
        mark_recovered(spec, id, sim_for(spec).now());
      }
      break;

    case FaultKind::kLeave:
      if (node_hooks_.on_leave) node_hooks_.on_leave(spec.node);
      // The grace period lets the farewell traffic (stopped announce,
      // FINs) drain before the address disappears.
      sim.schedule_after(config_.leave_grace, [this, spec, id] {
        platform_.crash_vnode(spec.node);
        mark_recovered(spec, id, sim_for(spec).now());
      });
      break;

    case FaultKind::kLinkDown:
      platform_.set_link_down(spec.node, true);
      sim.schedule_after(spec.duration, [this, spec, id] {
        platform_.set_link_down(spec.node, false);
        mark_recovered(spec, id, sim_for(spec).now());
      });
      break;

    case FaultKind::kLatencySpike:
      platform_.set_link_latency_offset(spec.node, spec.extra_latency);
      sim.schedule_after(spec.duration, [this, spec, id] {
        platform_.set_link_latency_offset(spec.node, Duration::zero());
        mark_recovered(spec, id, sim_for(spec).now());
      });
      break;

    case FaultKind::kBurstLoss:
      platform_.set_link_burst_loss(spec.node, spec.burst);
      sim.schedule_after(spec.duration, [this, spec, id] {
        // An empty model restores the topology's own configuration.
        platform_.set_link_burst_loss(spec.node, ipfw::GilbertElliott{});
        mark_recovered(spec, id, sim_for(spec).now());
      });
      break;

    case FaultKind::kTrackerOutage: {
      // Overlapping outage windows refcount: the tracker restores when the
      // last window closes. (All tracker faults run on vnode 0's shard, so
      // the lock is for the header's invariant, not contention.)
      bool first;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        first = ++tracker_outages_ == 1;
      }
      if (first && service_hooks_.on_tracker_outage) {
        service_hooks_.on_tracker_outage();
      }
      sim.schedule_after(spec.duration, [this, spec, id] {
        bool last;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          last = --tracker_outages_ == 0;
        }
        if (last && service_hooks_.on_tracker_restore) {
          service_hooks_.on_tracker_restore();
        }
        mark_recovered(spec, id, sim_for(spec).now());
      });
      break;
    }
  }
}

}  // namespace p2plab::fault
