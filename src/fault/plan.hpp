// Fault plans: deterministic failure schedules.
//
// A FaultPlan is the declarative half of the fault-injection subsystem: a
// time-ordered list of faults (node crashes, graceful departures, link
// flaps, latency spikes, bursty-loss windows, tracker outages) with no idea
// how they are executed. The FaultInjector (injector.hpp) walks the plan
// and drives the platform on the sim clock.
//
// Plans come from three sources, all deterministic:
//   * a builder API (plan.crash(4, SimTime::seconds(30)).link_down(...)),
//   * a scenario file, one directive per line (see parse() below),
//   * the churn generator, which expands a ChurnConfig + seeded Rng into a
//     concrete schedule — same seed, same config => same plan, so churn
//     experiments replay bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "ipfw/pipe.hpp"

namespace p2plab::fault {

enum class FaultKind {
  kCrash,          // kill -9; rejoins after `duration` iff `rejoin`
  kLeave,          // graceful departure: app stops, address detaches
  kLinkDown,       // access link administratively down for `duration`
  kLatencySpike,   // +`extra_latency` one-way for `duration`
  kBurstLoss,      // Gilbert-Elliott override for `duration`
  kTrackerOutage,  // service fault: tracker offline for `duration`
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  std::size_t node = 0;  // vnode index; ignored for kTrackerOutage
  SimTime at;            // injection time
  /// Fault window; for kCrash with `rejoin`, the downtime before rejoining.
  Duration duration = Duration::zero();
  bool rejoin = false;                            // kCrash only
  Duration extra_latency = Duration::zero();      // kLatencySpike only
  ipfw::GilbertElliott burst;                     // kBurstLoss only
};

/// Deterministic churn schedule parameters (see FaultPlan::churn).
struct ChurnConfig {
  std::size_t first_node = 0;
  std::size_t last_node = 0;  // inclusive
  /// Share of [first_node, last_node] that fails, rounded down.
  double fraction = 0.3;
  /// Failure times are uniform in [window_start, window_end).
  SimTime window_start;
  SimTime window_end;
  /// Share of failing nodes that come back (the rest depart for good).
  double rejoin_fraction = 0.5;
  /// Downtime for rejoining nodes, uniform in [rejoin_min, rejoin_max).
  Duration rejoin_min = Duration::seconds(10);
  Duration rejoin_max = Duration::seconds(60);
  /// Failures are graceful leaves instead of crashes with this probability.
  double leave_fraction = 0.0;
};

struct PlanParseResult;

/// Parse a duration as fault/scenario files write them: bare numbers are
/// *seconds* (30 == 30s), with ms/us/s suffixes accepted. Exposed so the
/// scenario DSL (src/scenario) agrees with the .fault format byte for byte.
std::optional<Duration> parse_scenario_duration(std::string_view text);

class FaultPlan {
 public:
  // Builder API — each call appends one spec and returns *this.
  FaultPlan& crash(std::size_t node, SimTime at);
  FaultPlan& crash_and_rejoin(std::size_t node, SimTime at, Duration after);
  FaultPlan& leave(std::size_t node, SimTime at);
  FaultPlan& link_down(std::size_t node, SimTime at, Duration window);
  FaultPlan& latency_spike(std::size_t node, SimTime at, Duration extra,
                           Duration window);
  FaultPlan& burst_loss(std::size_t node, SimTime at, Duration window,
                        const ipfw::GilbertElliott& ge);
  FaultPlan& tracker_outage(SimTime at, Duration window);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  std::size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }

  /// Append every spec of `other` (used to combine an explicit plan with a
  /// generated churn schedule). Call sort() afterwards.
  FaultPlan& append(const FaultPlan& other);

  /// Time-order the specs (stable: equal-time faults keep insertion order,
  /// matching the sim kernel's FIFO tie-break). The injector calls this.
  void sort();

  /// Expand a churn configuration into a concrete schedule. Node selection,
  /// failure times, leave-vs-crash and rejoin draws all come from `rng`, so
  /// the result is a pure function of (config, rng state).
  static FaultPlan churn(const ChurnConfig& config, Rng& rng);

  /// Parse a scenario file. One directive per line; '#' starts a comment.
  ///
  ///   crash node=N at=T [rejoin=D]
  ///   leave node=N at=T
  ///   linkdown node=N at=T for=D
  ///   spike node=N at=T add=D for=D
  ///   burstloss node=N at=T for=D pgb=P pbg=P [lossbad=P] [lossgood=P]
  ///   tracker_outage at=T for=D
  ///
  /// Times/durations accept s/ms/us suffixes (bare numbers are seconds,
  /// matching how scenarios are written; 30 == 30s).
  static PlanParseResult parse(std::string_view text);

 private:
  std::vector<FaultSpec> specs_;
};

struct PlanParseResult {
  std::optional<FaultPlan> plan;
  std::string error;  // set iff !plan
};

}  // namespace p2plab::fault
