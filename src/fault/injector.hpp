// The fault injector: executes a FaultPlan on the sim clock.
//
// arm() schedules every spec of the plan as simulation events. Node faults
// are executed against the platform (socket abort + address detach/rejoin,
// pipe reconfiguration); the application layer participates through hooks —
// the injector tears down *infrastructure*, the hooks tear down or restart
// the *studied process* (e.g. bittorrent::Client::crash() / start()).
// Service faults (tracker outage) are entirely hook-driven since the
// tracker is an application.
//
// Every injection emits a "fault"/"fault_injected" trace event carrying a
// unique id, and every completed fault emits a matching
// "fault"/"fault_recovered" with the same id: window faults recover when
// the window closes, crash-with-rejoin when the node is back, and permanent
// departures (crash/leave without rejoin) as soon as the teardown finished
// cleanly — "recovered" means the emulator reached the intended post-fault
// state, which is what CI asserts on (no unpaired injections = no wedged
// teardown). stats().unrecovered() counts in-flight faults; it must be zero
// once the run drains.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "core/platform.hpp"
#include "fault/plan.hpp"
#include "metrics/registry.hpp"

namespace p2plab::fault {

/// Application-level participation in node faults. All optional; the node
/// index is the platform vnode index from the FaultSpec.
struct NodeHooks {
  /// After the platform aborted the sockets and detached the address: the
  /// studied process drops its session state (no goodbyes can escape —
  /// every socket is already dead).
  std::function<void(std::size_t)> on_crash;
  /// Graceful departure: the process says goodbye (e.g. announces
  /// "stopped") before its address detaches after a grace period.
  std::function<void(std::size_t)> on_leave;
  /// After the address is reachable again: restart the process.
  std::function<void(std::size_t)> on_rejoin;
};

/// Service-fault participation (tracker outage windows).
struct ServiceHooks {
  std::function<void()> on_tracker_outage;
  std::function<void()> on_tracker_restore;
};

struct InjectorStats {
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t unrecovered() const { return injected - recovered; }
};

struct InjectorConfig {
  /// A graceful leave detaches the address this long after on_leave, so
  /// farewell messages (tracker "stopped" announce, FINs) get out.
  Duration leave_grace = Duration::millis(500);
};

struct InjectorMetrics {
  metrics::Counter injected;
  metrics::Counter recovered;
  metrics::Gauge active;
};

class FaultInjector {
 public:
  FaultInjector(core::Platform& platform, FaultPlan plan,
                InjectorConfig config = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_node_hooks(NodeHooks hooks) { node_hooks_ = std::move(hooks); }
  void set_service_hooks(ServiceHooks hooks) {
    service_hooks_ = std::move(hooks);
  }

  /// Schedule the whole plan. Call once, before (or while) the sim runs;
  /// specs whose time is already past fire at the current instant.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const InjectorStats& stats() const { return stats_; }

  /// Resolve "fault.*" handles ("fault.injected", "fault.recovered",
  /// "fault.active").
  void bind_metrics(metrics::Registry& reg);

 private:
  void inject(const FaultSpec& spec, std::uint64_t id);
  void mark_injected(const FaultSpec& spec, std::uint64_t id, SimTime at);
  void mark_recovered(const FaultSpec& spec, std::uint64_t id, SimTime at);
  /// The simulation owning the spec's target: node faults run on the
  /// faulted vnode's shard, service faults on the tracker's (vnode 0).
  sim::Simulation& sim_for(const FaultSpec& spec);

  core::Platform& platform_;
  FaultPlan plan_;
  InjectorConfig config_;
  NodeHooks node_hooks_;
  ServiceHooks service_hooks_;
  InjectorStats stats_;
  InjectorMetrics metrics_;
  /// Guards stats_, metrics_ and tracker_outages_: in engine mode faults
  /// execute on shard worker threads, and the master-registry cells behind
  /// metrics_ are plain non-atomic stores.
  std::mutex mu_;
  bool armed_ = false;
  std::uint64_t tracker_outages_ = 0;  // nested-outage refcount
};

}  // namespace p2plab::fault
