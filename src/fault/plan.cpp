#include "fault/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

namespace p2plab::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kBurstLoss: return "burst_loss";
    case FaultKind::kTrackerOutage: return "tracker_outage";
  }
  return "unknown";
}

FaultPlan& FaultPlan::crash(std::size_t node, SimTime at) {
  specs_.push_back({.kind = FaultKind::kCrash, .node = node, .at = at});
  return *this;
}

FaultPlan& FaultPlan::crash_and_rejoin(std::size_t node, SimTime at,
                                       Duration after) {
  specs_.push_back({.kind = FaultKind::kCrash, .node = node, .at = at,
                    .duration = after, .rejoin = true});
  return *this;
}

FaultPlan& FaultPlan::leave(std::size_t node, SimTime at) {
  specs_.push_back({.kind = FaultKind::kLeave, .node = node, .at = at});
  return *this;
}

FaultPlan& FaultPlan::link_down(std::size_t node, SimTime at,
                                Duration window) {
  specs_.push_back({.kind = FaultKind::kLinkDown, .node = node, .at = at,
                    .duration = window});
  return *this;
}

FaultPlan& FaultPlan::latency_spike(std::size_t node, SimTime at,
                                    Duration extra, Duration window) {
  specs_.push_back({.kind = FaultKind::kLatencySpike, .node = node, .at = at,
                    .duration = window, .extra_latency = extra});
  return *this;
}

FaultPlan& FaultPlan::burst_loss(std::size_t node, SimTime at,
                                 Duration window,
                                 const ipfw::GilbertElliott& ge) {
  specs_.push_back({.kind = FaultKind::kBurstLoss, .node = node, .at = at,
                    .duration = window, .burst = ge});
  return *this;
}

FaultPlan& FaultPlan::tracker_outage(SimTime at, Duration window) {
  specs_.push_back({.kind = FaultKind::kTrackerOutage, .at = at,
                    .duration = window});
  return *this;
}

FaultPlan& FaultPlan::append(const FaultPlan& other) {
  specs_.insert(specs_.end(), other.specs_.begin(), other.specs_.end());
  return *this;
}

void FaultPlan::sort() {
  std::stable_sort(specs_.begin(), specs_.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::churn(const ChurnConfig& config, Rng& rng) {
  FaultPlan plan;
  P2PLAB_ASSERT(config.first_node <= config.last_node);
  P2PLAB_ASSERT(config.window_end >= config.window_start);
  const std::size_t population = config.last_node - config.first_node + 1;
  const auto victims_wanted = static_cast<std::size_t>(
      static_cast<double>(population) * config.fraction);

  // Choose distinct victims by shuffling the population and taking a
  // prefix; every draw below comes from `rng` in a fixed order, so the
  // schedule is a pure function of (config, rng state).
  std::vector<std::size_t> nodes(population);
  for (std::size_t k = 0; k < population; ++k) {
    nodes[k] = config.first_node + k;
  }
  rng.shuffle(nodes);
  nodes.resize(victims_wanted);

  const double window_ns = static_cast<double>(
      (config.window_end - config.window_start).count_ns());
  for (const std::size_t node : nodes) {
    const SimTime at =
        config.window_start +
        Duration::ns(static_cast<std::int64_t>(rng.uniform01() * window_ns));
    if (rng.chance(config.leave_fraction)) {
      plan.leave(node, at);
    } else if (rng.chance(config.rejoin_fraction)) {
      const Duration down =
          config.rejoin_min +
          (config.rejoin_max - config.rejoin_min).scaled(rng.uniform01());
      plan.crash_and_rejoin(node, at, down);
    } else {
      plan.crash(node, at);
    }
  }
  plan.sort();
  return plan;
}

// Scenario files are written in human units: bare numbers are *seconds*
// (unlike the topology DSL, where bare numbers are milliseconds — link
// latencies live at the millisecond scale, fault schedules at seconds).
std::optional<Duration> parse_scenario_duration(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double to_seconds = 1.0;
  std::string_view digits = text;
  if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    to_seconds = 1e-3;
    digits.remove_suffix(2);
  } else if (text.size() > 2 && text.substr(text.size() - 2) == "us") {
    to_seconds = 1e-6;
    digits.remove_suffix(2);
  } else if (text.back() == 's') {
    digits.remove_suffix(1);
  }
  if (digits.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string owned(digits);
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || value < 0) return std::nullopt;
  return Duration::seconds(value * to_seconds);
}

namespace {

std::optional<double> parse_probability(std::string_view text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || value < 0 || value > 1) {
    return std::nullopt;
  }
  return value;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

PlanParseResult FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;

  auto fail = [&](const std::string& message) {
    PlanParseResult result;
    result.error = "line " + std::to_string(line_number) + ": " + message;
    return result;
  };

  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    // Collect key=value attributes common to all directives.
    std::map<std::string, std::string> attrs;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("expected key=value, got '" + tokens[i] + "'");
      }
      attrs[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    // Attribute readers consume their key so leftovers (typos like
    // rejion=60, which would silently change the fault) are rejected below.
    auto duration_attr = [&](const char* key) -> std::optional<Duration> {
      const auto it = attrs.find(key);
      if (it == attrs.end()) return std::nullopt;
      const auto parsed = parse_scenario_duration(it->second);
      attrs.erase(it);
      return parsed;
    };
    auto probability_attr = [&](const char* key) -> std::optional<double> {
      const auto it = attrs.find(key);
      if (it == attrs.end()) return std::nullopt;
      const auto parsed = parse_probability(it->second);
      attrs.erase(it);
      return parsed;
    };
    std::optional<std::size_t> node;
    if (const auto it = attrs.find("node"); it != attrs.end()) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(it->second.c_str(), &end, 10);
      if (end != it->second.c_str() + it->second.size()) {
        return fail("bad node index '" + it->second + "'");
      }
      node = static_cast<std::size_t>(v);
      attrs.erase(it);
    }
    const auto at = duration_attr("at");

    if (directive == "crash") {
      if (!node || !at) return fail("crash node=N at=T [rejoin=D]");
      if (attrs.count("rejoin") != 0) {
        const auto rejoin = duration_attr("rejoin");
        if (!rejoin) return fail("bad rejoin delay");
        plan.crash_and_rejoin(*node, SimTime::zero() + *at, *rejoin);
      } else {
        plan.crash(*node, SimTime::zero() + *at);
      }
    } else if (directive == "leave") {
      if (!node || !at) return fail("leave node=N at=T");
      plan.leave(*node, SimTime::zero() + *at);
    } else if (directive == "linkdown") {
      const auto window = duration_attr("for");
      if (!node || !at || !window) return fail("linkdown node=N at=T for=D");
      plan.link_down(*node, SimTime::zero() + *at, *window);
    } else if (directive == "spike") {
      const auto extra = duration_attr("add");
      const auto window = duration_attr("for");
      if (!node || !at || !extra || !window) {
        return fail("spike node=N at=T add=D for=D");
      }
      plan.latency_spike(*node, SimTime::zero() + *at, *extra, *window);
    } else if (directive == "burstloss") {
      const auto window = duration_attr("for");
      const auto pgb = probability_attr("pgb");
      const auto pbg = probability_attr("pbg");
      if (!node || !at || !window || !pgb || !pbg || *pbg <= 0) {
        return fail("burstloss node=N at=T for=D pgb=P pbg=P"
                    " [lossbad=P] [lossgood=P]");
      }
      ipfw::GilbertElliott ge{.p_good_to_bad = *pgb, .p_bad_to_good = *pbg};
      if (attrs.count("lossbad") != 0) {
        const auto p = probability_attr("lossbad");
        if (!p) return fail("bad lossbad");
        ge.loss_bad = *p;
      }
      if (attrs.count("lossgood") != 0) {
        const auto p = probability_attr("lossgood");
        if (!p) return fail("bad lossgood");
        ge.loss_good = *p;
      }
      plan.burst_loss(*node, SimTime::zero() + *at, *window, ge);
    } else if (directive == "tracker_outage") {
      const auto window = duration_attr("for");
      if (!at || !window) return fail("tracker_outage at=T for=D");
      plan.tracker_outage(SimTime::zero() + *at, *window);
    } else {
      return fail("unknown directive '" + directive + "'");
    }
    if (!attrs.empty()) {
      return fail("unknown attribute '" + attrs.begin()->first + "'");
    }
  }

  plan.sort();
  PlanParseResult result;
  result.plan = std::move(plan);
  return result;
}

}  // namespace p2plab::fault
