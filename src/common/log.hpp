// Minimal leveled logger.
//
// Kept deliberately tiny: experiments at the 5760-node scale produce
// millions of loggable events, so log calls below the active level must
// cost one branch. Output goes to stderr; experiment *data* never goes
// through the logger (see metrics/trace.hpp for that).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace p2plab {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
inline LogLevel g_log_level = LogLevel::kWarn;
}

inline void set_log_level(LogLevel level) { detail::g_log_level = level; }
inline LogLevel log_level() { return detail::g_log_level; }

inline void vlog(LogLevel level, const char* fmt, std::va_list args) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[p2plab %s] ", kNames[static_cast<int>(level)]);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

#if defined(__GNUC__)
#define P2PLAB_PRINTF_LIKE __attribute__((format(printf, 2, 3)))
#else
#define P2PLAB_PRINTF_LIKE
#endif

inline void log(LogLevel level, const char* fmt, ...) P2PLAB_PRINTF_LIKE;

inline void log(LogLevel level, const char* fmt, ...) {
  if (level < detail::g_log_level) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define P2PLAB_LOG_DEBUG(...) ::p2plab::log(::p2plab::LogLevel::kDebug, __VA_ARGS__)
#define P2PLAB_LOG_INFO(...) ::p2plab::log(::p2plab::LogLevel::kInfo, __VA_ARGS__)
#define P2PLAB_LOG_WARN(...) ::p2plab::log(::p2plab::LogLevel::kWarn, __VA_ARGS__)
#define P2PLAB_LOG_ERROR(...) ::p2plab::log(::p2plab::LogLevel::kError, __VA_ARGS__)

}  // namespace p2plab
