// Minimal leveled logger.
//
// Kept deliberately tiny: experiments at the 5760-node scale produce
// millions of loggable events, so log calls below the active level must
// cost one branch. Output goes to stderr; experiment *data* never goes
// through the logger (see metrics/trace.hpp for that).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace p2plab {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
inline LogLevel g_log_level = LogLevel::kWarn;
}

inline void set_log_level(LogLevel level) { detail::g_log_level = level; }
inline LogLevel log_level() { return detail::g_log_level; }

inline void vlog(LogLevel level, const char* fmt, std::va_list args) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[p2plab %s] ", kNames[static_cast<int>(level)]);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

#if defined(__GNUC__)
#define P2PLAB_PRINTF_LIKE __attribute__((format(printf, 2, 3)))
#else
#define P2PLAB_PRINTF_LIKE
#endif

inline void log(LogLevel level, const char* fmt, ...) P2PLAB_PRINTF_LIKE;

inline void log(LogLevel level, const char* fmt, ...) {
  if (level < detail::g_log_level) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

/// True when `level` would be emitted (guard for expensive log prep).
#define P2PLAB_LOG_ENABLED(level) ((level) >= ::p2plab::log_level())

// The level check lives in the macro so a disabled call site costs one
// branch: the arguments (often to_string() allocations) are never
// evaluated and no va_list is set up. log() re-checks for direct callers.
#define P2PLAB_LOG_AT(level, ...)                            \
  do {                                                       \
    if (P2PLAB_LOG_ENABLED(level)) {                         \
      ::p2plab::log((level), __VA_ARGS__);                   \
    }                                                        \
  } while (0)

#define P2PLAB_LOG_DEBUG(...) P2PLAB_LOG_AT(::p2plab::LogLevel::kDebug, __VA_ARGS__)
#define P2PLAB_LOG_INFO(...) P2PLAB_LOG_AT(::p2plab::LogLevel::kInfo, __VA_ARGS__)
#define P2PLAB_LOG_WARN(...) P2PLAB_LOG_AT(::p2plab::LogLevel::kWarn, __VA_ARGS__)
#define P2PLAB_LOG_ERROR(...) P2PLAB_LOG_AT(::p2plab::LogLevel::kError, __VA_ARGS__)

}  // namespace p2plab
