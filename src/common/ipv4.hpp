// IPv4 addresses and CIDR blocks.
//
// P2PLab assigns every virtual node its own aliased IPv4 address and
// classifies packets with subnet-mask firewall rules, so address/prefix
// arithmetic is a first-class substrate here.
#pragma once

#include <cstdint>
#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "common/assert.hpp"

namespace p2plab {

/// An IPv4 address, stored host-order for cheap prefix arithmetic.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr static Ipv4Addr from_u32(std::uint32_t v) { return Ipv4Addr{v}; }
  constexpr static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  /// Parse dotted-quad ("10.1.3.207"); nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t to_u32() const { return value_; }
  constexpr std::uint8_t octet(int i) const {
    P2PLAB_ASSERT(i >= 0 && i < 4);
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Address plus an offset (for iterating a subnet's hosts).
  constexpr Ipv4Addr offset(std::uint32_t n) const {
    return Ipv4Addr{value_ + n};
  }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Ipv4Addr(std::uint32_t v) : value_(v) {}
  std::uint32_t value_ = 0;
};

/// A CIDR block such as 10.1.3.0/24.
class CidrBlock {
 public:
  constexpr CidrBlock() = default;
  constexpr CidrBlock(Ipv4Addr base, int prefix_len)
      : base_(Ipv4Addr::from_u32(base.to_u32() & mask_of(prefix_len))),
        prefix_len_(prefix_len) {
    P2PLAB_ASSERT(prefix_len >= 0 && prefix_len <= 32);
  }
  /// Parse "10.1.0.0/16"; nullopt on malformed input.
  static std::optional<CidrBlock> parse(std::string_view text);

  /// The /0 block matching every address.
  constexpr static CidrBlock any() { return CidrBlock{Ipv4Addr{}, 0}; }

  constexpr Ipv4Addr base() const { return base_; }
  constexpr int prefix_len() const { return prefix_len_; }
  constexpr std::uint32_t mask() const { return mask_of(prefix_len_); }
  /// Number of addresses covered (2^(32-prefix)); /0 reports 2^32.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }

  constexpr bool contains(Ipv4Addr a) const {
    return (a.to_u32() & mask()) == base_.to_u32();
  }
  constexpr bool contains(CidrBlock other) const {
    return prefix_len_ <= other.prefix_len_ && contains(other.base_);
  }
  constexpr bool overlaps(CidrBlock other) const {
    return contains(other) || other.contains(*this);
  }

  /// The i-th host address (1-based within the block; 0 is the base).
  constexpr Ipv4Addr host(std::uint32_t i) const {
    P2PLAB_ASSERT(std::uint64_t{i} < size());
    return base_.offset(i);
  }

  constexpr auto operator<=>(const CidrBlock&) const = default;

  std::string to_string() const;

 private:
  constexpr static std::uint32_t mask_of(int prefix_len) {
    return prefix_len == 0 ? 0u
                           : ~std::uint32_t{0}
                                 << (32 - static_cast<unsigned>(prefix_len));
  }
  Ipv4Addr base_;
  int prefix_len_ = 0;
};

}  // namespace p2plab
