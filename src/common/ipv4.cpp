#include "common/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace p2plab {

namespace {

// Parses a decimal octet from `text` at `pos`; advances `pos` past it.
std::optional<std::uint8_t> parse_octet(std::string_view text, size_t& pos) {
  if (pos >= text.size()) return std::nullopt;
  unsigned value = 0;
  const char* first = text.data() + pos;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr == first || value > 255) return std::nullopt;
  // Reject leading zeros like "01" to keep the format canonical.
  if (ptr - first > 1 && *first == '0') return std::nullopt;
  pos += static_cast<size_t>(ptr - first);
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  size_t pos = 0;
  std::uint8_t octets[4];
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    auto o = parse_octet(text, pos);
    if (!o) return std::nullopt;
    octets[i] = *o;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr::from_octets(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<CidrBlock> CidrBlock::parse(std::string_view text) {
  const size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int len = -1;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return std::nullopt;
  }
  return CidrBlock{*addr, len};
}

std::string CidrBlock::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace p2plab
