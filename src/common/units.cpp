#include "common/units.hpp"

#include <cinttypes>
#include <cstdio>

namespace p2plab {

std::string DataSize::to_string() const {
  char buf[64];
  if (bytes_ >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.2fGiB",
                  static_cast<double>(bytes_) / (1ull << 30));
  } else if (bytes_ >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.2fMiB",
                  static_cast<double>(bytes_) / (1ull << 20));
  } else if (bytes_ >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.2fKiB",
                  static_cast<double>(bytes_) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "B", bytes_);
  }
  return buf;
}

std::string Bandwidth::to_string() const {
  char buf[64];
  if (is_unlimited()) return "unlimited";
  if (bits_per_sec_ >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fGbps",
                  static_cast<double>(bits_per_sec_) / 1e9);
  } else if (bits_per_sec_ >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fMbps",
                  static_cast<double>(bits_per_sec_) / 1e6);
  } else if (bits_per_sec_ >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%.2fkbps",
                  static_cast<double>(bits_per_sec_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "bps", bits_per_sec_);
  }
  return buf;
}

}  // namespace p2plab
