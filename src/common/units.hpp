// Data-size and bandwidth strong types.
//
// Network experiment parameters mix kilobits-per-second access links,
// megabyte files and kibibyte pieces; strong types keep the unit algebra
// honest (bytes / bandwidth -> Duration, bandwidth * Duration -> bytes).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace p2plab {

/// An amount of data in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;
  constexpr static DataSize bytes(std::uint64_t v) { return DataSize{v}; }
  constexpr static DataSize kib(std::uint64_t v) { return DataSize{v << 10}; }
  constexpr static DataSize mib(std::uint64_t v) { return DataSize{v << 20}; }
  constexpr static DataSize gib(std::uint64_t v) { return DataSize{v << 30}; }
  constexpr static DataSize zero() { return DataSize{0}; }

  constexpr std::uint64_t count_bytes() const { return bytes_; }
  constexpr std::uint64_t count_bits() const { return bytes_ * 8; }
  constexpr double to_mib() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }

  constexpr DataSize operator+(DataSize o) const {
    return DataSize{bytes_ + o.bytes_};
  }
  constexpr DataSize operator-(DataSize o) const {
    P2PLAB_ASSERT(bytes_ >= o.bytes_);
    return DataSize{bytes_ - o.bytes_};
  }
  constexpr DataSize operator*(std::uint64_t k) const {
    return DataSize{bytes_ * k};
  }
  constexpr DataSize& operator+=(DataSize o) {
    bytes_ += o.bytes_;
    return *this;
  }
  constexpr auto operator<=>(const DataSize&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit DataSize(std::uint64_t v) : bytes_(v) {}
  std::uint64_t bytes_ = 0;
};

/// A data rate in bits per second. A zero bandwidth means "unlimited"
/// (a pure delay element), matching Dummynet's convention.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr static Bandwidth bps(std::uint64_t v) { return Bandwidth{v}; }
  constexpr static Bandwidth kbps(std::uint64_t v) {
    return Bandwidth{v * 1000};
  }
  constexpr static Bandwidth mbps(std::uint64_t v) {
    return Bandwidth{v * 1000000};
  }
  constexpr static Bandwidth gbps(std::uint64_t v) {
    return Bandwidth{v * 1000000000};
  }
  constexpr static Bandwidth unlimited() { return Bandwidth{0}; }

  constexpr bool is_unlimited() const { return bits_per_sec_ == 0; }
  constexpr std::uint64_t count_bps() const { return bits_per_sec_; }
  constexpr double to_mbps() const {
    return static_cast<double>(bits_per_sec_) / 1e6;
  }

  /// Time to serialize `size` at this rate. Unlimited -> zero.
  constexpr Duration transmission_time(DataSize size) const {
    if (is_unlimited()) return Duration::zero();
    return Duration::seconds(static_cast<double>(size.count_bits()) /
                             static_cast<double>(bits_per_sec_));
  }

  /// Bytes transferred in `d` at this rate (floor). Unlimited is invalid.
  constexpr DataSize bytes_in(Duration d) const {
    P2PLAB_ASSERT(!is_unlimited());
    P2PLAB_ASSERT(d >= Duration::zero());
    const double bits =
        static_cast<double>(bits_per_sec_) * d.to_seconds();
    return DataSize::bytes(static_cast<std::uint64_t>(bits / 8.0));
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Bandwidth(std::uint64_t v) : bits_per_sec_(v) {}
  std::uint64_t bits_per_sec_ = 0;  // 0 == unlimited
};

}  // namespace p2plab
