// Deterministic random number generation.
//
// Every stochastic decision in the platform (scheduler noise, packet loss,
// rarest-first tie-breaking, tracker peer sampling) draws from an explicit
// Rng instance seeded from the experiment seed, so whole runs replay
// bit-identically. The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace p2plab {

/// SplitMix64: used to expand a single seed into generator state, and as a
/// cheap stateless hash for deriving per-entity substream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2f0c5b1e8a4d37ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent substream, e.g. one per virtual node. Mixing the
  /// stream id through SplitMix64 keeps substreams decorrelated.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ull);
    return Rng{splitmix64(sm)};
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }
  std::uint64_t operator()() { return next_u64(); }

  /// Uniform in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound) {
    P2PLAB_ASSERT(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    P2PLAB_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    P2PLAB_ASSERT(mean > 0);
    double u;
    do {
      u = uniform01();
    } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Normal via Box–Muller (one value per call; simple over fast).
  double normal(double mean, double stddev) {
    double u1;
    do {
      u1 = uniform01();
    } while (u1 == 0.0);
    const double u2 = uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

  /// Reservoir-sample up to k elements of `items` (order unspecified).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& items, size_t k) {
    std::vector<T> out;
    out.reserve(std::min(k, items.size()));
    for (size_t i = 0; i < items.size(); ++i) {
      if (out.size() < k) {
        out.push_back(items[i]);
      } else {
        const size_t j = uniform(i + 1);
        if (j < k) out[j] = items[i];
      }
    }
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace p2plab
