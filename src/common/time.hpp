// Simulated time: a strong 64-bit nanosecond type.
//
// All of P2PLab's simulation runs on one clock. SimTime is a point on that
// clock; Duration is a difference. Both are thin wrappers over int64
// nanoseconds, cheap to copy and totally ordered. 64-bit nanoseconds cover
// ~292 years of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace p2plab {

/// A span of simulated time in nanoseconds. May be negative (differences).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration ns(std::int64_t v) { return Duration{v}; }
  constexpr static Duration us(std::int64_t v) { return Duration{v * 1000}; }
  constexpr static Duration ms(std::int64_t v) {
    return Duration{v * 1000000};
  }
  constexpr static Duration sec(std::int64_t v) {
    return Duration{v * 1000000000};
  }
  /// From fractional seconds; rounds to nearest nanosecond.
  constexpr static Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
  }
  constexpr static Duration micros(double v) {
    return Duration::seconds(v * 1e-6);
  }
  constexpr static Duration millis(double v) {
    return Duration::seconds(v * 1e-3);
  }
  constexpr static Duration zero() { return Duration{0}; }
  constexpr static Duration max() { return Duration{INT64_MAX}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Scale by a real factor, rounding to nearest nanosecond.
  constexpr Duration scaled(double f) const {
    return Duration::seconds(to_seconds() * f);
  }

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// A point in simulated time (nanoseconds since experiment start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr static SimTime from_ns(std::int64_t v) { return SimTime{v}; }
  constexpr static SimTime zero() { return SimTime{0}; }
  constexpr static SimTime max() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr SimTime operator+(Duration d) const {
    return SimTime{ns_ + d.count_ns()};
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime{ns_ - d.count_ns()};
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration::ns(ns_ - o.ns_);
  }
  constexpr SimTime& operator+=(Duration d) {
    ns_ += d.count_ns();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace p2plab
