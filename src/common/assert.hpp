// Lightweight always-on assertion macros.
//
// Simulation correctness depends on internal invariants (event ordering,
// queue accounting, byte conservation); violations must abort loudly even
// in optimized builds rather than silently corrupt an experiment.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace p2plab::detail {

/// Invoked once before abort() on assertion failure; the flight recorder
/// (metrics/recorder.hpp) installs its post-mortem dump here. Kept as a
/// bare function pointer so common/ stays dependency-free. Thread-local:
/// each parallel-engine worker installs the hook for its own shard's
/// recorder, and an assertion dumps the ring of the thread that tripped it.
inline thread_local void (*g_assert_hook)() = nullptr;

/// Second post-mortem slot, invoked after g_assert_hook: the wall-clock
/// profiler (profile/profiler.hpp) drains its phase rings here so a crashed
/// run still leaves a timeline next to the flight-recorder dump. Separate
/// slots keep the two subsystems from clobbering each other's hook.
inline thread_local void (*g_profile_assert_hook)() = nullptr;

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "p2plab: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  if (g_assert_hook != nullptr) {
    // Disarm first: a failure inside the hook must not recurse.
    auto* hook = g_assert_hook;
    g_assert_hook = nullptr;
    hook();
  }
  if (g_profile_assert_hook != nullptr) {
    auto* hook = g_profile_assert_hook;
    g_profile_assert_hook = nullptr;
    hook();
  }
  std::abort();
}

}  // namespace p2plab::detail

#define P2PLAB_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                         \
          : ::p2plab::detail::assert_fail(#expr, __FILE__, __LINE__,     \
                                          nullptr))

#define P2PLAB_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                         \
          : ::p2plab::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
