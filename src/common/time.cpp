#include "common/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace p2plab {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const char* sign = ns < 0 ? "-" : "";
  std::uint64_t mag =
      ns < 0 ? static_cast<std::uint64_t>(-(ns + 1)) + 1  // avoid INT64_MIN UB
             : static_cast<std::uint64_t>(ns);
  if (mag >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", sign,
                  static_cast<double>(mag) / 1e9);
  } else if (mag >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", sign,
                  static_cast<double>(mag) / 1e6);
  } else if (mag >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%s%.3fus", sign,
                  static_cast<double>(mag) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%s%" PRIu64 "ns", sign, mag);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }
std::string SimTime::to_string() const { return format_ns(ns_); }

}  // namespace p2plab
