// Analytic FIFO link: serialization + fixed latency without queue events.
//
// A NIC is a strict-FIFO serializer; unlike the Dummynet access pipes it
// needs no fair queueing, so its behaviour can be computed in O(1) at
// transmit time: the packet departs at max(now, busy_until) + service and
// arrives `latency` later. This collapses the five heap events of a
// pipe-modeled fabric hop (enqueue/serve/exit x2 + switch) into the single
// delivery event, which matters at 10^8-event scale.
//
// Approximation note: reservations are made in *send* order, not arrival
// order, so two packets from different sources may be served slightly out
// of arrival order; the error is bounded by one packet's service time
// (~131 us for 16 KiB at 1 Gb/s) and only manifests near saturation.
#pragma once

#include <cstdint>
#include <optional>

#include "common/time.hpp"
#include "common/units.hpp"

namespace p2plab::net {

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
};

class LinkServer {
 public:
  LinkServer(Bandwidth bandwidth, Duration latency, DataSize queue_limit)
      : bandwidth_(bandwidth), latency_(latency), queue_limit_(queue_limit) {}

  /// Reserve transmission starting no earlier than `t`. Returns the delay
  /// from `t` until the packet has fully arrived at the far end (queueing
  /// + serialization + propagation), or nullopt if the backlog would
  /// exceed the queue limit (tail drop).
  std::optional<Duration> transmit(SimTime t, DataSize size) {
    const Duration backlog =
        busy_until_ > t ? busy_until_ - t : Duration::zero();
    if (!bandwidth_.is_unlimited() &&
        bandwidth_.bytes_in(backlog).count_bytes() + size.count_bytes() >
            queue_limit_.count_bytes() &&
        backlog > Duration::zero()) {
      ++stats_.dropped;
      return std::nullopt;
    }
    const Duration service = bandwidth_.transmission_time(size);
    const SimTime start = std::max(busy_until_, t);
    busy_until_ = start + service;
    ++stats_.packets;
    stats_.bytes += size.count_bytes();
    return (busy_until_ - t) + latency_;
  }

  /// Current backlog ahead of a packet entering at `t`.
  Duration backlog_at(SimTime t) const {
    return busy_until_ > t ? busy_until_ - t : Duration::zero();
  }

  Bandwidth bandwidth() const { return bandwidth_; }
  Duration latency() const { return latency_; }
  const LinkStats& stats() const { return stats_; }

 private:
  Bandwidth bandwidth_;
  Duration latency_;
  DataSize queue_limit_;
  SimTime busy_until_;
  LinkStats stats_;
};

}  // namespace p2plab::net
