// The emulated network: hosts joined by a non-blocking switch.
//
// Network::send walks a packet through the full emulated path:
//
//   source host:   firewall scan (CPU) -> matched Dummynet pipes
//   fabric:        NIC tx pipe -> switch latency -> NIC rx pipe
//   dest host:     firewall scan (CPU) -> matched Dummynet pipes -> deliver
//
// Packets between two virtual nodes folded onto the same physical host
// skip the fabric but still traverse both firewalls — exactly like
// FreeBSD, where loopback traffic passes IPFW, and essential for the
// folding-ratio result (Figure 9): co-located peers must still see their
// emulated access links.
//
// The switch is pure latency: GridExplorer's Gigabit switch is
// non-blocking, so per-port bandwidth is already enforced at the NICs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ipv4.hpp"
#include "common/rng.hpp"
#include "metrics/registry.hpp"
#include "net/host.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/simulation.hpp"

namespace p2plab::net {

struct NetworkConfig {
  Duration switch_latency = Duration::us(30);
};

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_fw = 0;       // deny rules
  std::uint64_t packets_dropped_pipe = 0;     // pipe queue overflow / loss
  std::uint64_t packets_unroutable = 0;       // no host owns the address
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

/// Registry handles for the "net.*" metrics. The NIC byte counters are the
/// per-link load view (fabric hops only — loopback between co-located
/// vnodes never touches a NIC, which is the folding win being measured).
struct NetMetrics {
  metrics::Counter packets_sent;
  metrics::Counter packets_delivered;
  metrics::Counter packets_dropped_fw;
  metrics::Counter packets_dropped_pipe;
  metrics::Counter packets_unroutable;
  metrics::Counter bytes_sent;
  metrics::Counter bytes_delivered;
  metrics::Counter nic_tx_bytes;
  metrics::Counter nic_rx_bytes;
  metrics::Counter cpu_charged_ns;  // host CPU work (stack + rule scans)
  // Packet-cell recycling lives in PacketPool ("net.pool.*").
};

/// Cross-shard packet transport, implemented by the parallel engine
/// (src/engine). When installed on a Network, every inter-host packet —
/// same shard or not — leaves through push() with a precomputed arrival
/// stamp (the instant the packet exits the switch toward the destination
/// NIC), and re-enters the destination shard's Network via fabric_arrive().
/// Routing all inter-host traffic through the same code path is what makes
/// a K-shard run bit-identical to the 1-shard engine run.
class FabricHandoff {
 public:
  virtual ~FabricHandoff() = default;
  /// Hand a packet to the destination shard. `src_host` / `seq` establish
  /// the deterministic merge order (stamp, src_host, seq). Returns false
  /// if no shard ever deployed `packet.dst` (the address is unknown to the
  /// whole platform, not merely withdrawn).
  virtual bool push(std::size_t src_host, std::uint64_t seq, SimTime stamp,
                    Packet packet) = 0;
};

class Network {
 public:
  Network(sim::Simulation& sim, Rng rng, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulation& sim() { return sim_; }
  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

  static constexpr std::size_t kAutoIndex = static_cast<std::size_t>(-1);

  /// Create a physical host. The admin address is registered immediately
  /// (the paper keeps "the main IP address of each physical system ... for
  /// administration purposes"). `global_index` is the platform-wide host
  /// index (see Host::global_index); it defaults to this network's local
  /// count, which is the right value whenever one Network spans the whole
  /// platform (the legacy single-threaded mode and all unit tests).
  Host& add_host(std::string name, Ipv4Addr admin_ip, HostConfig config = {},
                 std::size_t global_index = kAutoIndex);

  size_t host_count() const { return hosts_.size(); }
  Host& host(size_t index) { return *hosts_.at(index); }

  /// The host owning `addr` (admin address or alias); nullptr if none.
  Host* host_of(Ipv4Addr addr);

  /// Withdraw an address from routing (vnode crash / graceful departure):
  /// packets to it become unroutable and packets from it are dropped at the
  /// source, until reattach_address restores it. Returns false if the
  /// address was not registered.
  bool detach_address(Ipv4Addr addr);
  /// Restore a previously detached alias of `host` (vnode rejoin).
  void reattach_address(Ipv4Addr addr, Host& host);

  /// Send a packet through the emulated path. The packet's on_deliver runs
  /// at the destination; dropped packets vanish (transports recover via
  /// timeout, exactly like the real platform).
  void send(Packet packet);

  // -- parallel-engine hooks ----------------------------------------------

  /// Route every inter-host packet through `handoff` (engine mode). The
  /// source-side pipes then defer their fixed delays into the packet
  /// (Pipe::Segment::defer_delay) and the NIC-tx/switch hop is folded into
  /// the handoff stamp; the destination side reserves its NIC-rx and runs
  /// the inbound firewall on arrival. Engine mode requires socket_demux
  /// traffic — an on_deliver closure could capture source-shard state.
  void set_fabric_handoff(FabricHandoff* handoff) { handoff_ = handoff; }
  bool engine_mode() const { return handoff_ != nullptr; }

  /// Destination entry point for handed-off packets; the engine schedules
  /// this at the packet's stamp on the owning shard's simulation, acquiring
  /// the ref from this (the destination) shard's pool at merge time.
  void fabric_arrive(PacketRef packet);

  /// This shard's packet-cell pool. The engine acquires from the
  /// *destination* network's pool when re-materializing a handed-off
  /// packet; cells never cross pools.
  PacketPool& pool() { return pool_; }

  /// Deliver packets flagged socket_demux through this callback (installed
  /// by the shard's SocketManager; per-shard, so delivery never touches
  /// another shard's port table).
  void set_socket_demux(std::function<void(Packet&&)> demux);

  /// Resolve "net.*" handles from `reg` and bind the firewall of every
  /// host, present and future ("ipfw.*" aggregates across hosts).
  void bind_metrics(metrics::Registry& reg);

 private:
  friend class Host;
  void register_address(Ipv4Addr addr, Host* host);

  /// What comes after the current host's pipe walk. Carried by value
  /// through the walk's continuation instead of a boxed `done` closure —
  /// one byte of state replaces a std::function that the old code also
  /// re-copied at every pipe stage.
  enum class PathStage : std::uint8_t {
    kSource,       // classic/loopback source side: fabric or local arrival
    kSourceDefer,  // engine mode: source side ends in handoff_exit
    kDest,         // destination side: ends in deliver
  };

  void leave_source(PacketRef packet, Host& src, PathStage stage);
  void traverse_fabric(PacketRef packet, Host& src, Host& dst);
  void handoff_exit(PacketRef packet, Host& src);
  void arrive_at_destination(PacketRef packet, Host& dst);
  void deliver(PacketRef packet);

  /// Run the packet through `pipes` of `host`'s firewall in order, then
  /// finish_path(stage).
  void pass_pipes(PacketRef packet, Host& host, ipfw::PipeList pipes,
                  std::uint32_t index, PathStage stage);
  void finish_path(PacketRef packet, Host& host, PathStage stage);

  sim::Simulation& sim_;
  Rng rng_;
  NetworkConfig config_;
  NetworkStats stats_;
  NetMetrics metrics_;
  // Declared before hosts_: pipes hold queued segments whose closures own
  // PacketRefs, so hosts_ (destroyed first, reverse declaration order)
  // drains its refs into a still-live pool.
  PacketPool pool_;
  metrics::Registry* bound_reg_ = nullptr;  // for hosts added after binding
  FabricHandoff* handoff_ = nullptr;
  std::function<void(Packet&&)> socket_demux_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_map<std::uint32_t, Host*> by_address_;
};

}  // namespace p2plab::net
