#include "net/host.hpp"

#include <utility>

#include "common/assert.hpp"
#include "net/network.hpp"

namespace p2plab::net {

Host::Host(Network& network, std::string name, Ipv4Addr admin_ip,
           HostConfig config, Rng rng, std::size_t global_index)
    : network_(network),
      name_(std::move(name)),
      admin_ip_(admin_ip),
      config_(config),
      global_index_(global_index),
      firewall_(network.sim(), config.firewall, rng.fork(1)),
      nic_tx_(config.nic_bandwidth, config.nic_latency, config.nic_queue),
      nic_rx_(config.nic_bandwidth, config.nic_latency, config.nic_queue),
      cpu_busy_until_(SimTime::zero()) {
  P2PLAB_ASSERT(config_.n_cpus >= 1);
  network_.register_address(admin_ip_, this);
}

void Host::add_alias(Ipv4Addr addr) {
  aliases_.push_back(addr);
  network_.register_address(addr, this);
}

Duration Host::charge_cpu(Duration work) {
  if (work <= Duration::zero()) return Duration::zero();
  const SimTime now = network_.sim().now();
  // Aggregate-server model: capacity drains at n_cpus, but each unit of
  // work executes serially on one core, so the caller's latency is the
  // queueing delay plus the *full* work time (a 2.5 ms rule scan delays
  // the packet by 2.5 ms even on a dual CPU).
  const SimTime start = std::max(cpu_busy_until_, now);
  const Duration service =
      Duration::ns(work.count_ns() / config_.n_cpus +
                   (work.count_ns() % config_.n_cpus != 0 ? 1 : 0));
  cpu_busy_until_ = start + service;
  cpu_consumed_ += work;
  // Host is a friend of Network; the shared counter aggregates CPU work
  // across all hosts.
  network_.metrics_.cpu_charged_ns.inc(
      static_cast<std::uint64_t>(work.count_ns()));
  return (start - now) + work;
}

double Host::cpu_utilization() const {
  const SimTime now = network_.sim().now();
  if (now == SimTime::zero()) return 0.0;
  const double capacity =
      now.to_seconds() * static_cast<double>(config_.n_cpus);
  return cpu_consumed_.to_seconds() / capacity;
}

}  // namespace p2plab::net
