// Per-shard packet pool: recycled cells behind move-only handles.
//
// Every in-flight packet used to ride in its own make_shared<Packet> — two
// allocations per hop chain, at 10^6+ packets per emulated run. The pool
// hands out stable Packet cells behind an 8-byte PacketRef; a cell returns
// to the free list the instant its last handle dies, which covers the drop
// paths (firewall deny, queue overflow, withdrawn address, crashed vnode)
// with no explicit recycling code: wherever the handle goes out of scope,
// the cell comes back. Steady state acquires therefore touch the allocator
// zero times; only growth beyond the peak in-flight population allocates
// (counted as net.pool.misses).
//
// Pools are strictly per shard: each engine shard's Network owns one, and
// cross-shard handoff moves the packet *by value* through the outbox, then
// re-acquires from the destination shard's pool at merge time — cells never
// migrate between pools, so no locking is needed anywhere.
//
// Shutdown order is deliberately forgiving: a pool destroyed while refs are
// still outstanding (an event queue or pipe torn down after the Network)
// orphans those cells — each ref then frees its own cell — so member
// declaration order cannot turn into a use-after-free.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "metrics/registry.hpp"
#include "net/packet.hpp"

namespace p2plab::net {

class PacketPool;

/// Move-only owning handle to a pooled Packet. Destroying the handle
/// returns the cell to its pool (or frees it, if the pool is gone).
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(PacketRef&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      release();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }
  PacketRef(const PacketRef&) = delete;
  PacketRef& operator=(const PacketRef&) = delete;
  ~PacketRef() { release(); }

  explicit operator bool() const { return p_ != nullptr; }
  Packet& operator*() const { return *p_; }
  Packet* operator->() const { return p_; }

 private:
  friend class PacketPool;
  explicit PacketRef(Packet* p) : p_(p) {}
  void release();

  Packet* p_ = nullptr;
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool() {
    // Orphan cells still out in the wild (their refs free them), then free
    // the pooled ones.
    for (Packet* cell : cells_) cell->origin_pool = nullptr;
    for (Packet* cell : free_) delete cell;
  }

  /// Hand out a cell holding `init`. Steady state pops the free list; a
  /// miss (in-flight population grew past every previous peak) allocates.
  PacketRef acquire(Packet&& init) {
    Packet* cell;
    if (!free_.empty()) {
      cell = free_.back();
      free_.pop_back();
      recycled_.inc();
    } else {
      cell = new Packet();
      cells_.push_back(cell);
      misses_.inc();
      size_.set(static_cast<double>(cells_.size()));
    }
    *cell = std::move(init);
    cell->origin_pool = this;
    return PacketRef{cell};
  }

  /// Cells ever created (the peak in-flight population, plus growth slack).
  std::size_t capacity() const { return cells_.size(); }
  /// Cells currently on the free list.
  std::size_t available() const { return free_.size(); }
  /// Cells currently owned by live PacketRefs.
  std::size_t in_flight() const { return cells_.size() - free_.size(); }

  /// Resolve the "net.pool.*" cells from `reg`.
  void bind_metrics(metrics::Registry& reg) {
    size_ = reg.gauge("net.pool.size");
    recycled_ = reg.counter("net.pool.recycled");
    misses_ = reg.counter("net.pool.misses");
    size_.set(static_cast<double>(cells_.size()));
  }

 private:
  friend class PacketRef;
  void release(Packet* cell) {
    // Drop owned payload/closures promptly (frees application memory now);
    // scalar fields are overwritten wholesale by the next acquire.
    cell->body.reset();
    cell->on_deliver = nullptr;
    free_.push_back(cell);
  }

  std::vector<Packet*> cells_;  // every cell ever created, pool-owned
  std::vector<Packet*> free_;
  metrics::Gauge size_;
  metrics::Counter recycled_;
  metrics::Counter misses_;
};

inline void PacketRef::release() {
  if (p_ == nullptr) return;
  if (p_->origin_pool != nullptr) {
    p_->origin_pool->release(p_);
  } else {
    delete p_;  // pool already destroyed; this ref owned the orphan
  }
  p_ = nullptr;
}

}  // namespace p2plab::net
