// A physical node of the experimental platform.
//
// Models one GridExplorer machine: a Gigabit NIC (one shaped pipe per
// direction), a per-host IPFW firewall with Dummynet pipes (P2PLab's
// decentralized emulation), IP aliases for the hosted virtual nodes
// (Figure 4), and a coarse CPU model that charges per-packet processing
// and firewall rule-scan time. CPU charging matters for the folding study:
// it is one of the overhead sources the paper monitored ("system load,
// memory usage, disk I/O") and found unproblematic at 80 vnodes/node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ipv4.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "ipfw/firewall.hpp"
#include "net/link_server.hpp"
#include "sim/simulation.hpp"

namespace p2plab::net {

class Network;

struct HostConfig {
  Bandwidth nic_bandwidth = Bandwidth::gbps(1);
  Duration nic_latency = Duration::us(20);
  DataSize nic_queue = DataSize::kib(512);
  int n_cpus = 2;
  /// CPU work to process one packet through the stack (send or receive).
  Duration packet_cpu_cost = Duration::us(10);
  ipfw::FirewallConfig firewall;
};

class Host {
 public:
  Host(Network& network, std::string name, Ipv4Addr admin_ip,
       HostConfig config, Rng rng, std::size_t global_index);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  Ipv4Addr admin_ip() const { return admin_ip_; }
  const HostConfig& config() const { return config_; }

  /// Platform-wide host index, stable across shard partitionings: the
  /// parallel engine keys rng streams, connection ids and cross-shard
  /// merge order on it so a K-shard run replays the K=1 event sequence.
  std::size_t global_index() const { return global_index_; }

  /// Host-scoped connection id: the host index in the high bits keeps ids
  /// unique platform-wide without any cross-shard counter. Uniqueness is
  /// load-bearing beyond determinism — conn ids seed both the RST
  /// stale-connection check and the DRR flow identity inside shared pipes.
  std::uint64_t next_conn_id() {
    return ((static_cast<std::uint64_t>(global_index_) + 1) << 32) |
           ++conn_seq_;
  }

  /// Per-source-host sequence for cross-shard packets; with the timestamp
  /// and host index it forms the engine's total merge order.
  std::uint64_t next_fabric_seq() { return ++fabric_seq_; }

  ipfw::Firewall& firewall() { return firewall_; }
  const ipfw::Firewall& firewall() const { return firewall_; }

  /// Assign an additional IP to this host's interface (ifconfig alias) and
  /// register it with the network. This is how virtual nodes get their
  /// network identity.
  void add_alias(Ipv4Addr addr);
  const std::vector<Ipv4Addr>& aliases() const { return aliases_; }

  /// Charge `work` of CPU time; returns the latency until it completes
  /// (queueing behind earlier work plus service). The host's CPUs are
  /// modeled as one server of aggregate speed n_cpus — coarse, but enough
  /// to expose CPU saturation under extreme folding.
  Duration charge_cpu(Duration work);

  /// Fraction of CPU time consumed so far (diagnostic).
  double cpu_utilization() const;

  LinkServer& nic_tx() { return nic_tx_; }
  LinkServer& nic_rx() { return nic_rx_; }

 private:
  Network& network_;
  std::string name_;
  Ipv4Addr admin_ip_;
  HostConfig config_;
  std::size_t global_index_;
  ipfw::Firewall firewall_;
  LinkServer nic_tx_;
  LinkServer nic_rx_;
  std::vector<Ipv4Addr> aliases_;
  SimTime cpu_busy_until_;
  Duration cpu_consumed_ = Duration::zero();
  std::uint64_t conn_seq_ = 0;
  std::uint64_t fabric_seq_ = 0;
};

}  // namespace p2plab::net
