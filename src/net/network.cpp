#include "net/network.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::net {

Network::Network(sim::Simulation& sim, Rng rng, NetworkConfig config)
    : sim_(sim), rng_(rng), config_(config) {}

Host& Network::add_host(std::string name, Ipv4Addr admin_ip,
                        HostConfig config, std::size_t global_index) {
  if (global_index == kAutoIndex) global_index = hosts_.size();
  // The rng stream is forked from the *global* index: a host gets the same
  // randomness (firewall pipes, loss draws) no matter which shard's Network
  // it is built into, which the engine's determinism guarantee relies on.
  hosts_.push_back(std::make_unique<Host>(*this, std::move(name), admin_ip,
                                          config, rng_.fork(global_index + 100),
                                          global_index));
  if (bound_reg_ != nullptr) hosts_.back()->firewall().bind_metrics(*bound_reg_);
  return *hosts_.back();
}

void Network::set_socket_demux(std::function<void(Packet&&)> demux) {
  P2PLAB_ASSERT_MSG(!socket_demux_ || !demux,
                    "a socket demux is already installed on this network");
  socket_demux_ = std::move(demux);
}

void Network::bind_metrics(metrics::Registry& reg) {
  pool_.bind_metrics(reg);
  metrics_.packets_sent = reg.counter("net.packets_sent");
  metrics_.packets_delivered = reg.counter("net.packets_delivered");
  metrics_.packets_dropped_fw = reg.counter("net.packets_dropped_fw");
  metrics_.packets_dropped_pipe = reg.counter("net.packets_dropped_pipe");
  metrics_.packets_unroutable = reg.counter("net.packets_unroutable");
  metrics_.bytes_sent = reg.counter("net.bytes_sent");
  metrics_.bytes_delivered = reg.counter("net.bytes_delivered");
  metrics_.nic_tx_bytes = reg.counter("net.nic.tx_bytes");
  metrics_.nic_rx_bytes = reg.counter("net.nic.rx_bytes");
  metrics_.cpu_charged_ns = reg.counter("net.cpu_charged_ns");
  bound_reg_ = &reg;
  for (auto& host : hosts_) host->firewall().bind_metrics(reg);
}

Host* Network::host_of(Ipv4Addr addr) {
  const auto it = by_address_.find(addr.to_u32());
  return it == by_address_.end() ? nullptr : it->second;
}

void Network::register_address(Ipv4Addr addr, Host* host) {
  const auto [it, inserted] = by_address_.emplace(addr.to_u32(), host);
  P2PLAB_ASSERT_MSG(inserted, "IP address assigned twice");
  (void)it;
}

bool Network::detach_address(Ipv4Addr addr) {
  return by_address_.erase(addr.to_u32()) > 0;
}

void Network::reattach_address(Ipv4Addr addr, Host& host) {
  register_address(addr, &host);
}

void Network::send(Packet packet) {
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_size.count_bytes();
  metrics_.packets_sent.inc();
  metrics_.bytes_sent.inc(packet.wire_size.count_bytes());
  packet.sent_at = sim_.now();

  Host* src = host_of(packet.src);
  if (src == nullptr) {
    // Source address detached (crashed vnode with a send still queued, a
    // departed node's retransmission): the packet dies at the NIC instead
    // of wedging the run on an assertion.
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
    return;
  }
  if (handoff_ != nullptr) {
    // Engine mode. Loopback (both endpoints on this host) stays entirely
    // local; every other packet takes the deferred-delay handoff path —
    // even when the destination is on this same shard, so that the event
    // sequence does not depend on how hosts were partitioned into shards.
    // Destination routability is checked on the destination shard (its
    // address table cannot be read from here without a race); a withdrawn
    // address therefore still costs the source its pipe bandwidth, which is
    // also what a real NIC would do.
    Host* local_dst = host_of(packet.dst);
    const bool loopback = local_dst == src;
    leave_source(pool_.acquire(std::move(packet)), *src,
                 loopback ? PathStage::kSource : PathStage::kSourceDefer);
    return;
  }
  if (host_of(packet.dst) == nullptr) {
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
    return;
  }
  leave_source(pool_.acquire(std::move(packet)), *src, PathStage::kSource);
}

void Network::leave_source(PacketRef packet, Host& src, PathStage stage) {
  auto match = src.firewall().classify(packet->src, packet->dst,
                                       ipfw::RuleDir::kOut);
  if (match.denied) {
    ++stats_.packets_dropped_fw;
    metrics_.packets_dropped_fw.inc();
    return;  // the ref dies here; the cell goes straight back to the pool
  }
  // Firewall scan + stack processing are CPU work on the source host.
  const Duration cpu_delay = src.charge_cpu(src.firewall().scan_cost(match) +
                                            src.config().packet_cpu_cost);
  if (cpu_delay == Duration::zero()) {
    pass_pipes(std::move(packet), src, std::move(match.pipes), 0, stage);
    return;
  }
  // 57 bytes of capture — inside InlineCallback's inline budget.
  sim_.schedule_after(
      cpu_delay, [this, packet = std::move(packet), &src,
                  pipes = std::move(match.pipes), stage]() mutable {
        pass_pipes(std::move(packet), src, std::move(pipes), 0, stage);
      });
}

void Network::handoff_exit(PacketRef packet, Host& src) {
  // The bandwidth stage of the source pipes just completed; the fixed
  // delays they deferred ride in packet->deferred_delay. Reserve the source
  // NIC now (its contention is source-shard state) and fold tx + switch
  // into the stamp; the destination shard reserves its own NIC-rx at the
  // stamp. The deferred access-link delay (>= the topology's minimum) is
  // exactly the engine's lookahead: the stamp always lands at or beyond the
  // end of the window being executed.
  const SimTime now = sim_.now();
  const auto tx_delay = src.nic_tx().transmit(now, packet->wire_size);
  if (!tx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_tx_bytes.inc(packet->wire_size.count_bytes());
  P2PLAB_ASSERT_MSG(packet->socket_demux,
                    "the parallel engine carries socket traffic only: an "
                    "on_deliver closure could capture source-shard state");
  const SimTime stamp =
      now + packet->deferred_delay + *tx_delay + config_.switch_latency;
  if (!handoff_->push(src.global_index(), src.next_fabric_seq(), stamp,
                      std::move(*packet))) {
    // No shard ever deployed the address (as opposed to withdrawn).
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
  }
  // The moved-out husk recycles as the ref dies here.
}

void Network::fabric_arrive(PacketRef packet) {
  Host* dst = host_of(packet->dst);
  if (dst == nullptr) {
    // Address withdrawn (crashed vnode) — discovered here, on the shard
    // that owns the destination's routing state.
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
    return;
  }
  const auto rx_delay = dst->nic_rx().transmit(sim_.now(), packet->wire_size);
  if (!rx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_rx_bytes.inc(packet->wire_size.count_bytes());
  if (*rx_delay == Duration::zero()) {
    arrive_at_destination(std::move(packet), *dst);
  } else {
    sim_.schedule_after(*rx_delay,
                        [this, packet = std::move(packet), dst]() mutable {
                          arrive_at_destination(std::move(packet), *dst);
                        });
  }
}

void Network::traverse_fabric(PacketRef packet, Host& src, Host& dst) {
  // Both NIC reservations are made analytically at send time; the whole
  // fabric hop (tx serialization + switch + rx serialization) costs one
  // scheduled event (see link_server.hpp for the approximation bound).
  const SimTime now = sim_.now();
  const auto tx_delay = src.nic_tx().transmit(now, packet->wire_size);
  if (!tx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_tx_bytes.inc(packet->wire_size.count_bytes());
  const SimTime at_switch_out = now + *tx_delay + config_.switch_latency;
  const auto rx_delay =
      dst.nic_rx().transmit(at_switch_out, packet->wire_size);
  if (!rx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_rx_bytes.inc(packet->wire_size.count_bytes());
  sim_.schedule_at(at_switch_out + *rx_delay,
                   [this, packet = std::move(packet), &dst]() mutable {
                     arrive_at_destination(std::move(packet), dst);
                   });
}

void Network::arrive_at_destination(PacketRef packet, Host& dst) {
  auto match = dst.firewall().classify(packet->src, packet->dst,
                                       ipfw::RuleDir::kIn);
  if (match.denied) {
    ++stats_.packets_dropped_fw;
    metrics_.packets_dropped_fw.inc();
    return;
  }
  const Duration cpu_delay = dst.charge_cpu(dst.firewall().scan_cost(match) +
                                            dst.config().packet_cpu_cost);
  if (cpu_delay == Duration::zero()) {
    pass_pipes(std::move(packet), dst, std::move(match.pipes), 0,
               PathStage::kDest);
    return;
  }
  sim_.schedule_after(
      cpu_delay, [this, packet = std::move(packet), &dst,
                  pipes = std::move(match.pipes)]() mutable {
        pass_pipes(std::move(packet), dst, std::move(pipes), 0,
                   PathStage::kDest);
      });
}

void Network::deliver(PacketRef packet) {
  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet->wire_size.count_bytes();
  metrics_.packets_delivered.inc();
  metrics_.bytes_delivered.inc(packet->wire_size.count_bytes());
  if (packet->socket_demux && socket_demux_) {
    socket_demux_(std::move(*packet));
  } else if (packet->on_deliver) {
    auto cb = std::move(packet->on_deliver);
    cb(std::move(*packet));
  } else {
    P2PLAB_LOG_DEBUG("packet to %s:%u had no deliver handler",
                     packet->dst.to_string().c_str(), packet->dst_port);
  }
  // The ref dies here: the cell returns to the pool after the handler has
  // moved the packet's contents out.
}

void Network::pass_pipes(PacketRef packet, Host& host, ipfw::PipeList pipes,
                         std::uint32_t index, PathStage stage) {
  if (index >= pipes.size()) {
    finish_path(std::move(packet), host, stage);
    return;
  }
  const ipfw::PipeId id = pipes[index];
  const DataSize size = packet->wire_size;
  const ipfw::FlowId flow = packet->flow;
  // Pool cells are address-stable, so the defer pointer survives the move
  // of the ref into the continuation below.
  Duration* const defer =
      stage == PathStage::kSourceDefer ? &packet->deferred_delay : nullptr;
  // 61 bytes of capture — the closure InlineCallback's budget is sized for.
  // If a pipe drops the segment, the continuation (and the ref inside it)
  // is destroyed unexecuted and the cell recycles on its own.
  host.firewall().pipe(id).enqueue(ipfw::Pipe::Segment{
      .size = size,
      .flow = flow,
      .on_exit =
          [this, packet = std::move(packet), &host, pipes = std::move(pipes),
           index, stage]() mutable {
            pass_pipes(std::move(packet), host, std::move(pipes), index + 1,
                       stage);
          },
      .on_drop =
          [this] {
            ++stats_.packets_dropped_pipe;
            metrics_.packets_dropped_pipe.inc();
          },
      .defer_delay = defer});
}

void Network::finish_path(PacketRef packet, Host& host, PathStage stage) {
  switch (stage) {
    case PathStage::kSourceDefer:
      handoff_exit(std::move(packet), host);
      return;
    case PathStage::kSource: {
      Host* dst = host_of(packet->dst);
      if (dst == nullptr) {  // address vanished mid-flight
        ++stats_.packets_unroutable;
        metrics_.packets_unroutable.inc();
        return;
      }
      if (dst == &host) {
        // Loopback / co-located vnodes: skip NIC and switch.
        arrive_at_destination(std::move(packet), *dst);
      } else {
        traverse_fabric(std::move(packet), host, *dst);
      }
      return;
    }
    case PathStage::kDest:
      deliver(std::move(packet));
      return;
  }
}

}  // namespace p2plab::net
