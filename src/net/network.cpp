#include "net/network.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::net {

Network::Network(sim::Simulation& sim, Rng rng, NetworkConfig config)
    : sim_(sim), rng_(rng), config_(config) {}

Host& Network::add_host(std::string name, Ipv4Addr admin_ip,
                        HostConfig config) {
  hosts_.push_back(std::make_unique<Host>(*this, std::move(name), admin_ip,
                                          config,
                                          rng_.fork(hosts_.size() + 100)));
  if (bound_reg_ != nullptr) hosts_.back()->firewall().bind_metrics(*bound_reg_);
  return *hosts_.back();
}

void Network::bind_metrics(metrics::Registry& reg) {
  metrics_.packets_sent = reg.counter("net.packets_sent");
  metrics_.packets_delivered = reg.counter("net.packets_delivered");
  metrics_.packets_dropped_fw = reg.counter("net.packets_dropped_fw");
  metrics_.packets_dropped_pipe = reg.counter("net.packets_dropped_pipe");
  metrics_.packets_unroutable = reg.counter("net.packets_unroutable");
  metrics_.bytes_sent = reg.counter("net.bytes_sent");
  metrics_.bytes_delivered = reg.counter("net.bytes_delivered");
  metrics_.nic_tx_bytes = reg.counter("net.nic.tx_bytes");
  metrics_.nic_rx_bytes = reg.counter("net.nic.rx_bytes");
  metrics_.cpu_charged_ns = reg.counter("net.cpu_charged_ns");
  bound_reg_ = &reg;
  for (auto& host : hosts_) host->firewall().bind_metrics(reg);
}

Host* Network::host_of(Ipv4Addr addr) {
  const auto it = by_address_.find(addr.to_u32());
  return it == by_address_.end() ? nullptr : it->second;
}

void Network::register_address(Ipv4Addr addr, Host* host) {
  const auto [it, inserted] = by_address_.emplace(addr.to_u32(), host);
  P2PLAB_ASSERT_MSG(inserted, "IP address assigned twice");
  (void)it;
}

bool Network::detach_address(Ipv4Addr addr) {
  return by_address_.erase(addr.to_u32()) > 0;
}

void Network::reattach_address(Ipv4Addr addr, Host& host) {
  register_address(addr, &host);
}

void Network::send(Packet packet) {
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_size.count_bytes();
  metrics_.packets_sent.inc();
  metrics_.bytes_sent.inc(packet.wire_size.count_bytes());
  packet.sent_at = sim_.now();

  Host* src = host_of(packet.src);
  if (src == nullptr) {
    // Source address detached (crashed vnode with a send still queued, a
    // departed node's retransmission): the packet dies at the NIC instead
    // of wedging the run on an assertion.
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
    return;
  }
  if (host_of(packet.dst) == nullptr) {
    ++stats_.packets_unroutable;
    metrics_.packets_unroutable.inc();
    return;
  }
  leave_source(std::make_shared<Packet>(std::move(packet)), *src);
}

void Network::leave_source(std::shared_ptr<Packet> packet, Host& src) {
  const auto match = src.firewall().classify(packet->src, packet->dst,
                                             ipfw::RuleDir::kOut);
  if (match.denied) {
    ++stats_.packets_dropped_fw;
    metrics_.packets_dropped_fw.inc();
    return;
  }
  // Firewall scan + stack processing are CPU work on the source host.
  const Duration cpu_delay = src.charge_cpu(src.firewall().scan_cost(match) +
                                            src.config().packet_cpu_cost);
  auto continue_path = [this, packet, &src, pipes = match.pipes]() mutable {
    pass_pipes(packet, src.firewall(), std::move(pipes), 0,
               [this, packet, &src] {
                 Host* dst = host_of(packet->dst);
                 if (dst == nullptr) {  // address vanished mid-flight
                   ++stats_.packets_unroutable;
                   metrics_.packets_unroutable.inc();
                   return;
                 }
                 if (dst == &src) {
                   // Loopback / co-located vnodes: skip NIC and switch.
                   arrive_at_destination(packet, *dst);
                 } else {
                   traverse_fabric(packet, src, *dst);
                 }
               });
  };
  if (cpu_delay == Duration::zero()) {
    continue_path();
  } else {
    sim_.schedule_after(cpu_delay, std::move(continue_path));
  }
}

void Network::traverse_fabric(std::shared_ptr<Packet> packet, Host& src,
                              Host& dst) {
  // Both NIC reservations are made analytically at send time; the whole
  // fabric hop (tx serialization + switch + rx serialization) costs one
  // scheduled event (see link_server.hpp for the approximation bound).
  const SimTime now = sim_.now();
  const auto tx_delay = src.nic_tx().transmit(now, packet->wire_size);
  if (!tx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_tx_bytes.inc(packet->wire_size.count_bytes());
  const SimTime at_switch_out = now + *tx_delay + config_.switch_latency;
  const auto rx_delay =
      dst.nic_rx().transmit(at_switch_out, packet->wire_size);
  if (!rx_delay) {
    ++stats_.packets_dropped_pipe;
    metrics_.packets_dropped_pipe.inc();
    return;
  }
  metrics_.nic_rx_bytes.inc(packet->wire_size.count_bytes());
  sim_.schedule_at(at_switch_out + *rx_delay, [this, packet, &dst] {
    arrive_at_destination(packet, dst);
  });
}

void Network::arrive_at_destination(std::shared_ptr<Packet> packet,
                                    Host& dst) {
  const auto match = dst.firewall().classify(packet->src, packet->dst,
                                             ipfw::RuleDir::kIn);
  if (match.denied) {
    ++stats_.packets_dropped_fw;
    metrics_.packets_dropped_fw.inc();
    return;
  }
  const Duration cpu_delay = dst.charge_cpu(dst.firewall().scan_cost(match) +
                                            dst.config().packet_cpu_cost);
  auto continue_path = [this, packet, &dst, pipes = match.pipes]() mutable {
    pass_pipes(packet, dst.firewall(), std::move(pipes), 0,
               [this, packet] { deliver(packet); });
  };
  if (cpu_delay == Duration::zero()) {
    continue_path();
  } else {
    sim_.schedule_after(cpu_delay, std::move(continue_path));
  }
}

void Network::deliver(std::shared_ptr<Packet> packet) {
  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet->wire_size.count_bytes();
  metrics_.packets_delivered.inc();
  metrics_.bytes_delivered.inc(packet->wire_size.count_bytes());
  if (packet->on_deliver) {
    auto cb = std::move(packet->on_deliver);
    cb(std::move(*packet));
  } else {
    P2PLAB_LOG_DEBUG("packet to %s:%u had no deliver handler",
                     packet->dst.to_string().c_str(), packet->dst_port);
  }
}

void Network::pass_pipes(std::shared_ptr<Packet> packet, ipfw::Firewall& fw,
                         std::vector<ipfw::PipeId> pipes, size_t index,
                         std::function<void()> done) {
  if (index >= pipes.size()) {
    done();
    return;
  }
  const ipfw::PipeId id = pipes[index];
  fw.pipe(id).enqueue(ipfw::Pipe::Segment{
      .size = packet->wire_size,
      .flow = packet->flow,
      .on_exit =
          [this, packet, &fw, pipes = std::move(pipes), index,
           done = std::move(done)]() mutable {
            pass_pipes(packet, fw, std::move(pipes), index + 1,
                       std::move(done));
          },
      .on_drop =
          [this] {
            ++stats_.packets_dropped_pipe;
            metrics_.packets_dropped_pipe.inc();
          }});
}

}  // namespace p2plab::net
