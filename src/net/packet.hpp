// The unit of traffic through the emulated network.
//
// A Packet models one transport segment (up to a whole application message;
// the pipes serialize it proportionally to wire_size, which approximates a
// burst of MTU-sized frames back to back). Delivery is a closure carried by
// the packet itself: the simulation has no global demultiplexer at this
// layer — the sockets layer installs one per port.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "ipfw/pipe.hpp"

namespace p2plab::net {

class PacketPool;

/// Transport-level packet kinds; opaque to the network layer.
enum class PacketKind : std::uint8_t {
  kDatagram = 0,  // fire-and-forget (ping probes, raw sends)
  kSyn,
  kSynAck,
  kData,
  kAck,
  kFin,
  kRst,  // no endpoint at the destination port (ECONNRESET/ECONNREFUSED)
};

struct Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Bytes on the wire (payload plus modeled header overhead).
  DataSize wire_size = DataSize::bytes(64);
  /// Flow identity for fair queueing within pipes (connection id).
  ipfw::FlowId flow = 0;

  PacketKind kind = PacketKind::kDatagram;
  std::uint64_t conn = 0;  // connection id (stream transport)
  std::uint64_t seq = 0;   // sequence / cumulative-ack number

  /// Application payload, if any. Stored type-erased; the receiving layer
  /// knows the concrete type from its protocol context.
  std::shared_ptr<const void> body;

  /// Invoked at the destination host once the packet has traversed the
  /// full emulated path. Not invoked for dropped packets.
  std::function<void(Packet&&)> on_deliver;

  /// Deliver through the destination network's registered socket demux
  /// instead of `on_deliver`. The sockets layer sets this: a closure would
  /// capture the *source* host's socket manager, which under the parallel
  /// engine may live on another shard — the flag makes delivery resolve
  /// against destination-shard state only.
  bool socket_demux = false;

  /// Fixed pipe delay accumulated but not yet served (parallel engine
  /// only). Source-side pipes defer their config delay into the packet so
  /// the cross-shard handoff stamp carries it; it is spent when the
  /// destination shard schedules the arrival. Zero on the legacy path.
  Duration deferred_delay = Duration::zero();

  /// Stamped by Network::send; used for RTT estimation and diagnostics.
  SimTime sent_at;

  /// Pool bookkeeping (see net/packet_pool.hpp): the pool owning this cell,
  /// maintained by PacketPool::acquire and cleared when the pool dies first.
  /// Null for stack-constructed packets. Not for application use.
  PacketPool* origin_pool = nullptr;
};

}  // namespace p2plab::net
