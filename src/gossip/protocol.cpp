#include "gossip/protocol.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace p2plab::gossip {

const char* member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kConfirmed:
      return "confirmed";
  }
  return "?";
}

std::uint64_t wire_bytes(const Payload& payload) {
  return kGossipHeaderBytes + payload.updates.size() * kUpdateWireBytes;
}

namespace {

// SWIM piggybacks each rumor ~lambda·log2(n) times; lambda=3 puts the
// dissemination failure probability well below 1/n for the cluster sizes
// we run (the +2 keeps tiny clusters gossiping at all).
std::uint32_t budget_for(std::size_t cluster_size) {
  std::uint32_t log2n = 1;
  while ((std::size_t{1} << log2n) < std::max<std::size_t>(cluster_size, 2)) {
    ++log2n;
  }
  return 3 * log2n + 2;
}

}  // namespace

MembershipTable::MembershipTable(std::uint32_t self, std::size_t cluster_size)
    : self_(self), rumor_budget_(budget_for(cluster_size)) {
  P2PLAB_ASSERT(self < cluster_size);
  entries_.resize(cluster_size);
  entries_[self_].known = true;  // a member always knows itself alive
}

void MembershipTable::queue_rumor(const Update& update) {
  for (Rumor& rumor : rumors_) {
    if (rumor.update.subject == update.subject) {
      rumor.update = update;  // newer news supersedes; budget restarts
      rumor.budget = rumor_budget_;
      return;
    }
  }
  rumors_.push_back(Rumor{update, rumor_budget_});
}

bool MembershipTable::apply(const Update& update, SimTime now) {
  P2PLAB_ASSERT(update.subject < entries_.size());
  if (update.subject == self_) {
    // Never adopt others' opinion of ourselves. Suspicion (or a stale
    // confirm) of our current-or-newer incarnation is refuted by bumping
    // the incarnation and gossiping the fresher Alive.
    if (update.state != MemberState::kAlive &&
        update.incarnation >= incarnation_) {
      incarnation_ = update.incarnation + 1;
      ++refutations_;
      queue_rumor(Update{self_, MemberState::kAlive, incarnation_});
      return true;
    }
    return false;
  }

  Entry& entry = entries_[update.subject];
  bool accept = false;
  if (!entry.known) {
    accept = true;
  } else {
    switch (update.state) {
      case MemberState::kAlive:
        // Strictly newer incarnation overrides anything — including
        // Confirmed (the documented rejoin deviation). Equal incarnation
        // is old news and must not refresh Suspect back to Alive.
        accept = update.incarnation > entry.incarnation;
        break;
      case MemberState::kSuspect:
        accept = (entry.state == MemberState::kAlive &&
                  update.incarnation >= entry.incarnation) ||
                 (entry.state == MemberState::kSuspect &&
                  update.incarnation > entry.incarnation);
        break;
      case MemberState::kConfirmed:
        accept = entry.state != MemberState::kConfirmed;
        break;
    }
  }
  if (!accept) return false;

  entry.known = true;
  entry.state = update.state;
  entry.incarnation = update.incarnation;
  entry.since = now;
  queue_rumor(update);
  return true;
}

bool MembershipTable::mark_suspect(std::uint32_t subject, SimTime now) {
  P2PLAB_ASSERT(subject != self_);
  Entry& entry = entries_[subject];
  if (!entry.known || entry.state != MemberState::kAlive) return false;
  return apply(Update{subject, MemberState::kSuspect, entry.incarnation}, now);
}

bool MembershipTable::mark_confirmed(std::uint32_t subject, SimTime now) {
  P2PLAB_ASSERT(subject != self_);
  Entry& entry = entries_[subject];
  if (!entry.known || entry.state != MemberState::kSuspect) return false;
  return apply(Update{subject, MemberState::kConfirmed, entry.incarnation},
               now);
}

void MembershipTable::bump_self(SimTime now) {
  (void)now;
  ++incarnation_;
  queue_rumor(Update{self_, MemberState::kAlive, incarnation_});
}

std::vector<std::uint32_t> MembershipTable::probe_candidates() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (i == self_) continue;
    if (!entries_[i].known) continue;
    if (entries_[i].state == MemberState::kConfirmed) continue;
    out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> MembershipTable::expired_suspects(
    SimTime cutoff) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (i == self_) continue;
    if (!entries_[i].known) continue;
    if (entries_[i].state != MemberState::kSuspect) continue;
    if (entries_[i].since <= cutoff) out.push_back(i);
  }
  return out;
}

std::vector<Update> MembershipTable::snapshot() const {
  std::vector<Update> out;
  out.push_back(Update{self_, MemberState::kAlive, incarnation_});
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (i == self_ || !entries_[i].known) continue;
    out.push_back(Update{i, entries_[i].state, entries_[i].incarnation});
  }
  return out;
}

std::vector<Update> MembershipTable::piggyback(std::size_t limit) {
  if (rumors_.empty() || limit == 0) return {};
  // Freshest rumors (highest remaining budget) first; subject ascending
  // breaks ties so the selection is deterministic. queue_rumor keeps
  // subjects unique, so one pass never repeats a subject.
  std::vector<std::size_t> order(rumors_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (rumors_[a].budget != rumors_[b].budget) {
      return rumors_[a].budget > rumors_[b].budget;
    }
    return rumors_[a].update.subject < rumors_[b].update.subject;
  });
  if (order.size() > limit) order.resize(limit);

  std::vector<Update> out;
  out.reserve(order.size());
  for (std::size_t index : order) {
    out.push_back(rumors_[index].update);
    --rumors_[index].budget;
  }
  rumors_.erase(std::remove_if(rumors_.begin(), rumors_.end(),
                               [](const Rumor& r) { return r.budget == 0; }),
                rumors_.end());
  return out;
}

}  // namespace p2plab::gossip
