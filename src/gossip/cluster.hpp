// gossip::Cluster — one SWIM member per virtual node, driven entirely by
// the sim clock and the platform's sockets.
//
// Every per-node action (ticks, probe timeouts, joins, message handling)
// runs as an event on that node's owning shard simulation, touching only
// that node's state; the address table is immutable after construction.
// That single-writer discipline is what makes the protocol bit-identical
// across shard counts — the same property every other workload in this
// repo maintains.
//
// Lifecycle under churn: the fault injector's node hooks call crash() /
// stop() / restart() from events already scheduled on the owning shard.
// A monotonically increasing epoch is captured by every scheduled lambda
// and socket handler, so callbacks from a previous life are no-ops —
// there is no event cancellation to keep deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gossip/protocol.hpp"
#include "metrics/registry.hpp"
#include "sockets/socket.hpp"

namespace p2plab::core {
class Platform;
}

namespace p2plab::gossip {

/// One local confirm decision: `observer` declared `victim` dead at `at`.
struct ConfirmRecord {
  SimTime at;
  std::uint32_t observer = 0;
  std::uint32_t victim = 0;
};

/// "gossip.*" registry handles; bound per node against the owning shard's
/// registry (single-writer), merged into the master after the run.
struct GossipMetrics {
  metrics::Counter pings;
  metrics::Counter acks;
  metrics::Counter ping_reqs;
  metrics::Counter suspects;
  metrics::Counter confirms;
  metrics::Counter refutations;
  metrics::Counter joins;
};

class Node {
 public:
  Node(core::Platform& platform, const Config& config, std::uint32_t id,
       const std::vector<Ipv4Addr>& addrs);

  /// Bring the member up for the first time (runs as a sim event on the
  /// owning shard). The introducer (id 0) starts joined; everyone else
  /// asks it for a membership snapshot, retrying every period.
  void start();

  // Fault-injector hooks; callers run them on the owning shard.
  void crash();    // sockets already torn down by Platform::crash_vnode
  void stop();     // graceful leave: close the socket, go silent
  void restart();  // rejoin: bump incarnation, re-bind, re-join

  /// Post-run teardown (scheduled as a sim event so the queue can drain).
  void halt();

  void bind_metrics(metrics::Registry& registry);

  std::uint32_t id() const { return id_; }
  bool running() const { return running_; }
  bool joined() const { return joined_; }
  const MembershipTable& table() const { return table_; }
  const std::vector<ConfirmRecord>& confirms() const { return confirms_; }

 private:
  struct Relay {
    std::uint32_t requester = 0;
    std::uint64_t requester_seq = 0;
  };

  SimTime now() const;
  void bind_socket();
  void send(std::uint32_t to, std::uint32_t type, Payload payload,
            bool piggyback = true);
  void send_join();
  void begin_ticking();
  void tick();
  std::uint32_t next_probe_target(bool* found);
  void fire_indirect(std::uint64_t seq);
  void on_datagram(const sockets::Message& message);

  core::Platform& platform_;
  const Config& config_;
  std::uint32_t id_ = 0;
  const std::vector<Ipv4Addr>& addrs_;
  MembershipTable table_;
  Rng rng_;

  sockets::DatagramSocketPtr sock_;
  std::uint64_t epoch_ = 0;  // bumped on every lifecycle transition
  bool running_ = false;
  bool joined_ = false;

  // Direct-probe state: one outstanding probe per protocol period.
  std::uint64_t seq_ = 0;  // last sequence number issued (probes + relays)
  std::uint64_t probe_seq_ = 0;
  std::uint32_t probe_target_ = 0;
  bool probe_open_ = false;
  bool probe_acked_ = false;

  // Round-robin probe order: a shuffled ring, reshuffled when exhausted.
  std::vector<std::uint32_t> probe_ring_;
  std::size_t ring_pos_ = 0;

  // Outstanding ping-req relays, keyed by the relay probe's sequence.
  std::map<std::uint64_t, Relay> relays_;

  std::vector<ConfirmRecord> confirms_;
  std::uint64_t counted_refutations_ = 0;
  GossipMetrics metrics_;
};

/// The whole membership experiment: one Node per vnode [0, config.nodes).
class Cluster {
 public:
  Cluster(core::Platform& platform, const Config& config);

  /// Schedule the staggered start: the introducer at `platform.now()`,
  /// node i at +i·join_interval, each on its owning shard.
  void start();

  /// Bind each node's gossip.* counters to its shard registry.
  void bind_metrics();

  /// Schedule a halt event for every node at `platform.now()`; the caller
  /// then runs the platform briefly so the event queue drains.
  void schedule_halt_all();

  Node& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t size() const { return nodes_.size(); }

  /// Every local confirm decision, sorted by (time, observer, victim) —
  /// deterministic regardless of shard count.
  std::vector<ConfirmRecord> confirm_log() const;

  /// Canonical end-state digest (confirm log + per-node table summary)
  /// for the shard-count invariance test.
  std::vector<std::string> event_log() const;

 private:
  core::Platform& platform_;
  const Config config_;
  std::vector<Ipv4Addr> addrs_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace p2plab::gossip
