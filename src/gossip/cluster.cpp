#include "gossip/cluster.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/platform.hpp"

namespace p2plab::gossip {

Node::Node(core::Platform& platform, const Config& config, std::uint32_t id,
           const std::vector<Ipv4Addr>& addrs)
    : platform_(platform),
      config_(config),
      id_(id),
      addrs_(addrs),
      table_(id, config.nodes),
      rng_(platform.rng().fork(config.rng_stream).fork(id)) {}

SimTime Node::now() const { return platform_.sim_of_vnode(id_).now(); }

void Node::bind_metrics(metrics::Registry& registry) {
  metrics_.pings = registry.counter("gossip.pings");
  metrics_.acks = registry.counter("gossip.acks");
  metrics_.ping_reqs = registry.counter("gossip.ping_reqs");
  metrics_.suspects = registry.counter("gossip.suspects");
  metrics_.confirms = registry.counter("gossip.confirms");
  metrics_.refutations = registry.counter("gossip.refutations");
  metrics_.joins = registry.counter("gossip.joins");
}

void Node::bind_socket() {
  sock_ = platform_.api(id_).udp_bind(kGossipPort);
  sock_->on_message(
      [this, epoch = epoch_](sockets::Message&& message, Ipv4Addr, uint16_t) {
        if (epoch != epoch_ || !running_) return;
        on_datagram(message);
      });
}

void Node::start() {
  running_ = true;
  bind_socket();
  if (id_ == 0) {
    // The introducer is its own cluster of one until joiners show up.
    joined_ = true;
    metrics_.joins.inc();
    begin_ticking();
  } else {
    send_join();
  }
}

void Node::crash() {
  // Platform::crash_vnode already aborted the socket; drop our reference
  // and invalidate every scheduled callback from this life.
  ++epoch_;
  running_ = false;
  joined_ = false;
  probe_open_ = false;
  relays_.clear();
  sock_.reset();
}

void Node::stop() {
  ++epoch_;
  running_ = false;
  joined_ = false;
  probe_open_ = false;
  relays_.clear();
  if (sock_) sock_->close();
  sock_.reset();
}

void Node::restart() {
  ++epoch_;
  running_ = true;
  joined_ = false;
  probe_open_ = false;
  // The new incarnation supersedes any suspicion of the crashed one.
  table_.bump_self(now());
  bind_socket();
  if (id_ == 0) {
    joined_ = true;
    metrics_.joins.inc();
    begin_ticking();
  } else {
    send_join();
  }
}

void Node::halt() { stop(); }

void Node::send(std::uint32_t to, std::uint32_t type, Payload payload,
                bool piggyback) {
  P2PLAB_ASSERT(sock_ != nullptr);
  payload.from = id_;
  payload.from_incarnation = table_.incarnation();
  if (piggyback) {
    std::vector<Update> rumors = table_.piggyback(config_.piggyback);
    payload.updates.insert(payload.updates.end(), rumors.begin(),
                           rumors.end());
  }
  sockets::Message message;
  message.type = type;
  message.size = DataSize::bytes(wire_bytes(payload));
  message.body = std::make_shared<Payload>(std::move(payload));
  sock_->send_to(addrs_[to], kGossipPort, std::move(message));
}

void Node::send_join() {
  send(0, kMsgJoinReq, Payload{});
  // Retry every period until the introducer answers (it may be down or
  // the join may be lost in a burst window).
  platform_.sim_of_vnode(id_).schedule_after(
      config_.period, [this, epoch = epoch_] {
        if (epoch != epoch_ || !running_ || joined_) return;
        send_join();
      });
}

void Node::begin_ticking() {
  platform_.sim_of_vnode(id_).schedule_after(config_.period,
                                             [this, epoch = epoch_] {
                                               if (epoch != epoch_) return;
                                               tick();
                                             });
}

std::uint32_t Node::next_probe_target(bool* found) {
  // Round-robin over a shuffled ring (SWIM §4.3): every member is probed
  // within one traversal, giving deterministic worst-case detection time;
  // the shuffle keeps probe load spread.
  for (int rebuilds = 0; rebuilds < 2; ++rebuilds) {
    while (ring_pos_ < probe_ring_.size()) {
      const std::uint32_t candidate = probe_ring_[ring_pos_++];
      const MembershipTable::Entry& entry = table_.entry(candidate);
      if (entry.known && entry.state != MemberState::kConfirmed) {
        *found = true;
        return candidate;
      }
    }
    probe_ring_ = table_.probe_candidates();
    ring_pos_ = 0;
    rng_.shuffle(probe_ring_);
  }
  *found = false;
  return 0;
}

void Node::tick() {
  if (!running_ || !joined_) return;
  const SimTime t = now();

  // Close out the previous period's probe: no direct or relayed ack means
  // the target becomes a local suspect.
  if (probe_open_) {
    probe_open_ = false;
    if (!probe_acked_ && table_.mark_suspect(probe_target_, t)) {
      metrics_.suspects.inc();
    }
  }

  // Suspicions older than suspect_timeout become local confirms.
  for (std::uint32_t victim :
       table_.expired_suspects(t - config_.suspect_timeout)) {
    if (table_.mark_confirmed(victim, t)) {
      confirms_.push_back(ConfirmRecord{t, id_, victim});
      metrics_.confirms.inc();
    }
  }

  bool found = false;
  const std::uint32_t target = next_probe_target(&found);
  if (found) {
    probe_seq_ = ++seq_;
    probe_target_ = target;
    probe_acked_ = false;
    probe_open_ = true;
    send(target, kMsgPing, Payload{.seq = probe_seq_, .target = target});
    metrics_.pings.inc();
    platform_.sim_of_vnode(id_).schedule_after(
        config_.ping_timeout, [this, epoch = epoch_, seq = probe_seq_] {
          if (epoch != epoch_) return;
          fire_indirect(seq);
        });
  }

  begin_ticking();
}

void Node::fire_indirect(std::uint64_t seq) {
  if (!running_ || !probe_open_ || probe_acked_ || seq != probe_seq_) return;
  // Direct ack missing: ask k proxies to probe the target for us, so one
  // lossy/congested link cannot create a suspicion on its own.
  std::vector<std::uint32_t> candidates = table_.probe_candidates();
  candidates.erase(
      std::remove(candidates.begin(), candidates.end(), probe_target_),
      candidates.end());
  std::vector<std::uint32_t> proxies =
      rng_.sample(candidates, config_.indirect_k);
  std::sort(proxies.begin(), proxies.end());  // sample() order unspecified
  for (std::uint32_t proxy : proxies) {
    send(proxy, kMsgPingReq,
         Payload{.seq = probe_seq_, .target = probe_target_});
    metrics_.ping_reqs.inc();
  }
}

void Node::on_datagram(const sockets::Message& message) {
  const Payload& p = message.as<Payload>();
  const SimTime t = now();

  // The sender is alive at its stated incarnation; then fold in rumors.
  table_.apply(Update{p.from, MemberState::kAlive, p.from_incarnation}, t);
  for (const Update& update : p.updates) table_.apply(update, t);
  if (table_.refutations() != counted_refutations_) {
    metrics_.refutations.inc(table_.refutations() - counted_refutations_);
    counted_refutations_ = table_.refutations();
  }

  switch (message.type) {
    case kMsgJoinReq: {
      // Introduce the joiner: full membership snapshot, no rumor budget
      // spent (the snapshot is not gossip, it is state transfer).
      Payload reply;
      reply.updates = table_.snapshot();
      send(p.from, kMsgJoinRep, std::move(reply), /*piggyback=*/false);
      break;
    }
    case kMsgJoinRep: {
      if (joined_) break;
      joined_ = true;
      metrics_.joins.inc();
      begin_ticking();
      break;
    }
    case kMsgPing: {
      send(p.from, kMsgAck, Payload{.seq = p.seq, .target = id_});
      metrics_.acks.inc();
      break;
    }
    case kMsgPingReq: {
      if (p.target == id_) {  // degenerate: we can vouch for ourselves
        send(p.from, kMsgAck, Payload{.seq = p.seq, .target = id_});
        metrics_.acks.inc();
        break;
      }
      // Probe on the requester's behalf under our own sequence number;
      // remember the mapping so the ack can be forwarded back.
      const std::uint64_t relay_seq = ++seq_;
      relays_[relay_seq] = Relay{p.from, p.seq};
      send(p.target, kMsgPing, Payload{.seq = relay_seq, .target = p.target});
      metrics_.pings.inc();
      platform_.sim_of_vnode(id_).schedule_after(
          config_.ping_timeout * 2, [this, epoch = epoch_, relay_seq] {
            if (epoch != epoch_) return;
            relays_.erase(relay_seq);
          });
      break;
    }
    case kMsgAck: {
      const auto relay = relays_.find(p.seq);
      if (relay != relays_.end()) {
        const Relay pending = relay->second;
        relays_.erase(relay);
        send(pending.requester, kMsgAck,
             Payload{.seq = pending.requester_seq, .target = p.target});
        metrics_.acks.inc();
      } else if (probe_open_ && p.seq == probe_seq_ &&
                 p.target == probe_target_) {
        probe_acked_ = true;
      }
      break;
    }
    default:
      break;
  }
}

Cluster::Cluster(core::Platform& platform, const Config& config)
    : platform_(platform), config_(config) {
  P2PLAB_ASSERT_MSG(config.nodes >= 2, "gossip needs at least 2 nodes");
  P2PLAB_ASSERT(config.nodes <= platform.vnode_count());
  addrs_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    addrs_.push_back(platform.api(i).effective_bind_address());
  }
  nodes_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        platform, config_, static_cast<std::uint32_t>(i), addrs_));
  }
}

void Cluster::bind_metrics() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->bind_metrics(platform_.registry_of_vnode(i));
  }
}

void Cluster::start() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    platform_.sim_of_vnode(i).schedule_at(
        platform_.now() + config_.join_interval * static_cast<std::int64_t>(i),
        [node] { node->start(); });
  }
}

void Cluster::schedule_halt_all() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    platform_.sim_of_vnode(i).schedule_at(platform_.now(),
                                          [node] { node->halt(); });
  }
}

std::vector<ConfirmRecord> Cluster::confirm_log() const {
  std::vector<ConfirmRecord> out;
  for (const auto& node : nodes_) {
    out.insert(out.end(), node->confirms().begin(), node->confirms().end());
  }
  std::sort(out.begin(), out.end(),
            [](const ConfirmRecord& a, const ConfirmRecord& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.observer != b.observer) return a.observer < b.observer;
              return a.victim < b.victim;
            });
  return out;
}

std::vector<std::string> Cluster::event_log() const {
  std::vector<std::string> out;
  for (const ConfirmRecord& record : confirm_log()) {
    out.push_back("confirm t=" + std::to_string(record.at.count_ns()) +
                  " obs=" + std::to_string(record.observer) +
                  " victim=" + std::to_string(record.victim));
  }
  for (const auto& node : nodes_) {
    std::string line = "node " + std::to_string(node->id()) +
                       " inc=" + std::to_string(node->table().incarnation()) +
                       " joined=" + (node->joined() ? "1" : "0") + " view=";
    for (std::uint32_t j = 0; j < nodes_.size(); ++j) {
      const MembershipTable::Entry& entry = node->table().entry(j);
      if (!entry.known) {
        line += '?';
      } else if (entry.state == MemberState::kAlive) {
        line += 'a';
      } else if (entry.state == MemberState::kSuspect) {
        line += 's';
      } else {
        line += 'd';
      }
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace p2plab::gossip
