// SWIM-style membership protocol: configuration, wire format and the pure
// per-node state machine.
//
// The protocol follows Das et al.'s SWIM (and its MP1Node/Serf-style
// descendants): each protocol period a member probes one other member
// (round-robin over a shuffled ring); a missing ack within ping_timeout
// triggers an indirect ping-req through k proxies; a member with no ack by
// the end of the period is locally *suspected*, and a suspicion that ages
// past suspect_timeout is locally *confirmed* dead. Every message
// piggybacks a bounded number of membership rumors (budgeted at
// ~3·log2(n) retransmissions each), and a member that hears itself
// suspected refutes by bumping its incarnation number — alive updates with
// a higher incarnation override suspicion everywhere.
//
// MembershipTable is deliberately free of sockets, timers and platform
// dependencies: it is the unit-testable core (suspect/confirm precedence,
// incarnation refutation, piggyback budgeting), driven by gossip::Node
// (cluster.hpp) on the sim clock.
//
// One documented deviation from strict SWIM: an Alive update with a
// *strictly higher* incarnation overrides Confirmed. SWIM treats confirm
// as final; we let crashed nodes rejoin under churn (they bump their
// incarnation on restart), so the cluster heals instead of remembering a
// rejoined member as dead forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace p2plab::gossip {

struct Config {
  /// Cluster size; vnode 0 is the introducer every joiner contacts.
  std::size_t nodes = 32;
  /// Protocol period: one direct probe (and one suspect sweep) per period.
  Duration period = Duration::sec(1);
  /// Direct-ack wait before the indirect ping-req round fires.
  Duration ping_timeout = Duration::millis(300);
  /// Suspicion age before a local confirm (the detection latency knob).
  Duration suspect_timeout = Duration::sec(4);
  /// Proxies asked per indirect probe round (SWIM's k).
  std::size_t indirect_k = 3;
  /// Max rumors piggybacked per message.
  std::size_t piggyback = 8;
  /// Stagger between consecutive joins at cluster start.
  Duration join_interval = Duration::millis(200);
  /// Platform-RNG stream the per-node RNGs fork from.
  std::uint64_t rng_stream = 0x50a17;
};

enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kConfirmed = 2,  // declared dead
};

const char* member_state_name(MemberState state);

/// One piggybacked membership rumor.
struct Update {
  std::uint32_t subject = 0;
  MemberState state = MemberState::kAlive;
  std::uint32_t incarnation = 0;
};

/// Body of every gossip datagram. `seq` correlates probes with acks;
/// `target` names the ping-req target (and, in acks, the member whose
/// aliveness the ack proves, so relayed acks stay attributable).
struct Payload {
  std::uint32_t from = 0;
  std::uint32_t from_incarnation = 0;
  std::uint64_t seq = 0;
  std::uint32_t target = 0;
  std::vector<Update> updates;
};

// sockets::Message::type values.
inline constexpr std::uint32_t kMsgJoinReq = 0x6a01;
inline constexpr std::uint32_t kMsgJoinRep = 0x6a02;
inline constexpr std::uint32_t kMsgPing = 0x6a03;
inline constexpr std::uint32_t kMsgAck = 0x6a04;
inline constexpr std::uint32_t kMsgPingReq = 0x6a05;

/// SWIM's customary port, bound on every member.
inline constexpr std::uint16_t kGossipPort = 7946;
/// Modeled wire bytes: fixed header (from/incarnation/seq/target) plus a
/// packed (subject, state, incarnation) triple per rumor.
inline constexpr std::uint64_t kGossipHeaderBytes = 16;
inline constexpr std::uint64_t kUpdateWireBytes = 9;

std::uint64_t wire_bytes(const Payload& payload);

/// One member's view of the cluster plus its rumor queue. All transitions
/// are pure functions of (current state, update, now); the caller supplies
/// the clock.
class MembershipTable {
 public:
  struct Entry {
    bool known = false;
    MemberState state = MemberState::kAlive;
    std::uint32_t incarnation = 0;
    /// When the current state was adopted (drives suspicion aging).
    SimTime since;
  };

  MembershipTable(std::uint32_t self, std::size_t cluster_size);

  std::uint32_t self() const { return self_; }
  std::uint32_t incarnation() const { return incarnation_; }
  /// Times this member refuted a suspicion/confirmation about itself.
  std::uint64_t refutations() const { return refutations_; }
  const Entry& entry(std::uint32_t subject) const {
    return entries_[subject];
  }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Apply one received rumor with SWIM precedence. Returns true when the
  /// local view changed (and the rumor was re-queued for onward gossip).
  /// Rumors about `self` never change the view; a suspect/confirm about
  /// self with a current-or-newer incarnation triggers a refutation (bumps
  /// incarnation, queues the Alive rumor).
  bool apply(const Update& update, SimTime now);

  /// Local detector verdicts. Each returns true when the state actually
  /// transitioned (queuing the rumor); stale requests are no-ops.
  bool mark_suspect(std::uint32_t subject, SimTime now);
  bool mark_confirmed(std::uint32_t subject, SimTime now);

  /// Restart after a crash: bump own incarnation and queue the Alive
  /// rumor, so the rejoin supersedes any suspicion of the old incarnation.
  void bump_self(SimTime now);

  /// Known, non-confirmed members other than self — the probe pool.
  std::vector<std::uint32_t> probe_candidates() const;
  /// Suspects whose suspicion started at or before `cutoff`.
  std::vector<std::uint32_t> expired_suspects(SimTime cutoff) const;
  /// Full-state updates (self first by subject order) for a join reply.
  std::vector<Update> snapshot() const;

  /// Up to `limit` distinct queued rumors, freshest (highest remaining
  /// budget) first with lowest-subject tie-break; decrements each chosen
  /// rumor's budget and drops exhausted ones. Deterministic.
  std::vector<Update> piggyback(std::size_t limit);
  std::size_t rumor_count() const { return rumors_.size(); }

 private:
  struct Rumor {
    Update update;
    std::uint32_t budget = 0;
  };

  /// Queue (or supersede, resetting the budget) the rumor for a subject.
  void queue_rumor(const Update& update);

  std::uint32_t self_ = 0;
  std::uint32_t incarnation_ = 0;
  std::uint32_t rumor_budget_ = 0;  // transmissions per rumor, ~3·log2(n)
  std::uint64_t refutations_ = 0;
  std::vector<Entry> entries_;
  std::vector<Rumor> rumors_;
};

}  // namespace p2plab::gossip
