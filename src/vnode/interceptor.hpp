// The modified-libc interception layer.
//
// Models P2PLab's patched bind()/connect()/listen():
//  - bind(): the requested address is *replaced* by $BINDIP;
//  - connect()/listen(): an implicit bind($BINDIP) is issued first (the
//    extra system call the paper measures); if the application had already
//    bound, the implicit bind fails and the error is ignored.
//  - statically linked programs bypass the libc entirely, so their calls
//    pass through unmodified — the failure case the paper documents.
//
// Each decision reports the CPU cost it added so the socket layer can
// charge it to the host; the overhead microbenchmark reads off these costs.
#pragma once

#include <optional>

#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "vnode/syscall_costs.hpp"
#include "vnode/vnode.hpp"

namespace p2plab::vnode {

class Interceptor {
 public:
  Interceptor() = default;
  explicit Interceptor(SyscallCosts costs) : costs_(costs) {}

  const SyscallCosts& costs() const { return costs_; }

  struct BindDecision {
    Ipv4Addr address;       // the address the socket actually binds to
    Duration added_cost;    // interception CPU beyond the vanilla call
    bool intercepted;       // false for static binaries / unset BINDIP
  };

  /// Explicit bind(addr): intercepted processes bind to $BINDIP instead.
  BindDecision on_bind(const Process& process, Ipv4Addr requested) const {
    if (const auto forced = bindip(process)) {
      return {*forced, costs_.env_lookup, true};
    }
    return {requested, Duration::zero(), false};
  }

  /// Implicit bind before connect()/listen(). `already_bound` models the
  /// application having called bind() itself: the interposed bind fails
  /// and the error is ignored — but its syscall cost was still paid.
  BindDecision on_connect_or_listen(const Process& process,
                                    std::optional<Ipv4Addr> already_bound)
      const {
    if (const auto forced = bindip(process)) {
      const Duration cost = costs_.env_lookup + costs_.sys_bind;
      if (already_bound.has_value()) {
        return {*already_bound, cost, true};  // EINVAL ignored
      }
      return {*forced, cost, true};
    }
    if (already_bound.has_value()) {
      return {*already_bound, Duration::zero(), false};
    }
    // Vanilla behaviour: the kernel picks the interface's primary address.
    return {process.node().host().admin_ip(), Duration::zero(), false};
  }

 private:
  std::optional<Ipv4Addr> bindip(const Process& process) const {
    if (process.link_mode() == LinkMode::kStatic) return std::nullopt;
    const auto value = process.getenv("BINDIP");
    if (!value) return std::nullopt;
    return Ipv4Addr::parse(*value);
  }

  SyscallCosts costs_{};
};

}  // namespace p2plab::vnode
