// Syscall cost model for the process-level virtualization layer.
//
// P2PLab binds each virtual node's process to its own IP by modifying
// bind()/connect()/listen() in the FreeBSD libc: connect() and listen()
// issue an extra bind() to the address in the BINDIP environment variable,
// doubling their system-call count. The paper measures the overhead on a
// local TCP connect/disconnect cycle: 10.22 us unmodified vs 10.79 us
// intercepted.
//
// The constants below are calibrated so those two numbers are *emergent*:
//   base cycle  = socket + connect + loopback RTT + close
//               = 2.10 + 4.62 + 2.00 + 1.50             = 10.22 us
//   intercepted = base + getenv(BINDIP) + extra bind
//               = 10.22 + 0.07 + 0.50                   = 10.79 us
#pragma once

#include "common/time.hpp"

namespace p2plab::vnode {

struct SyscallCosts {
  Duration sys_socket = Duration::micros(2.10);
  Duration sys_bind = Duration::micros(0.50);
  Duration sys_connect = Duration::micros(4.62);
  Duration sys_listen = Duration::micros(0.80);
  Duration sys_accept = Duration::micros(2.50);
  Duration sys_close = Duration::micros(1.50);
  Duration sys_send = Duration::micros(0.90);
  Duration sys_recv = Duration::micros(0.90);
  /// Kernel loopback handoff inside a local connect/accept cycle.
  Duration loopback_rtt = Duration::micros(2.00);
  /// getenv("BINDIP") plus address parsing in the modified libc.
  Duration env_lookup = Duration::micros(0.07);

  /// The microbenchmark quantities, for tests and the bench harness.
  Duration base_connect_cycle() const {
    return sys_socket + sys_connect + loopback_rtt + sys_close;
  }
  Duration intercepted_connect_cycle() const {
    return base_connect_cycle() + env_lookup + sys_bind;
  }
};

}  // namespace p2plab::vnode
