// Virtual nodes and their processes.
//
// P2PLab virtualizes at the process level: a virtual node is an ordinary
// process whose *network identity* is virtualized — it is bound to one of
// the host's aliased IP addresses via the BINDIP environment variable. All
// other resources (filesystem, memory) are shared like normal processes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/ipv4.hpp"
#include "net/host.hpp"

namespace p2plab::vnode {

/// A virtual node: an IP alias on a physical host.
class VirtualNode {
 public:
  VirtualNode(net::Host& host, std::uint32_t id, Ipv4Addr ip)
      : host_(host), id_(id), ip_(ip) {
    host.add_alias(ip);
  }

  VirtualNode(const VirtualNode&) = delete;
  VirtualNode& operator=(const VirtualNode&) = delete;

  net::Host& host() { return host_; }
  const net::Host& host() const { return host_; }
  std::uint32_t id() const { return id_; }
  Ipv4Addr ip() const { return ip_; }

 private:
  net::Host& host_;
  std::uint32_t id_;
  Ipv4Addr ip_;
};

enum class LinkMode {
  kDynamic,  // normal case: the modified libc intercepts network calls
  kStatic,   // statically compiled: interception does not apply (the one
             // failure case the paper reports)
};

/// The process running on a virtual node: environment variables plus the
/// link mode that decides whether the libc interception is active.
class Process {
 public:
  Process(VirtualNode& node, LinkMode link_mode = LinkMode::kDynamic)
      : node_(node), link_mode_(link_mode) {
    set_env("BINDIP", node.ip().to_string());
  }

  VirtualNode& node() { return node_; }
  const VirtualNode& node() const { return node_; }
  net::Host& host() { return node_.host(); }
  LinkMode link_mode() const { return link_mode_; }

  void set_env(const std::string& key, const std::string& value) {
    env_[key] = value;
  }
  void unset_env(const std::string& key) { env_.erase(key); }
  std::optional<std::string> getenv(const std::string& key) const {
    const auto it = env_.find(key);
    if (it == env_.end()) return std::nullopt;
    return it->second;
  }

 private:
  VirtualNode& node_;
  LinkMode link_mode_;
  std::map<std::string, std::string> env_;
};

}  // namespace p2plab::vnode
