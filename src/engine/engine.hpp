// Sharded parallel runtime: conservative synchronization on a fixed grid.
//
// The engine partitions the platform's physical hosts into K shards, each
// owning a private Simulation, Network (firewalls, NICs, hosted vnodes) and
// SocketManager, driven by one worker thread. Shards execute in lockstep
// windows of length L — the engine's lookahead — separated by barriers:
//
//   barrier: merge cross-shard packets, pick next window [wL, (w+1)L)
//   window:  every shard runs its own events with time < (w+1)L
//
// L = (minimum emulated access-link delay) + switch latency. Every
// inter-host packet pays at least one source access pipe before it can
// touch another host, and in engine mode that pipe's fixed delay is
// *deferred* into the handoff stamp (net/network.hpp). A packet sent at
// time t therefore arrives no earlier than t + L, which lands at or beyond
// the end of the current window: no shard can receive an event for the
// window it is executing, the classic conservative-lookahead argument.
//
// Determinism is the point, not just safety. A K-shard run is bit-identical
// to the 1-shard engine run because every source of ordering is keyed on
// shard-independent values:
//   * the window grid is fixed (multiples of L) and the fast-forward target
//     is derived from the global minimum pending-event time,
//   * all inter-host packets — even same-shard ones — take the handoff
//     path, so the event sequence cannot depend on the partition,
//   * merged ingress is sorted by (stamp, source host global index, per-
//     source sequence), a total order with no ties,
//   * per-host rng streams, connection ids and trace rings are keyed on
//     the host's *global* index.
// Events of different hosts inside one window commute (all mutable state is
// host-local), so per-host event subsequences are partition-independent by
// induction — which is what the golden-trace test in tests/engine asserts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ipv4.hpp"
#include "common/time.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "profile/profiler.hpp"
#include "sim/simulation.hpp"

namespace p2plab::engine {

/// Reusable K-party barrier. The last thread to arrive runs `completion`
/// while the others are still blocked, giving it exclusive access to all
/// shard state with happens-before edges in both directions (mutex).
class PhaseBarrier {
 public:
  explicit PhaseBarrier(std::size_t parties) : parties_(parties) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  template <typename Completion>
  void arrive_and_wait(Completion&& completion) {
    std::unique_lock<std::mutex> lock(mu_);
    if (++waiting_ == parties_) {
      completion();
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      const std::uint64_t gen = generation_;
      cv_.wait(lock, [this, gen] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
};

/// The sharded runtime. Owns no simulation state itself — shards register
/// their Simulation/Network pair and the engine installs itself as the
/// network's FabricHandoff. K = 1 is fully supported and is the baseline
/// the determinism guarantee is stated against.
class Engine final : public net::FabricHandoff {
 public:
  enum class StopReason {
    kDrained,    // no shard has any pending event
    kPredicate,  // the stop predicate returned true at a barrier
    kDeadline,   // the next window would start at or past the deadline
  };

  /// `lookahead` must be a positive lower bound on the latency of every
  /// inter-host path (min access-link delay + switch latency).
  explicit Engine(Duration lookahead);

  /// Register a shard; returns its index. Installs the engine as `network`'s
  /// fabric handoff. All shards must be added before the first run().
  std::size_t add_shard(sim::Simulation& sim, net::Network& network);

  /// Activate `recorder` on the shard's worker thread for the duration of
  /// each run (per-shard rings keep tracing race-free).
  void set_recorder(std::size_t shard, metrics::FlightRecorder* recorder);

  /// Attach a wall-clock profiler (all shards must be added first; the
  /// profiler needs one ring per shard). Workers then record barrier-wait /
  /// execute / compact phase samples into their own ring and the barrier
  /// coordinator records the cross-shard merge — all wall-clock-only, so
  /// virtual time and event order stay bit-identical. nullptr detaches.
  void set_profiler(profile::Profiler* profiler);

  /// Pin each worker thread to one online CPU (round-robin over the
  /// process affinity mask) at the start of every run. Off by default;
  /// the platform enables it when online cores >= shards.
  void set_pin_workers(bool pin) { pin_workers_ = pin; }
  bool pin_workers() const { return pin_workers_; }
  /// CPU each shard's worker was pinned to during the last run (-1 = not
  /// pinned). Valid after run() returns; empty before the first run.
  const std::vector<int>& worker_cpus() const { return worker_cpus_; }

  /// Declare that `addr` lives on `shard`. Mappings are static: a crashed
  /// vnode's address stays mapped (withdrawal is the destination shard's
  /// business); push() returns false only for addresses never mapped.
  void map_address(Ipv4Addr addr, std::size_t shard);

  std::size_t shard_count() const { return sims_.size(); }
  std::size_t shard_of_address(Ipv4Addr addr) const {
    return shard_of_addr_.at(addr.to_u32());
  }
  Duration lookahead() const { return lookahead_; }
  /// Barrier time: every shard has executed all its events before this.
  SimTime now() const { return cursor_; }

  /// Run all shards until `deadline` (clocks advance to it), the optional
  /// `stop_predicate` returns true (evaluated under the barrier, on the
  /// fixed grid of `check_interval` multiples so the evaluation schedule is
  /// shard-count-independent), or every shard drains. Resumable: a stopped
  /// engine continues exactly where it left off on the next call.
  StopReason run(SimTime deadline, std::function<bool()> stop_predicate = {},
                 Duration check_interval = Duration::sec(5));

  /// FabricHandoff: called by a shard's Network for every inter-host
  /// packet. `stamp` must land at or beyond the current window's end —
  /// that is the lookahead contract, and it is asserted.
  bool push(std::size_t src_host, std::uint64_t seq, SimTime stamp,
            net::Packet packet) override;

 private:
  struct IngressEntry {
    SimTime stamp;
    std::size_t src_host;
    std::uint64_t seq;
    net::Packet packet;
  };

  enum class Phase { kRunWindow, kStopDrained, kStopPredicate, kStopDeadline };

  /// Context for the kernel's compact-timing hook (one per shard; the bare
  /// function pointer cannot capture).
  struct CompactCtx {
    Engine* engine = nullptr;
    std::size_t shard = 0;
  };
  static void compact_hook(void* ctx, std::uint64_t wall_dur_ns);

  void worker(std::size_t shard);
  void pin_worker(std::size_t shard);
  /// Barrier completion: drain outboxes in merge order, then decide the
  /// next window or a stop. Runs with exclusive access to all shards.
  void coordinate();

  Duration lookahead_;
  std::vector<sim::Simulation*> sims_;
  std::vector<net::Network*> networks_;
  std::vector<metrics::FlightRecorder*> recorders_;
  profile::Profiler* profiler_ = nullptr;
  std::vector<std::unique_ptr<CompactCtx>> compact_ctx_;
  bool pin_workers_ = false;
  std::vector<int> worker_cpus_;
  std::vector<int> pin_cpu_list_;  // affinity mask snapshot, per run
  std::unordered_map<std::uint32_t, std::size_t> shard_of_addr_;

  // outbox_[src_shard][dst_shard]: plain vectors — during a window each is
  // written by exactly one worker (the source shard's), and the barrier's
  // mutex publishes them to the coordinator.
  std::vector<std::vector<std::vector<IngressEntry>>> outbox_;
  std::vector<IngressEntry> merge_buf_;  // coordinator scratch

  std::unique_ptr<PhaseBarrier> barrier_;
  SimTime cursor_ = SimTime::zero();      // completed through here
  SimTime window_end_ = SimTime::zero();  // end of the window in flight
  /// Monotonic count of barrier completions; labels profile samples.
  /// Written by the coordinator under the barrier mutex, read by workers
  /// after they leave the barrier (same lock: ordered both ways).
  std::uint64_t window_index_ = 0;
  SimTime next_check_ = SimTime::zero();
  SimTime deadline_ = SimTime::max();
  Duration check_interval_ = Duration::sec(5);
  std::function<bool()> stop_predicate_;
  Phase phase_ = Phase::kRunWindow;
  bool running_ = false;
};

}  // namespace p2plab::engine
