#include "engine/engine.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "common/assert.hpp"

namespace p2plab::engine {

Engine::Engine(Duration lookahead) : lookahead_(lookahead) {
  P2PLAB_ASSERT_MSG(lookahead_ > Duration::zero(),
                    "conservative synchronization needs positive lookahead");
}

std::size_t Engine::add_shard(sim::Simulation& sim, net::Network& network) {
  P2PLAB_ASSERT_MSG(!running_, "cannot add shards mid-run");
  const std::size_t index = sims_.size();
  sims_.push_back(&sim);
  networks_.push_back(&network);
  recorders_.push_back(nullptr);
  network.set_fabric_handoff(this);
  outbox_.assign(sims_.size(),
                 std::vector<std::vector<IngressEntry>>(sims_.size()));
  return index;
}

void Engine::set_recorder(std::size_t shard,
                          metrics::FlightRecorder* recorder) {
  recorders_.at(shard) = recorder;
}

void Engine::map_address(Ipv4Addr addr, std::size_t shard) {
  P2PLAB_ASSERT(shard < sims_.size());
  const auto [it, inserted] = shard_of_addr_.emplace(addr.to_u32(), shard);
  P2PLAB_ASSERT_MSG(inserted || it->second == shard,
                    "address mapped to two shards");
}

bool Engine::push(std::size_t src_host, std::uint64_t seq, SimTime stamp,
                  net::Packet packet) {
  const auto dst_it = shard_of_addr_.find(packet.dst.to_u32());
  if (dst_it == shard_of_addr_.end()) return false;  // never deployed
  // The source address was routable on its shard moments ago, so it is
  // mapped; the lookup names the outbox row this worker exclusively owns.
  const std::size_t src_shard = shard_of_addr_.at(packet.src.to_u32());
  P2PLAB_ASSERT_MSG(stamp >= window_end_,
                    "lookahead violated: handoff stamp inside the window");
  outbox_[src_shard][dst_it->second].push_back(
      IngressEntry{stamp, src_host, seq, std::move(packet)});
  return true;
}

Engine::StopReason Engine::run(SimTime deadline,
                               std::function<bool()> stop_predicate,
                               Duration check_interval) {
  P2PLAB_ASSERT_MSG(!sims_.empty(), "no shards registered");
  P2PLAB_ASSERT(check_interval > Duration::zero());
  deadline_ = deadline;
  stop_predicate_ = std::move(stop_predicate);
  check_interval_ = check_interval;
  // Evaluate the predicate before executing anything: the caller's stop
  // condition may already hold (e.g. resuming a finished swarm).
  next_check_ = cursor_;
  phase_ = Phase::kRunWindow;
  running_ = true;

  barrier_ = std::make_unique<PhaseBarrier>(sims_.size());
  std::vector<std::thread> threads;
  threads.reserve(sims_.size());
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    threads.emplace_back([this, s] { worker(s); });
  }
  for (auto& t : threads) t.join();
  running_ = false;

  if (phase_ == Phase::kStopDeadline) {
    // The stop proves no shard holds an event before the deadline, so
    // advancing every clock there is safe — run_until semantics.
    for (auto* sim : sims_) {
      if (sim->now() < deadline_) sim->advance_to(deadline_);
    }
    if (cursor_ < deadline_) cursor_ = deadline_;
  }
  stop_predicate_ = nullptr;
  switch (phase_) {
    case Phase::kStopPredicate: return StopReason::kPredicate;
    case Phase::kStopDeadline: return StopReason::kDeadline;
    default: return StopReason::kDrained;
  }
}

void Engine::worker(std::size_t shard) {
  metrics::FlightRecorder* const rec = recorders_[shard];
  if (rec != nullptr) metrics::FlightRecorder::set_active(rec);
  sim::Simulation& sim = *sims_[shard];
  for (;;) {
    barrier_->arrive_and_wait([this] { coordinate(); });
    if (phase_ != Phase::kRunWindow) break;
    sim.run_before(window_end_);
    sim.advance_to(window_end_);
    // Window boundaries are on the global grid, so shrinking here is
    // partition-independent (and slot-reuse order is unobservable anyway).
    sim.maybe_compact();
  }
  if (rec != nullptr) metrics::FlightRecorder::set_active(nullptr);
}

void Engine::coordinate() {
  const std::size_t k = sims_.size();

  // 1. Drain all outboxes. Per destination shard, merge the K source
  //    batches and sort by (stamp, src_host, seq) — a strict total order,
  //    since seq is per source host — then schedule each packet's
  //    fabric_arrive at its stamp. Batch contents are shard-count
  //    independent: pushes happen at source event times within a window
  //    grid that is itself derived only from global quantities.
  for (std::size_t d = 0; d < k; ++d) {
    merge_buf_.clear();
    for (std::size_t s = 0; s < k; ++s) {
      auto& box = outbox_[s][d];
      std::move(box.begin(), box.end(), std::back_inserter(merge_buf_));
      box.clear();
    }
    if (merge_buf_.empty()) continue;
    std::sort(merge_buf_.begin(), merge_buf_.end(),
              [](const IngressEntry& a, const IngressEntry& b) {
                if (a.stamp != b.stamp) return a.stamp < b.stamp;
                if (a.src_host != b.src_host) return a.src_host < b.src_host;
                return a.seq < b.seq;
              });
    net::Network* const net = networks_[d];
    for (IngressEntry& e : merge_buf_) {
      // Re-materialize the packet from the *destination* shard's pool (the
      // coordinator has exclusive access at the barrier). The arrival event
      // then carries a 16-byte capture — zero allocations at dispatch.
      sims_[d]->schedule_at(
          e.stamp,
          [net, ref = net->pool().acquire(std::move(e.packet))]() mutable {
            net->fabric_arrive(std::move(ref));
          });
    }
    merge_buf_.clear();
  }

  // 2. Global minimum pending-event time — after the drain, so it is the
  //    same no matter how hosts were partitioned.
  std::optional<SimTime> gmin;
  for (auto* sim : sims_) {
    const auto t = sim->next_event_time();
    if (t.has_value() && (!gmin.has_value() || *t < *gmin)) gmin = t;
  }

  // 3. Stop predicate, on the fixed check grid. cursor_ only ever lands on
  //    barrier times, which are shard-count independent, so the predicate
  //    is evaluated at identical simulated instants for every K.
  if (stop_predicate_ && cursor_ >= next_check_) {
    while (next_check_ <= cursor_) next_check_ += check_interval_;
    if (stop_predicate_()) {
      phase_ = Phase::kStopPredicate;
      return;
    }
  }

  if (!gmin.has_value()) {
    phase_ = Phase::kStopDrained;
    return;
  }
  if (*gmin >= deadline_) {
    // Nothing left before the deadline; run() advances every clock to it.
    phase_ = Phase::kStopDeadline;
    return;
  }

  // 4. Next window: fast-forward empty regions of the fixed L-grid straight
  //    to the window holding the earliest event. Windows are [wL, (w+1)L),
  //    clamped to the deadline (run_until semantics: events strictly before
  //    it); every event executed in one satisfies t >= wL, so every handoff
  //    stamp is >= wL + L >= window end — the push() assertion. Both w and
  //    the clamp derive from global quantities only, keeping the window
  //    sequence identical for every shard count.
  const std::int64_t l_ns = lookahead_.count_ns();
  const std::int64_t w = gmin->count_ns() / l_ns;
  window_end_ = std::min(SimTime::from_ns((w + 1) * l_ns), deadline_);
  cursor_ = window_end_;
  phase_ = Phase::kRunWindow;
}

}  // namespace p2plab::engine
