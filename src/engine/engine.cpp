#include "engine/engine.hpp"

#include <sched.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "common/assert.hpp"

namespace p2plab::engine {

Engine::Engine(Duration lookahead) : lookahead_(lookahead) {
  P2PLAB_ASSERT_MSG(lookahead_ > Duration::zero(),
                    "conservative synchronization needs positive lookahead");
}

std::size_t Engine::add_shard(sim::Simulation& sim, net::Network& network) {
  P2PLAB_ASSERT_MSG(!running_, "cannot add shards mid-run");
  const std::size_t index = sims_.size();
  sims_.push_back(&sim);
  networks_.push_back(&network);
  recorders_.push_back(nullptr);
  network.set_fabric_handoff(this);
  outbox_.assign(sims_.size(),
                 std::vector<std::vector<IngressEntry>>(sims_.size()));
  return index;
}

void Engine::set_recorder(std::size_t shard,
                          metrics::FlightRecorder* recorder) {
  recorders_.at(shard) = recorder;
}

void Engine::set_profiler(profile::Profiler* profiler) {
  P2PLAB_ASSERT_MSG(!running_, "cannot attach a profiler mid-run");
  P2PLAB_ASSERT_MSG(profiler == nullptr ||
                        profiler->shard_count() >= sims_.size(),
                    "profiler needs one ring per shard: add shards first");
  profiler_ = profiler;
  compact_ctx_.clear();
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    if (profiler == nullptr) {
      sims_[s]->set_compact_hook(nullptr, nullptr);
      continue;
    }
    compact_ctx_.push_back(std::make_unique<CompactCtx>(CompactCtx{this, s}));
    sims_[s]->set_compact_hook(&Engine::compact_hook, compact_ctx_.back().get());
  }
}

void Engine::compact_hook(void* ctx, std::uint64_t wall_dur_ns) {
  const auto* c = static_cast<const CompactCtx*>(ctx);
  Engine* const eng = c->engine;
  if (eng->profiler_ == nullptr) return;
  const std::uint64_t end_ns = eng->profiler_->now_ns();
  eng->profiler_->shard_ring(c->shard).push(profile::PhaseSample{
      .start_ns = end_ns > wall_dur_ns ? end_ns - wall_dur_ns : 0,
      .dur_ns = wall_dur_ns,
      .window = eng->window_index_,
      .events = 0,
      .queue_depth = eng->sims_[c->shard]->pending_events(),
      .phase = profile::Phase::kCompact});
}

void Engine::map_address(Ipv4Addr addr, std::size_t shard) {
  P2PLAB_ASSERT(shard < sims_.size());
  const auto [it, inserted] = shard_of_addr_.emplace(addr.to_u32(), shard);
  P2PLAB_ASSERT_MSG(inserted || it->second == shard,
                    "address mapped to two shards");
}

bool Engine::push(std::size_t src_host, std::uint64_t seq, SimTime stamp,
                  net::Packet packet) {
  const auto dst_it = shard_of_addr_.find(packet.dst.to_u32());
  if (dst_it == shard_of_addr_.end()) return false;  // never deployed
  // The source address was routable on its shard moments ago, so it is
  // mapped; the lookup names the outbox row this worker exclusively owns.
  const std::size_t src_shard = shard_of_addr_.at(packet.src.to_u32());
  P2PLAB_ASSERT_MSG(stamp >= window_end_,
                    "lookahead violated: handoff stamp inside the window");
  outbox_[src_shard][dst_it->second].push_back(
      IngressEntry{stamp, src_host, seq, std::move(packet)});
  return true;
}

Engine::StopReason Engine::run(SimTime deadline,
                               std::function<bool()> stop_predicate,
                               Duration check_interval) {
  P2PLAB_ASSERT_MSG(!sims_.empty(), "no shards registered");
  P2PLAB_ASSERT(check_interval > Duration::zero());
  deadline_ = deadline;
  stop_predicate_ = std::move(stop_predicate);
  check_interval_ = check_interval;
  // Evaluate the predicate before executing anything: the caller's stop
  // condition may already hold (e.g. resuming a finished swarm).
  next_check_ = cursor_;
  phase_ = Phase::kRunWindow;
  running_ = true;

  worker_cpus_.assign(sims_.size(), -1);
  if (pin_workers_) pin_cpu_list_ = profile::Profiler::online_cpu_list();

  barrier_ = std::make_unique<PhaseBarrier>(sims_.size());
  std::vector<std::thread> threads;
  threads.reserve(sims_.size());
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    threads.emplace_back([this, s] { worker(s); });
  }
  for (auto& t : threads) t.join();
  running_ = false;

  if (phase_ == Phase::kStopDeadline) {
    // The stop proves no shard holds an event before the deadline, so
    // advancing every clock there is safe — run_until semantics.
    for (auto* sim : sims_) {
      if (sim->now() < deadline_) sim->advance_to(deadline_);
    }
    if (cursor_ < deadline_) cursor_ = deadline_;
  }
  stop_predicate_ = nullptr;
  switch (phase_) {
    case Phase::kStopPredicate: return StopReason::kPredicate;
    case Phase::kStopDeadline: return StopReason::kDeadline;
    default: return StopReason::kDrained;
  }
}

void Engine::pin_worker(std::size_t shard) {
  if (pin_cpu_list_.empty()) return;
  const int cpu = pin_cpu_list_[shard % pin_cpu_list_.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<std::size_t>(cpu), &set);
  // pid 0 = the calling thread; each slot of worker_cpus_ has one writer.
  if (sched_setaffinity(0, sizeof set, &set) == 0) {
    worker_cpus_[shard] = cpu;
    if (profiler_ != nullptr) {
      profiler_->worker_stats(shard).pinned_cpu = cpu;
    }
  }
}

void Engine::worker(std::size_t shard) {
  if (pin_workers_) pin_worker(shard);
  metrics::FlightRecorder* const rec = recorders_[shard];
  if (rec != nullptr) metrics::FlightRecorder::set_active(rec);
  profile::Profiler* const prof = profiler_;
  profile::SampleRing* const ring =
      prof != nullptr ? &prof->shard_ring(shard) : nullptr;
  if (prof != nullptr) profile::Profiler::set_thread_active(prof);
  sim::Simulation& sim = *sims_[shard];
  for (;;) {
    // All profiling below is wall-clock-only bookkeeping between windows:
    // it cannot perturb virtual time or event order (the determinism suite
    // runs the golden trace with profiling on to prove it).
    const std::uint64_t t0 = ring != nullptr ? prof->now_ns() : 0;
    barrier_->arrive_and_wait([this] { coordinate(); });
    const std::uint64_t t1 = ring != nullptr ? prof->now_ns() : 0;
    if (ring != nullptr) {
      ring->push(profile::PhaseSample{.start_ns = t0,
                                      .dur_ns = t1 - t0,
                                      .window = window_index_,
                                      .events = 0,
                                      .queue_depth = sim.pending_events(),
                                      .phase = profile::Phase::kBarrierWait});
    }
    if (phase_ != Phase::kRunWindow) break;
    const std::uint64_t ev0 = ring != nullptr ? sim.dispatched_events() : 0;
    sim.run_before(window_end_);
    sim.advance_to(window_end_);
    if (ring != nullptr) {
      const std::uint64_t t2 = prof->now_ns();
      ring->push(profile::PhaseSample{.start_ns = t1,
                                      .dur_ns = t2 - t1,
                                      .window = window_index_,
                                      .events = sim.dispatched_events() - ev0,
                                      .queue_depth = sim.pending_events(),
                                      .phase = profile::Phase::kExecute});
    }
    // Window boundaries are on the global grid, so shrinking here is
    // partition-independent (and slot-reuse order is unobservable anyway).
    sim.maybe_compact();
  }
  if (prof != nullptr) {
    prof->add_worker_time(shard, profile::Profiler::thread_rusage());
    profile::Profiler::set_thread_active(nullptr);
  }
  if (rec != nullptr) metrics::FlightRecorder::set_active(nullptr);
}

void Engine::coordinate() {
  const std::size_t k = sims_.size();
  // The coordinator runs under the barrier mutex with exclusive access, so
  // writing the coordinator ring here is single-writer by construction.
  const std::uint64_t merge_t0 =
      profiler_ != nullptr ? profiler_->now_ns() : 0;
  std::uint64_t merged_packets = 0;

  // 1. Drain all outboxes. Per destination shard, merge the K source
  //    batches and sort by (stamp, src_host, seq) — a strict total order,
  //    since seq is per source host — then schedule each packet's
  //    fabric_arrive at its stamp. Batch contents are shard-count
  //    independent: pushes happen at source event times within a window
  //    grid that is itself derived only from global quantities.
  for (std::size_t d = 0; d < k; ++d) {
    merge_buf_.clear();
    for (std::size_t s = 0; s < k; ++s) {
      auto& box = outbox_[s][d];
      std::move(box.begin(), box.end(), std::back_inserter(merge_buf_));
      box.clear();
    }
    if (merge_buf_.empty()) continue;
    std::sort(merge_buf_.begin(), merge_buf_.end(),
              [](const IngressEntry& a, const IngressEntry& b) {
                if (a.stamp != b.stamp) return a.stamp < b.stamp;
                if (a.src_host != b.src_host) return a.src_host < b.src_host;
                return a.seq < b.seq;
              });
    net::Network* const net = networks_[d];
    merged_packets += merge_buf_.size();
    for (IngressEntry& e : merge_buf_) {
      // Re-materialize the packet from the *destination* shard's pool (the
      // coordinator has exclusive access at the barrier). The arrival event
      // then carries a 16-byte capture — zero allocations at dispatch.
      sims_[d]->schedule_at(
          e.stamp,
          [net, ref = net->pool().acquire(std::move(e.packet))]() mutable {
            net->fabric_arrive(std::move(ref));
          });
    }
    merge_buf_.clear();
  }

  if (profiler_ != nullptr && merged_packets > 0) {
    const std::uint64_t merge_t1 = profiler_->now_ns();
    profiler_->coordinator_ring().push(
        profile::PhaseSample{.start_ns = merge_t0,
                             .dur_ns = merge_t1 - merge_t0,
                             .window = window_index_,
                             .events = merged_packets,
                             .queue_depth = 0,
                             .phase = profile::Phase::kMerge});
  }

  // 2. Global minimum pending-event time — after the drain, so it is the
  //    same no matter how hosts were partitioned.
  std::optional<SimTime> gmin;
  for (auto* sim : sims_) {
    const auto t = sim->next_event_time();
    if (t.has_value() && (!gmin.has_value() || *t < *gmin)) gmin = t;
  }

  // 3. Stop predicate, on the fixed check grid. cursor_ only ever lands on
  //    barrier times, which are shard-count independent, so the predicate
  //    is evaluated at identical simulated instants for every K.
  if (stop_predicate_ && cursor_ >= next_check_) {
    while (next_check_ <= cursor_) next_check_ += check_interval_;
    if (stop_predicate_()) {
      phase_ = Phase::kStopPredicate;
      return;
    }
  }

  if (!gmin.has_value()) {
    phase_ = Phase::kStopDrained;
    return;
  }
  if (*gmin >= deadline_) {
    // Nothing left before the deadline; run() advances every clock to it.
    phase_ = Phase::kStopDeadline;
    return;
  }

  // 4. Next window: fast-forward empty regions of the fixed L-grid straight
  //    to the window holding the earliest event. Windows are [wL, (w+1)L),
  //    clamped to the deadline (run_until semantics: events strictly before
  //    it); every event executed in one satisfies t >= wL, so every handoff
  //    stamp is >= wL + L >= window end — the push() assertion. Both w and
  //    the clamp derive from global quantities only, keeping the window
  //    sequence identical for every shard count.
  const std::int64_t l_ns = lookahead_.count_ns();
  const std::int64_t w = gmin->count_ns() / l_ns;
  window_end_ = std::min(SimTime::from_ns((w + 1) * l_ns), deadline_);
  cursor_ = window_end_;
  ++window_index_;
  phase_ = Phase::kRunWindow;
}

}  // namespace p2plab::engine
