#include "metrics/timeseries.hpp"

namespace p2plab::metrics {

std::vector<double> sum_resampled(const std::vector<const TimeSeries*>& series,
                                  Duration step, SimTime end) {
  P2PLAB_ASSERT(step > Duration::zero());
  std::vector<double> total;
  const size_t n_points =
      static_cast<size_t>(end.count_ns() / step.count_ns()) + 1;
  total.assign(n_points, 0.0);
  for (const TimeSeries* ts : series) {
    P2PLAB_ASSERT(ts != nullptr);
    size_t i = 0;
    for (SimTime t = SimTime::zero(); t <= end && i < n_points; t += step, ++i) {
      total[i] += ts->value_at(t);
    }
  }
  return total;
}

}  // namespace p2plab::metrics
