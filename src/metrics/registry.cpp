#include "metrics/registry.hpp"

namespace p2plab::metrics {

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  P2PLAB_ASSERT_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                    "histogram bounds must ascend");
  Entry& e = entry(name, MetricKind::kHistogram);
  if (e.hist.buckets.empty()) {
    e.hist.bounds = std::move(bounds);
    e.hist.buckets.assign(e.hist.bounds.size() + 1, 0);
  }
  return Histogram{&e.hist};
}

std::vector<Registry::SnapshotEntry> Registry::snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        out.push_back({name, e.kind, static_cast<double>(e.counter), nullptr});
        break;
      case MetricKind::kGauge:
        out.push_back({name, e.kind, e.gauge, nullptr});
        break;
      case MetricKind::kHistogram:
        out.push_back({name, e.kind, static_cast<double>(e.hist.count),
                       &e.hist});
        break;
    }
  }
  return out;
}

double Registry::value(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return 0.0;
  switch (it->second.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(it->second.counter);
    case MetricKind::kGauge:
      return it->second.gauge;
    case MetricKind::kHistogram:
      return static_cast<double>(it->second.hist.count);
  }
  return 0.0;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, theirs] : other.entries_) {
    Entry& mine = entry(name, theirs.kind);
    switch (theirs.kind) {
      case MetricKind::kCounter:
        mine.counter += theirs.counter;
        break;
      case MetricKind::kGauge:
        mine.gauge += theirs.gauge;
        break;
      case MetricKind::kHistogram: {
        if (mine.hist.buckets.empty()) {
          mine.hist.bounds = theirs.hist.bounds;
          mine.hist.buckets.assign(mine.hist.bounds.size() + 1, 0);
        }
        P2PLAB_ASSERT_MSG(mine.hist.bounds == theirs.hist.bounds,
                          "histogram merged with mismatched bounds");
        for (std::size_t i = 0; i < mine.hist.buckets.size(); ++i) {
          mine.hist.buckets[i] += theirs.hist.buckets[i];
        }
        if (theirs.hist.count > 0) {
          if (mine.hist.count == 0) {
            mine.hist.min = theirs.hist.min;
            mine.hist.max = theirs.hist.max;
          } else {
            mine.hist.min = std::min(mine.hist.min, theirs.hist.min);
            mine.hist.max = std::max(mine.hist.max, theirs.hist.max);
          }
          mine.hist.count += theirs.hist.count;
          mine.hist.sum += theirs.hist.sum;
        }
        break;
      }
    }
  }
}

void Registry::reset() {
  for (auto& [name, e] : entries_) {
    e.counter = 0;
    e.gauge = 0.0;
    e.hist.reset();
  }
}

}  // namespace p2plab::metrics
