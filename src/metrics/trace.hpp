// CSV trace sinks for figure harnesses.
//
// Every bench binary prints its figure data as CSV on stdout and (when
// P2PLAB_RESULTS_DIR is set) mirrors it to a file, so the paper's plots can
// be regenerated with gnuplot/matplotlib without re-running the experiment.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace p2plab::metrics {

/// A CSV table writer. Column count is fixed by the header; row writes are
/// checked against it.
class CsvWriter {
 public:
  /// Writes to stdout, and additionally to `$P2PLAB_RESULTS_DIR/<name>.csv`
  /// if that environment variable names a writable directory.
  explicit CsvWriter(const std::string& name,
                     const std::vector<std::string>& columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  /// Free-form comment line (prefixed with '#').
  void comment(const std::string& text);

  /// Push buffered output to both sinks now. Rows are written (not
  /// accumulated) as they arrive; this forces them through stdio, so a
  /// long run's timeline is tail(1)-able and survives a crash.
  void flush();

  size_t rows_written() const { return rows_; }

 private:
  void emit(const std::string& line);

  size_t n_columns_;
  size_t rows_ = 0;
  std::FILE* file_ = nullptr;  // optional mirror; stdout always written
};

}  // namespace p2plab::metrics
