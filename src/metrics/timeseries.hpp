// Time series collection for experiment traces.
//
// The paper's BitTorrent client was "slightly modified to allow data
// collection (a time-stamp was added to the default output)"; TimeSeries is
// our equivalent: append-only (time, value) pairs per node, sampled either
// on events or on a fixed cadence, later resampled onto a common grid for
// the figure harnesses.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace p2plab::metrics {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add(SimTime t, double value) {
    P2PLAB_ASSERT_MSG(points_.empty() || t >= points_.back().first,
                      "time series must be appended in time order");
    points_.emplace_back(t, value);
  }

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }
  SimTime first_time() const {
    P2PLAB_ASSERT(!points_.empty());
    return points_.front().first;
  }
  SimTime last_time() const {
    P2PLAB_ASSERT(!points_.empty());
    return points_.back().first;
  }
  double last_value() const {
    P2PLAB_ASSERT(!points_.empty());
    return points_.back().second;
  }

  /// Step-function value at time t: the most recent sample at or before t.
  /// Before the first sample, returns `before` (default 0).
  double value_at(SimTime t, double before = 0.0) const {
    if (points_.empty() || t < points_.front().first) return before;
    // Binary search for the last point with time <= t.
    size_t lo = 0;
    size_t hi = points_.size();
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      if (points_[mid].first <= t) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return points_[lo].second;
  }

  /// Resample onto a fixed grid [0, end] at `step`, as a step function.
  std::vector<double> resample(Duration step, SimTime end,
                               double before = 0.0) const {
    P2PLAB_ASSERT(step > Duration::zero());
    std::vector<double> out;
    for (SimTime t = SimTime::zero(); t <= end; t += step) {
      out.push_back(value_at(t, before));
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<std::pair<SimTime, double>> points_;
};

/// Sum several step-function series on a common grid (e.g. "total amount of
/// data received by the nodes" in Figure 9).
std::vector<double> sum_resampled(const std::vector<const TimeSeries*>& series,
                                  Duration step, SimTime end);

}  // namespace p2plab::metrics
