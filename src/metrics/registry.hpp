// Unified metrics registry: named counters, gauges and histograms.
//
// The registry is the platform's flight instruments. Subsystems resolve
// handles ONCE at setup (Registry::counter/gauge/histogram) and increment
// through them on hot paths: a handle is a raw pointer into registry-owned
// storage, so an increment is a single non-atomic store — the simulation
// kernel is single-threaded, and a 10^8-event run cannot afford more.
//
// Default-constructed handles are null and no-ops, so an uninstrumented
// subsystem (unit tests, library users that never bind a registry) pays
// one perfectly predicted branch. The null check — rather than a shared
// sink cell — keeps unbound handles safe on the parallel engine's shard
// worker threads, where concurrent stores to one sink would be a race.
//
// Names are hierarchical dotted paths ("sim.events.dispatched",
// "ipfw.pipe.bytes_in"). Resolving the same name twice returns a handle to
// the same cell, which is how per-instance subsystems (one firewall per
// physical node) aggregate into one platform-wide series.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace p2plab::metrics {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Storage for one histogram: fixed ascending upper bucket bounds (the
/// last, +inf bucket is implicit) plus count/sum/min/max.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void record(double v) {
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;
    ++buckets[i];
    if (count == 0) {
      min = v;
      max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
  }

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  void reset() {
    std::fill(buckets.begin(), buckets.end(), 0);
    count = 0;
    sum = min = max = 0.0;
  }
};

namespace detail {
inline const HistogramData& empty_histogram() {
  static const HistogramData empty{{}, std::vector<std::uint64_t>(1, 0),
                                   0,  0,
                                   0,  0};
  return empty;
}
}  // namespace detail

/// Monotonic event count. inc() is one store; safe unbound.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) const {
    if (cell_ != nullptr) *cell_ += delta;
  }
  std::uint64_t value() const { return cell_ != nullptr ? *cell_ : 0; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Point-in-time level (queue depth, utilization). set() is one store.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double delta) const {
    if (cell_ != nullptr) *cell_ += delta;
  }
  double value() const { return cell_ != nullptr ? *cell_ : 0.0; }

 private:
  friend class Registry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Fixed-bucket distribution. record() is a short linear bound scan.
class Histogram {
 public:
  Histogram() = default;
  void record(double v) const {
    if (cell_ != nullptr) cell_->record(v);
  }
  const HistogramData& data() const {
    return cell_ != nullptr ? *cell_ : detail::empty_histogram();
  }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* cell) : cell_(cell) {}
  HistogramData* cell_ = nullptr;
};

/// Owns every metric cell. Iteration order (snapshot) is by name, so output
/// is deterministic regardless of registration order.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name) {
    Entry& e = entry(name, MetricKind::kCounter);
    return Counter{&e.counter};
  }

  Gauge gauge(std::string_view name) {
    Entry& e = entry(name, MetricKind::kGauge);
    return Gauge{&e.gauge};
  }

  /// `bounds` must be ascending upper bucket bounds; ignored (the first
  /// registration wins) when the name already exists.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  std::size_t size() const { return entries_.size(); }

  struct SnapshotEntry {
    std::string name;
    MetricKind kind;
    /// Counter/gauge value; histogram count.
    double value;
    const HistogramData* hist;  // non-null for histograms only
  };
  /// All metrics, sorted by name.
  std::vector<SnapshotEntry> snapshot() const;

  /// Value of a counter/gauge (histogram: its count); 0 when unknown.
  double value(std::string_view name) const;

  /// Zero every value; registrations and handles stay valid.
  void reset();

  /// Fold another registry's values into this one, additively: counters and
  /// gauges add, histograms add bucket-wise (bounds must match) and merge
  /// min/max. Metrics only present in `other` are created here. The
  /// parallel engine keeps one registry per shard (single-writer, so the
  /// non-atomic handles stay safe) and merges them once at end of run.
  void merge_from(const Registry& other);

 private:
  struct Entry {
    MetricKind kind;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    HistogramData hist;
  };

  Entry& entry(std::string_view name, MetricKind kind) {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      it = entries_.emplace(std::string(name), Entry{kind, 0, 0.0, {}}).first;
    }
    P2PLAB_ASSERT_MSG(it->second.kind == kind,
                      "metric re-registered with a different kind");
    return it->second;
  }

  // std::map: node-based (cell addresses are stable across registrations)
  // and sorted (snapshot ordering for free).
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace p2plab::metrics
