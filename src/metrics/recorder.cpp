#include "metrics/recorder.hpp"

#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/assert.hpp"

namespace p2plab::metrics {

namespace {

thread_local FlightRecorder* g_active = nullptr;

void crash_dump() {
  FlightRecorder* rec = g_active;
  if (rec == nullptr || rec->size() == 0) return;
  // Best effort from a dying process: prefer the results dir, fall back to
  // stderr so the post-mortem is never silently lost.
  if (rec->flush_to_results("trace.jsonl")) {
    std::fprintf(stderr,
                 "p2plab: flight recorder dumped %zu events to "
                 "$P2PLAB_RESULTS_DIR/trace.jsonl\n",
                 rec->size());
  } else {
    std::fprintf(stderr, "p2plab: flight recorder (%zu events):\n",
                 rec->size());
    rec->flush(stderr);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  P2PLAB_ASSERT(capacity > 0);
  buf_.resize(capacity);
}

FlightRecorder::~FlightRecorder() {
  if (g_active == this) set_active(nullptr);
}

void FlightRecorder::record(SimTime t, std::string_view subsystem,
                            std::string_view kind,
                            std::vector<TraceField> fields) {
  Event& slot = buf_[next_];
  slot.t = t;
  slot.subsystem.assign(subsystem);
  slot.kind.assign(kind);
  slot.fields = std::move(fields);
  next_ = (next_ + 1) % buf_.size();
  ++total_;
}

std::size_t FlightRecorder::size() const {
  return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                              : buf_.size();
}

std::uint64_t FlightRecorder::dropped() const {
  return total_ <= buf_.size() ? 0 : total_ - buf_.size();
}

void FlightRecorder::clear() {
  next_ = 0;
  total_ = 0;
}

std::string FlightRecorder::escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FlightRecorder::render_line(const Event& ev) {
  char num[64];
  std::string out = "{\"t\":";
  std::snprintf(num, sizeof num, "%.9f", ev.t.to_seconds());
  out += num;
  out += ",\"subsystem\":\"";
  out += escape_json(ev.subsystem);
  out += "\",\"kind\":\"";
  out += escape_json(ev.kind);
  out += '"';
  for (const TraceField& f : ev.fields) {
    out += ",\"";
    out += escape_json(f.key);
    out += "\":";
    if (f.numeric) {
      std::snprintf(num, sizeof num, "%.10g", f.num);
      out += num;
    } else {
      out += '"';
      out += escape_json(f.str);
      out += '"';
    }
  }
  out += '}';
  return out;
}

void FlightRecorder::flush(std::FILE* out) const {
  const std::size_t held = size();
  const std::size_t start = total_ > buf_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held; ++i) {
    const Event& ev = buf_[(start + i) % buf_.size()];
    std::fputs(render_line(ev).c_str(), out);
    std::fputc('\n', out);
  }
}

std::vector<FlightRecorder::RenderedEvent> FlightRecorder::rendered_events()
    const {
  std::vector<RenderedEvent> out;
  const std::size_t held = size();
  out.reserve(held);
  const std::size_t start = total_ > buf_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held; ++i) {
    const Event& ev = buf_[(start + i) % buf_.size()];
    out.push_back(RenderedEvent{ev.t, render_line(ev)});
  }
  return out;
}

bool FlightRecorder::flush_to_results(const char* filename) const {
  const char* dir = std::getenv("P2PLAB_RESULTS_DIR");
  if (dir == nullptr) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; fopen decides
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  flush(out);
  std::fclose(out);
  return true;
}

void FlightRecorder::set_active(FlightRecorder* recorder) {
  g_active = recorder;
  p2plab::detail::g_assert_hook = recorder != nullptr ? &crash_dump : nullptr;
}

FlightRecorder* FlightRecorder::active() { return g_active; }

}  // namespace p2plab::metrics
