#include "metrics/trace.hpp"

#include <cstdlib>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::metrics {

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string line;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) line += ',';
    line += parts[i];
  }
  return line;
}

std::string format_double(double v) {
  char buf[40];
  // %g keeps integers clean and floats compact.
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& name,
                     const std::vector<std::string>& columns)
    : n_columns_(columns.size()) {
  P2PLAB_ASSERT(n_columns_ > 0);
  if (const char* dir = std::getenv("P2PLAB_RESULTS_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      // Unwritable results dir: degrade to stdout-only, and complain once
      // per process rather than once per table.
      static bool warned = false;
      if (!warned) {
        warned = true;
        P2PLAB_LOG_WARN(
            "P2PLAB_RESULTS_DIR=%s is not writable (%s); CSV mirrors "
            "disabled, stdout only",
            dir, path.c_str());
      }
    }
  }
  emit(join(columns));
}

CsvWriter::~CsvWriter() {
  // Flush both sinks even when no data rows were written: a header-only
  // (or comment-only) table must still land on disk for post-mortems.
  std::fflush(stdout);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> text;
  text.reserve(values.size());
  for (double v : values) text.push_back(format_double(v));
  row(text);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  P2PLAB_ASSERT_MSG(values.size() == n_columns_,
                    "CSV row width differs from header");
  emit(join(values));
  ++rows_;
}

void CsvWriter::comment(const std::string& text) { emit("# " + text); }

void CsvWriter::flush() {
  std::fflush(stdout);
  if (file_ != nullptr) std::fflush(file_);
}

void CsvWriter::emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  if (file_ != nullptr) {
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
  }
}

}  // namespace p2plab::metrics
