#include "metrics/health.hpp"

#include "common/assert.hpp"
#include "metrics/recorder.hpp"

namespace p2plab::metrics {

namespace {

double wall_s(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

void print_registry_report(const Registry& reg, std::FILE* out) {
  for (const auto& entry : reg.snapshot()) {
    if (entry.kind == MetricKind::kHistogram) {
      const HistogramData& h = *entry.hist;
      std::fprintf(out,
                   "# %s: count=%llu mean=%.4g min=%.4g max=%.4g\n",
                   entry.name.c_str(),
                   static_cast<unsigned long long>(h.count), h.mean(), h.min,
                   h.max);
    } else {
      std::fprintf(out, "# %s = %.10g\n", entry.name.c_str(), entry.value);
    }
  }
}

HealthMonitor::HealthMonitor() : HealthMonitor(Options{}) {}

HealthMonitor::HealthMonitor(Options options) : opt_(std::move(options)) {
  std::vector<std::string> columns{"label",           "sim_s",
                                   "wall_s",          "events",
                                   "queue_depth",     "events_per_wall_s",
                                   "sim_s_per_wall_s"};
  columns.insert(columns.end(), opt_.tracked.begin(), opt_.tracked.end());
  csv_ = std::make_unique<CsvWriter>(opt_.csv_name, columns);
}

HealthMonitor::~HealthMonitor() {
  // A still-armed task would fire into a dead monitor; stopping here only
  // helps when the simulation is still alive — callers must stop() before
  // destroying the simulation (see header).
  if (running()) stop();
}

void HealthMonitor::start(sim::Simulation& sim, Registry& reg) {
  P2PLAB_ASSERT_MSG(!running(), "HealthMonitor already started");
  sim_ = &sim;
  reg_ = &reg;
  run_wall_start_ = Clock::now();
  last_wall_ = run_wall_start_;
  run_events_start_ = sim.dispatched_events();
  last_events_ = run_events_start_;
  last_sim_time_ = sim.now();
  task_.start(sim, opt_.period, opt_.period, [this] { sample(false); });
}

void HealthMonitor::stop() {
  if (!running()) return;
  task_.stop();
  sample(true);
  done_wall_s_ += wall_s(Clock::now() - run_wall_start_);
  done_events_ += sim_->dispatched_events() - run_events_start_;
  sim_ = nullptr;
  last_reg_ = reg_;
  reg_ = nullptr;
}

double HealthMonitor::wall_seconds() const {
  double total = done_wall_s_;
  if (running()) total += wall_s(Clock::now() - run_wall_start_);
  return total;
}

std::uint64_t HealthMonitor::events_observed() const {
  std::uint64_t total = done_events_;
  if (running()) total += sim_->dispatched_events() - run_events_start_;
  return total;
}

void HealthMonitor::sample(bool final_sample) {
  const Clock::time_point wall_now = Clock::now();
  const double wall_total_s =
      done_wall_s_ + wall_s(wall_now - run_wall_start_);
  const double wall_delta_s = wall_s(wall_now - last_wall_);
  const std::uint64_t events = sim_->dispatched_events();
  const std::uint64_t events_delta = events - last_events_;
  const Duration sim_delta = sim_->now() - last_sim_time_;

  // Rates over the sampling interval; 0 when wall time barely advanced
  // (coarse timers, back-to-back samples).
  const double events_per_wall_s =
      wall_delta_s > 1e-9 ? static_cast<double>(events_delta) / wall_delta_s
                          : 0.0;
  const double sim_per_wall =
      wall_delta_s > 1e-9 ? sim_delta.to_seconds() / wall_delta_s : 0.0;

  // The row buffer is a member reused across samples: the monitor streams
  // each row out immediately and holds no timeline in memory, so a
  // multi-hour run's footprint does not grow with its sample count.
  row_.clear();
  row_.push_back(label_);
  row_.push_back(std::to_string(sim_->now().to_seconds()));
  row_.push_back(std::to_string(wall_total_s));
  row_.push_back(std::to_string(events));
  row_.push_back(std::to_string(sim_->pending_events()));
  row_.push_back(std::to_string(events_per_wall_s));
  row_.push_back(std::to_string(sim_per_wall));
  for (const std::string& name : opt_.tracked) {
    row_.push_back(std::to_string(reg_->value(name)));
  }
  csv_->row(row_);
  ++samples_;

  P2PLAB_TRACE(sim_->now(), "health", final_sample ? "final" : "tick",
               {{"events", events},
                {"events_per_wall_s", events_per_wall_s},
                {"sim_s_per_wall_s", sim_per_wall},
                {"queue_depth", sim_->pending_events()}});

  // Heartbeat: wall-clock rate limited, so a stalled simulation stays
  // quiet and a fast one does not spam (one line per ~10 wall seconds).
  if (opt_.heartbeat_wall_seconds > 0.0 && !final_sample &&
      wall_total_s - last_heartbeat_wall_s_ >= opt_.heartbeat_wall_seconds) {
    last_heartbeat_wall_s_ = wall_total_s;
    std::fprintf(stderr,
                 "[p2plab health] sim=%.0fs wall=%.0fs %.3g ev/s "
                 "%.3g sim-s/wall-s queue=%zu\n",
                 sim_->now().to_seconds(), wall_total_s, events_per_wall_s,
                 sim_per_wall, sim_->pending_events());
    // Heartbeat cadence doubles as the timeline flush cadence: whoever is
    // watching the stderr pulse can tail the csv mirror at the same lag.
    csv_->flush();
  }

  last_wall_ = wall_now;
  last_events_ = events;
  last_sim_time_ = sim_->now();
}

void HealthMonitor::print_report(std::FILE* out) const {
  const double wall = wall_seconds();
  const std::uint64_t events = events_observed();
  std::fprintf(out, "# --- metrics report ---\n");
  std::fprintf(out,
               "# wall_s=%.2f events=%llu events_per_wall_s=%.4g "
               "samples=%llu\n",
               wall, static_cast<unsigned long long>(events),
               wall > 1e-9 ? static_cast<double>(events) / wall : 0.0,
               static_cast<unsigned long long>(samples_));
  // reg_ is null once stopped; report the registry seen last if available.
  if (reg_ != nullptr) {
    print_registry_report(*reg_, out);
  } else if (last_reg_ != nullptr) {
    print_registry_report(*last_reg_, out);
  }
  std::fprintf(out, "# --- end metrics report ---\n");
}

}  // namespace p2plab::metrics
