// Emulator-health monitoring.
//
// Becker et al. (arXiv:2208.05862) caution that an overloaded emulator
// silently produces wrong results; the health monitor makes overload
// visible. A PeriodicTask samples the platform every `period` of simulated
// time and emits:
//
//   - a `metrics.csv` timeline (CsvWriter: stdout + $P2PLAB_RESULTS_DIR):
//     sim time, wall time, events dispatched, queue depth, events per wall
//     second, sim seconds per wall second, plus any tracked registry
//     metrics — the folding-ratio benches watch sim-per-wall collapse here;
//   - a wall-clock-rate-limited stderr heartbeat so a multi-hour bench run
//     is observable from a terminal;
//   - an end-of-run report (print_report) of overall rates and every
//     registry metric.
//
// The monitor schedules simulation events; run loops that wait for the
// queue to drain (Simulation::run) will never finish while it is started.
// Use run_until/bounded loops (as the swarm benches do), and stop() the
// monitor before the simulation is destroyed.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "metrics/registry.hpp"
#include "metrics/trace.hpp"
#include "sim/simulation.hpp"

namespace p2plab::metrics {

/// Print every registry metric as '#'-prefixed comment lines (safe to
/// interleave with CSV output).
void print_registry_report(const Registry& reg, std::FILE* out = stdout);

class HealthMonitor {
 public:
  struct Options {
    /// Simulated time between samples.
    Duration period = Duration::sec(60);
    /// CsvWriter name; the timeline lands in $P2PLAB_RESULTS_DIR/<name>.csv.
    std::string csv_name = "metrics";
    /// Registry metric names appended as extra timeline columns.
    std::vector<std::string> tracked;
    /// Minimum wall seconds between stderr heartbeats; <= 0 disables.
    double heartbeat_wall_seconds = 10.0;
  };

  HealthMonitor();
  explicit HealthMonitor(Options options);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Begin sampling `sim` against `reg`. May be called again after stop()
  /// for a successive run (the fig9 fold sweep); rows append to the same
  /// timeline, distinguished by the label column.
  void start(sim::Simulation& sim, Registry& reg);
  /// Tag subsequent rows (e.g. "fold=40"). Empty by default.
  void set_label(std::string label) { label_ = std::move(label); }
  /// Take a final sample and detach from the simulation. Must be called
  /// before the simulation is destroyed.
  void stop();

  bool running() const { return sim_ != nullptr; }
  std::uint64_t samples() const { return samples_; }
  /// Wall seconds spent between start() and stop(), summed over runs.
  double wall_seconds() const;
  /// Events dispatched while monitored, summed over runs.
  std::uint64_t events_observed() const;

  /// Overall rates plus the full registry dump, as '#' comment lines.
  /// After stop(), dumps the registry of the last run — call it before
  /// that registry is destroyed.
  void print_report(std::FILE* out = stdout) const;

 private:
  using Clock = std::chrono::steady_clock;

  void sample(bool final_sample);

  Options opt_;
  std::unique_ptr<CsvWriter> csv_;
  sim::PeriodicTask task_;
  sim::Simulation* sim_ = nullptr;
  Registry* reg_ = nullptr;
  Registry* last_reg_ = nullptr;  // registry of the last stopped run
  std::string label_;
  std::vector<std::string> row_;  // reused per sample; nothing accumulates

  Clock::time_point run_wall_start_;
  Clock::time_point last_wall_;
  double last_heartbeat_wall_s_ = 0.0;
  std::uint64_t run_events_start_ = 0;
  std::uint64_t last_events_ = 0;
  SimTime last_sim_time_;
  std::uint64_t samples_ = 0;

  // Totals accumulated across completed runs (start/stop pairs).
  double done_wall_s_ = 0.0;
  std::uint64_t done_events_ = 0;
};

}  // namespace p2plab::metrics
