// Summary statistics and empirical distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace p2plab::metrics {

/// Streaming summary (count/mean/variance via Welford, min/max).
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical distribution: collects samples, answers quantile/CDF queries.
class Distribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile in [0,1] by linear interpolation between order statistics.
  double quantile(double q) const {
    P2PLAB_ASSERT(!samples_.empty());
    P2PLAB_ASSERT(q >= 0.0 && q <= 1.0);
    ensure_sorted();
    if (samples_.size() == 1) return samples_[0];
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() const { return quantile(0.5); }
  double min() const {
    ensure_sorted();
    return samples_.front();
  }
  double max() const {
    ensure_sorted();
    return samples_.back();
  }

  double mean() const {
    P2PLAB_ASSERT(!samples_.empty());
    double total = 0.0;
    for (double s : samples_) total += s;
    return total / static_cast<double>(samples_.size());
  }

  /// Empirical CDF F(x) = fraction of samples <= x.
  double cdf(double x) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// The sorted samples paired with CDF values, for plotting step CDFs.
  std::vector<std::pair<double, double>> cdf_points() const {
    ensure_sorted();
    std::vector<std::pair<double, double>> points;
    points.reserve(samples_.size());
    for (size_t i = 0; i < samples_.size(); ++i) {
      points.emplace_back(samples_[i], static_cast<double>(i + 1) /
                                           static_cast<double>(samples_.size()));
    }
    return points;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace p2plab::metrics
