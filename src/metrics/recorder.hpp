// Flight recorder: a bounded ring of structured trace events.
//
// Long runs fail rarely and expensively — a 5760-node experiment that trips
// an assertion after 40 minutes must leave a post-mortem. Subsystems record
// low-rate structured events (subsystem, sim-time, kind, key/value payload)
// into a fixed-capacity ring; the newest events overwrite the oldest, so
// memory stays bounded no matter how long the run. The ring is flushed as
// JSONL to $P2PLAB_RESULTS_DIR/trace.jsonl on demand, and automatically on
// assertion failure via the common/assert.hpp crash hook.
//
// Recording is for *events*, not samples: piece completions, connection
// aborts, health ticks. Per-packet paths use the registry counters instead.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/time.hpp"

namespace p2plab::metrics {

/// One key/value of a trace event payload; numbers and strings only.
struct TraceField {
  std::string key;
  bool numeric;
  double num = 0.0;
  std::string str;

  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  TraceField(std::string k, T v)
      : key(std::move(k)), numeric(true), num(static_cast<double>(v)) {}
  TraceField(std::string k, std::string v)
      : key(std::move(k)), numeric(false), str(std::move(v)) {}
  TraceField(std::string k, const char* v)
      : key(std::move(k)), numeric(false), str(v) {}
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(SimTime t, std::string_view subsystem, std::string_view kind,
              std::vector<TraceField> fields = {});

  std::size_t capacity() const { return buf_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events recorded over the recorder's lifetime.
  std::uint64_t recorded() const { return total_; }
  /// Events overwritten by ring wraparound.
  std::uint64_t dropped() const;
  void clear();

  /// Write held events, oldest first, one JSON object per line.
  void flush(std::FILE* out) const;
  /// Flush to $P2PLAB_RESULTS_DIR/<filename>; false if the env var is
  /// unset or the file cannot be written.
  bool flush_to_results(const char* filename = "trace.jsonl") const;

  /// One held event rendered to the exact bytes flush() would write for it
  /// (sans trailing newline), paired with its timestamp as a sort key.
  struct RenderedEvent {
    SimTime t;
    std::string line;
  };
  /// Render held events, oldest first. The parallel engine merges the
  /// per-shard rings into one time-sorted trace from these; because the
  /// bytes match flush(), the merged file of K shards is byte-identical to
  /// a single recorder's flush when no ring dropped events.
  std::vector<RenderedEvent> rendered_events() const;

  /// The active recorder used by P2PLAB_TRACE and dumped on assertion
  /// failure (to trace.jsonl, or stderr without a results dir). Thread
  /// local: each parallel-engine worker activates its shard's recorder for
  /// the duration of the run, so recording never crosses threads.
  /// Pass nullptr to deactivate; destruction deactivates automatically.
  static void set_active(FlightRecorder* recorder);
  static FlightRecorder* active();

  /// JSON string-body escaping (exposed for tests).
  static std::string escape_json(std::string_view s);

 private:
  struct Event {
    SimTime t;
    std::string subsystem;
    std::string kind;
    std::vector<TraceField> fields;
  };

  static std::string render_line(const Event& ev);

  std::vector<Event> buf_;
  std::size_t next_ = 0;   // slot the next record lands in
  std::uint64_t total_ = 0;
};

}  // namespace p2plab::metrics

/// Record a trace event iff a recorder is active; the payload expression is
/// not evaluated otherwise (free when tracing is off).
/// Usage: P2PLAB_TRACE(sim.now(), "bt", "torrent_complete",
///                     {{"ip", ip_str}, {"secs", t.to_seconds()}});
#define P2PLAB_TRACE(t, subsystem, kind, ...)                            \
  do {                                                                   \
    if (auto* p2plab_rec_ = ::p2plab::metrics::FlightRecorder::active()) \
      p2plab_rec_->record((t), (subsystem), (kind), __VA_ARGS__);        \
  } while (0)
