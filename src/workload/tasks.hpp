// Workload definitions for the scheduler-suitability study.
//
// The paper uses two benchmark programs on the GridExplorer nodes:
//  - a CPU-intensive, non-memory-intensive program "calculating Ackermann's
//    function, requiring about 1.65 seconds to complete when run alone"
//    (Figure 1), and a ~5 s variant for the fairness study (Figure 3);
//  - a CPU- and memory-intensive program "doing simple operations on large
//    matrices" (Figure 2).
//
// We model each as a ProcSpec with calibrated demand; a real Ackermann
// evaluator is included so tests can tie the calibration to the actual
// function the paper names.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "sched/scheduler.hpp"

namespace p2plab::workload {

/// Ackermann's function A(m, n) for the small arguments the benchmark uses.
/// Evaluated iteratively (explicit stack) so A(3, n) is safe for n ~ 10.
std::uint64_t ackermann(std::uint64_t m, std::uint64_t n);

/// Figure 1 task: CPU-bound, negligible memory, ~1.65 s alone.
sched::ProcSpec ackermann_task();

/// Figure 3 task: CPU-bound, ~5 s alone.
sched::ProcSpec fairness_task();

/// Figure 2 task: CPU + memory intensive, ~1.2 s alone, 60 MiB working set
/// ("simple operations on large matrices").
sched::ProcSpec matrix_task();

/// A batch of n copies of `spec`, all spawned at t=0 (the paper starts all
/// instances at the same time from a high-priority launcher).
std::vector<sched::ProcSpec> batch(const sched::ProcSpec& spec, size_t n);

/// A batch of n copies spawned `interval` apart, starting at t=0.
std::vector<sched::ProcSpec> staggered_batch(const sched::ProcSpec& spec,
                                             size_t n, Duration interval);

}  // namespace p2plab::workload
