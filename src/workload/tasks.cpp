#include "workload/tasks.hpp"

#include <vector>

#include "common/assert.hpp"

namespace p2plab::workload {

std::uint64_t ackermann(std::uint64_t m, std::uint64_t n) {
  // Iterative evaluation with an explicit stack of pending m-values;
  // equivalent to the classic recursion but safe from stack overflow.
  std::vector<std::uint64_t> stack;
  stack.push_back(m);
  while (!stack.empty()) {
    m = stack.back();
    stack.pop_back();
    if (m == 0) {
      n += 1;
    } else if (n == 0) {
      stack.push_back(m - 1);
      n = 1;
    } else {
      stack.push_back(m - 1);
      stack.push_back(m);
      n -= 1;
    }
  }
  return n;
}

sched::ProcSpec ackermann_task() {
  return {.work = Duration::millis(1650.0),
          .working_set = DataSize::mib(2),
          .spawn_time = SimTime::zero()};
}

sched::ProcSpec fairness_task() {
  return {.work = Duration::sec(5),
          .working_set = DataSize::mib(2),
          .spawn_time = SimTime::zero()};
}

sched::ProcSpec matrix_task() {
  return {.work = Duration::millis(1200.0),
          .working_set = DataSize::mib(60),
          .spawn_time = SimTime::zero()};
}

std::vector<sched::ProcSpec> batch(const sched::ProcSpec& spec, size_t n) {
  P2PLAB_ASSERT(n > 0);
  return std::vector<sched::ProcSpec>(n, spec);
}

std::vector<sched::ProcSpec> staggered_batch(const sched::ProcSpec& spec,
                                             size_t n, Duration interval) {
  P2PLAB_ASSERT(n > 0);
  std::vector<sched::ProcSpec> specs(n, spec);
  for (size_t i = 0; i < n; ++i) {
    specs[i].spawn_time =
        SimTime::zero() + interval * static_cast<std::int64_t>(i);
  }
  return specs;
}

}  // namespace p2plab::workload
