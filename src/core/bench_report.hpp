// The standardized BENCH_*.json run summary, shared by every harness.
//
// One flat JSON object per run: the scenario name, the workload's scale
// field (clients / rules_max / flows / probes), the engine shape (shards,
// real online cores, degraded_parallelism), the run economics (events,
// wall_seconds, events_per_second, peak_rss_bytes) and — when the BSP
// profiler ran — the per-shard utilization rollup. The scenario runner and
// the fig bench mains all emit through here so the schema cannot drift:
// scripts/bench_gate.sh --scaling parses these fields by name and exits 2
// when one is missing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/platform.hpp"

namespace p2plab::core {

/// Peak resident set size of this process (ru_maxrss; KiB on Linux).
std::size_t peak_rss_bytes();

/// The standard field list for one finished run on `platform`. Includes
/// the profiler rollup iff the platform profiled this run.
std::vector<std::pair<std::string, double>> bench_fields(
    Platform& platform, const char* scale_key, double scale_value,
    std::uint64_t seed, double wall_seconds);

/// Serialize `{"scenario": "<scenario>", fields...}` (15 significant
/// digits, so event counts up to 2^53 survive the double round-trip),
/// echo `# <name> <json>` to stdout and write $P2PLAB_RESULTS_DIR/
/// <name>.json when the results dir is set.
void write_bench_json(const std::string& scenario, const std::string& name,
                      const std::vector<std::pair<std::string, double>>&
                          fields);

}  // namespace p2plab::core
