#include "core/bench_report.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>

#include "profile/profiler.hpp"

namespace p2plab::core {

std::size_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
}

std::vector<std::pair<std::string, double>> bench_fields(
    Platform& platform, const char* scale_key, double scale_value,
    std::uint64_t seed, double wall_seconds) {
  const double events = static_cast<double>(platform.dispatched_events());
  // "cores" is the real online core count (the process affinity mask), not
  // hardware_concurrency: a cgroup-limited CI box may advertise 16 cores
  // while only 2 are schedulable, and scaling plots keyed on the wrong
  // number are worse than none. degraded_parallelism flags shards > cores:
  // the workers time-slice, so wall-clock is not a parallel datapoint.
  const std::size_t shards = platform.shard_count();
  const int online = profile::Profiler::online_cores();
  const bool degraded = shards > 1 && online < static_cast<int>(shards);
  std::vector<std::pair<std::string, double>> fields = {
      {scale_key, scale_value},
      {"shards", static_cast<double>(shards)},
      {"cores", static_cast<double>(online)},
      {"degraded_parallelism", degraded ? 1.0 : 0.0},
      {"seed", static_cast<double>(seed)},
      {"events", events},
      {"wall_seconds", wall_seconds},
      {"events_per_second", wall_seconds > 0 ? events / wall_seconds : 0},
      {"peak_rss_bytes", static_cast<double>(peak_rss_bytes())}};
  if (platform.profiling()) {
    const profile::Rollup roll = platform.profiler().rollup();
    const std::vector<int> cpus = platform.worker_cpus();
    bool pinned = false;
    for (std::size_t s = 0; s < roll.shards.size(); ++s) {
      const profile::ShardRollup& sh = roll.shards[s];
      const std::string prefix = "shard" + std::to_string(s) + "_";
      fields.emplace_back(prefix + "utilization_pct", sh.utilization_pct);
      fields.emplace_back(prefix + "user_s", sh.stats.user_s);
      fields.emplace_back(prefix + "sys_s", sh.stats.sys_s);
      const int cpu = s < cpus.size() ? cpus[s] : -1;
      fields.emplace_back(prefix + "cpu", static_cast<double>(cpu));
      pinned = pinned || cpu >= 0;
    }
    fields.emplace_back("pinned", pinned ? 1.0 : 0.0);
    fields.emplace_back("barrier_wait_share", roll.barrier_wait_share);
    fields.emplace_back("merge_share", roll.merge_share);
    fields.emplace_back("imbalance_ratio", roll.imbalance_ratio);
    fields.emplace_back("profile_ring_dropped",
                        static_cast<double>(roll.ring_dropped));
  }
  return fields;
}

void write_bench_json(
    const std::string& scenario, const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string json = "{\"scenario\": \"" + scenario + "\"";
  char buffer[64];
  for (const auto& [key, value] : fields) {
    std::snprintf(buffer, sizeof(buffer), "%.15g", value);
    json += ", \"" + key + "\": " + buffer;
  }
  json += "}";
  std::printf("# %s %s\n", name.c_str(), json.c_str());
  if (const char* dir = std::getenv("P2PLAB_RESULTS_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr,
                   "# P2PLAB_RESULTS_DIR=%s is not writable; %s only on "
                   "stdout\n", dir, name.c_str());
    }
  }
}

}  // namespace p2plab::core
