// P2PLab: the experimentation platform.
//
// A Platform materializes an experiment: it builds the physical cluster
// (hosts + switch), folds the topology's virtual nodes onto the physical
// nodes, configures each node's IP aliases, compiles the decentralized
// IPFW/Dummynet rule set (two pipe rules per hosted virtual node plus one
// rule per inter-group latency pair — the Figure 7 recipe), and exposes
// per-virtual-node process environments and socket APIs for the studied
// application. A ping probe reproduces the paper's latency measurements.
//
// With PlatformConfig::shards > 0 the platform runs on the parallel engine
// (src/engine): physical nodes are partitioned into contiguous blocks, one
// Simulation + Network + SocketManager per shard, driven by worker threads
// under conservative synchronization. The partition is invisible to
// results: a K-shard run is bit-identical to the 1-shard engine run (see
// engine/engine.hpp and DESIGN.md §9). shards == 0 keeps the classic
// single-threaded path with zero engine involvement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "ipfw/pipe.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "profile/profiler.hpp"
#include "sim/simulation.hpp"
#include "sockets/socket.hpp"
#include "topology/topology.hpp"
#include "vnode/interceptor.hpp"
#include "vnode/vnode.hpp"

namespace p2plab::core {

struct PlatformConfig {
  /// Number of physical nodes; virtual nodes are folded onto them in
  /// contiguous blocks (ceil(N/P) per node, like the paper's deployments).
  std::size_t physical_nodes = 1;
  /// Administration network (the paper uses 192.168.38.0/24; we default to
  /// a /16 so scalability runs are not capped at 254 hosts).
  CidrBlock admin_subnet = CidrBlock{Ipv4Addr::from_octets(192, 168, 0, 0), 16};
  net::HostConfig host;
  net::NetworkConfig network;
  sockets::StreamConfig stream;
  vnode::SyscallCosts syscall_costs;
  /// Queue bound for the per-vnode access pipes. Deliberately larger than
  /// Dummynet's 50-slot default: under the default kFlow transport there
  /// is no congestion control, so the pipe queue provides the backlog
  /// that TCP self-clocking would (DESIGN.md §6), bounded per flow by the
  /// transport send window. Under kTcp (stream.transport) the congestion
  /// window keeps the queue short on its own; the generous bound is then
  /// just headroom and never the regulating mechanism (DESIGN.md §13).
  DataSize vnode_pipe_queue = DataSize::mib(8);
  std::uint64_t seed = 1;
  /// Parallel engine shard count; 0 = classic single-threaded mode.
  /// Clamped to physical_nodes (a shard owns whole physical nodes).
  std::size_t shards = 0;
  /// Pin each shard worker to one online CPU. Unset = automatic: pin when
  /// the process affinity mask holds at least as many cores as shards (a
  /// degraded box gains nothing from pinning everything to one core).
  std::optional<bool> pin_workers;
};

class Platform {
 public:
  Platform(const topology::Topology& topo, PlatformConfig config);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Classic-mode accessors; in engine mode state is per shard, so use
  /// sim_of_vnode / run / now / the aggregate counters instead.
  sim::Simulation& sim();
  net::Network& network();
  sockets::SocketManager& sockets();

  const topology::Topology& topology() const { return topo_; }
  const PlatformConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  std::size_t vnode_count() const { return vnodes_.size(); }
  std::size_t physical_node_count() const { return host_by_pnode_.size(); }

  vnode::VirtualNode& vnode(std::size_t i) { return *vnodes_.at(i); }
  vnode::Process& process(std::size_t i) { return *processes_.at(i); }
  sockets::SocketApi& api(std::size_t i) { return *apis_.at(i); }
  net::Host& host_of_vnode(std::size_t i) { return vnodes_.at(i)->host(); }
  /// Physical node index hosting virtual node i.
  std::size_t pnode_of_vnode(std::size_t i) const;

  /// Virtual nodes folded onto each physical node (ceil(N/P)).
  std::size_t folding_ratio() const;

  // -- parallel engine -----------------------------------------------------

  bool engine_mode() const { return engine_ != nullptr; }
  /// Worker threads driving the platform (1 in classic mode).
  std::size_t shard_count() const { return engine_ ? shards_.size() : 1; }
  /// Shard owning physical node p (0 in classic mode).
  std::size_t shard_of_pnode(std::size_t p) const;

  /// The simulation that owns vnode i's state. Application code must
  /// schedule a vnode's events here (classic mode: the one simulation) so
  /// they execute on the owning shard's thread.
  sim::Simulation& sim_of_vnode(std::size_t i);
  /// The registry a vnode's application metrics must bind to (per shard in
  /// engine mode — single-writer; merged into the master on run end).
  /// Classic mode / before bind_metrics: the master registry itself.
  metrics::Registry& registry_of_vnode(std::size_t i);

  /// Platform-wide clock: identical on every shard at every stop.
  SimTime now() const;
  std::uint64_t dispatched_events() const;
  std::size_t pending_events() const;

  enum class RunResult {
    kDrained,    // no pending events anywhere
    kPredicate,  // the stop predicate returned true
    kDeadline,   // simulated time reached `deadline`
  };
  /// Run until `deadline`, the predicate (evaluated every `check_interval`
  /// of simulated time) returns true, or the event queues drain. The only
  /// way to advance an engine-mode platform; in classic mode it is
  /// equivalent to chunked Simulation::run_until calls.
  RunResult run(SimTime deadline, std::function<bool()> stop_predicate = {},
                Duration check_interval = Duration::sec(5));

  // -- vnode lifecycle (fault injection) ----------------------------------
  //
  // A crash models `kill -9` of the studied process plus the loss of its
  // network identity: every socket bound at the vnode's address is aborted
  // (timers cancelled, nothing sent — the dead process cannot say goodbye)
  // and the address is withdrawn from routing. Remote peers discover the
  // loss via RST once the address returns, or retransmit-timeout
  // exhaustion while it is gone. rejoin_vnode restores routing; the
  // application layer re-starts its process on top.
  //
  // In engine mode these touch only the owning shard's state: call them
  // from events scheduled on sim_of_vnode(i) (the fault injector does).

  bool vnode_online(std::size_t i) const { return vnode_online_.at(i) != 0; }
  void crash_vnode(std::size_t i);
  void rejoin_vnode(std::size_t i);

  // -- link faults --------------------------------------------------------
  //
  // All three helpers act on the vnode's two access pipes (both
  // directions). Overrides compose: the emulated link always runs the
  // topology's base parameters plus the currently applied offsets.

  /// Flap the access link (administratively down: arriving segments drop).
  void set_link_down(std::size_t i, bool down);
  /// Add `extra` one-way latency on top of the topology's base latency.
  void set_link_latency_offset(std::size_t i, Duration extra);
  /// Override the link's Gilbert-Elliott bursty loss (default {} restores
  /// the topology's configuration).
  void set_link_burst_loss(std::size_t i, const ipfw::GilbertElliott& ge);
  bool link_down(std::size_t i) const;

  /// The Dummynet pipes emulating vnode i's access link.
  struct AccessPipes {
    std::size_t pnode = 0;
    ipfw::PipeId up = ipfw::kNoPipe;
    ipfw::PipeId down = ipfw::kNoPipe;
  };
  const AccessPipes& access_pipes(std::size_t i) const {
    return access_pipes_.at(i);
  }

  /// ICMP-echo-like probe: round-trip time of a `size`-byte packet through
  /// the full emulated path, both ways. The callback fires on reply.
  /// Classic mode only (the engine carries socket traffic exclusively).
  void ping(Ipv4Addr src, Ipv4Addr dst, std::function<void(Duration)> on_rtt,
            DataSize size = DataSize::bytes(64));

  /// Total IPFW rules installed across all physical nodes (diagnostics).
  std::size_t total_rules() const;

  /// Bind the whole platform's instrumentation to `reg`. Engine mode binds
  /// each shard's subsystems to a private registry and folds those into
  /// `reg` after every run() (Registry::merge_from).
  void bind_metrics(metrics::Registry& reg);

  // -- tracing ------------------------------------------------------------

  /// Activate flight recording: one ring in classic mode, one per shard in
  /// engine mode (workers activate their own — recording never crosses
  /// threads).
  void enable_tracing(std::size_t capacity = 1 << 16);
  bool tracing() const;
  /// Events lost to ring wraparound, summed over recorders. trace_lines()
  /// is complete (and the determinism guarantee byte-exact) only when 0.
  std::uint64_t trace_dropped() const;
  /// All recorded events rendered to JSONL lines in canonical order —
  /// sorted by (timestamp, line bytes), which is shard-count independent.
  std::vector<std::string> trace_lines() const;
  /// Write trace_lines() to $P2PLAB_RESULTS_DIR/<filename>; false if the
  /// env var is unset, tracing is off, or the file cannot be written.
  bool flush_trace_to_results(const char* filename = "trace.jsonl") const;

  // -- wall-clock profiling (profile/profiler.hpp) ------------------------

  /// Activate the BSP profiler: one phase-sample ring per shard worker plus
  /// a coordinator ring (classic mode: one ring fed by Platform::run's
  /// chunk loop). Wall-clock only — virtual time and event order stay
  /// bit-identical with profiling on or off.
  void enable_profiling(std::size_t ring_capacity = 1 << 15);
  bool profiling() const { return profiler_ != nullptr; }
  /// Valid after enable_profiling().
  profile::Profiler& profiler() { return *profiler_; }
  const profile::Profiler& profiler() const { return *profiler_; }
  /// CPU each worker was pinned to on the last run (-1 = unpinned; one
  /// entry per shard, a single -1 entry in classic mode).
  std::vector<int> worker_cpus() const;
  /// Write the Perfetto timeline to $P2PLAB_RESULTS_DIR/<filename>; false
  /// if profiling is off, the env var is unset or the write fails.
  bool flush_profile_to_results(const char* filename = "profile.json") const;

 private:
  /// One engine shard: a private simulation, network (hosts, firewalls),
  /// socket manager and metrics registry, driven by one worker thread.
  struct Shard {
    sim::Simulation sim;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<sockets::SocketManager> sockets;
    metrics::Registry registry;
    std::unique_ptr<metrics::FlightRecorder> recorder;
  };

  void build_cluster();
  void deploy_vnodes();
  void compile_rules();
  void apply_link_config(std::size_t i);
  net::Network& network_of_pnode(std::size_t p);
  sockets::SocketManager& sockets_of_pnode(std::size_t p);
  void merge_shard_metrics();

  /// Per-vnode link-fault overlay on top of the topology's base pipe
  /// configuration (set_link_* recompute base + overlay so faults compose
  /// and restore cleanly).
  struct LinkFaults {
    Duration extra_latency = Duration::zero();
    bool burst_overridden = false;
    ipfw::GilbertElliott burst;
  };

  topology::Topology topo_;
  PlatformConfig config_;
  sim::Simulation sim_;  // classic mode; idle when sharded
  Rng rng_;
  std::unique_ptr<net::Network> network_;            // classic mode
  std::unique_ptr<sockets::SocketManager> sockets_;  // classic mode
  std::unique_ptr<metrics::FlightRecorder> recorder_;  // classic tracing
  std::unique_ptr<profile::Profiler> profiler_;
  std::uint64_t classic_chunk_ = 0;  // classic-mode profile window index
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<engine::Engine> engine_;
  std::vector<net::Host*> host_by_pnode_;
  metrics::Registry* master_reg_ = nullptr;
  std::vector<std::unique_ptr<vnode::VirtualNode>> vnodes_;
  std::vector<std::unique_ptr<vnode::Process>> processes_;
  std::vector<std::unique_ptr<sockets::SocketApi>> apis_;
  std::vector<AccessPipes> access_pipes_;
  std::vector<LinkFaults> link_faults_;
  /// uint8_t, not bool: vector<bool> packs bits, and adjacent vnodes can
  /// live on different shards — independent bytes keep writes race-free.
  std::vector<std::uint8_t> vnode_online_;
  std::uint64_t ping_flow_ = 0;
};

}  // namespace p2plab::core
