// P2PLab: the experimentation platform.
//
// A Platform materializes an experiment: it builds the physical cluster
// (hosts + switch), folds the topology's virtual nodes onto the physical
// nodes, configures each node's IP aliases, compiles the decentralized
// IPFW/Dummynet rule set (two pipe rules per hosted virtual node plus one
// rule per inter-group latency pair — the Figure 7 recipe), and exposes
// per-virtual-node process environments and socket APIs for the studied
// application. A ping probe reproduces the paper's latency measurements.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ipfw/pipe.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "sockets/socket.hpp"
#include "topology/topology.hpp"
#include "vnode/interceptor.hpp"
#include "vnode/vnode.hpp"

namespace p2plab::core {

struct PlatformConfig {
  /// Number of physical nodes; virtual nodes are folded onto them in
  /// contiguous blocks (ceil(N/P) per node, like the paper's deployments).
  std::size_t physical_nodes = 1;
  /// Administration network (the paper uses 192.168.38.0/24; we default to
  /// a /16 so scalability runs are not capped at 254 hosts).
  CidrBlock admin_subnet = CidrBlock{Ipv4Addr::from_octets(192, 168, 0, 0), 16};
  net::HostConfig host;
  net::NetworkConfig network;
  sockets::StreamConfig stream;
  vnode::SyscallCosts syscall_costs;
  /// Queue bound for the per-vnode access pipes. Deliberately larger than
  /// Dummynet's 50-slot default: our transport has no congestion control,
  /// so the pipe queue provides the backlog that TCP self-clocking would
  /// (DESIGN.md §6). Bounded per flow by the transport send window.
  DataSize vnode_pipe_queue = DataSize::mib(8);
  std::uint64_t seed = 1;
};

class Platform {
 public:
  Platform(const topology::Topology& topo, PlatformConfig config);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return *network_; }
  sockets::SocketManager& sockets() { return *sockets_; }
  const topology::Topology& topology() const { return topo_; }
  const PlatformConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  std::size_t vnode_count() const { return vnodes_.size(); }
  std::size_t physical_node_count() const { return network_->host_count(); }

  vnode::VirtualNode& vnode(std::size_t i) { return *vnodes_.at(i); }
  vnode::Process& process(std::size_t i) { return *processes_.at(i); }
  sockets::SocketApi& api(std::size_t i) { return *apis_.at(i); }
  net::Host& host_of_vnode(std::size_t i) { return vnodes_.at(i)->host(); }
  /// Physical node index hosting virtual node i.
  std::size_t pnode_of_vnode(std::size_t i) const;

  /// Virtual nodes folded onto each physical node (ceil(N/P)).
  std::size_t folding_ratio() const;

  // -- vnode lifecycle (fault injection) ----------------------------------
  //
  // A crash models `kill -9` of the studied process plus the loss of its
  // network identity: every socket bound at the vnode's address is aborted
  // (timers cancelled, nothing sent — the dead process cannot say goodbye)
  // and the address is withdrawn from routing. Remote peers discover the
  // loss via RST once the address returns, or retransmit-timeout
  // exhaustion while it is gone. rejoin_vnode restores routing; the
  // application layer re-starts its process on top.

  bool vnode_online(std::size_t i) const { return vnode_online_.at(i); }
  void crash_vnode(std::size_t i);
  void rejoin_vnode(std::size_t i);

  // -- link faults --------------------------------------------------------
  //
  // All three helpers act on the vnode's two access pipes (both
  // directions). Overrides compose: the emulated link always runs the
  // topology's base parameters plus the currently applied offsets.

  /// Flap the access link (administratively down: arriving segments drop).
  void set_link_down(std::size_t i, bool down);
  /// Add `extra` one-way latency on top of the topology's base latency.
  void set_link_latency_offset(std::size_t i, Duration extra);
  /// Override the link's Gilbert-Elliott bursty loss (default {} restores
  /// the topology's configuration).
  void set_link_burst_loss(std::size_t i, const ipfw::GilbertElliott& ge);
  bool link_down(std::size_t i) const;

  /// The Dummynet pipes emulating vnode i's access link.
  struct AccessPipes {
    std::size_t pnode = 0;
    ipfw::PipeId up = ipfw::kNoPipe;
    ipfw::PipeId down = ipfw::kNoPipe;
  };
  const AccessPipes& access_pipes(std::size_t i) const {
    return access_pipes_.at(i);
  }

  /// ICMP-echo-like probe: round-trip time of a `size`-byte packet through
  /// the full emulated path, both ways. The callback fires on reply.
  void ping(Ipv4Addr src, Ipv4Addr dst, std::function<void(Duration)> on_rtt,
            DataSize size = DataSize::bytes(64));

  /// Total IPFW rules installed across all physical nodes (diagnostics).
  std::size_t total_rules() const;

  /// Bind the whole platform's instrumentation (sim kernel, network +
  /// per-host firewalls, socket manager) to `reg`.
  void bind_metrics(metrics::Registry& reg) {
    sim_.bind_metrics(reg);
    network_->bind_metrics(reg);
    sockets_->bind_metrics(reg);
  }

 private:
  void build_cluster();
  void deploy_vnodes();
  void compile_rules();
  void apply_link_config(std::size_t i);

  /// Per-vnode link-fault overlay on top of the topology's base pipe
  /// configuration (set_link_* recompute base + overlay so faults compose
  /// and restore cleanly).
  struct LinkFaults {
    Duration extra_latency = Duration::zero();
    bool burst_overridden = false;
    ipfw::GilbertElliott burst;
  };

  topology::Topology topo_;
  PlatformConfig config_;
  sim::Simulation sim_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<sockets::SocketManager> sockets_;
  std::vector<std::unique_ptr<vnode::VirtualNode>> vnodes_;
  std::vector<std::unique_ptr<vnode::Process>> processes_;
  std::vector<std::unique_ptr<sockets::SocketApi>> apis_;
  std::vector<AccessPipes> access_pipes_;
  std::vector<LinkFaults> link_faults_;
  std::vector<bool> vnode_online_;
  std::uint64_t ping_flow_ = 0;
};

}  // namespace p2plab::core
