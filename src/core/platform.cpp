#include "core/platform.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::core {

Platform::Platform(const topology::Topology& topo, PlatformConfig config)
    : topo_(topo), config_(config), rng_(config.seed) {
  P2PLAB_ASSERT(config_.physical_nodes >= 1);
  P2PLAB_ASSERT(topo_.total_nodes() >= 1);
  if (config_.shards > 0) {
    // Parallel engine: one Simulation/Network/SocketManager per shard. Every
    // shard's network forks the *same* rng stream the classic network would
    // use — hosts then fork host streams keyed on their global index, so
    // randomness is identical under any partition.
    const std::size_t k = std::min(config_.shards, config_.physical_nodes);
    engine_ = std::make_unique<engine::Engine>(topo_.min_access_latency() +
                                               config_.network.switch_latency);
    const int online = profile::Profiler::online_cores();
    if (k > 1 && online < static_cast<int>(k)) {
      std::fprintf(stderr,
                   "[p2plab] WARNING: %d online core(s) for %zu shards — "
                   "worker threads will time-slice, so wall-clock numbers "
                   "from this run are NOT a parallel-scaling datapoint "
                   "(degraded_parallelism)\n",
                   online, k);
    }
    // Pin by default only when every worker can own a core.
    engine_->set_pin_workers(
        config_.pin_workers.value_or(online >= static_cast<int>(k)));
    for (std::size_t s = 0; s < k; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->network = std::make_unique<net::Network>(shard->sim, rng_.fork(1),
                                                      config_.network);
      shard->sockets = std::make_unique<sockets::SocketManager>(
          *shard->network, vnode::Interceptor{config_.syscall_costs},
          config_.stream);
      engine_->add_shard(shard->sim, *shard->network);
      shards_.push_back(std::move(shard));
    }
  } else {
    network_ = std::make_unique<net::Network>(sim_, rng_.fork(1),
                                              config_.network);
    sockets_ = std::make_unique<sockets::SocketManager>(
        *network_, vnode::Interceptor{config_.syscall_costs}, config_.stream);
  }
  build_cluster();
  deploy_vnodes();
  compile_rules();
  P2PLAB_LOG_INFO(
      "platform up: %zu vnodes on %zu pnodes (%zu per node), %zu rules, "
      "%zu shard(s)",
      vnode_count(), physical_node_count(), folding_ratio(), total_rules(),
      shard_count());
}

Platform::~Platform() {
  // Deactivate tracing installed by enable_tracing on this thread before
  // the recorders (and everything they reference) go away.
  if (tracing()) metrics::FlightRecorder::set_active(nullptr);
  if (profiling()) profile::Profiler::set_thread_active(nullptr);
}

sim::Simulation& Platform::sim() {
  P2PLAB_ASSERT_MSG(!engine_mode(),
                    "no single simulation in engine mode: use sim_of_vnode "
                    "and Platform::run");
  return sim_;
}

net::Network& Platform::network() {
  P2PLAB_ASSERT_MSG(!engine_mode(), "per-shard networks in engine mode");
  return *network_;
}

sockets::SocketManager& Platform::sockets() {
  P2PLAB_ASSERT_MSG(!engine_mode(), "per-shard socket managers in engine mode");
  return *sockets_;
}

std::size_t Platform::folding_ratio() const {
  const std::size_t n = topo_.total_nodes();
  const std::size_t p = config_.physical_nodes;
  return (n + p - 1) / p;
}

std::size_t Platform::pnode_of_vnode(std::size_t i) const {
  return i / folding_ratio();
}

std::size_t Platform::shard_of_pnode(std::size_t p) const {
  if (!engine_) return 0;
  // Contiguous blocks of physical nodes, like vnodes onto pnodes.
  return p * shards_.size() / config_.physical_nodes;
}

sim::Simulation& Platform::sim_of_vnode(std::size_t i) {
  if (!engine_) return sim_;
  return shards_[shard_of_pnode(pnode_of_vnode(i))]->sim;
}

metrics::Registry& Platform::registry_of_vnode(std::size_t i) {
  if (engine_) return shards_[shard_of_pnode(pnode_of_vnode(i))]->registry;
  P2PLAB_ASSERT_MSG(master_reg_ != nullptr,
                    "bind_metrics first: classic mode has no default registry");
  return *master_reg_;
}

net::Network& Platform::network_of_pnode(std::size_t p) {
  return engine_ ? *shards_[shard_of_pnode(p)]->network : *network_;
}

sockets::SocketManager& Platform::sockets_of_pnode(std::size_t p) {
  return engine_ ? *shards_[shard_of_pnode(p)]->sockets : *sockets_;
}

SimTime Platform::now() const {
  return engine_ ? engine_->now() : sim_.now();
}

std::uint64_t Platform::dispatched_events() const {
  if (!engine_) return sim_.dispatched_events();
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.dispatched_events();
  return total;
}

std::size_t Platform::pending_events() const {
  if (!engine_) return sim_.pending_events();
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.pending_events();
  return total;
}

Platform::RunResult Platform::run(SimTime deadline,
                                  std::function<bool()> stop_predicate,
                                  Duration check_interval) {
  if (engine_) {
    const engine::Engine::StopReason reason =
        engine_->run(deadline, std::move(stop_predicate), check_interval);
    merge_shard_metrics();
    switch (reason) {
      case engine::Engine::StopReason::kPredicate:
        return RunResult::kPredicate;
      case engine::Engine::StopReason::kDeadline:
        return RunResult::kDeadline;
      default:
        return RunResult::kDrained;
    }
  }
  // Classic mode: chunked run_until calls. With profiling on, each chunk
  // becomes one execute sample in the single shard-0 ring — wall-clock
  // bookkeeping between chunks, invisible to virtual time.
  profile::SampleRing* const ring =
      profiler_ != nullptr ? &profiler_->shard_ring(0) : nullptr;
  auto chunk = [&](SimTime until) {
    if (ring == nullptr) {
      sim_.run_until(until);
      return;
    }
    const std::uint64_t t0 = profiler_->now_ns();
    const std::uint64_t ev0 = sim_.dispatched_events();
    sim_.run_until(until);
    const std::uint64_t t1 = profiler_->now_ns();
    ring->push(profile::PhaseSample{.start_ns = t0,
                                    .dur_ns = t1 - t0,
                                    .window = classic_chunk_++,
                                    .events = sim_.dispatched_events() - ev0,
                                    .queue_depth = sim_.pending_events(),
                                    .phase = profile::Phase::kExecute});
  };
  const profile::Profiler::ThreadTime rusage_base =
      profiler_ != nullptr ? profile::Profiler::thread_rusage()
                           : profile::Profiler::ThreadTime{};
  const auto finish = [this, rusage_base] {
    if (profiler_ == nullptr) return;
    const profile::Profiler::ThreadTime now =
        profile::Profiler::thread_rusage();
    profiler_->add_worker_time(
        0, {now.user_s - rusage_base.user_s, now.sys_s - rusage_base.sys_s});
  };
  for (;;) {
    if (stop_predicate && stop_predicate()) {
      finish();
      return RunResult::kPredicate;
    }
    const auto next = sim_.next_event_time();
    if (!next.has_value()) {
      finish();
      return RunResult::kDrained;
    }
    if (*next >= deadline) {
      chunk(deadline);
      finish();
      return RunResult::kDeadline;
    }
    chunk(std::min(deadline, sim_.now() + check_interval));
  }
}

void Platform::merge_shard_metrics() {
  if (master_reg_ == nullptr) return;
  for (const auto& shard : shards_) {
    master_reg_->merge_from(shard->registry);
    // Reset so the next merge adds only the delta; the shard subsystems'
    // handles stay valid (cells are zeroed in place).
    shard->registry.reset();
  }
}

void Platform::bind_metrics(metrics::Registry& reg) {
  master_reg_ = &reg;
  if (engine_) {
    for (const auto& shard : shards_) {
      shard->sim.bind_metrics(shard->registry);
      shard->network->bind_metrics(shard->registry);
      shard->sockets->bind_metrics(shard->registry);
    }
  } else {
    sim_.bind_metrics(reg);
    network_->bind_metrics(reg);
    sockets_->bind_metrics(reg);
  }
}

void Platform::build_cluster() {
  host_by_pnode_.reserve(config_.physical_nodes);
  for (std::size_t p = 0; p < config_.physical_nodes; ++p) {
    // Host addresses start at .1 within the admin subnet.
    const Ipv4Addr admin =
        config_.admin_subnet.host(static_cast<std::uint32_t>(p + 1));
    net::Host& host = network_of_pnode(p).add_host(
        "pnode" + std::to_string(p + 1), admin, config_.host,
        /*global_index=*/p);
    host_by_pnode_.push_back(&host);
    if (engine_) engine_->map_address(admin, shard_of_pnode(p));
  }
}

void Platform::deploy_vnodes() {
  const std::size_t n = topo_.total_nodes();
  vnodes_.reserve(n);
  processes_.reserve(n);
  apis_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = pnode_of_vnode(i);
    vnodes_.push_back(std::make_unique<vnode::VirtualNode>(
        *host_by_pnode_[p], static_cast<std::uint32_t>(i),
        topo_.node_address(i)));
    processes_.push_back(std::make_unique<vnode::Process>(*vnodes_.back()));
    apis_.push_back(std::make_unique<sockets::SocketApi>(
        sockets_of_pnode(p), *processes_.back()));
    if (engine_) engine_->map_address(topo_.node_address(i), shard_of_pnode(p));
  }
}

void Platform::compile_rules() {
  access_pipes_.resize(topo_.total_nodes());
  link_faults_.resize(topo_.total_nodes());
  vnode_online_.assign(topo_.total_nodes(), 1);
  // Per physical node: two pipe rules per hosted vnode (the emulated access
  // link, both directions), then one rule per inter-zone latency pair that
  // involves a zone with nodes hosted here (source side only; "the opposite
  // rule being on the nodes hosting" the other zone).
  const auto& zones = topo_.zones();
  const std::size_t n = topo_.total_nodes();

  for (std::size_t p = 0; p < physical_node_count(); ++p) {
    net::Host& host = *host_by_pnode_[p];
    ipfw::Firewall& fw = host.firewall();
    std::uint32_t rule_number = 100;
    std::set<std::size_t> hosted_zones;

    for (std::size_t i = 0; i < n; ++i) {
      if (pnode_of_vnode(i) != p) continue;
      const topology::LinkClass& link = topo_.link_of_node(i);
      const Ipv4Addr addr = topo_.node_address(i);
      const CidrBlock host_block{addr, 32};
      hosted_zones.insert(topo_.zone_of_node(i));
      const ipfw::GilbertElliott burst{.p_good_to_bad = link.burst_p_good_bad,
                                       .p_bad_to_good = link.burst_p_bad_good,
                                       .loss_bad = link.burst_loss_bad};

      const ipfw::PipeId up = fw.create_pipe(
          {.bandwidth = link.up,
           .delay = link.latency,
           .loss_rate = link.loss_rate,
           .burst_loss = burst,
           .queue_limit = config_.vnode_pipe_queue,
           .fair_queue = true});
      fw.add_rule({.number = rule_number++, .src = host_block,
                   .dst = CidrBlock::any(), .dir = ipfw::RuleDir::kOut,
                   .action = ipfw::RuleAction::kPipe, .pipe = up});
      const ipfw::PipeId down = fw.create_pipe(
          {.bandwidth = link.down,
           .delay = link.latency,
           .loss_rate = link.loss_rate,
           .burst_loss = burst,
           .queue_limit = config_.vnode_pipe_queue,
           .fair_queue = true});
      fw.add_rule({.number = rule_number++, .src = CidrBlock::any(),
                   .dst = host_block, .dir = ipfw::RuleDir::kIn,
                   .action = ipfw::RuleAction::kPipe, .pipe = down});
      access_pipes_[i] = AccessPipes{.pnode = p, .up = up, .down = down};
    }

    std::uint32_t group_rule_number = 60000;
    for (const topology::LatencyPair& pair : topo_.latencies()) {
      // Does this pnode host nodes belonging to either side of the pair?
      // (Container zones match via subnet containment.)
      auto hosts_side = [&](topology::ZoneId side) {
        for (std::size_t z : hosted_zones) {
          if (zones[side].subnet.contains(zones[z].subnet)) return true;
        }
        return false;
      };
      auto add_group_rule = [&](topology::ZoneId src_zone,
                                topology::ZoneId dst_zone) {
        const ipfw::PipeId pipe = fw.create_pipe({.delay = pair.latency});
        fw.add_rule({.number = group_rule_number++,
                     .src = zones[src_zone].subnet,
                     .dst = zones[dst_zone].subnet,
                     .dir = ipfw::RuleDir::kOut,
                     .action = ipfw::RuleAction::kPipe, .pipe = pipe});
      };
      if (hosts_side(pair.a)) add_group_rule(pair.a, pair.b);
      if (hosts_side(pair.b)) add_group_rule(pair.b, pair.a);
    }
  }
}

void Platform::crash_vnode(std::size_t i) {
  if (vnode_online_.at(i) == 0) return;
  vnode_online_[i] = 0;
  const Ipv4Addr addr = topo_.node_address(i);
  const std::size_t p = pnode_of_vnode(i);
  // Order matters: abort sockets first so their final state transitions do
  // not try to transmit from an already-detached address.
  sockets_of_pnode(p).abort_endpoints_of(addr);
  network_of_pnode(p).detach_address(addr);
}

void Platform::rejoin_vnode(std::size_t i) {
  if (vnode_online_.at(i) != 0) return;
  vnode_online_[i] = 1;
  network_of_pnode(pnode_of_vnode(i))
      .reattach_address(topo_.node_address(i), host_of_vnode(i));
}

void Platform::set_link_down(std::size_t i, bool down) {
  const AccessPipes& ap = access_pipes_.at(i);
  ipfw::Firewall& fw = host_by_pnode_[ap.pnode]->firewall();
  fw.pipe(ap.up).set_down(down);
  fw.pipe(ap.down).set_down(down);
}

bool Platform::link_down(std::size_t i) const {
  const AccessPipes& ap = access_pipes_.at(i);
  return host_by_pnode_[ap.pnode]->firewall().pipe(ap.up).is_down();
}

void Platform::set_link_latency_offset(std::size_t i, Duration extra) {
  link_faults_.at(i).extra_latency = extra;
  apply_link_config(i);
}

void Platform::set_link_burst_loss(std::size_t i,
                                   const ipfw::GilbertElliott& ge) {
  link_faults_.at(i).burst = ge;
  link_faults_.at(i).burst_overridden = ge.enabled();
  apply_link_config(i);
}

void Platform::apply_link_config(std::size_t i) {
  const topology::LinkClass& link = topo_.link_of_node(i);
  const LinkFaults& faults = link_faults_.at(i);
  const AccessPipes& ap = access_pipes_.at(i);
  ipfw::Firewall& fw = host_by_pnode_[ap.pnode]->firewall();

  ipfw::GilbertElliott burst{.p_good_to_bad = link.burst_p_good_bad,
                             .p_bad_to_good = link.burst_p_bad_good,
                             .loss_bad = link.burst_loss_bad};
  if (faults.burst_overridden) burst = faults.burst;

  ipfw::PipeConfig cfg{.bandwidth = link.up,
                       .delay = link.latency + faults.extra_latency,
                       .loss_rate = link.loss_rate,
                       .burst_loss = burst,
                       .queue_limit = config_.vnode_pipe_queue,
                       .fair_queue = true};
  fw.pipe(ap.up).reconfigure(cfg);
  cfg.bandwidth = link.down;
  fw.pipe(ap.down).reconfigure(cfg);
}

void Platform::ping(Ipv4Addr src, Ipv4Addr dst,
                    std::function<void(Duration)> on_rtt, DataSize size) {
  P2PLAB_ASSERT_MSG(!engine_mode(),
                    "ping is classic-mode only: its reply closure would run "
                    "on the destination's shard");
  const SimTime start = sim_.now();
  const ipfw::FlowId flow = 0x7f000000ull + ++ping_flow_;
  net::Packet request;
  request.src = src;
  request.dst = dst;
  request.wire_size = size;
  request.flow = flow;
  request.kind = net::PacketKind::kDatagram;
  request.on_deliver = [this, start, size, flow,
                        cb = std::move(on_rtt)](net::Packet&& p) mutable {
    net::Packet reply;
    reply.src = p.dst;
    reply.dst = p.src;
    reply.wire_size = size;
    reply.flow = flow;
    reply.kind = net::PacketKind::kDatagram;
    reply.on_deliver = [this, start, cb = std::move(cb)](net::Packet&&) {
      cb(sim_.now() - start);
    };
    network_->send(std::move(reply));
  };
  network_->send(std::move(request));
}

std::size_t Platform::total_rules() const {
  std::size_t total = 0;
  for (const net::Host* host : host_by_pnode_) {
    total += host->firewall().rule_count();
  }
  return total;
}

void Platform::enable_tracing(std::size_t capacity) {
  if (engine_) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->recorder =
          std::make_unique<metrics::FlightRecorder>(capacity);
      engine_->set_recorder(s, shards_[s]->recorder.get());
    }
    // Setup-time events (main thread) land in shard 0's ring — the same
    // ring for every shard count, preserving determinism.
    metrics::FlightRecorder::set_active(shards_[0]->recorder.get());
  } else {
    recorder_ = std::make_unique<metrics::FlightRecorder>(capacity);
    metrics::FlightRecorder::set_active(recorder_.get());
  }
}

bool Platform::tracing() const {
  return recorder_ != nullptr ||
         (!shards_.empty() && shards_[0]->recorder != nullptr);
}

std::uint64_t Platform::trace_dropped() const {
  std::uint64_t dropped = recorder_ ? recorder_->dropped() : 0;
  for (const auto& shard : shards_) {
    if (shard->recorder) dropped += shard->recorder->dropped();
  }
  return dropped;
}

std::vector<std::string> Platform::trace_lines() const {
  std::vector<metrics::FlightRecorder::RenderedEvent> events;
  auto append = [&events](const metrics::FlightRecorder& rec) {
    auto rendered = rec.rendered_events();
    std::move(rendered.begin(), rendered.end(), std::back_inserter(events));
  };
  if (recorder_) append(*recorder_);
  for (const auto& shard : shards_) {
    if (shard->recorder) append(*shard->recorder);
  }
  // Canonical order: (timestamp, rendered bytes). Ties across shards carry
  // identical line bytes or commute, so the sorted sequence — unlike raw
  // ring order — is independent of how hosts were partitioned.
  std::stable_sort(events.begin(), events.end(),
                   [](const metrics::FlightRecorder::RenderedEvent& a,
                      const metrics::FlightRecorder::RenderedEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.line < b.line;
                   });
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (auto& ev : events) lines.push_back(std::move(ev.line));
  return lines;
}

void Platform::enable_profiling(std::size_t ring_capacity) {
  if (profiler_ != nullptr) return;
  profiler_ = std::make_unique<profile::Profiler>(shard_count(),
                                                  ring_capacity);
  if (engine_) engine_->set_profiler(profiler_.get());
  // Crash drain for the main thread (covers classic mode and setup-time
  // assertions); engine workers install their own on entry.
  profile::Profiler::set_thread_active(profiler_.get());
}

std::vector<int> Platform::worker_cpus() const {
  if (engine_ && !engine_->worker_cpus().empty()) {
    return engine_->worker_cpus();
  }
  return std::vector<int>(shard_count(), -1);
}

bool Platform::flush_profile_to_results(const char* filename) const {
  if (profiler_ == nullptr) return false;
  return profiler_->write_perfetto_to_results(filename);
}

bool Platform::flush_trace_to_results(const char* filename) const {
  if (!tracing()) return false;
  const char* dir = std::getenv("P2PLAB_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  for (const std::string& line : trace_lines()) {
    std::fputs(line.c_str(), out);
    std::fputc('\n', out);
  }
  std::fclose(out);
  return true;
}

}  // namespace p2plab::core
