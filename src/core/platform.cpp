#include "core/platform.hpp"

#include <set>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace p2plab::core {

Platform::Platform(const topology::Topology& topo, PlatformConfig config)
    : topo_(topo), config_(config), rng_(config.seed) {
  P2PLAB_ASSERT(config_.physical_nodes >= 1);
  P2PLAB_ASSERT(topo_.total_nodes() >= 1);
  network_ = std::make_unique<net::Network>(sim_, rng_.fork(1),
                                            config_.network);
  sockets_ = std::make_unique<sockets::SocketManager>(
      *network_, vnode::Interceptor{config_.syscall_costs}, config_.stream);
  build_cluster();
  deploy_vnodes();
  compile_rules();
  P2PLAB_LOG_INFO(
      "platform up: %zu vnodes on %zu pnodes (%zu per node), %zu rules",
      vnode_count(), physical_node_count(), folding_ratio(), total_rules());
}

std::size_t Platform::folding_ratio() const {
  const std::size_t n = topo_.total_nodes();
  const std::size_t p = config_.physical_nodes;
  return (n + p - 1) / p;
}

std::size_t Platform::pnode_of_vnode(std::size_t i) const {
  return i / folding_ratio();
}

void Platform::build_cluster() {
  for (std::size_t p = 0; p < config_.physical_nodes; ++p) {
    // Host addresses start at .1 within the admin subnet.
    const Ipv4Addr admin =
        config_.admin_subnet.host(static_cast<std::uint32_t>(p + 1));
    network_->add_host("pnode" + std::to_string(p + 1), admin, config_.host);
  }
}

void Platform::deploy_vnodes() {
  const std::size_t n = topo_.total_nodes();
  vnodes_.reserve(n);
  processes_.reserve(n);
  apis_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::Host& host = network_->host(pnode_of_vnode(i));
    vnodes_.push_back(std::make_unique<vnode::VirtualNode>(
        host, static_cast<std::uint32_t>(i), topo_.node_address(i)));
    processes_.push_back(std::make_unique<vnode::Process>(*vnodes_.back()));
    apis_.push_back(
        std::make_unique<sockets::SocketApi>(*sockets_, *processes_.back()));
  }
}

void Platform::compile_rules() {
  access_pipes_.resize(topo_.total_nodes());
  link_faults_.resize(topo_.total_nodes());
  vnode_online_.assign(topo_.total_nodes(), true);
  // Per physical node: two pipe rules per hosted vnode (the emulated access
  // link, both directions), then one rule per inter-zone latency pair that
  // involves a zone with nodes hosted here (source side only; "the opposite
  // rule being on the nodes hosting" the other zone).
  const auto& zones = topo_.zones();
  const std::size_t n = topo_.total_nodes();

  for (std::size_t p = 0; p < physical_node_count(); ++p) {
    net::Host& host = network_->host(p);
    ipfw::Firewall& fw = host.firewall();
    std::uint32_t rule_number = 100;
    std::set<std::size_t> hosted_zones;

    for (std::size_t i = 0; i < n; ++i) {
      if (pnode_of_vnode(i) != p) continue;
      const topology::LinkClass& link = topo_.link_of_node(i);
      const Ipv4Addr addr = topo_.node_address(i);
      const CidrBlock host_block{addr, 32};
      hosted_zones.insert(topo_.zone_of_node(i));
      const ipfw::GilbertElliott burst{.p_good_to_bad = link.burst_p_good_bad,
                                       .p_bad_to_good = link.burst_p_bad_good,
                                       .loss_bad = link.burst_loss_bad};

      const ipfw::PipeId up = fw.create_pipe(
          {.bandwidth = link.up,
           .delay = link.latency,
           .loss_rate = link.loss_rate,
           .burst_loss = burst,
           .queue_limit = config_.vnode_pipe_queue,
           .fair_queue = true});
      fw.add_rule({.number = rule_number++, .src = host_block,
                   .dst = CidrBlock::any(), .dir = ipfw::RuleDir::kOut,
                   .action = ipfw::RuleAction::kPipe, .pipe = up});
      const ipfw::PipeId down = fw.create_pipe(
          {.bandwidth = link.down,
           .delay = link.latency,
           .loss_rate = link.loss_rate,
           .burst_loss = burst,
           .queue_limit = config_.vnode_pipe_queue,
           .fair_queue = true});
      fw.add_rule({.number = rule_number++, .src = CidrBlock::any(),
                   .dst = host_block, .dir = ipfw::RuleDir::kIn,
                   .action = ipfw::RuleAction::kPipe, .pipe = down});
      access_pipes_[i] = AccessPipes{.pnode = p, .up = up, .down = down};
    }

    std::uint32_t group_rule_number = 60000;
    for (const topology::LatencyPair& pair : topo_.latencies()) {
      // Does this pnode host nodes belonging to either side of the pair?
      // (Container zones match via subnet containment.)
      auto hosts_side = [&](topology::ZoneId side) {
        for (std::size_t z : hosted_zones) {
          if (zones[side].subnet.contains(zones[z].subnet)) return true;
        }
        return false;
      };
      auto add_group_rule = [&](topology::ZoneId src_zone,
                                topology::ZoneId dst_zone) {
        const ipfw::PipeId pipe = fw.create_pipe({.delay = pair.latency});
        fw.add_rule({.number = group_rule_number++,
                     .src = zones[src_zone].subnet,
                     .dst = zones[dst_zone].subnet,
                     .dir = ipfw::RuleDir::kOut,
                     .action = ipfw::RuleAction::kPipe, .pipe = pipe});
      };
      if (hosts_side(pair.a)) add_group_rule(pair.a, pair.b);
      if (hosts_side(pair.b)) add_group_rule(pair.b, pair.a);
    }
  }
}

void Platform::crash_vnode(std::size_t i) {
  if (!vnode_online_.at(i)) return;
  vnode_online_[i] = false;
  const Ipv4Addr addr = topo_.node_address(i);
  // Order matters: abort sockets first so their final state transitions do
  // not try to transmit from an already-detached address.
  sockets_->abort_endpoints_of(addr);
  network_->detach_address(addr);
}

void Platform::rejoin_vnode(std::size_t i) {
  if (vnode_online_.at(i)) return;
  vnode_online_[i] = true;
  network_->reattach_address(topo_.node_address(i), host_of_vnode(i));
}

void Platform::set_link_down(std::size_t i, bool down) {
  const AccessPipes& ap = access_pipes_.at(i);
  ipfw::Firewall& fw = network_->host(ap.pnode).firewall();
  fw.pipe(ap.up).set_down(down);
  fw.pipe(ap.down).set_down(down);
}

bool Platform::link_down(std::size_t i) const {
  const AccessPipes& ap = access_pipes_.at(i);
  return network_->host(ap.pnode).firewall().pipe(ap.up).is_down();
}

void Platform::set_link_latency_offset(std::size_t i, Duration extra) {
  link_faults_.at(i).extra_latency = extra;
  apply_link_config(i);
}

void Platform::set_link_burst_loss(std::size_t i,
                                   const ipfw::GilbertElliott& ge) {
  link_faults_.at(i).burst = ge;
  link_faults_.at(i).burst_overridden = ge.enabled();
  apply_link_config(i);
}

void Platform::apply_link_config(std::size_t i) {
  const topology::LinkClass& link = topo_.link_of_node(i);
  const LinkFaults& faults = link_faults_.at(i);
  const AccessPipes& ap = access_pipes_.at(i);
  ipfw::Firewall& fw = network_->host(ap.pnode).firewall();

  ipfw::GilbertElliott burst{.p_good_to_bad = link.burst_p_good_bad,
                             .p_bad_to_good = link.burst_p_bad_good,
                             .loss_bad = link.burst_loss_bad};
  if (faults.burst_overridden) burst = faults.burst;

  ipfw::PipeConfig cfg{.bandwidth = link.up,
                       .delay = link.latency + faults.extra_latency,
                       .loss_rate = link.loss_rate,
                       .burst_loss = burst,
                       .queue_limit = config_.vnode_pipe_queue,
                       .fair_queue = true};
  fw.pipe(ap.up).reconfigure(cfg);
  cfg.bandwidth = link.down;
  fw.pipe(ap.down).reconfigure(cfg);
}

void Platform::ping(Ipv4Addr src, Ipv4Addr dst,
                    std::function<void(Duration)> on_rtt, DataSize size) {
  const SimTime start = sim_.now();
  const ipfw::FlowId flow = 0x7f000000ull + ++ping_flow_;
  net::Packet request;
  request.src = src;
  request.dst = dst;
  request.wire_size = size;
  request.flow = flow;
  request.kind = net::PacketKind::kDatagram;
  request.on_deliver = [this, start, size, flow,
                        cb = std::move(on_rtt)](net::Packet&& p) mutable {
    net::Packet reply;
    reply.src = p.dst;
    reply.dst = p.src;
    reply.wire_size = size;
    reply.flow = flow;
    reply.kind = net::PacketKind::kDatagram;
    reply.on_deliver = [this, start, cb = std::move(cb)](net::Packet&&) {
      cb(sim_.now() - start);
    };
    network_->send(std::move(reply));
  };
  network_->send(std::move(request));
}

std::size_t Platform::total_rules() const {
  std::size_t total = 0;
  for (std::size_t p = 0; p < config_.physical_nodes; ++p) {
    total += network_->host(p).firewall().rule_count();
  }
  return total;
}

}  // namespace p2plab::core
