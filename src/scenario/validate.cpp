#include "scenario/validate.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "ipfw/pipe.hpp"
#include "metrics/health.hpp"
#include "metrics/stats.hpp"
#include "scenario/runner.hpp"
#include "scenario/workload.hpp"
#include "topology/parser.hpp"

namespace p2plab::scenario {

namespace {

// Harness ports, clear of the swarm's (tracker 7000, peers 6881).
constexpr std::uint16_t kGoodputPortBase = 5000;
constexpr std::uint16_t kFairPortBase = 5100;
constexpr std::uint16_t kEchoPort = 40001;
constexpr std::uint16_t kLossPort = 40002;
constexpr int kRttRepeats = 3;
constexpr std::uint64_t kRttPayloadBytes = 8;
constexpr std::uint64_t kLossPayloadBytes = 100;

double serialize_secs(Bandwidth bw, double wire_bytes) {
  if (bw.is_unlimited()) return 0.0;
  return wire_bytes * 8.0 / static_cast<double>(bw.count_bps());
}

bool within(double measured, double expected, double tolerance) {
  return std::abs(measured - expected) <=
         tolerance * std::max(expected, 1e-12);
}

}  // namespace

ValidateHarness::ValidateHarness(core::Platform& platform,
                                 const ScenarioSpec& spec)
    : platform_(platform),
      spec_(spec),
      params_(spec.validate),
      topo_(spec.topology.built
                ? *spec.topology.built
                : topology::homogeneous_dsl(spec.vnodes(),
                                            spec.topology.auto_link)) {
  // Node zones in vnode order, clamped to the nodes the workload occupies
  // (an inline topology may be bigger than the harness).
  std::size_t first = 0;
  for (const topology::Zone& z : topo_.zones()) {
    if (z.node_count == 0) continue;  // latency-aggregate container zone
    if (first >= params_.nodes) break;
    zones_.push_back(NodeZone{z.name, first,
                              std::min(z.node_count, params_.nodes - first),
                              z.link});
    first += z.node_count;
  }
}

std::vector<InvariantResult> ValidateHarness::run() {
  std::vector<InvariantResult> out;
  phase_goodput(out);
  phase_rtt(out);
  phase_fairness(out);
  phase_loss(out);
  return out;
}

bool ValidateHarness::await(const std::function<bool()>& done,
                            Duration limit) {
  platform_.run(platform_.now() + limit, done, Duration::sec(1));
  return done();
}

double ValidateHarness::bottleneck_bytes_per_sec(std::size_t src,
                                                 std::size_t dst) const {
  if (!params_.expect_bandwidth.is_unlimited()) {
    return static_cast<double>(params_.expect_bandwidth.count_bps()) / 8.0;
  }
  const topology::LinkClass& ls = topo_.link_of_node(src);
  const topology::LinkClass& ld = topo_.link_of_node(dst);
  double best = std::numeric_limits<double>::infinity();
  if (!ls.up.is_unlimited()) {
    best = std::min(best, static_cast<double>(ls.up.count_bps()) / 8.0);
  }
  if (!ld.down.is_unlimited()) {
    best = std::min(best, static_cast<double>(ld.down.count_bps()) / 8.0);
  }
  return best;
}

void ValidateHarness::start_transfer(std::size_t src, std::size_t dst,
                                     std::uint16_t port, std::uint64_t bytes,
                                     std::size_t slot, TransferProbe* probe,
                                     SimTime at) {
  probe->target_bytes = bytes;
  const std::uint64_t msg_bytes =
      std::max<std::uint64_t>(1, params_.message.count_bytes());
  sim::Simulation& dst_sim = platform_.sim_of_vnode(dst);
  dst_sim.schedule_at(at, [this, dst, port, slot, probe, &dst_sim] {
    listeners_[slot] = platform_.api(dst).listen(
        port, [probe, &dst_sim](sockets::StreamSocketPtr sock) {
          sock->on_message([probe, &dst_sim](sockets::Message&& m) {
            probe->received += m.size.count_bytes();
            if (!probe->done && probe->received >= probe->target_bytes) {
              probe->done = true;
              probe->end = dst_sim.now();
            }
          });
        });
  });
  const Ipv4Addr remote = platform_.api(dst).effective_bind_address();
  sim::Simulation& src_sim = platform_.sim_of_vnode(src);
  src_sim.schedule_at(
      at, [this, src, remote, port, bytes, msg_bytes, probe, &src_sim] {
        probe->start = src_sim.now();
        platform_.api(src).connect(
            remote, port,
            [bytes, msg_bytes](sockets::StreamSocketPtr sock) {
              std::uint64_t left = bytes;
              while (left > 0) {
                const std::uint64_t n = std::min(left, msg_bytes);
                sock->send(
                    sockets::Message{1, DataSize::bytes(n), nullptr});
                left -= n;
              }
              // Close once fully acked: stops the retransmit timer, so
              // later phases measure on a quiet network. The receiver has
              // already counted every byte by then (acks trail delivery).
              sock->on_writable(
                  DataSize::zero(),
                  [weak = std::weak_ptr<sockets::StreamSocket>(sock)] {
                    if (auto s = weak.lock()) s->close();
                  });
            },
            [probe] { probe->failed = true; });
      });
}

void ValidateHarness::phase_goodput(std::vector<InvariantResult>& out) {
  std::vector<std::size_t> zone_idx;
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (zones_[z].count >= 2) zone_idx.push_back(z);
  }
  if (zone_idx.empty()) return;
  transfers_.assign(zone_idx.size(), TransferProbe{});
  listeners_.assign(zone_idx.size(), nullptr);
  const std::uint64_t bytes = params_.transfer.count_bytes();
  const std::uint64_t msg_bytes =
      std::max<std::uint64_t>(1, params_.message.count_bytes());
  const std::uint64_t n_msgs = (bytes + msg_bytes - 1) / msg_bytes;
  const double wire_total =
      static_cast<double>(bytes + n_msgs * sockets::kHeaderBytes);

  // One flow at a time: a goodput measurement needs an otherwise idle
  // network (the fairness phase covers contention).
  for (std::size_t k = 0; k < zone_idx.size(); ++k) {
    const NodeZone& zone = zones_[zone_idx[k]];
    TransferProbe* probe = &transfers_[k];
    start_transfer(zone.first, zone.first + 1,
                   static_cast<std::uint16_t>(kGoodputPortBase + k), bytes,
                   k, probe, platform_.now() + Duration::sec(1));
    const double bw = bottleneck_bytes_per_sec(zone.first, zone.first + 1);
    const double expected_secs =
        std::isfinite(bw) ? wire_total / bw : 1.0;
    await([probe] { return probe->done || probe->failed; },
          Duration::seconds(expected_secs * 3 + 60));

    InvariantResult r;
    r.name = "goodput:" + zone.name;
    r.tolerance = params_.goodput_tolerance;
    if (!std::isfinite(bw)) {
      // Unlimited bottleneck and no expect_bandwidth: no reference rate.
      r.pass = probe->done;
      r.detail = probe->done ? "unlimited bottleneck; transfer completed"
                             : "unlimited bottleneck; transfer stalled";
      out.push_back(std::move(r));
      continue;
    }
    r.expected = static_cast<double>(bytes) * bw / wire_total;
    if (probe->done) {
      const double secs = (probe->end - probe->start).to_seconds();
      r.measured = secs > 0 ? static_cast<double>(bytes) / secs : 0.0;
      r.pass = within(r.measured, r.expected, r.tolerance);
      r.detail = "bytes/s";
    } else {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s; received %llu of %llu bytes",
                    probe->failed ? "connect failed" : "timed out",
                    static_cast<unsigned long long>(probe->received),
                    static_cast<unsigned long long>(bytes));
      r.detail = buf;
    }
    out.push_back(std::move(r));
  }
}

void ValidateHarness::phase_rtt(std::vector<InvariantResult>& out) {
  // Fig 7's check, generalized: one intra-zone pair plus every zone-pair
  // of representatives (capped so huge topologies stay cheap).
  struct PairSpec {
    std::size_t a, b;
  };
  std::vector<PairSpec> pairs;
  if (zones_[0].count >= 2) {
    pairs.push_back({zones_[0].first, zones_[0].first + 1});
  }
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    for (std::size_t j = i + 1;
         j < zones_.size() && pairs.size() < 7; ++j) {
      pairs.push_back({zones_[i].first, zones_[j].first});
    }
  }
  if (pairs.empty()) return;

  std::vector<std::size_t> echo_nodes;
  for (const PairSpec& p : pairs) {
    if (std::find(echo_nodes.begin(), echo_nodes.end(), p.b) ==
        echo_nodes.end()) {
      echo_nodes.push_back(p.b);
    }
  }
  udp_socks_.assign(echo_nodes.size() + pairs.size(), nullptr);
  rtt_probes_.assign(pairs.size(), RttProbe{});
  const SimTime t0 = platform_.now() + Duration::sec(1);

  for (std::size_t e = 0; e < echo_nodes.size(); ++e) {
    const std::size_t node = echo_nodes[e];
    platform_.sim_of_vnode(node).schedule_at(t0, [this, node, e] {
      auto sock = platform_.api(node).udp_bind(kEchoPort);
      auto* raw = sock.get();
      raw->on_message(
          [raw](sockets::Message&& m, Ipv4Addr from, std::uint16_t port) {
            raw->send_to(from, port, std::move(m));
          });
      udp_socks_[e] = std::move(sock);
    });
  }
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const std::size_t a = pairs[k].a;
    const Ipv4Addr b_addr =
        platform_.api(pairs[k].b).effective_bind_address();
    const std::size_t slot = echo_nodes.size() + k;
    RttProbe* probe = &rtt_probes_[k];
    sim::Simulation& sim = platform_.sim_of_vnode(a);
    sim.schedule_at(t0, [this, a, b_addr, slot, probe, &sim] {
      auto sock = platform_.api(a).udp_bind(0);
      auto* raw = sock.get();
      auto fire = [probe, raw, b_addr, &sim] {
        probe->sent_at = sim.now();
        raw->send_to(
            b_addr, kEchoPort,
            sockets::Message{2, DataSize::bytes(kRttPayloadBytes), nullptr});
      };
      raw->on_message([probe, fire, &sim](sockets::Message&&, Ipv4Addr,
                                          std::uint16_t) {
        probe->sum_s += (sim.now() - probe->sent_at).to_seconds();
        if (++probe->replies >= kRttRepeats) {
          probe->done = true;
          return;
        }
        fire();
      });
      fire();
      udp_socks_[slot] = std::move(sock);
    });
  }
  await(
      [this] {
        for (const RttProbe& p : rtt_probes_) {
          if (!p.done) return false;
        }
        return true;
      },
      Duration::sec(120));

  const double wire = static_cast<double>(kRttPayloadBytes +
                                          sockets::kUdpHeaderBytes);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const std::size_t a = pairs[k].a;
    const std::size_t b = pairs[k].b;
    const topology::LinkClass& la = topo_.link_of_node(a);
    const topology::LinkClass& lb = topo_.link_of_node(b);
    const Duration inter =
        topo_.inter_zone_latency(topo_.node_address(a),
                                 topo_.node_address(b))
            .value_or(Duration::zero());
    // Additive path delay both ways plus the datagram's serialization at
    // all four access pipes it crosses.
    const double expected_s =
        2.0 * (la.latency + lb.latency + inter).to_seconds() +
        serialize_secs(la.up, wire) + serialize_secs(lb.down, wire) +
        serialize_secs(lb.up, wire) + serialize_secs(la.down, wire);
    auto zone_name = [this](std::size_t node) -> const std::string& {
      for (const NodeZone& z : zones_) {
        if (node >= z.first && node < z.first + z.count) return z.name;
      }
      return zones_.front().name;
    };
    InvariantResult r;
    r.name = "rtt:" + zone_name(a) + "-" + zone_name(b);
    r.expected = expected_s * 1e3;
    r.tolerance = params_.rtt_tolerance;
    const RttProbe& probe = rtt_probes_[k];
    if (probe.done) {
      r.measured = probe.sum_s / kRttRepeats * 1e3;
      r.pass = within(r.measured, r.expected, r.tolerance);
      r.detail = "ms";
    } else {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%d of %d echo replies",
                    probe.replies, kRttRepeats);
      r.detail = buf;
    }
    out.push_back(std::move(r));
  }
}

void ValidateHarness::phase_fairness(std::vector<InvariantResult>& out) {
  const std::size_t flows = std::min(params_.flows, zones_[0].count);
  if (flows < 1) return;
  // Sources are the head of zone 0; the sink sits behind its own access
  // link (first node of zone 1, or past the sources when there is only
  // one zone — the parser guarantees nodes > flows).
  const std::size_t sink =
      zones_.size() > 1 ? zones_[1].first : zones_[0].first + flows;
  transfers_.assign(flows, TransferProbe{});
  listeners_.assign(flows, nullptr);
  const std::uint64_t bytes = params_.transfer.count_bytes();
  const std::uint64_t msg_bytes =
      std::max<std::uint64_t>(1, params_.message.count_bytes());
  const std::uint64_t n_msgs = (bytes + msg_bytes - 1) / msg_bytes;
  const double wire_total =
      static_cast<double>(bytes + n_msgs * sockets::kHeaderBytes);

  const SimTime at = platform_.now() + Duration::sec(1);
  for (std::size_t i = 0; i < flows; ++i) {
    start_transfer(zones_[0].first + i, sink,
                   static_cast<std::uint16_t>(kFairPortBase + i), bytes, i,
                   &transfers_[i], at);
  }
  const double bw = bottleneck_bytes_per_sec(zones_[0].first, sink);
  const double expected_secs =
      std::isfinite(bw) ? static_cast<double>(flows) * wire_total / bw : 1.0;
  await(
      [this] {
        for (const TransferProbe& p : transfers_) {
          if (!p.done && !p.failed) return false;
        }
        return true;
      },
      Duration::seconds(expected_secs * 3 + 120));

  double sum = 0, sum_sq = 0;
  std::size_t completed = 0;
  for (const TransferProbe& p : transfers_) {
    if (!p.done) continue;
    const double secs = (p.end - p.start).to_seconds();
    const double rate = secs > 0 ? static_cast<double>(bytes) / secs : 0.0;
    sum += rate;
    sum_sq += rate * rate;
    ++completed;
  }
  InvariantResult r;
  r.name = "fairness:jain";
  r.expected = 1.0;
  r.tolerance = params_.jain_min;  // absolute floor, not a relative band
  if (completed == flows && sum_sq > 0) {
    r.measured =
        sum * sum / (static_cast<double>(flows) * sum_sq);
    r.pass = r.measured >= params_.jain_min;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "index over %zu flows (floor %.3g)",
                  flows, params_.jain_min);
    r.detail = buf;
  } else {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "only %zu of %zu flows completed",
                  completed, flows);
    r.detail = buf;
  }
  out.push_back(std::move(r));
}

void ValidateHarness::phase_loss(std::vector<InvariantResult>& out) {
  if (params_.loss_datagrams == 0) return;
  const std::size_t src = 0;
  const std::size_t dst = params_.nodes - 1;
  ipfw::GilbertElliott ge;
  ge.p_good_to_bad = params_.ge_p_good_bad;
  ge.p_bad_to_good = params_.ge_p_bad_good;
  ge.loss_good = 0.0;
  ge.loss_bad = params_.ge_loss_bad;

  transfers_.clear();
  listeners_.clear();
  rtt_probes_.clear();
  udp_socks_.assign(2, nullptr);
  loss_received_ = 0;

  const std::uint64_t total = params_.loss_datagrams;
  const SimTime t0 = platform_.now() + Duration::sec(1);
  const Ipv4Addr dst_addr = platform_.api(dst).effective_bind_address();

  platform_.sim_of_vnode(dst).schedule_at(t0, [this, dst, ge] {
    auto sock = platform_.api(dst).udp_bind(kLossPort);
    sock->on_message([this](sockets::Message&&, Ipv4Addr, std::uint16_t) {
      ++loss_received_;
    });
    udp_socks_[0] = std::move(sock);
    // The overlay switches on from the link's own simulation, like the
    // fault injector's burst faults.
    platform_.set_link_burst_loss(dst, ge);
  });
  // The whole batch fits the 8 MiB access-pipe queue, so nothing tail-drops
  // for a reason other than the loss models under test.
  platform_.sim_of_vnode(src).schedule_at(
      t0 + Duration::ms(10), [this, src, dst_addr, total] {
        auto sock = platform_.api(src).udp_bind(0);
        for (std::uint64_t i = 0; i < total; ++i) {
          sock->send_to(
              dst_addr, kLossPort,
              sockets::Message{3, DataSize::bytes(kLossPayloadBytes),
                               nullptr});
        }
        udp_socks_[1] = std::move(sock);
      });

  const topology::LinkClass& ls = topo_.link_of_node(src);
  const topology::LinkClass& ld = topo_.link_of_node(dst);
  const double wire =
      static_cast<double>(kLossPayloadBytes + sockets::kUdpHeaderBytes);
  const double batch = wire * static_cast<double>(total);
  const double drain_s =
      serialize_secs(ls.up, batch) + serialize_secs(ld.down, batch) + 5.0;
  platform_.run(platform_.now() + Duration::sec(1) +
                Duration::seconds(drain_s));
  // Restore the topology's configured loss for whoever runs next.
  platform_.sim_of_vnode(dst).schedule_at(
      platform_.now() + Duration::ms(1),
      [this, dst] { platform_.set_link_burst_loss(dst, {}); });
  platform_.run(platform_.now() + Duration::ms(10));

  const double measured_loss =
      1.0 - static_cast<double>(loss_received_) / static_cast<double>(total);
  const double denom = params_.ge_p_good_bad + params_.ge_p_bad_good;
  const double pi_bad = denom > 0 ? params_.ge_p_good_bad / denom : 0.0;
  const double ge_loss = pi_bad * params_.ge_loss_bad;
  const double expected_loss =
      1.0 - (1.0 - ls.loss_rate) * (1.0 - ld.loss_rate) * (1.0 - ge_loss);

  InvariantResult r;
  r.name = "loss:gilbert";
  r.measured = measured_loss;
  r.expected = expected_loss;
  r.tolerance = params_.loss_tolerance;
  r.pass = within(measured_loss, expected_loss, params_.loss_tolerance);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%llu of %llu datagrams delivered",
                static_cast<unsigned long long>(loss_received_),
                static_cast<unsigned long long>(total));
  r.detail = buf;
  out.push_back(std::move(r));
}

// ---------------------------------------------------------------------------
// The `validate` workload plugin: the emulator-accuracy harness wrapped
// for the registry.

namespace {

void write_accuracy_json(const ScenarioSpec& spec,
                         const std::vector<InvariantResult>& results,
                         bool pass) {
  const std::string& name = spec.outputs.accuracy_json;
  if (name.empty()) return;
  char buf[160];
  std::string json = "{\"scenario\": \"" + spec.name + "\", \"pass\": " +
                     (pass ? "1" : "0") + ", \"invariants\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const InvariantResult& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"pass\": %d, \"measured\": %.15g, "
                  "\"expected\": %.15g, \"tolerance\": %.15g}",
                  i > 0 ? ", " : "", r.name.c_str(), r.pass ? 1 : 0,
                  r.measured, r.expected, r.tolerance);
    json += buf;
  }
  json += "]}";
  std::printf("# %s %s\n", name.c_str(), json.c_str());
  if (const char* dir = std::getenv("P2PLAB_RESULTS_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr,
                   "# P2PLAB_RESULTS_DIR=%s is not writable; %s only on "
                   "stdout\n", dir, name.c_str());
    }
  }
}

class ValidateWorkload final : public Workload {
 public:
  explicit ValidateWorkload(const ScenarioSpec& spec) : spec_(spec) {}

  void setup(ExperimentRunner& runner) override {
    runner.platform().bind_metrics(runner.registry());
  }

  int execute(ExperimentRunner& runner) override {
    core::Platform& platform = runner.platform();
    const auto wall_start = std::chrono::steady_clock::now();
    ValidateHarness harness(platform, spec_);
    const std::vector<InvariantResult> results = harness.run();
    runner.set_end_of_run(platform.now());
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    int failures = 0;
    for (const InvariantResult& r : results) {
      std::printf("# invariant %-22s %-4s measured=%-12.6g expected=%-12.6g "
                  "tolerance=%.3g%s%s\n",
                  r.name.c_str(), r.pass ? "ok" : "FAIL", r.measured,
                  r.expected, r.tolerance, r.detail.empty() ? "" : "  ",
                  r.detail.c_str());
      failures += !r.pass;
    }
    std::printf("# accuracy: %zu/%zu invariants within tolerance at "
                "t=%.0f s; %llu events\n",
                results.size() - static_cast<std::size_t>(failures),
                results.size(), runner.end_of_run().to_seconds(),
                static_cast<unsigned long long>(
                    platform.dispatched_events()));

    write_accuracy_json(spec_, results, failures == 0);
    runner.write_bench_json(wall_seconds, "flows",
                            static_cast<double>(spec_.validate.flows));
    runner.write_profile_outputs();
    if (spec_.outputs.report) {
      metrics::print_registry_report(runner.registry());
    }
    return failures == 0 ? 0 : 1;
  }

 private:
  const ScenarioSpec& spec_;
};

class ValidatePlugin final : public WorkloadPlugin {
 public:
  const char* name() const override { return "validate"; }
  const char* description() const override {
    return "emulator-accuracy harness: goodput, RTT, fairness, loss "
           "invariants";
  }

  std::vector<const char*> workload_keys() const override {
    return {"nodes",          "flows",         "transfer",
            "message",        "loss_datagrams", "ge_p_good_bad",
            "ge_p_bad_good",  "ge_loss_bad",   "goodput_tolerance",
            "rtt_tolerance",  "loss_tolerance", "jain_min",
            "expect_bandwidth"};
  }
  std::vector<const char*> output_keys() const override {
    return {"accuracy_json"};
  }

  bool parse_workload(ParamReader& reader,
                      ScenarioSpec& spec) const override {
    bool nodes_ok = true;
    const KvEntry* nodes_entry = nullptr;
    bool ok = reader.take_count("nodes",
                                [&](std::uint64_t v, const KvEntry& entry) {
                                  spec.validate.nodes =
                                      static_cast<std::size_t>(v);
                                  nodes_entry = &entry;
                                  nodes_ok = v >= 3;
                                });
    if (ok && !nodes_ok) {
      return reader.fail(*nodes_entry, "validate needs nodes >= 3");
    }
    bool flows_ok = true;
    const KvEntry* flows_entry = nullptr;
    ok = ok && reader.take_count("flows",
                                 [&](std::uint64_t v, const KvEntry& entry) {
                                   spec.validate.flows =
                                       static_cast<std::size_t>(v);
                                   flows_entry = &entry;
                                   flows_ok = v >= 1;
                                 });
    if (ok && !flows_ok) {
      return reader.fail(*flows_entry, "validate needs flows >= 1");
    }
    ok = ok && reader.take_size("transfer", [&](DataSize v) {
      spec.validate.transfer = v;
    });
    ok = ok && reader.take_size("message", [&](DataSize v) {
      spec.validate.message = v;
    });
    ok = ok && reader.take_count("loss_datagrams",
                                 [&](std::uint64_t v, const KvEntry&) {
                                   spec.validate.loss_datagrams =
                                       static_cast<std::size_t>(v);
                                 });
    ok = ok && reader.take_probability("ge_p_good_bad",
                                       &spec.validate.ge_p_good_bad);
    ok = ok && reader.take_probability("ge_p_bad_good",
                                       &spec.validate.ge_p_bad_good);
    ok = ok && reader.take_probability("ge_loss_bad",
                                       &spec.validate.ge_loss_bad);
    ok = ok && reader.take_probability("goodput_tolerance",
                                       &spec.validate.goodput_tolerance);
    ok = ok && reader.take_probability("rtt_tolerance",
                                       &spec.validate.rtt_tolerance);
    ok = ok && reader.take_probability("loss_tolerance",
                                       &spec.validate.loss_tolerance);
    ok = ok && reader.take_probability("jain_min",
                                       &spec.validate.jain_min);
    if (!ok) return false;
    if (KvEntry* entry = reader.take("expect_bandwidth")) {
      const auto bw = topology::parse_bandwidth(entry->value);
      if (!bw) {
        return reader.fail(*entry, "bad bandwidth '" + entry->value +
                                       "' for expect_bandwidth");
      }
      spec.validate.expect_bandwidth = *bw;
    }
    if (spec.validate.flows + 1 > spec.validate.nodes) {
      const KvEntry* blame =
          flows_entry != nullptr ? flows_entry : nodes_entry;
      return reader.fail_at(
          blame != nullptr ? blame->source : "[workload]",
          "validate needs nodes > flows (a fairness sink besides "
          "the sources)");
    }
    return true;
  }

  bool parse_outputs(ParamReader& reader, ScenarioSpec& spec) const override {
    return reader.take_string("accuracy_json", &spec.outputs.accuracy_json);
  }

  std::size_t vnodes(const ScenarioSpec& spec) const override {
    return spec.validate.nodes;
  }
  bool classic_only() const override { return true; }

  std::unique_ptr<Workload> create(const ScenarioSpec& spec) const override {
    return std::make_unique<ValidateWorkload>(spec);
  }
};

}  // namespace

void register_validate_workload(WorkloadRegistry& registry) {
  registry.add(std::make_unique<ValidatePlugin>());
}

}  // namespace p2plab::scenario
