// The workload plugin registry and the shared typed parameter readers.
#include "scenario/workload.hpp"

#include <algorithm>
#include <charconv>

#include "common/assert.hpp"
#include "fault/plan.hpp"
#include "scenario/parser.hpp"

namespace p2plab::scenario {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_probability(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 0 ||
      value > 1) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "on" || text == "true" || text == "1") return true;
  if (text == "off" || text == "false" || text == "0") return false;
  return std::nullopt;
}

bool ParamReader::fail(const KvEntry& entry, const std::string& message) {
  return fail_at(entry.source, message);
}

bool ParamReader::fail_at(const std::string& source,
                          const std::string& message) {
  error_ = source + ": " + message;
  return false;
}

bool ParamReader::take_count(const char* key, const CountSetter& setter) {
  if (KvEntry* entry = section_.take(key)) {
    const auto value = parse_u64(entry->value);
    if (!value) {
      return fail(*entry,
                  "bad count '" + entry->value + "' for " + std::string(key));
    }
    setter(*value, *entry);
  }
  return true;
}

bool ParamReader::take_size(const char* key, const SizeSetter& setter) {
  if (KvEntry* entry = section_.take(key)) {
    const auto value = parse_data_size(entry->value);
    if (!value) {
      return fail(*entry, "bad size '" + entry->value + "' for " +
                              std::string(key) + " (use k/M/G suffixes)");
    }
    setter(*value);
  }
  return true;
}

bool ParamReader::take_duration(const char* key,
                                const DurationSetter& setter) {
  if (KvEntry* entry = section_.take(key)) {
    const auto value = fault::parse_scenario_duration(entry->value);
    if (!value) {
      return fail(*entry, "bad duration '" + entry->value + "' for " +
                              std::string(key));
    }
    setter(*value, *entry);
  }
  return true;
}

bool ParamReader::take_bool(const char* key, const BoolSetter& setter) {
  if (KvEntry* entry = section_.take(key)) {
    const auto value = parse_bool(entry->value);
    if (!value) {
      return fail(*entry, "bad value '" + entry->value + "' for " +
                              std::string(key) + " (expected on|off)");
    }
    setter(*value);
  }
  return true;
}

bool ParamReader::take_string(const char* key, std::string* out) {
  if (KvEntry* entry = section_.take(key)) *out = entry->value;
  return true;
}

bool ParamReader::take_probability(const char* key, double* out) {
  if (KvEntry* entry = section_.take(key)) {
    const auto value = parse_probability(entry->value);
    if (!value) {
      return fail(*entry, "bad value '" + entry->value + "' for " +
                              std::string(key) + " (expected 0..1)");
    }
    *out = *value;
  }
  return true;
}

WorkloadRegistry::WorkloadRegistry() {
  register_swarm_workload(*this);
  register_ping_sweep_workload(*this);
  register_validate_workload(*this);
  register_gossip_workload(*this);
}

const WorkloadRegistry& WorkloadRegistry::instance() {
  static const WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(std::unique_ptr<const WorkloadPlugin> plugin) {
  P2PLAB_ASSERT_MSG(find(plugin->name()) == nullptr,
                    "duplicate workload plugin name");
  sorted_.push_back(plugin.get());
  owned_.push_back(std::move(plugin));
  std::sort(sorted_.begin(), sorted_.end(),
            [](const WorkloadPlugin* a, const WorkloadPlugin* b) {
              return std::string_view(a->name()) < b->name();
            });
}

const WorkloadPlugin* WorkloadRegistry::find(std::string_view name) const {
  for (const WorkloadPlugin* plugin : sorted_) {
    if (name == plugin->name()) return plugin;
  }
  return nullptr;
}

const WorkloadPlugin& WorkloadRegistry::require(std::string_view name) const {
  const WorkloadPlugin* plugin = find(name);
  P2PLAB_ASSERT_MSG(plugin != nullptr, "unknown workload type");
  return *plugin;
}

std::string WorkloadRegistry::joined_names(const char* sep) const {
  std::string out;
  for (const WorkloadPlugin* plugin : sorted_) {
    if (!out.empty()) out += sep;
    out += plugin->name();
  }
  return out;
}

std::string WorkloadRegistry::fault_capable_names() const {
  std::string out;
  for (const WorkloadPlugin* plugin : sorted_) {
    if (!plugin->supports_faults()) continue;
    if (!out.empty()) out += " or ";
    out += plugin->name();
  }
  return out;
}

std::string WorkloadRegistry::survivors_stop_names() const {
  std::string out;
  for (const WorkloadPlugin* plugin : sorted_) {
    if (!plugin->supports_survivors_stop()) continue;
    if (!out.empty()) out += " or ";
    out += plugin->name();
  }
  return out;
}

}  // namespace p2plab::scenario
