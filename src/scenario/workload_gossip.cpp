// The `gossip` workload plugin: SWIM membership under churn (src/gossip).
// The run is time-bounded (stop=time); what the experiment measures is
// not completion but *detection* — how fast the cluster confirms each
// scheduled crash, and how often it wrongly confirms a node that was
// online (the false-positive rate the SWIM paper bounds via indirect
// probing + suspicion).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "gossip/cluster.hpp"
#include "metrics/health.hpp"
#include "metrics/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/workload.hpp"

namespace p2plab::scenario {

namespace {

/// One scheduled failure, with the instant the victim is back (rejoin
/// time, or +inf for permanent departures). Confirms inside the window
/// are true detections; confirms outside every window are false
/// positives.
struct FailureWindow {
  std::uint32_t victim = 0;
  SimTime down;
  SimTime up;  // SimTime::from_ns(max) when the victim never returns
};

std::vector<FailureWindow> failure_windows(const fault::FaultPlan& plan,
                                           std::size_t nodes) {
  const SimTime never =
      SimTime::from_ns(std::numeric_limits<std::int64_t>::max());
  std::vector<FailureWindow> windows;
  for (const fault::FaultSpec& spec : plan.specs()) {
    if (spec.kind != fault::FaultKind::kCrash &&
        spec.kind != fault::FaultKind::kLeave) {
      continue;
    }
    if (spec.node >= nodes) continue;
    FailureWindow w;
    w.victim = static_cast<std::uint32_t>(spec.node);
    w.down = spec.at;
    w.up = spec.kind == fault::FaultKind::kCrash && spec.rejoin
               ? spec.at + spec.duration
               : never;
    windows.push_back(w);
  }
  return windows;
}

class GossipWorkload final : public Workload {
 public:
  explicit GossipWorkload(const ScenarioSpec& spec) : spec_(spec) {}

  void setup(ExperimentRunner& runner) override;
  int execute(ExperimentRunner& runner) override;

 private:
  void setup_faults(ExperimentRunner& runner);
  void write_outputs(ExperimentRunner& runner, double wall_seconds,
                     const std::vector<gossip::ConfirmRecord>& confirms,
                     std::size_t false_confirms);

  const ScenarioSpec& spec_;
  std::unique_ptr<gossip::Cluster> cluster_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

void GossipWorkload::setup(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  // Platform metrics first: registry_of_vnode (the per-shard registries
  // the cluster binds its gossip.* counters to) exists only after this.
  platform.bind_metrics(runner.registry());
  cluster_ = std::make_unique<gossip::Cluster>(platform, spec_.gossip);
  cluster_->bind_metrics();
  setup_faults(runner);
  cluster_->start();
}

void GossipWorkload::setup_faults(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  if (spec_.faults.empty()) return;

  fault::FaultPlan plan;
  if (spec_.faults.churn.enabled) {
    const ChurnDirective& d = spec_.faults.churn;
    Rng churn_rng = platform.rng().fork(d.rng_stream);
    fault::ChurnConfig churn;
    // Default victim range spares the introducer (node 0): with it down,
    // rejoining members could not re-enter and every detection after the
    // outage would measure the join path instead of the gossip path.
    churn.first_node = d.first_node.value_or(1);
    churn.last_node = d.last_node.value_or(spec_.gossip.nodes - 1);
    churn.fraction = d.fraction;
    churn.window_start = SimTime::zero() + d.window_start;
    churn.window_end = SimTime::zero() + d.window_end;
    churn.rejoin_fraction = d.rejoin_fraction;
    churn.rejoin_min = d.rejoin_min;
    churn.rejoin_max = d.rejoin_max;
    churn.leave_fraction = d.leave_fraction;
    plan = fault::FaultPlan::churn(churn, churn_rng);
  }
  plan.append(spec_.faults.plan);
  plan.sort();

  std::size_t node_failures = 0;
  for (const fault::FaultSpec& fault_spec : plan.specs()) {
    node_failures += fault_spec.kind == fault::FaultKind::kCrash ||
                     fault_spec.kind == fault::FaultKind::kLeave;
  }
  std::printf("# plan: %zu faults, %zu node failures (%zu members)\n",
              plan.size(), node_failures, spec_.gossip.nodes);

  injector_ = std::make_unique<fault::FaultInjector>(platform,
                                                     std::move(plan));
  injector_->bind_metrics(runner.registry());
  gossip::Cluster* cluster = cluster_.get();
  injector_->set_node_hooks(fault::NodeHooks{
      .on_crash = [cluster](std::size_t v) {
        if (v < cluster->size()) cluster->node(v).crash();
      },
      .on_leave = [cluster](std::size_t v) {
        if (v < cluster->size()) cluster->node(v).stop();
      },
      .on_rejoin = [cluster](std::size_t v) {
        if (v < cluster->size()) cluster->node(v).restart();
      }});
  injector_->arm();
}

int GossipWorkload::execute(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  const auto wall_start = std::chrono::steady_clock::now();
  platform.run(SimTime::zero() + spec_.engine.run_for);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  runner.set_end_of_run(platform.now());

  const std::vector<gossip::ConfirmRecord> confirms =
      cluster_->confirm_log();
  const std::vector<FailureWindow> windows =
      injector_ ? failure_windows(injector_->plan(), cluster_->size())
                : std::vector<FailureWindow>{};
  // A confirm is false iff its victim was online when it fired — that is,
  // it falls inside none of the victim's downtime windows.
  std::size_t false_confirms = 0;
  for (const gossip::ConfirmRecord& record : confirms) {
    bool down = false;
    for (const FailureWindow& w : windows) {
      down |= w.victim == record.victim && record.at > w.down &&
              record.at < w.up;
    }
    false_confirms += !down;
  }

  std::size_t joined = 0;
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    joined += cluster_->node(i).joined();
  }
  std::printf("# gossip: %zu/%zu members joined at t=%.0f s; %zu confirms "
              "(%zu false); %llu events; %zu pnodes x %zu vnodes\n",
              joined, cluster_->size(), runner.end_of_run().to_seconds(),
              confirms.size(), false_confirms,
              static_cast<unsigned long long>(platform.dispatched_events()),
              platform.physical_node_count(), platform.folding_ratio());

  int failures = 0;
  if (spec_.engine.check_invariants) {
    auto check = [&](bool ok, const char* what) {
      std::printf("# check %-46s %s\n", what, ok ? "ok" : "FAIL");
      if (!ok) ++failures;
    };
    if (injector_) {
      check(injector_->stats().unrecovered() == 0,
            "every injected fault recovered");
      std::printf("# faults: injected=%llu recovered=%llu\n",
                  static_cast<unsigned long long>(
                      injector_->stats().injected),
                  static_cast<unsigned long long>(
                      injector_->stats().recovered));
    }
    // Stop every member and the event queue must drain — a leaked tick
    // or join retry would keep it alive forever.
    cluster_->schedule_halt_all();
    check(platform.run(platform.now() + Duration::sec(700)) ==
              core::Platform::RunResult::kDrained,
          "event queue drains after halt (no wedged timers)");
  }

  write_outputs(runner, wall_seconds, confirms, false_confirms);
  return failures == 0 ? 0 : 1;
}

void GossipWorkload::write_outputs(
    ExperimentRunner& runner, double wall_seconds,
    const std::vector<gossip::ConfirmRecord>& confirms,
    std::size_t false_confirms) {
  const OutputsSection& out = spec_.outputs;
  metrics::Registry& reg = runner.registry();

  if (!out.detection_csv.empty()) {
    // One row per scheduled failure: the cluster-wide first confirm
    // inside the downtime window, or -1 when nobody noticed before the
    // victim returned (or the run ended).
    metrics::CsvWriter csv(out.detection_csv,
                           {"victim", "crash_s", "first_confirm_s",
                            "detect_latency_s"});
    csv.comment("seed=" + std::to_string(spec_.engine.seed));
    const std::vector<FailureWindow> windows =
        injector_ ? failure_windows(injector_->plan(), cluster_->size())
                  : std::vector<FailureWindow>{};
    for (const FailureWindow& w : windows) {
      double first_confirm = -1.0;
      for (const gossip::ConfirmRecord& record : confirms) {
        if (record.victim == w.victim && record.at > w.down &&
            record.at < w.up) {
          first_confirm = record.at.to_seconds();
          break;  // confirm_log is time-sorted
        }
      }
      csv.row({static_cast<double>(w.victim), w.down.to_seconds(),
               first_confirm,
               first_confirm >= 0 ? first_confirm - w.down.to_seconds()
                                  : -1.0});
    }
  }

  if (!out.fp_summary.empty()) {
    metrics::CsvWriter csv(out.fp_summary,
                           {"confirms", "false_confirms",
                            "false_positive_rate", "suspects", "refutations",
                            "pings", "ping_reqs"});
    const double total = static_cast<double>(confirms.size());
    csv.row({total, static_cast<double>(false_confirms),
             total > 0 ? static_cast<double>(false_confirms) / total : 0.0,
             reg.value("gossip.suspects"), reg.value("gossip.refutations"),
             reg.value("gossip.pings"), reg.value("gossip.ping_reqs")});
  }

  runner.write_bench_json(
      wall_seconds, "nodes", static_cast<double>(spec_.gossip.nodes),
      {{"gossip.pings", reg.value("gossip.pings")},
       {"gossip.ping_reqs", reg.value("gossip.ping_reqs")},
       {"gossip.suspects", reg.value("gossip.suspects")},
       {"gossip.confirms", static_cast<double>(confirms.size())},
       {"gossip.refutations", reg.value("gossip.refutations")},
       {"gossip.false_positives", static_cast<double>(false_confirms)}});
  if (!out.trace_file.empty()) {
    runner.platform().flush_trace_to_results(out.trace_file.c_str());
  }
  runner.write_profile_outputs();
  if (out.report) metrics::print_registry_report(reg);
}

class GossipPlugin final : public WorkloadPlugin {
 public:
  const char* name() const override { return "gossip"; }
  const char* description() const override {
    return "SWIM membership under churn: detection latency and "
           "false-positive rate";
  }

  std::vector<const char*> workload_keys() const override {
    return {"nodes",    "period",        "ping_timeout", "suspect_timeout",
            "indirect", "piggyback",     "join_interval"};
  }
  std::vector<const char*> output_keys() const override {
    return {"detection_csv", "fp_summary", "trace"};
  }

  bool parse_workload(ParamReader& reader,
                      ScenarioSpec& spec) const override {
    bool nodes_ok = true;
    const KvEntry* nodes_entry = nullptr;
    bool ok = reader.take_count("nodes",
                                [&](std::uint64_t v, const KvEntry& entry) {
                                  spec.gossip.nodes =
                                      static_cast<std::size_t>(v);
                                  nodes_entry = &entry;
                                  nodes_ok = v >= 2;
                                });
    if (ok && !nodes_ok) {
      return reader.fail(*nodes_entry, "gossip needs nodes >= 2");
    }
    auto take_positive = [&](const char* key, Duration* target) {
      const KvEntry* seen = nullptr;
      if (!reader.take_duration(key, [&](Duration v, const KvEntry& entry) {
            *target = v;
            seen = &entry;
          })) {
        return false;
      }
      if (seen != nullptr && *target <= Duration::zero()) {
        return reader.fail(*seen,
                           std::string(key) + " must be positive");
      }
      return true;
    };
    ok = ok && take_positive("period", &spec.gossip.period);
    ok = ok && take_positive("ping_timeout", &spec.gossip.ping_timeout);
    ok = ok && take_positive("suspect_timeout", &spec.gossip.suspect_timeout);
    const KvEntry* indirect_entry = nullptr;
    ok = ok && reader.take_count("indirect",
                                 [&](std::uint64_t v, const KvEntry& entry) {
                                   spec.gossip.indirect_k =
                                       static_cast<std::size_t>(v);
                                   indirect_entry = &entry;
                                 });
    if (ok && indirect_entry != nullptr && spec.gossip.indirect_k == 0) {
      return reader.fail(*indirect_entry, "indirect must be positive");
    }
    const KvEntry* piggyback_entry = nullptr;
    ok = ok && reader.take_count("piggyback",
                                 [&](std::uint64_t v, const KvEntry& entry) {
                                   spec.gossip.piggyback =
                                       static_cast<std::size_t>(v);
                                   piggyback_entry = &entry;
                                 });
    if (ok && piggyback_entry != nullptr && spec.gossip.piggyback == 0) {
      return reader.fail(*piggyback_entry, "piggyback must be positive");
    }
    ok = ok && reader.take_duration("join_interval",
                                    [&](Duration v, const KvEntry&) {
                                      spec.gossip.join_interval = v;
                                    });
    return ok;
  }

  bool parse_outputs(ParamReader& reader, ScenarioSpec& spec) const override {
    bool ok = reader.take_string("detection_csv",
                                 &spec.outputs.detection_csv);
    ok = ok && reader.take_string("fp_summary", &spec.outputs.fp_summary);
    ok = ok && reader.take_string("trace", &spec.outputs.trace_file);
    return ok;
  }

  std::string validate_spec(const ScenarioSpec& spec) const override {
    if (spec.engine.stop != StopMode::kTime) {
      return "gossip requires stop=time (membership has no completion; "
             "run_for bounds the experiment)";
    }
    return "";
  }

  std::size_t vnodes(const ScenarioSpec& spec) const override {
    return spec.gossip.nodes;
  }
  bool supports_faults() const override { return true; }

  std::unique_ptr<Workload> create(const ScenarioSpec& spec) const override {
    return std::make_unique<GossipWorkload>(spec);
  }
};

}  // namespace

void register_gossip_workload(WorkloadRegistry& registry) {
  registry.add(std::make_unique<GossipPlugin>());
}

}  // namespace p2plab::scenario
