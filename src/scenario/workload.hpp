// Workload plugins: the registry keyed by the `.scn` `[workload] type`
// name that supplies everything the scenario layer needs to parse, size,
// validate and run one workload.
//
// Each plugin owns (a) its parameter surface — the [workload] and
// [outputs] keys it consumes, read through the shared ParamReader so
// `--set workload.*` overrides and the golden "line N: ..." error shapes
// behave identically for every workload — and (b) a factory for the
// Workload object the ExperimentRunner drives. The runner carries zero
// workload-specific branches: adding a protocol (Chord, a relay service)
// is one plugin .cpp plus one registration line, and never touches
// runner.cpp again.
//
// Registration is explicit: the registry constructor calls one named
// register_*_workload() function per built-in. Self-registration from
// global constructors in a static library is linker-droppable; an explicit
// list cannot silently lose a plugin.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace p2plab::scenario {

struct ScenarioSpec;
class ExperimentRunner;

/// One `key value` line of a [workload]/[engine]/[outputs] section (or a
/// `--set section.key=value` override), with the source string the golden
/// error messages blame.
struct KvEntry {
  std::string key;
  std::string value;
  std::string source;  // "line 12" or "--set workload.clients=8"
  bool consumed = false;
};

struct KvSection {
  const char* name = "";
  std::vector<KvEntry> entries;

  KvEntry* find(std::string_view key) {
    for (KvEntry& entry : entries) {
      if (entry.key == key) return &entry;
    }
    return nullptr;
  }
  KvEntry* take(std::string_view key) {
    KvEntry* entry = find(key);
    if (entry != nullptr) entry->consumed = true;
    return entry;
  }
  const KvEntry* first_unconsumed() const {
    for (const KvEntry& entry : entries) {
      if (!entry.consumed) return &entry;
    }
    return nullptr;
  }
};

// Shared value parsers (also used by the scenario parser's non-kv
// directives). All return nullopt on malformed input.
std::optional<std::uint64_t> parse_u64(std::string_view text);
std::optional<double> parse_probability(std::string_view text);
std::optional<bool> parse_bool(std::string_view text);

/// Typed readers over one KvSection. Every error names the source (file
/// line or --set flag) exactly like the parser always has; a false return
/// means `error()` is set and parsing must stop.
class ParamReader {
 public:
  ParamReader(KvSection& section, std::string& error)
      : section_(section), error_(error) {}

  using CountSetter = std::function<void(std::uint64_t, const KvEntry&)>;
  using SizeSetter = std::function<void(DataSize)>;
  using DurationSetter = std::function<void(Duration, const KvEntry&)>;
  using BoolSetter = std::function<void(bool)>;

  bool take_count(const char* key, const CountSetter& setter);
  bool take_size(const char* key, const SizeSetter& setter);
  bool take_duration(const char* key, const DurationSetter& setter);
  bool take_bool(const char* key, const BoolSetter& setter);
  bool take_string(const char* key, std::string* out);
  bool take_probability(const char* key, double* out);

  /// Mark `key` consumed and return its entry (nullptr when absent), for
  /// keys with plugin-specific value grammars.
  KvEntry* take(const char* key) { return section_.take(key); }

  /// Record "<source>: <message>" and return false.
  bool fail(const KvEntry& entry, const std::string& message);
  bool fail_at(const std::string& source, const std::string& message);

  const std::string& error() const { return error_; }
  KvSection& section() { return section_; }

 private:
  KvSection& section_;
  std::string& error_;
};

/// A running workload instance, created per experiment by its plugin.
/// setup() builds the application on the runner's platform (the platform,
/// metrics registry and spec are reachable through the runner); execute()
/// drives the run to its stop condition and writes the workload's outputs,
/// returning the process exit code.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual void setup(ExperimentRunner& runner) = 0;
  virtual int execute(ExperimentRunner& runner) = 0;
};

/// Everything the scenario layer asks about one workload type.
class WorkloadPlugin {
 public:
  virtual ~WorkloadPlugin() = default;

  virtual const char* name() const = 0;
  /// One line for `p2plab_run --list-workloads`.
  virtual const char* description() const = 0;

  /// The [workload] / [outputs] keys this plugin consumes — the parser's
  /// cross-type diagnostics ("key 'X' is not valid for workload type Y")
  /// scan the other plugins' lists.
  virtual std::vector<const char*> workload_keys() const = 0;
  virtual std::vector<const char*> output_keys() const { return {}; }

  /// Consume this plugin's keys from the [workload] / [outputs] sections.
  /// A false return means reader.error() is set.
  virtual bool parse_workload(ParamReader& reader,
                              ScenarioSpec& spec) const = 0;
  virtual bool parse_outputs(ParamReader& reader, ScenarioSpec& spec) const {
    (void)reader;
    (void)spec;
    return true;
  }

  /// Cross-section validation once the whole spec is assembled. Returns ""
  /// when the spec is fine; otherwise the message of a parse error the
  /// parser attributes to the [engine] stop source.
  virtual std::string validate_spec(const ScenarioSpec& spec) const {
    (void)spec;
    return "";
  }

  /// Virtual nodes the workload occupies.
  virtual std::size_t vnodes(const ScenarioSpec& spec) const = 0;

  /// True when the workload bypasses the sharded engine (ping_sweep drives
  /// Platform::ping + Simulation::run directly); effective_shards() is 0.
  virtual bool classic_only() const { return false; }
  /// True when the workload participates in [faults] / churn schedules.
  virtual bool supports_faults() const { return false; }
  /// True when `stop survivors_complete` is meaningful for this workload.
  virtual bool supports_survivors_stop() const { return false; }

  virtual std::unique_ptr<Workload> create(
      const ScenarioSpec& spec) const = 0;
};

/// The process-wide plugin registry. Lookup is by `.scn` type name;
/// plugins() is sorted by name so every enumeration (CLI listing, error
/// messages) is stable.
class WorkloadRegistry {
 public:
  static const WorkloadRegistry& instance();

  const WorkloadPlugin* find(std::string_view name) const;
  /// find() that asserts; for names already validated by the parser.
  const WorkloadPlugin& require(std::string_view name) const;
  const std::vector<const WorkloadPlugin*>& plugins() const {
    return sorted_;
  }

  /// All names joined by `sep` ("gossip|ping_sweep|swarm|validate").
  std::string joined_names(const char* sep) const;
  /// Names of fault-capable workloads joined by " or ", for the
  /// "[faults] requires workload type ..." diagnostic.
  std::string fault_capable_names() const;
  /// Same for workloads supporting `stop survivors_complete`.
  std::string survivors_stop_names() const;

  /// Used by the register_*_workload() functions only.
  void add(std::unique_ptr<const WorkloadPlugin> plugin);

 private:
  WorkloadRegistry();
  std::vector<std::unique_ptr<const WorkloadPlugin>> owned_;
  std::vector<const WorkloadPlugin*> sorted_;
};

// Built-in plugin registration hooks, one per workload_*.cpp (validate's
// lives in validate.cpp beside its harness). Called by the registry
// constructor; never call them yourself.
void register_swarm_workload(WorkloadRegistry& registry);
void register_ping_sweep_workload(WorkloadRegistry& registry);
void register_validate_workload(WorkloadRegistry& registry);
void register_gossip_workload(WorkloadRegistry& registry);

}  // namespace p2plab::scenario
