// The shipped experiment catalog, as C++ spec builders.
//
// Each function returns the ScenarioSpec behind one scenarios/*.scn file
// (same name); the scenario parser test asserts the two stay equal, so the
// DSL files and the bench binaries can never drift apart. The size
// parameters exist for the benches' P2PLAB_* environment knobs — with the
// defaults, catalog::X() == parse(scenarios/X.scn).
#pragma once

#include <cstddef>

#include "scenario/spec.hpp"

namespace p2plab::scenario::catalog {

/// Figure 6: ping RTT vs firewall-rule count (classic engine).
ScenarioSpec fig6();

/// Figure 8: 160-client download of a 16 MB file over DSL links.
ScenarioSpec fig8(std::size_t clients = 160);

/// One fold of the Figure 9 sweep: the fig8 swarm on clients/fold + 1
/// physical nodes. No outputs — the fig9 bench aggregates across folds.
ScenarioSpec fig9_fold(std::size_t clients, std::size_t fold);

/// Figures 10+11: the scalability run at 32 vnodes per pnode.
ScenarioSpec fig10(std::size_t clients = 1440);

/// The churn experiment: the fig8 swarm under crash/rejoin churn plus a
/// tracker outage and link faults, with the robustness invariants checked.
ScenarioSpec churn(std::size_t clients = 160, double churn_pct = 30.0);

/// The clean reference run the churn bench compares against.
ScenarioSpec churn_baseline(std::size_t clients = 160);

/// Flash crowd (non-paper): 256 clients arrive within ~64 s of each other
/// and the tracker dies just as they do — cached peer lists must carry the
/// swarm through.
ScenarioSpec flash_crowd();

/// SWIM gossip membership under churn and burst loss: detection latency
/// per crashed member plus the cluster-wide false-positive rate.
ScenarioSpec gossip(std::size_t nodes = 48);

/// The emulator-accuracy harness: goodput / RTT additivity / Jain
/// fairness / Gilbert-Elliott loss, measured against the configured
/// topology, under the TCP congestion model (DESIGN.md §13).
ScenarioSpec accuracy();

}  // namespace p2plab::scenario::catalog
