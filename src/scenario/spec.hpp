// The unified experiment description.
//
// A ScenarioSpec is everything one experiment needs, in one value: the
// emulated topology, the studied workload, the fault schedule, how the
// engine runs it and which result files it writes. Specs come from two
// equivalent sources — the `.scn` scenario DSL (parser.hpp), which is how
// `p2plab_run` and the shipped `scenarios/*.scn` work, and plain C++
// construction (catalog.hpp, the bench mains) — and are executed by the
// ExperimentRunner (runner.hpp). LiteLab (arXiv:1311.7422) and Becker et
// al. (arXiv:2208.05862) motivate the shape: a large-scale network
// experiment should be cheap to vary and fully captured in one artifact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bittorrent/swarm.hpp"
#include "common/time.hpp"
#include "fault/plan.hpp"
#include "gossip/protocol.hpp"
#include "topology/topology.hpp"

namespace p2plab::scenario {

/// Where the experiment's topology comes from.
enum class TopologySource {
  kAuto,    // homogeneous DSL zone sized to the workload (the default)
  kInline,  // topology DSL directives, inline or `include`d from a file
};

struct TopologySection {
  TopologySource source = TopologySource::kAuto;
  /// kAuto: the access-link class of every node (paper DSL by default).
  topology::LinkClass auto_link = topology::dsl_2m();
  /// kInline: the parsed topology. Must fit the workload's node count.
  std::optional<topology::Topology> built;
};

/// Parameters of the validate workload: the self-validating accuracy
/// harness (DESIGN.md §13). It derives its expectations from the configured
/// topology — bottleneck bandwidths, path latencies — runs single-flow and
/// N-flow transfers plus datagram probes over the real socket/pipe stack,
/// and fails the run (nonzero exit, per-invariant diagnostics, ACCURACY
/// json) when the emulator's measurements leave the tolerance bands.
struct ValidateParams {
  /// Virtual nodes the harness occupies; an inline topology must provide
  /// at least this many. Node roles are positional: fairness sources are
  /// the first `flows` nodes of zone 0, the fairness sink is the first
  /// node of zone 1 (last node of zone 0 when only one zone exists), and
  /// the Gilbert-Elliott probe target is the last node overall.
  std::size_t nodes = 8;
  /// Competing flows of the Jain-fairness phase.
  std::size_t flows = 4;
  /// Application bytes per stream transfer.
  DataSize transfer = DataSize::mib(2);
  /// Application message size of the stream transfers.
  DataSize message = DataSize::kib(16);
  /// Datagrams of the Gilbert-Elliott loss phase.
  std::size_t loss_datagrams = 20000;
  /// Gilbert-Elliott parameters injected on the probe target's access
  /// link for the loss phase (fault-overlay path, like `burst` faults).
  double ge_p_good_bad = 0.02;
  double ge_p_bad_good = 0.25;
  double ge_loss_bad = 0.9;
  // Tolerances (relative error bands; jain_min is an absolute floor).
  double goodput_tolerance = 0.12;
  double rtt_tolerance = 0.10;
  double loss_tolerance = 0.25;
  double jain_min = 0.95;
  /// Control knob for CI's deliberately mis-configured case: when set,
  /// goodput expectations use this bandwidth instead of the topology's
  /// bottleneck — a mismatch must fail loudly.
  Bandwidth expect_bandwidth = Bandwidth::unlimited();
};

/// Which congestion regime stream sockets run (DESIGN.md §13); maps onto
/// sockets::TransportModel in PlatformConfig::stream.
enum class TransportModel {
  kFlow,  // windowed flow model; DRR in the pipes provides fairness
  kTcp,   // NewReno-style slow start / AIMD / fast retransmit
};

/// Parameters of the ping_sweep workload: two (or more) nodes, rules padded
/// onto node 0's firewall in `rules_step` increments up to `rules_max`,
/// `probes` pings per step. Classic engine only (ping bypasses sockets).
struct PingSweepParams {
  std::size_t nodes = 2;
  std::uint32_t rules_max = 50000;
  std::uint32_t rules_step = 5000;
  std::size_t probes = 10;
};

/// A `churn` directive: expanded into concrete FaultSpecs by the runner,
/// which knows the swarm layout (default victim range = the client vnodes)
/// and owns the platform RNG the schedule is forked from.
struct ChurnDirective {
  bool enabled = false;
  double fraction = 0.3;
  Duration window_start = Duration::zero();
  Duration window_end = Duration::zero();
  double rejoin_fraction = 0.5;
  Duration rejoin_min = Duration::sec(30);
  Duration rejoin_max = Duration::sec(120);
  double leave_fraction = 0.0;
  std::optional<std::size_t> first_node;  // default: first client vnode
  std::optional<std::size_t> last_node;   // default: last client vnode
  /// Stream id forked off the platform RNG; same spec + seed => same plan.
  std::uint64_t rng_stream = 0xfa017;
};

struct FaultsSection {
  /// Explicit faults (inline directives or an `include`d .fault file).
  fault::FaultPlan plan;
  ChurnDirective churn;
  bool empty() const { return plan.empty() && !churn.enabled; }
};

/// When the run stops (before the workload's max_duration safety net).
enum class StopMode {
  kAllComplete,        // every client finished (Swarm::run semantics)
  kSurvivorsComplete,  // every never-faulted or rejoined client finished
  kTime,               // a fixed simulated duration (`run_for`)
};

struct EngineSection {
  /// Parallel-engine shard count; 0 = classic single-threaded path.
  std::size_t shards = 0;
  /// Stream-transport congestion regime (`transport tcp|flow`).
  TransportModel transport = TransportModel::kFlow;
  /// Physical cluster size; unset = one physical node per virtual node.
  std::optional<std::size_t> physical_nodes;
  /// Alternative: fold K virtual nodes per physical node (ceil division).
  /// Mutually exclusive with physical_nodes.
  std::optional<std::size_t> fold;
  std::uint64_t seed = 1;
  StopMode stop = StopMode::kAllComplete;
  Duration run_for = Duration::zero();  // kTime only
  /// Churn-style robustness checks: survivors complete, faults pair with
  /// recoveries, the event queue drains once the applications stop.
  /// Failures make the run's exit code nonzero.
  bool check_invariants = false;
  /// Flight-recorder ring tracing (implied by outputs.trace_file).
  bool trace = false;
  /// Wall-clock BSP profiler (implied by outputs.profile_trace). Virtual
  /// time and event order are bit-identical with profiling on or off.
  bool profile = false;
  /// Pin shard workers to cores; unset = automatic (pin when the process
  /// affinity mask holds at least `shards` online cores).
  std::optional<bool> pin_workers;
};

struct OutputsSection {
  /// Sampling grid of the time-series outputs.
  Duration grid = Duration::sec(10);
  // Swarm outputs (each empty string = not written).
  std::string progress_envelope;  // min/quartile/max percent-done columns
  std::string completions;        // per-client completion times
  std::string completions_note;   // trailing '#' comment on completions
  std::string sampled_progress;   // every sampled_every-th client's curve
  std::size_t sampled_every = 50;
  std::string completion_curve;   // (t, clients complete) steps
  std::string completion_curve_note;
  std::string summary;            // one-row churn/robustness summary
  std::string metrics;     // health-monitor timeline (classic mode only)
  std::string trace_file;  // flight-recorder JSONL flush
  // Ping-sweep output.
  std::string csv;
  std::string csv_note;
  // Validate output: the per-invariant accuracy verdict (name + ".json").
  std::string accuracy_json;
  // Gossip outputs: per-victim crash → first-confirm latencies, and the
  // one-row false-positive summary under burst loss.
  std::string detection_csv;
  std::string fp_summary;
  // Cross-workload outputs.
  std::string bench_json;  // standardized BENCH_*.json run summary
  std::string profile_trace;  // Perfetto timeline (full filename)
  bool report = false;     // end-of-run registry report on stdout
};

struct ScenarioSpec {
  std::string name;
  TopologySection topology;
  /// The `[workload] type` name; resolved through the WorkloadRegistry
  /// (workload.hpp), which is the single source of truth for valid names.
  std::string workload = "swarm";
  bt::SwarmConfig swarm;
  PingSweepParams ping;
  ValidateParams validate;
  gossip::Config gossip;
  FaultsSection faults;
  EngineSection engine;
  OutputsSection outputs;

  /// Virtual nodes the workload occupies (registry-dispatched).
  std::size_t vnodes() const;

  /// Physical cluster size after resolving auto/fold.
  std::size_t resolved_physical_nodes() const {
    if (engine.physical_nodes) return *engine.physical_nodes;
    if (engine.fold && *engine.fold > 0) {
      return (vnodes() + *engine.fold - 1) / *engine.fold;
    }
    return vnodes();
  }

  /// Shards the run will actually use: classic-only workloads (ping_sweep
  /// drives Platform::ping + Simulation::run directly) always run with 0.
  std::size_t effective_shards() const;

  /// Perfetto timeline file name: outputs.profile_trace when named,
  /// "profile.json" when profiling is merely switched on, "" when off.
  std::string resolved_profile_trace() const;

  /// File names (with extensions) this run writes into
  /// $P2PLAB_RESULTS_DIR — what the CI smoke matrix checks for.
  std::vector<std::string> declared_outputs() const;
};

}  // namespace p2plab::scenario
