// The emulator-accuracy harness (the `validate` workload; DESIGN.md §13).
//
// The paper validates the emulator empirically — measured goodput against
// configured modem rates, end-to-end latency against the topology's
// configured delays (Fig 7) — and this harness turns that methodology into
// a self-checking workload. It derives expectations from the configured
// topology alone, measures through the full socket/pipe stack, and reports
// one InvariantResult per check:
//
//   goodput:<zone>   single-flow stream goodput between two nodes of each
//                    multi-node zone matches the bottleneck bandwidth
//                    (min(src up, dst down)) after header overhead.
//   rtt:<a>-<b>      datagram echo RTT matches the additive path latency
//                    (access + inter-zone + access, both ways) plus
//                    serialization — Fig 7's check, generalized to every
//                    zone pair.
//   fairness:jain    N simultaneous flows into one sink share the
//                    bottleneck with a Jain index above the floor.
//   loss:gilbert     one-way datagram loss under an injected
//                    Gilbert-Elliott overlay matches the chain's
//                    stationary loss rate composed with the links' own.
//
// ExperimentRunner::execute_validate (also here) prints one diagnostic
// line per invariant, writes the ACCURACY json verdict, and exits nonzero
// when any invariant leaves its tolerance band — a distorting emulator
// fails loudly instead of producing quietly wrong figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "scenario/spec.hpp"
#include "sockets/socket.hpp"

namespace p2plab::scenario {

/// One accuracy check: what was measured, what the topology implies, and
/// whether the relative error stayed inside the band (for jain, whether
/// the index stayed above the floor).
struct InvariantResult {
  std::string name;
  double measured = 0;
  double expected = 0;
  double tolerance = 0;
  bool pass = false;
  std::string detail;  // units / failure cause, for the diagnostic line
};

class ValidateHarness {
 public:
  ValidateHarness(core::Platform& platform, const ScenarioSpec& spec);

  /// Run the four phases sequentially on the platform and return every
  /// invariant verdict. Call once.
  std::vector<InvariantResult> run();

 private:
  // A contiguous run of nodes sharing one access-link class ("zone" in the
  // topology sense; global vnode indices [first, first + count)).
  struct NodeZone {
    std::string name;
    std::size_t first = 0;
    std::size_t count = 0;
    topology::LinkClass link;
  };

  // Measurement slots are written by the owning shard's callbacks and read
  // by the coordinator after Platform::run returns (barrier-separated), so
  // each slot is pre-sized, per-flow/per-probe distinct memory.
  struct TransferProbe {
    std::uint64_t target_bytes = 0;
    std::uint64_t received = 0;
    SimTime start;
    SimTime end;
    bool done = false;
    bool failed = false;  // connect refused / timed out
  };
  struct RttProbe {
    int replies = 0;
    double sum_s = 0;
    SimTime sent_at;
    bool done = false;
  };

  /// Drive the platform until `done` or for at most `limit`.
  bool await(const std::function<bool()>& done, Duration limit);
  /// Start a `bytes`-byte stream transfer src -> dst at `at`, recording
  /// into `probe` (slot index `slot` of listeners_).
  void start_transfer(std::size_t src, std::size_t dst, std::uint16_t port,
                      std::uint64_t bytes, std::size_t slot,
                      TransferProbe* probe, SimTime at);
  /// Bottleneck bytes/s of a src->dst transfer (expect_bandwidth override,
  /// else min(src up, dst down)); infinity when unlimited.
  double bottleneck_bytes_per_sec(std::size_t src, std::size_t dst) const;

  void phase_goodput(std::vector<InvariantResult>& out);
  void phase_rtt(std::vector<InvariantResult>& out);
  void phase_fairness(std::vector<InvariantResult>& out);
  void phase_loss(std::vector<InvariantResult>& out);

  core::Platform& platform_;
  const ScenarioSpec& spec_;
  const ValidateParams& params_;
  topology::Topology topo_;
  std::vector<NodeZone> zones_;

  std::vector<sockets::ListenerPtr> listeners_;
  std::vector<sockets::DatagramSocketPtr> udp_socks_;
  std::vector<TransferProbe> transfers_;
  std::vector<RttProbe> rtt_probes_;
  std::uint64_t loss_received_ = 0;
};

}  // namespace p2plab::scenario
