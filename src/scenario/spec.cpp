#include "scenario/spec.hpp"

#include "scenario/workload.hpp"

namespace p2plab::scenario {

std::size_t ScenarioSpec::vnodes() const {
  return WorkloadRegistry::instance().require(workload).vnodes(*this);
}

std::size_t ScenarioSpec::effective_shards() const {
  return WorkloadRegistry::instance().require(workload).classic_only()
             ? 0
             : engine.shards;
}

std::string ScenarioSpec::resolved_profile_trace() const {
  if (!engine.profile) return "";
  return outputs.profile_trace.empty() ? "profile.json"
                                       : outputs.profile_trace;
}

std::vector<std::string> ScenarioSpec::declared_outputs() const {
  std::vector<std::string> files;
  auto csv_file = [&](const std::string& csv_name) {
    if (!csv_name.empty()) files.push_back(csv_name + ".csv");
  };
  csv_file(outputs.progress_envelope);
  csv_file(outputs.completions);
  csv_file(outputs.sampled_progress);
  csv_file(outputs.completion_curve);
  csv_file(outputs.summary);
  csv_file(outputs.csv);
  csv_file(outputs.detection_csv);
  csv_file(outputs.fp_summary);
  // The health monitor samples from inside one simulation: classic only.
  if (effective_shards() == 0) csv_file(outputs.metrics);
  if (!outputs.accuracy_json.empty()) {
    files.push_back(outputs.accuracy_json + ".json");
  }
  if (!outputs.bench_json.empty()) {
    files.push_back(outputs.bench_json + ".json");
  }
  if (!outputs.trace_file.empty()) files.push_back(outputs.trace_file);
  // Declared iff profiling is on: --print-outputs must list profile.json
  // exactly when a run would write it (the smoke matrix diffs the two).
  if (engine.profile) files.push_back(resolved_profile_trace());
  return files;
}

}  // namespace p2plab::scenario
