// The `swarm` workload plugin: the BitTorrent swarm experiments
// (Figs 8-11, churn). Construction order matters and is preserved from
// the pre-registry runner exactly — registry before platform so teardown
// still counts, churn RNG forked after the swarm exists, the health
// monitor started last — so spec-driven runs stay bit-identical to the
// hand-written benches they replaced.
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bittorrent/swarm.hpp"
#include "common/assert.hpp"
#include "fault/injector.hpp"
#include "metrics/health.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/workload.hpp"

namespace p2plab::scenario {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

class SwarmWorkload final : public Workload {
 public:
  explicit SwarmWorkload(const ScenarioSpec& spec) : spec_(spec) {}

  void setup(ExperimentRunner& runner) override;
  int execute(ExperimentRunner& runner) override;

  bt::Swarm& swarm() { return *swarm_; }
  const bt::Swarm& swarm() const { return *swarm_; }

 private:
  void setup_faults(ExperimentRunner& runner);
  void write_outputs(ExperimentRunner& runner, double wall_seconds);

  const ScenarioSpec& spec_;
  std::unique_ptr<bt::Swarm> swarm_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<metrics::HealthMonitor> monitor_;
  std::size_t first_client_vnode_ = 0;
  std::vector<bool> faulted_;  // per client: scheduled to crash or leave
  std::vector<bool> rejoins_;  // per client: scheduled to come back
  std::size_t node_failures_ = 0;
};

void SwarmWorkload::setup(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  swarm_ = std::make_unique<bt::Swarm>(platform, spec_.swarm);
  swarm_->bind_metrics(runner.registry());
  first_client_vnode_ = 1 + spec_.swarm.seeders;
  setup_faults(runner);
  // The health monitor samples from inside one simulation: classic-only.
  // Started last, matching the figure harnesses' event order.
  if (!spec_.outputs.metrics.empty() && !platform.engine_mode()) {
    monitor_ = std::make_unique<metrics::HealthMonitor>(
        metrics::HealthMonitor::Options{.csv_name = spec_.outputs.metrics});
    monitor_->start(platform.sim(), runner.registry());
  }
}

void SwarmWorkload::setup_faults(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  faulted_.assign(spec_.swarm.clients, false);
  rejoins_.assign(spec_.swarm.clients, false);
  if (spec_.faults.empty()) return;

  // Churn schedules expand first (forked off the platform RNG at exactly
  // this point of construction — the pre-refactor churn bench's order), and
  // the explicit plan appends behind them; the stable time sort then
  // reproduces the bench's spec order exactly.
  fault::FaultPlan plan;
  if (spec_.faults.churn.enabled) {
    const ChurnDirective& d = spec_.faults.churn;
    Rng churn_rng = platform.rng().fork(d.rng_stream);
    fault::ChurnConfig churn;
    churn.first_node = d.first_node.value_or(first_client_vnode_);
    churn.last_node = d.last_node.value_or(first_client_vnode_ +
                                           spec_.swarm.clients - 1);
    churn.fraction = d.fraction;
    churn.window_start = SimTime::zero() + d.window_start;
    churn.window_end = SimTime::zero() + d.window_end;
    churn.rejoin_fraction = d.rejoin_fraction;
    churn.rejoin_min = d.rejoin_min;
    churn.rejoin_max = d.rejoin_max;
    churn.leave_fraction = d.leave_fraction;
    plan = fault::FaultPlan::churn(churn, churn_rng);
  }
  plan.append(spec_.faults.plan);
  plan.sort();

  // Which clients fail, and which of those come back.
  for (const fault::FaultSpec& fault_spec : plan.specs()) {
    if (fault_spec.kind != fault::FaultKind::kCrash &&
        fault_spec.kind != fault::FaultKind::kLeave) {
      continue;
    }
    ++node_failures_;
    if (fault_spec.node < first_client_vnode_ ||
        fault_spec.node >= first_client_vnode_ + spec_.swarm.clients) {
      continue;  // seeder/tracker fault: no survivor accounting
    }
    faulted_[fault_spec.node - first_client_vnode_] = true;
    rejoins_[fault_spec.node - first_client_vnode_] = fault_spec.rejoin;
  }
  std::printf("# plan: %zu faults, %zu node failures (%zu clients)\n",
              plan.size(), node_failures_, spec_.swarm.clients);

  injector_ = std::make_unique<fault::FaultInjector>(platform,
                                                     std::move(plan));
  injector_->bind_metrics(runner.registry());
  // vnode layout contract: 0 = tracker, 1..seeders = seeders, rest clients.
  auto process_of = [this](std::size_t v) -> bt::Client* {
    if (v >= first_client_vnode_) {
      return &swarm_->client(v - first_client_vnode_);
    }
    if (v >= 1) return &swarm_->seeder(v - 1);
    return nullptr;  // tracker: infrastructure-only, use tracker_outage
  };
  injector_->set_node_hooks(fault::NodeHooks{
      .on_crash = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->crash();
      },
      .on_leave = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->stop();
      },
      .on_rejoin = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->start();
      }});
  injector_->set_service_hooks(fault::ServiceHooks{
      .on_tracker_outage = [this] { swarm_->tracker().set_online(false); },
      .on_tracker_restore = [this] { swarm_->tracker().set_online(true); }});
  injector_->arm();
}

int SwarmWorkload::execute(ExperimentRunner& runner) {
  core::Platform& platform = runner.platform();
  const auto wall_start = std::chrono::steady_clock::now();
  auto count_survivors = [this] {
    std::size_t done = 0;
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      done += (!faulted_[c] || rejoins_[c]) &&
              swarm_->client(c).has_completed();
    }
    return done;
  };
  std::size_t expected_survivors = 0;
  for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
    expected_survivors += !faulted_[c] || rejoins_[c];
  }

  switch (spec_.engine.stop) {
    case StopMode::kAllComplete:
      swarm_->run();
      break;
    case StopMode::kSurvivorsComplete:
      platform.run(SimTime::zero() + spec_.swarm.max_duration,
                   [&] { return count_survivors() == expected_survivors; },
                   Duration::sec(5));
      break;
    case StopMode::kTime:
      platform.run(SimTime::zero() + spec_.engine.run_for);
      break;
  }
  const double wall_seconds = wall_seconds_since(wall_start);
  runner.set_end_of_run(platform.now());
  if (monitor_) {
    monitor_->stop();
    monitor_->print_report();
  }
  std::printf("# %zu/%zu clients complete at t=%.0f s; %llu events; "
              "%zu pnodes x %zu vnodes\n",
              swarm_->completed_count(), swarm_->client_count(),
              runner.end_of_run().to_seconds(),
              static_cast<unsigned long long>(platform.dispatched_events()),
              platform.physical_node_count(), platform.folding_ratio());

  int failures = 0;
  if (spec_.engine.check_invariants) {
    auto check = [&](bool ok, const char* what) {
      std::printf("# check %-46s %s\n", what, ok ? "ok" : "FAIL");
      if (!ok) ++failures;
    };
    if (spec_.engine.stop == StopMode::kSurvivorsComplete) {
      const std::size_t survivors = count_survivors();
      check(survivors == expected_survivors,
            "churn: every surviving leecher completes");
      std::printf("# survivors complete: %zu/%zu (of %zu clients)\n",
                  survivors, expected_survivors, spec_.swarm.clients);
    } else {
      check(swarm_->all_complete(), "all clients complete");
    }
    if (injector_) {
      check(injector_->stats().unrecovered() == 0,
            "every injected fault recovered");
      std::printf("# faults: injected=%llu recovered=%llu\n",
                  static_cast<unsigned long long>(
                      injector_->stats().injected),
                  static_cast<unsigned long long>(
                      injector_->stats().recovered));
    }
    // Nothing wedged: stop the world and the event queue must drain — any
    // surviving retransmit timer or periodic task would keep it non-empty.
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      swarm_->client(c).stop();
    }
    for (std::size_t s = 0; s < spec_.swarm.seeders; ++s) {
      swarm_->seeder(s).stop();
    }
    swarm_->tracker().set_online(false);
    check(platform.run(platform.now() + Duration::sec(700)) ==
              core::Platform::RunResult::kDrained,
          "event queue drains after stop (no wedged timers)");
  }

  write_outputs(runner, wall_seconds);
  return failures == 0 ? 0 : 1;
}

void SwarmWorkload::write_outputs(ExperimentRunner& runner,
                                  double wall_seconds) {
  const OutputsSection& out = spec_.outputs;
  runner.write_bench_json(wall_seconds, "clients",
                          static_cast<double>(spec_.swarm.clients));
  // Time-series outputs sample on the grid up to one step past the stop
  // condition (not past the invariant drain).
  const Duration grid = out.grid;
  const SimTime grid_end = runner.end_of_run() + grid;

  if (!out.progress_envelope.empty()) {
    metrics::CsvWriter envelope(
        out.progress_envelope,
        {"time_s", "pct_min", "pct_p25", "pct_median", "pct_p75", "pct_max",
         "clients_complete"});
    envelope.comment("seed=" + std::to_string(spec_.swarm.content_seed));
    for (SimTime t = SimTime::zero(); t <= grid_end; t += grid) {
      metrics::Distribution pct;
      std::size_t complete = 0;
      for (std::size_t i = 0; i < swarm_->client_count(); ++i) {
        pct.add(swarm_->client(i).progress().value_at(t));
        complete += swarm_->client(i).has_completed() &&
                    swarm_->client(i).completion_time() <= t;
      }
      envelope.row({t.to_seconds(), pct.min(), pct.quantile(0.25),
                    pct.median(), pct.quantile(0.75), pct.max(),
                    static_cast<double>(complete)});
    }
  }

  if (!out.completions.empty()) {
    metrics::CsvWriter completions(out.completions,
                                   {"client", "start_s", "completion_s"});
    for (std::size_t i = 0; i < swarm_->client_count(); ++i) {
      completions.row(
          {static_cast<double>(i),
           static_cast<double>(i) * spec_.swarm.start_interval.to_seconds(),
           swarm_->client(i).has_completed()
               ? swarm_->client(i).completion_time().to_seconds()
               : -1.0});
    }
    if (!out.completions_note.empty()) {
      completions.comment(out.completions_note);
    }
  }

  if (!out.sampled_progress.empty()) {
    metrics::CsvWriter sampled(out.sampled_progress,
                               {"client", "time_s", "pct_done"});
    sampled.comment("seed=" + std::to_string(spec_.swarm.content_seed));
    const std::size_t every = out.sampled_every;
    for (std::size_t c = every; c <= swarm_->client_count(); c += every) {
      const auto& series = swarm_->client(c - 1).progress();
      for (SimTime t = SimTime::zero(); t <= grid_end; t += grid) {
        sampled.row({static_cast<double>(c), t.to_seconds(),
                     series.value_at(t)});
      }
    }
  }

  if (!out.completion_curve.empty()) {
    metrics::CsvWriter curve_csv(out.completion_curve,
                                 {"time_s", "clients_complete"});
    const auto curve = swarm_->completion_curve();
    for (const auto& [t, count] : curve.points()) {
      curve_csv.row({t.to_seconds(), count});
    }
    if (!out.completion_curve_note.empty()) {
      curve_csv.comment(out.completion_curve_note);
    }
  }

  if (!out.summary.empty()) {
    metrics::CsvWriter summary(out.summary,
                               {"median_completion_s", "baseline_median_s",
                                "failed_nodes", "rejoined_nodes",
                                "faults_injected", "faults_recovered"});
    std::size_t rejoined = 0;
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      rejoined += rejoins_[c];
    }
    summary.row({runner.median_completion_sec(), runner.baseline_median(),
                 static_cast<double>(node_failures_),
                 static_cast<double>(rejoined),
                 static_cast<double>(injector_ ? injector_->stats().injected
                                               : 0),
                 static_cast<double>(injector_ ? injector_->stats().recovered
                                               : 0)});
  }

  if (!out.trace_file.empty()) {
    runner.platform().flush_trace_to_results(out.trace_file.c_str());
  }
  runner.write_profile_outputs();
  if (out.report) metrics::print_registry_report(runner.registry());
}

class SwarmPlugin final : public WorkloadPlugin {
 public:
  const char* name() const override { return "swarm"; }
  const char* description() const override {
    return "BitTorrent swarm experiments (Figs 8-11, churn, flash crowd)";
  }

  std::vector<const char*> workload_keys() const override {
    return {"clients",      "seeders",       "file_size",
            "piece_length", "start_interval", "content_seed",
            "verify_hashes", "max_duration"};
  }
  std::vector<const char*> output_keys() const override {
    return {"grid",          "progress_envelope", "completions",
            "completions_note", "sampled_progress",  "sampled_every",
            "completion_curve", "completion_curve_note", "summary",
            "metrics",       "trace"};
  }

  bool parse_workload(ParamReader& reader,
                      ScenarioSpec& spec) const override {
    bool ok = reader.take_count("clients",
                                [&](std::uint64_t v, const KvEntry&) {
                                  spec.swarm.clients =
                                      static_cast<std::size_t>(v);
                                });
    ok = ok && reader.take_count("seeders",
                                 [&](std::uint64_t v, const KvEntry&) {
                                   spec.swarm.seeders =
                                       static_cast<std::size_t>(v);
                                 });
    ok = ok && reader.take_size("file_size", [&](DataSize v) {
      spec.swarm.file_size = v;
    });
    ok = ok && reader.take_size("piece_length", [&](DataSize v) {
      spec.swarm.piece_length = v;
    });
    ok = ok && reader.take_duration("start_interval",
                                    [&](Duration v, const KvEntry&) {
                                      spec.swarm.start_interval = v;
                                    });
    ok = ok && reader.take_count("content_seed",
                                 [&](std::uint64_t v, const KvEntry&) {
                                   spec.swarm.content_seed = v;
                                 });
    ok = ok && reader.take_bool("verify_hashes", [&](bool v) {
      spec.swarm.verify_hashes = v;
    });
    ok = ok && reader.take_duration("max_duration",
                                    [&](Duration v, const KvEntry&) {
                                      spec.swarm.max_duration = v;
                                    });
    return ok;
  }

  bool parse_outputs(ParamReader& reader, ScenarioSpec& spec) const override {
    const KvEntry* grid_entry = nullptr;
    bool ok = reader.take_duration("grid",
                                   [&](Duration v, const KvEntry& entry) {
                                     spec.outputs.grid = v;
                                     grid_entry = &entry;
                                   });
    if (ok && grid_entry != nullptr &&
        spec.outputs.grid <= Duration::zero()) {
      return reader.fail(*grid_entry, "grid must be positive");
    }
    ok = ok && reader.take_string("progress_envelope",
                                  &spec.outputs.progress_envelope);
    ok = ok && reader.take_string("completions", &spec.outputs.completions);
    ok = ok && reader.take_string("completions_note",
                                  &spec.outputs.completions_note);
    ok = ok && reader.take_string("sampled_progress",
                                  &spec.outputs.sampled_progress);
    const KvEntry* every_entry = nullptr;
    ok = ok && reader.take_count("sampled_every",
                                 [&](std::uint64_t v, const KvEntry& entry) {
                                   spec.outputs.sampled_every =
                                       static_cast<std::size_t>(v);
                                   every_entry = &entry;
                                 });
    if (ok && every_entry != nullptr && spec.outputs.sampled_every == 0) {
      return reader.fail(*every_entry, "sampled_every must be positive");
    }
    ok = ok && reader.take_string("completion_curve",
                                  &spec.outputs.completion_curve);
    ok = ok && reader.take_string("completion_curve_note",
                                  &spec.outputs.completion_curve_note);
    ok = ok && reader.take_string("summary", &spec.outputs.summary);
    ok = ok && reader.take_string("metrics", &spec.outputs.metrics);
    ok = ok && reader.take_string("trace", &spec.outputs.trace_file);
    return ok;
  }

  std::size_t vnodes(const ScenarioSpec& spec) const override {
    return bt::swarm_vnodes(spec.swarm);
  }
  bool supports_faults() const override { return true; }
  bool supports_survivors_stop() const override { return true; }

  std::unique_ptr<Workload> create(const ScenarioSpec& spec) const override {
    return std::make_unique<SwarmWorkload>(spec);
  }
};

}  // namespace

void register_swarm_workload(WorkloadRegistry& registry) {
  registry.add(std::make_unique<SwarmPlugin>());
}

// The swarm-only runner facades live beside the concrete type they cast
// to; the assert keeps the cast honest without RTTI.
bt::Swarm& ExperimentRunner::swarm() {
  P2PLAB_ASSERT_MSG(spec_.workload == "swarm",
                    "swarm() is only valid for swarm workloads");
  return static_cast<SwarmWorkload&>(*workload_).swarm();
}

double ExperimentRunner::median_completion_sec() const {
  P2PLAB_ASSERT_MSG(spec_.workload == "swarm",
                    "median_completion_sec() is swarm-only");
  const auto& workload = static_cast<const SwarmWorkload&>(*workload_);
  metrics::Distribution d;
  for (const double t : workload.swarm().completion_times_sec()) d.add(t);
  return d.count() > 0 ? d.median() : -1.0;
}

}  // namespace p2plab::scenario
