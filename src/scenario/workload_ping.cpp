// The `ping_sweep` workload plugin: RTT vs. installed firewall rules
// (the paper's Fig 6 microbenchmark). Classic engine only — the sweep
// interleaves rule installation with synchronous ping rounds, which has
// no meaning under sharded BSP.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/health.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/workload.hpp"

namespace p2plab::scenario {

namespace {

class PingWorkload final : public Workload {
 public:
  explicit PingWorkload(const ScenarioSpec& spec) : spec_(spec) {}

  void setup(ExperimentRunner& runner) override {
    runner.platform().bind_metrics(runner.registry());
  }

  int execute(ExperimentRunner& runner) override {
    core::Platform& platform = runner.platform();
    const auto wall_start = std::chrono::steady_clock::now();
    const OutputsSection& out = spec_.outputs;
    std::unique_ptr<metrics::CsvWriter> csv;
    if (!out.csv.empty()) {
      csv = std::make_unique<metrics::CsvWriter>(
          out.csv, std::vector<std::string>{"rules", "rtt_avg_ms",
                                            "rtt_min_ms", "rtt_max_ms"});
      csv->comment("seed=" + std::to_string(spec_.engine.seed));
    }

    const Ipv4Addr a = platform.network().host(0).admin_ip();
    const Ipv4Addr b = platform.network().host(1).admin_ip();
    std::uint32_t installed = 0;
    std::uint32_t next_rule_number = 1000;
    for (std::uint32_t rules = 0; rules <= spec_.ping.rules_max;
         rules += spec_.ping.rules_step) {
      if (rules > installed) {
        platform.network().host(0).firewall().add_filler_rules(
            next_rule_number, rules - installed);
        next_rule_number += rules - installed;
        installed = rules;
      }
      metrics::Summary rtt;
      for (std::size_t probe = 0; probe < spec_.ping.probes; ++probe) {
        platform.ping(a, b, [&](Duration d) { rtt.add(d.to_millis()); });
        platform.sim().run();
      }
      if (csv) {
        csv->row({std::to_string(rules), std::to_string(rtt.mean()),
                  std::to_string(rtt.min()), std::to_string(rtt.max())});
      }
    }
    if (csv && !out.csv_note.empty()) csv->comment(out.csv_note);
    runner.set_end_of_run(platform.now());
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    runner.write_bench_json(wall_seconds, "rules_max",
                            static_cast<double>(spec_.ping.rules_max));
    runner.write_profile_outputs();
    if (out.report) metrics::print_registry_report(runner.registry());
    return 0;
  }

 private:
  const ScenarioSpec& spec_;
};

class PingSweepPlugin final : public WorkloadPlugin {
 public:
  const char* name() const override { return "ping_sweep"; }
  const char* description() const override {
    return "RTT vs. firewall rule count sweep (Fig 6, classic engine)";
  }

  std::vector<const char*> workload_keys() const override {
    return {"nodes", "rules_max", "rules_step", "probes"};
  }
  std::vector<const char*> output_keys() const override {
    return {"csv", "csv_note"};
  }

  bool parse_workload(ParamReader& reader,
                      ScenarioSpec& spec) const override {
    bool nodes_ok = true;
    const KvEntry* nodes_entry = nullptr;
    bool ok = reader.take_count("nodes",
                                [&](std::uint64_t v, const KvEntry& entry) {
                                  spec.ping.nodes =
                                      static_cast<std::size_t>(v);
                                  nodes_entry = &entry;
                                  nodes_ok = v >= 2;
                                });
    if (ok && !nodes_ok) {
      return reader.fail(*nodes_entry, "ping_sweep needs nodes >= 2");
    }
    ok = ok && reader.take_count("rules_max",
                                 [&](std::uint64_t v, const KvEntry&) {
                                   spec.ping.rules_max =
                                       static_cast<std::uint32_t>(v);
                                 });
    const KvEntry* step_entry = nullptr;
    ok = ok && reader.take_count("rules_step",
                                 [&](std::uint64_t v, const KvEntry& entry) {
                                   spec.ping.rules_step =
                                       static_cast<std::uint32_t>(v);
                                   step_entry = &entry;
                                 });
    if (ok && step_entry != nullptr && spec.ping.rules_step == 0) {
      return reader.fail(*step_entry, "rules_step must be positive");
    }
    ok = ok && reader.take_count("probes",
                                 [&](std::uint64_t v, const KvEntry&) {
                                   spec.ping.probes =
                                       static_cast<std::size_t>(v);
                                 });
    return ok;
  }

  bool parse_outputs(ParamReader& reader, ScenarioSpec& spec) const override {
    bool ok = reader.take_string("csv", &spec.outputs.csv);
    ok = ok && reader.take_string("csv_note", &spec.outputs.csv_note);
    return ok;
  }

  std::size_t vnodes(const ScenarioSpec& spec) const override {
    return spec.ping.nodes;
  }
  bool classic_only() const override { return true; }

  std::unique_ptr<Workload> create(const ScenarioSpec& spec) const override {
    return std::make_unique<PingWorkload>(spec);
  }
};

}  // namespace

void register_ping_sweep_workload(WorkloadRegistry& registry) {
  registry.add(std::make_unique<PingSweepPlugin>());
}

}  // namespace p2plab::scenario
