#include "scenario/runner.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "core/bench_report.hpp"

namespace p2plab::scenario {

ExperimentRunner::ExperimentRunner(ScenarioSpec spec)
    : spec_(std::move(spec)) {}

ExperimentRunner::~ExperimentRunner() = default;

void ExperimentRunner::setup() {
  P2PLAB_ASSERT(!set_up_);
  set_up_ = true;

  plugin_ = &WorkloadRegistry::instance().require(spec_.workload);
  const std::size_t shards = spec_.effective_shards();
  if (plugin_->classic_only() && spec_.engine.shards > 0) {
    std::printf("# %s workload drives the classic engine; ignoring "
                "shards=%zu\n", plugin_->name(), spec_.engine.shards);
  }
  const topology::Topology topo =
      spec_.topology.built
          ? *spec_.topology.built
          : topology::homogeneous_dsl(spec_.vnodes(),
                                      spec_.topology.auto_link);
  core::PlatformConfig pc;
  pc.physical_nodes = spec_.resolved_physical_nodes();
  pc.seed = spec_.engine.seed;
  pc.shards = shards;
  pc.pin_workers = spec_.engine.pin_workers;
  pc.stream.transport = spec_.engine.transport == TransportModel::kTcp
                            ? sockets::TransportModel::kTcp
                            : sockets::TransportModel::kFlow;
  platform_ = std::make_unique<core::Platform>(topo, pc);
  if (spec_.engine.trace) platform_->enable_tracing();
  if (spec_.engine.profile) {
    platform_->enable_profiling();
    platform_->profiler().set_crash_filename(spec_.resolved_profile_trace());
  }

  workload_ = plugin_->create(spec_);
  workload_->setup(*this);
}

int ExperimentRunner::execute() {
  P2PLAB_ASSERT(set_up_);
  return workload_->execute(*this);
}

int ExperimentRunner::run() {
  setup();
  return execute();
}

void ExperimentRunner::write_profile_outputs() {
  if (!platform_->profiling()) return;
  // Fold first so the rollup shows up in the registry report and any
  // later metrics consumers; gauges are set, not added — idempotent.
  platform_->profiler().fold_into(registry_);
  platform_->flush_profile_to_results(
      spec_.resolved_profile_trace().c_str());
}

void ExperimentRunner::write_bench_json(
    double wall_seconds, const char* scale_key, double scale_value,
    const std::vector<std::pair<std::string, double>>& extra) {
  if (spec_.outputs.bench_json.empty()) return;
  std::vector<std::pair<std::string, double>> fields =
      core::bench_fields(*platform_, scale_key, scale_value,
                         spec_.engine.seed, wall_seconds);
  fields.insert(fields.end(), extra.begin(), extra.end());
  core::write_bench_json(spec_.name, spec_.outputs.bench_json, fields);
}

}  // namespace p2plab::scenario
