#include "scenario/runner.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/bench_report.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"

namespace p2plab::scenario {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ExperimentRunner::ExperimentRunner(ScenarioSpec spec)
    : spec_(std::move(spec)) {}

ExperimentRunner::~ExperimentRunner() = default;

void ExperimentRunner::setup() {
  P2PLAB_ASSERT(!set_up_);
  set_up_ = true;

  const std::size_t shards = spec_.effective_shards();
  if (spec_.workload == WorkloadType::kPingSweep && spec_.engine.shards > 0) {
    std::printf("# ping workload drives the classic engine; ignoring "
                "shards=%zu\n", spec_.engine.shards);
  }
  const topology::Topology topo =
      spec_.topology.built
          ? *spec_.topology.built
          : topology::homogeneous_dsl(spec_.vnodes(),
                                      spec_.topology.auto_link);
  core::PlatformConfig pc;
  pc.physical_nodes = spec_.resolved_physical_nodes();
  pc.seed = spec_.engine.seed;
  pc.shards = shards;
  pc.pin_workers = spec_.engine.pin_workers;
  pc.stream.transport = spec_.engine.transport == TransportModel::kTcp
                            ? sockets::TransportModel::kTcp
                            : sockets::TransportModel::kFlow;
  platform_ = std::make_unique<core::Platform>(topo, pc);
  if (spec_.engine.trace) platform_->enable_tracing();
  if (spec_.engine.profile) {
    platform_->enable_profiling();
    platform_->profiler().set_crash_filename(spec_.resolved_profile_trace());
  }

  if (spec_.workload == WorkloadType::kSwarm) {
    setup_swarm();
  } else {
    platform_->bind_metrics(registry_);
  }
}

void ExperimentRunner::setup_swarm() {
  swarm_ = std::make_unique<bt::Swarm>(*platform_, spec_.swarm);
  swarm_->bind_metrics(registry_);
  first_client_vnode_ = 1 + spec_.swarm.seeders;
  setup_faults();
  // The health monitor samples from inside one simulation: classic-only.
  // Started last, matching the figure harnesses' event order.
  if (!spec_.outputs.metrics.empty() && !platform_->engine_mode()) {
    monitor_ = std::make_unique<metrics::HealthMonitor>(
        metrics::HealthMonitor::Options{.csv_name = spec_.outputs.metrics});
    monitor_->start(platform_->sim(), registry_);
  }
}

void ExperimentRunner::setup_faults() {
  faulted_.assign(spec_.swarm.clients, false);
  rejoins_.assign(spec_.swarm.clients, false);
  if (spec_.faults.empty()) return;

  // Churn schedules expand first (forked off the platform RNG at exactly
  // this point of construction — the pre-refactor churn bench's order), and
  // the explicit plan appends behind them; the stable time sort then
  // reproduces the bench's spec order exactly.
  fault::FaultPlan plan;
  if (spec_.faults.churn.enabled) {
    const ChurnDirective& d = spec_.faults.churn;
    Rng churn_rng = platform_->rng().fork(d.rng_stream);
    fault::ChurnConfig churn;
    churn.first_node = d.first_node.value_or(first_client_vnode_);
    churn.last_node = d.last_node.value_or(first_client_vnode_ +
                                           spec_.swarm.clients - 1);
    churn.fraction = d.fraction;
    churn.window_start = SimTime::zero() + d.window_start;
    churn.window_end = SimTime::zero() + d.window_end;
    churn.rejoin_fraction = d.rejoin_fraction;
    churn.rejoin_min = d.rejoin_min;
    churn.rejoin_max = d.rejoin_max;
    churn.leave_fraction = d.leave_fraction;
    plan = fault::FaultPlan::churn(churn, churn_rng);
  }
  plan.append(spec_.faults.plan);
  plan.sort();

  // Which clients fail, and which of those come back.
  for (const fault::FaultSpec& fault_spec : plan.specs()) {
    if (fault_spec.kind != fault::FaultKind::kCrash &&
        fault_spec.kind != fault::FaultKind::kLeave) {
      continue;
    }
    ++node_failures_;
    if (fault_spec.node < first_client_vnode_ ||
        fault_spec.node >= first_client_vnode_ + spec_.swarm.clients) {
      continue;  // seeder/tracker fault: no survivor accounting
    }
    faulted_[fault_spec.node - first_client_vnode_] = true;
    rejoins_[fault_spec.node - first_client_vnode_] = fault_spec.rejoin;
  }
  std::printf("# plan: %zu faults, %zu node failures (%zu clients)\n",
              plan.size(), node_failures_, spec_.swarm.clients);

  injector_ = std::make_unique<fault::FaultInjector>(*platform_,
                                                     std::move(plan));
  injector_->bind_metrics(registry_);
  // vnode layout contract: 0 = tracker, 1..seeders = seeders, rest clients.
  auto process_of = [this](std::size_t v) -> bt::Client* {
    if (v >= first_client_vnode_) {
      return &swarm_->client(v - first_client_vnode_);
    }
    if (v >= 1) return &swarm_->seeder(v - 1);
    return nullptr;  // tracker: infrastructure-only, use tracker_outage
  };
  injector_->set_node_hooks(fault::NodeHooks{
      .on_crash = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->crash();
      },
      .on_leave = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->stop();
      },
      .on_rejoin = [process_of](std::size_t v) {
        if (bt::Client* c = process_of(v)) c->start();
      }});
  injector_->set_service_hooks(fault::ServiceHooks{
      .on_tracker_outage = [this] { swarm_->tracker().set_online(false); },
      .on_tracker_restore = [this] { swarm_->tracker().set_online(true); }});
  injector_->arm();
}

int ExperimentRunner::execute() {
  P2PLAB_ASSERT(set_up_);
  switch (spec_.workload) {
    case WorkloadType::kSwarm: return execute_swarm();
    case WorkloadType::kPingSweep: return execute_ping();
    case WorkloadType::kValidate: return execute_validate();
  }
  return 1;
}

int ExperimentRunner::run() {
  setup();
  return execute();
}

double ExperimentRunner::median_completion_sec() const {
  metrics::Distribution d;
  for (const double t : swarm_->completion_times_sec()) d.add(t);
  return d.count() > 0 ? d.median() : -1.0;
}

int ExperimentRunner::execute_swarm() {
  const auto wall_start = std::chrono::steady_clock::now();
  auto count_survivors = [this] {
    std::size_t done = 0;
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      done += (!faulted_[c] || rejoins_[c]) &&
              swarm_->client(c).has_completed();
    }
    return done;
  };
  std::size_t expected_survivors = 0;
  for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
    expected_survivors += !faulted_[c] || rejoins_[c];
  }

  switch (spec_.engine.stop) {
    case StopMode::kAllComplete:
      swarm_->run();
      break;
    case StopMode::kSurvivorsComplete:
      platform_->run(SimTime::zero() + spec_.swarm.max_duration,
                     [&] { return count_survivors() == expected_survivors; },
                     Duration::sec(5));
      break;
    case StopMode::kTime:
      platform_->run(SimTime::zero() + spec_.engine.run_for);
      break;
  }
  const double wall_seconds = wall_seconds_since(wall_start);
  end_of_run_ = platform_->now();
  if (monitor_) {
    monitor_->stop();
    monitor_->print_report();
  }
  std::printf("# %zu/%zu clients complete at t=%.0f s; %llu events; "
              "%zu pnodes x %zu vnodes\n",
              swarm_->completed_count(), swarm_->client_count(),
              end_of_run_.to_seconds(),
              static_cast<unsigned long long>(
                  platform_->dispatched_events()),
              platform_->physical_node_count(), platform_->folding_ratio());

  int failures = 0;
  if (spec_.engine.check_invariants) {
    auto check = [&](bool ok, const char* what) {
      std::printf("# check %-46s %s\n", what, ok ? "ok" : "FAIL");
      if (!ok) ++failures;
    };
    if (spec_.engine.stop == StopMode::kSurvivorsComplete) {
      const std::size_t survivors = count_survivors();
      check(survivors == expected_survivors,
            "churn: every surviving leecher completes");
      std::printf("# survivors complete: %zu/%zu (of %zu clients)\n",
                  survivors, expected_survivors, spec_.swarm.clients);
    } else {
      check(swarm_->all_complete(), "all clients complete");
    }
    if (injector_) {
      check(injector_->stats().unrecovered() == 0,
            "every injected fault recovered");
      std::printf("# faults: injected=%llu recovered=%llu\n",
                  static_cast<unsigned long long>(
                      injector_->stats().injected),
                  static_cast<unsigned long long>(
                      injector_->stats().recovered));
    }
    // Nothing wedged: stop the world and the event queue must drain — any
    // surviving retransmit timer or periodic task would keep it non-empty.
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      swarm_->client(c).stop();
    }
    for (std::size_t s = 0; s < spec_.swarm.seeders; ++s) {
      swarm_->seeder(s).stop();
    }
    swarm_->tracker().set_online(false);
    check(platform_->run(platform_->now() + Duration::sec(700)) ==
              core::Platform::RunResult::kDrained,
          "event queue drains after stop (no wedged timers)");
  }

  write_swarm_outputs(wall_seconds);
  return failures == 0 ? 0 : 1;
}

void ExperimentRunner::write_swarm_outputs(double wall_seconds) {
  const OutputsSection& out = spec_.outputs;
  if (!out.bench_json.empty()) {
    write_bench_json(wall_seconds,
                     static_cast<double>(spec_.swarm.clients));
  }
  // Time-series outputs sample on the grid up to one step past the stop
  // condition (not past the invariant drain).
  const Duration grid = out.grid;
  const SimTime grid_end = end_of_run_ + grid;

  if (!out.progress_envelope.empty()) {
    metrics::CsvWriter envelope(
        out.progress_envelope,
        {"time_s", "pct_min", "pct_p25", "pct_median", "pct_p75", "pct_max",
         "clients_complete"});
    envelope.comment("seed=" + std::to_string(spec_.swarm.content_seed));
    for (SimTime t = SimTime::zero(); t <= grid_end; t += grid) {
      metrics::Distribution pct;
      std::size_t complete = 0;
      for (std::size_t i = 0; i < swarm_->client_count(); ++i) {
        pct.add(swarm_->client(i).progress().value_at(t));
        complete += swarm_->client(i).has_completed() &&
                    swarm_->client(i).completion_time() <= t;
      }
      envelope.row({t.to_seconds(), pct.min(), pct.quantile(0.25),
                    pct.median(), pct.quantile(0.75), pct.max(),
                    static_cast<double>(complete)});
    }
  }

  if (!out.completions.empty()) {
    metrics::CsvWriter completions(out.completions,
                                   {"client", "start_s", "completion_s"});
    for (std::size_t i = 0; i < swarm_->client_count(); ++i) {
      completions.row(
          {static_cast<double>(i),
           static_cast<double>(i) * spec_.swarm.start_interval.to_seconds(),
           swarm_->client(i).has_completed()
               ? swarm_->client(i).completion_time().to_seconds()
               : -1.0});
    }
    if (!out.completions_note.empty()) {
      completions.comment(out.completions_note);
    }
  }

  if (!out.sampled_progress.empty()) {
    metrics::CsvWriter sampled(out.sampled_progress,
                               {"client", "time_s", "pct_done"});
    sampled.comment("seed=" + std::to_string(spec_.swarm.content_seed));
    const std::size_t every = out.sampled_every;
    for (std::size_t c = every; c <= swarm_->client_count(); c += every) {
      const auto& series = swarm_->client(c - 1).progress();
      for (SimTime t = SimTime::zero(); t <= grid_end; t += grid) {
        sampled.row({static_cast<double>(c), t.to_seconds(),
                     series.value_at(t)});
      }
    }
  }

  if (!out.completion_curve.empty()) {
    metrics::CsvWriter curve_csv(out.completion_curve,
                                 {"time_s", "clients_complete"});
    const auto curve = swarm_->completion_curve();
    for (const auto& [t, count] : curve.points()) {
      curve_csv.row({t.to_seconds(), count});
    }
    if (!out.completion_curve_note.empty()) {
      curve_csv.comment(out.completion_curve_note);
    }
  }

  if (!out.summary.empty()) {
    metrics::CsvWriter summary(out.summary,
                               {"median_completion_s", "baseline_median_s",
                                "failed_nodes", "rejoined_nodes",
                                "faults_injected", "faults_recovered"});
    std::size_t rejoined = 0;
    for (std::size_t c = 0; c < spec_.swarm.clients; ++c) {
      rejoined += rejoins_[c];
    }
    summary.row({median_completion_sec(), baseline_median_,
                 static_cast<double>(node_failures_),
                 static_cast<double>(rejoined),
                 static_cast<double>(injector_ ? injector_->stats().injected
                                               : 0),
                 static_cast<double>(injector_ ? injector_->stats().recovered
                                               : 0)});
  }

  if (!out.trace_file.empty()) {
    platform_->flush_trace_to_results(out.trace_file.c_str());
  }
  write_profile_outputs();
  if (out.report) metrics::print_registry_report(registry_);
}

void ExperimentRunner::write_profile_outputs() {
  if (!platform_->profiling()) return;
  // Fold first so the rollup shows up in the registry report and any
  // later metrics consumers; gauges are set, not added — idempotent.
  platform_->profiler().fold_into(registry_);
  platform_->flush_profile_to_results(
      spec_.resolved_profile_trace().c_str());
}

int ExperimentRunner::execute_ping() {
  const auto wall_start = std::chrono::steady_clock::now();
  const OutputsSection& out = spec_.outputs;
  std::unique_ptr<metrics::CsvWriter> csv;
  if (!out.csv.empty()) {
    csv = std::make_unique<metrics::CsvWriter>(
        out.csv, std::vector<std::string>{"rules", "rtt_avg_ms",
                                          "rtt_min_ms", "rtt_max_ms"});
    csv->comment("seed=" + std::to_string(spec_.engine.seed));
  }

  const Ipv4Addr a = platform_->network().host(0).admin_ip();
  const Ipv4Addr b = platform_->network().host(1).admin_ip();
  std::uint32_t installed = 0;
  std::uint32_t next_rule_number = 1000;
  for (std::uint32_t rules = 0; rules <= spec_.ping.rules_max;
       rules += spec_.ping.rules_step) {
    if (rules > installed) {
      platform_->network().host(0).firewall().add_filler_rules(
          next_rule_number, rules - installed);
      next_rule_number += rules - installed;
      installed = rules;
    }
    metrics::Summary rtt;
    for (std::size_t probe = 0; probe < spec_.ping.probes; ++probe) {
      platform_->ping(a, b, [&](Duration d) { rtt.add(d.to_millis()); });
      platform_->sim().run();
    }
    if (csv) {
      csv->row({std::to_string(rules), std::to_string(rtt.mean()),
                std::to_string(rtt.min()), std::to_string(rtt.max())});
    }
  }
  if (csv && !out.csv_note.empty()) csv->comment(out.csv_note);
  end_of_run_ = platform_->now();
  if (!out.bench_json.empty()) {
    write_bench_json(wall_seconds_since(wall_start),
                     static_cast<double>(spec_.ping.rules_max));
  }
  write_profile_outputs();
  if (out.report) metrics::print_registry_report(registry_);
  return 0;
}

// The standardized BENCH_*.json run summary (core/bench_report.hpp): one
// flat JSON object with the scenario name, the workload's scale field
// (clients / rules_max / flows) and the run economics.
void ExperimentRunner::write_bench_json(double wall_seconds,
                                        double scale_field) {
  const char* scale_key =
      spec_.workload == WorkloadType::kSwarm
          ? "clients"
          : spec_.workload == WorkloadType::kPingSweep ? "rules_max"
                                                       : "flows";
  core::write_bench_json(
      spec_.name, spec_.outputs.bench_json,
      core::bench_fields(*platform_, scale_key, scale_field,
                         spec_.engine.seed, wall_seconds));
}

}  // namespace p2plab::scenario
