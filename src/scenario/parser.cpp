#include "scenario/parser.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "topology/parser.hpp"

namespace p2plab::scenario {

namespace {

/// Whitespace tokenizer with '#' comments and double-quoted tokens (quotes
/// keep spaces and '#'). Returns nullopt on an unterminated quote.
std::optional<std::vector<std::string>> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string token;
  bool in_quotes = false;
  bool quoted = false;  // current token came from quotes (may be empty)
  auto flush = [&] {
    if (!token.empty() || quoted) tokens.push_back(token);
    token.clear();
    quoted = false;
  };
  for (const char c : line) {
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
      } else {
        token.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      quoted = true;
      continue;
    }
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  if (in_quotes) return std::nullopt;
  flush();
  return tokens;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_probability(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 0 ||
      value > 1) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "on" || text == "true" || text == "1") return true;
  if (text == "off" || text == "false" || text == "0") return false;
  return std::nullopt;
}

/// "key=value" -> value for the expected key.
std::optional<std::string_view> value_of(std::string_view token,
                                         std::string_view key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return std::nullopt;
  }
  return token.substr(key.size() + 1);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string resolve_path(const std::string& base_dir,
                         const std::string& path) {
  if (base_dir.empty() || (!path.empty() && path[0] == '/')) return path;
  return base_dir + "/" + path;
}

struct RawLine {
  int line = 0;
  std::string text;
};

/// Reassemble inline [topology]/[faults] lines at their original line
/// numbers (blank padding in between), so the sub-parser's "line N"
/// messages point into the enclosing .scn file.
std::string padded_text(const std::vector<RawLine>& lines) {
  std::string text;
  int emitted = 0;
  for (const RawLine& raw : lines) {
    while (emitted < raw.line - 1) {
      text += '\n';
      ++emitted;
    }
    text += raw.text;
    text += '\n';
    ++emitted;
  }
  return text;
}

struct KvEntry {
  std::string key;
  std::string value;
  std::string source;  // "line 12" or "--set workload.clients=8"
  bool consumed = false;
};

struct KvSection {
  const char* name = "";
  std::vector<KvEntry> entries;

  KvEntry* find(std::string_view key) {
    for (KvEntry& entry : entries) {
      if (entry.key == key) return &entry;
    }
    return nullptr;
  }
  KvEntry* take(std::string_view key) {
    KvEntry* entry = find(key);
    if (entry != nullptr) entry->consumed = true;
    return entry;
  }
  const KvEntry* first_unconsumed() const {
    for (const KvEntry& entry : entries) {
      if (!entry.consumed) return &entry;
    }
    return nullptr;
  }
};

/// Everything collected in the first (lexical) pass.
struct Collected {
  std::string name;

  bool topo_section = false;
  std::optional<RawLine> topo_auto;
  std::vector<std::string> topo_auto_tokens;
  std::optional<RawLine> topo_include;  // text = path
  std::vector<RawLine> topo_inline;

  bool faults_section = false;
  std::optional<RawLine> faults_include;  // text = path
  std::vector<RawLine> faults_inline;
  std::optional<RawLine> churn_directive;
  std::vector<std::string> churn_tokens;

  KvSection workload{"workload", {}};
  KvSection engine{"engine", {}};
  KvSection outputs{"outputs", {}};
};

const char* const kSwarmKeys[] = {"clients",       "seeders",
                                  "file_size",     "piece_length",
                                  "start_interval", "content_seed",
                                  "verify_hashes", "max_duration"};
const char* const kPingKeys[] = {"nodes", "rules_max", "rules_step",
                                 "probes"};
const char* const kValidateKeys[] = {
    "nodes",          "flows",         "transfer",
    "message",        "loss_datagrams", "ge_p_good_bad",
    "ge_p_bad_good",  "ge_loss_bad",   "goodput_tolerance",
    "rtt_tolerance",  "loss_tolerance", "jain_min",
    "expect_bandwidth"};
const char* const kSwarmOutputKeys[] = {
    "grid",          "progress_envelope", "completions",
    "completions_note", "sampled_progress",  "sampled_every",
    "completion_curve", "completion_curve_note", "summary",
    "metrics",       "trace"};
const char* const kPingOutputKeys[] = {"csv", "csv_note"};
const char* const kValidateOutputKeys[] = {"accuracy_json"};

template <std::size_t N>
bool contains(const char* const (&keys)[N], std::string_view key) {
  for (const char* candidate : keys) {
    if (key == candidate) return true;
  }
  return false;
}

}  // namespace

std::optional<DataSize> parse_data_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double multiplier = 1.0;
  std::string_view digits = text;
  const char suffix = text.back();
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1024.0;
    digits.remove_suffix(1);
  } else if (suffix == 'M') {
    multiplier = 1024.0 * 1024.0;
    digits.remove_suffix(1);
  } else if (suffix == 'G') {
    multiplier = 1024.0 * 1024.0 * 1024.0;
    digits.remove_suffix(1);
  }
  if (digits.empty()) return std::nullopt;
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
      value <= 0) {
    return std::nullopt;
  }
  return DataSize::bytes(static_cast<std::uint64_t>(value * multiplier));
}

ParseResult parse_scenario(std::string_view text,
                           const ParseOptions& options) {
  Collected c;
  ParseResult result;
  auto fail = [&](const std::string& source, const std::string& message) {
    result.spec.reset();
    result.error = source + ": " + message;
    return result;
  };
  auto fail_line = [&](int line, const std::string& message) {
    return fail("line " + std::to_string(line), message);
  };

  // -- pass 1: lexical — route every line to its section -------------------
  enum class Section { kNone, kTopology, kWorkload, kFaults, kEngine,
                       kOutputs };
  Section section = Section::kNone;
  bool seen[5] = {false, false, false, false, false};
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (!tokens) return fail_line(line_number, "unterminated quote");
    if (tokens->empty()) continue;
    const std::string& head = tokens->front();

    if (head.size() >= 2 && head.front() == '[' && head.back() == ']') {
      if (tokens->size() != 1) {
        return fail_line(line_number, "unexpected tokens after " + head);
      }
      const std::string name = head.substr(1, head.size() - 2);
      if (c.name.empty()) {
        return fail_line(line_number,
                         "expected 'scenario <name>' before any section");
      }
      std::size_t index = 0;
      if (name == "topology") {
        section = Section::kTopology;
        index = 0;
        c.topo_section = true;
      } else if (name == "workload") {
        section = Section::kWorkload;
        index = 1;
      } else if (name == "faults") {
        section = Section::kFaults;
        index = 2;
        c.faults_section = true;
      } else if (name == "engine") {
        section = Section::kEngine;
        index = 3;
      } else if (name == "outputs") {
        section = Section::kOutputs;
        index = 4;
      } else {
        return fail_line(line_number, "unknown section [" + name + "]");
      }
      if (seen[index]) {
        return fail_line(line_number, "duplicate section [" + name + "]");
      }
      seen[index] = true;
      continue;
    }

    switch (section) {
      case Section::kNone: {
        if (head == "scenario") {
          if (!c.name.empty()) {
            return fail_line(line_number, "duplicate 'scenario' directive");
          }
          if (tokens->size() != 2 || (*tokens)[1].empty()) {
            return fail_line(line_number, "scenario <name>");
          }
          c.name = (*tokens)[1];
          continue;
        }
        return fail_line(line_number,
                         c.name.empty()
                             ? "expected 'scenario <name>' before any section"
                             : "directive '" + head + "' outside a section");
      }
      case Section::kTopology: {
        if (head == "auto") {
          if (c.topo_auto) {
            return fail_line(line_number,
                             "duplicate 'auto' directive in [topology]");
          }
          c.topo_auto = RawLine{line_number, line};
          c.topo_auto_tokens = *tokens;
          continue;
        }
        if (head == "include") {
          if (tokens->size() != 2) {
            return fail_line(line_number, "include <path>");
          }
          if (c.topo_include) {
            return fail_line(line_number,
                             "duplicate 'include' in [topology]");
          }
          c.topo_include = RawLine{line_number, (*tokens)[1]};
          continue;
        }
        c.topo_inline.push_back(RawLine{line_number, line});
        continue;
      }
      case Section::kFaults: {
        if (head == "include") {
          if (tokens->size() != 2) {
            return fail_line(line_number, "include <path>");
          }
          if (c.faults_include) {
            return fail_line(line_number, "duplicate 'include' in [faults]");
          }
          c.faults_include = RawLine{line_number, (*tokens)[1]};
          continue;
        }
        if (head == "churn") {
          if (c.churn_directive) {
            return fail_line(line_number,
                             "duplicate 'churn' directive in [faults]");
          }
          c.churn_directive = RawLine{line_number, line};
          c.churn_tokens = *tokens;
          continue;
        }
        c.faults_inline.push_back(RawLine{line_number, line});
        continue;
      }
      case Section::kWorkload:
      case Section::kEngine:
      case Section::kOutputs: {
        KvSection& kv = section == Section::kWorkload ? c.workload
                        : section == Section::kEngine ? c.engine
                                                      : c.outputs;
        if (tokens->size() != 2) {
          return fail_line(line_number, "expected '<key> <value>' in [" +
                                            std::string(kv.name) + "]");
        }
        if (kv.find(head) != nullptr) {
          return fail_line(line_number, "duplicate key '" + head + "' in [" +
                                            std::string(kv.name) + "]");
        }
        kv.entries.push_back(KvEntry{
            head, (*tokens)[1], "line " + std::to_string(line_number)});
        continue;
      }
    }
  }
  if (c.name.empty()) {
    return fail_line(0, "missing 'scenario <name>' directive");
  }

  // -- pass 2: apply --set overrides ---------------------------------------
  for (const std::string& override_arg : options.overrides) {
    const std::string source = "--set " + override_arg;
    const auto eq = override_arg.find('=');
    const auto dot = override_arg.find('.');
    if (eq == std::string::npos || dot == std::string::npos || dot > eq ||
        dot == 0 || dot + 1 == eq) {
      return fail(source, "expected section.key=value");
    }
    const std::string sect = override_arg.substr(0, dot);
    const std::string key = override_arg.substr(dot + 1, eq - dot - 1);
    const std::string value = override_arg.substr(eq + 1);
    KvSection* kv = nullptr;
    if (sect == "workload") {
      kv = &c.workload;
    } else if (sect == "engine") {
      kv = &c.engine;
    } else if (sect == "outputs") {
      kv = &c.outputs;
    } else if (sect == "topology" || sect == "faults") {
      return fail(source, "section [" + sect +
                              "] has no key=value entries to override");
    } else {
      return fail(source, "unknown section '" + sect + "'");
    }
    if (KvEntry* existing = kv->find(key)) {
      existing->value = value;
      existing->source = source;
    } else {
      kv->entries.push_back(KvEntry{key, value, source});
    }
  }

  // -- pass 3: interpret ---------------------------------------------------
  ScenarioSpec spec;
  spec.name = c.name;

  // Typed readers; every error names the source (file line or --set flag).
  std::string error;
  auto bad = [&](const KvEntry& entry, const std::string& message) {
    error = entry.source + ": " + message;
    return false;
  };
  auto take_count = [&](KvSection& kv, const char* key, auto&& setter) {
    if (KvEntry* entry = kv.take(key)) {
      const auto value = parse_u64(entry->value);
      if (!value) {
        return bad(*entry, "bad count '" + entry->value + "' for " +
                               std::string(key));
      }
      setter(*value, *entry);
    }
    return true;
  };
  auto take_size = [&](KvSection& kv, const char* key, auto&& setter) {
    if (KvEntry* entry = kv.take(key)) {
      const auto value = parse_data_size(entry->value);
      if (!value) {
        return bad(*entry, "bad size '" + entry->value + "' for " +
                               std::string(key) + " (use k/M/G suffixes)");
      }
      setter(*value);
    }
    return true;
  };
  auto take_duration = [&](KvSection& kv, const char* key, auto&& setter) {
    if (KvEntry* entry = kv.take(key)) {
      const auto value = fault::parse_scenario_duration(entry->value);
      if (!value) {
        return bad(*entry, "bad duration '" + entry->value + "' for " +
                               std::string(key));
      }
      setter(*value, *entry);
    }
    return true;
  };
  auto take_bool = [&](KvSection& kv, const char* key, auto&& setter) {
    if (KvEntry* entry = kv.take(key)) {
      const auto value = parse_bool(entry->value);
      if (!value) {
        return bad(*entry, "bad value '" + entry->value + "' for " +
                               std::string(key) + " (expected on|off)");
      }
      setter(*value);
    }
    return true;
  };
  auto take_string = [&](KvSection& kv, const char* key, std::string* out) {
    if (KvEntry* entry = kv.take(key)) *out = entry->value;
    return true;
  };

  // [workload]
  if (KvEntry* entry = c.workload.take("type")) {
    if (entry->value == "swarm") {
      spec.workload = WorkloadType::kSwarm;
    } else if (entry->value == "ping_sweep") {
      spec.workload = WorkloadType::kPingSweep;
    } else if (entry->value == "validate") {
      spec.workload = WorkloadType::kValidate;
    } else {
      return fail(entry->source,
                  "unknown workload type '" + entry->value + "'");
    }
  }
  const bool is_swarm = spec.workload == WorkloadType::kSwarm;
  const bool is_ping = spec.workload == WorkloadType::kPingSweep;
  bool ok = true;
  auto take_probability = [&](KvSection& kv, const char* key, double* out) {
    if (KvEntry* entry = kv.take(key)) {
      const auto value = parse_probability(entry->value);
      if (!value) {
        return bad(*entry, "bad value '" + entry->value + "' for " +
                               std::string(key) + " (expected 0..1)");
      }
      *out = *value;
    }
    return true;
  };
  if (is_swarm) {
    ok = ok && take_count(c.workload, "clients", [&](std::uint64_t v,
                                                     const KvEntry&) {
      spec.swarm.clients = static_cast<std::size_t>(v);
    });
    ok = ok && take_count(c.workload, "seeders", [&](std::uint64_t v,
                                                     const KvEntry&) {
      spec.swarm.seeders = static_cast<std::size_t>(v);
    });
    ok = ok && take_size(c.workload, "file_size",
                         [&](DataSize v) { spec.swarm.file_size = v; });
    ok = ok && take_size(c.workload, "piece_length",
                         [&](DataSize v) { spec.swarm.piece_length = v; });
    ok = ok && take_duration(c.workload, "start_interval",
                             [&](Duration v, const KvEntry&) {
                               spec.swarm.start_interval = v;
                             });
    ok = ok && take_count(c.workload, "content_seed",
                          [&](std::uint64_t v, const KvEntry&) {
                            spec.swarm.content_seed = v;
                          });
    ok = ok && take_bool(c.workload, "verify_hashes",
                         [&](bool v) { spec.swarm.verify_hashes = v; });
    ok = ok && take_duration(c.workload, "max_duration",
                             [&](Duration v, const KvEntry&) {
                               spec.swarm.max_duration = v;
                             });
  } else if (is_ping) {
    bool nodes_ok = true;
    const KvEntry* nodes_entry = nullptr;
    ok = ok && take_count(c.workload, "nodes",
                          [&](std::uint64_t v, const KvEntry& entry) {
                            spec.ping.nodes = static_cast<std::size_t>(v);
                            nodes_entry = &entry;
                            nodes_ok = v >= 2;
                          });
    if (ok && !nodes_ok) {
      return fail(nodes_entry->source, "ping_sweep needs nodes >= 2");
    }
    ok = ok && take_count(c.workload, "rules_max",
                          [&](std::uint64_t v, const KvEntry&) {
                            spec.ping.rules_max =
                                static_cast<std::uint32_t>(v);
                          });
    const KvEntry* step_entry = nullptr;
    ok = ok && take_count(c.workload, "rules_step",
                          [&](std::uint64_t v, const KvEntry& entry) {
                            spec.ping.rules_step =
                                static_cast<std::uint32_t>(v);
                            step_entry = &entry;
                          });
    if (ok && step_entry != nullptr && spec.ping.rules_step == 0) {
      return fail(step_entry->source, "rules_step must be positive");
    }
    ok = ok && take_count(c.workload, "probes",
                          [&](std::uint64_t v, const KvEntry&) {
                            spec.ping.probes = static_cast<std::size_t>(v);
                          });
  } else {
    // validate (the accuracy harness)
    bool nodes_ok = true;
    const KvEntry* nodes_entry = nullptr;
    ok = ok && take_count(c.workload, "nodes",
                          [&](std::uint64_t v, const KvEntry& entry) {
                            spec.validate.nodes = static_cast<std::size_t>(v);
                            nodes_entry = &entry;
                            nodes_ok = v >= 3;
                          });
    if (ok && !nodes_ok) {
      return fail(nodes_entry->source, "validate needs nodes >= 3");
    }
    bool flows_ok = true;
    const KvEntry* flows_entry = nullptr;
    ok = ok && take_count(c.workload, "flows",
                          [&](std::uint64_t v, const KvEntry& entry) {
                            spec.validate.flows = static_cast<std::size_t>(v);
                            flows_entry = &entry;
                            flows_ok = v >= 1;
                          });
    if (ok && !flows_ok) {
      return fail(flows_entry->source, "validate needs flows >= 1");
    }
    ok = ok && take_size(c.workload, "transfer",
                         [&](DataSize v) { spec.validate.transfer = v; });
    ok = ok && take_size(c.workload, "message",
                         [&](DataSize v) { spec.validate.message = v; });
    ok = ok && take_count(c.workload, "loss_datagrams",
                          [&](std::uint64_t v, const KvEntry&) {
                            spec.validate.loss_datagrams =
                                static_cast<std::size_t>(v);
                          });
    ok = ok && take_probability(c.workload, "ge_p_good_bad",
                                &spec.validate.ge_p_good_bad);
    ok = ok && take_probability(c.workload, "ge_p_bad_good",
                                &spec.validate.ge_p_bad_good);
    ok = ok && take_probability(c.workload, "ge_loss_bad",
                                &spec.validate.ge_loss_bad);
    ok = ok && take_probability(c.workload, "goodput_tolerance",
                                &spec.validate.goodput_tolerance);
    ok = ok && take_probability(c.workload, "rtt_tolerance",
                                &spec.validate.rtt_tolerance);
    ok = ok && take_probability(c.workload, "loss_tolerance",
                                &spec.validate.loss_tolerance);
    ok = ok && take_probability(c.workload, "jain_min",
                                &spec.validate.jain_min);
    if (ok) {
      if (KvEntry* entry = c.workload.take("expect_bandwidth")) {
        const auto bw = topology::parse_bandwidth(entry->value);
        if (!bw) {
          return fail(entry->source, "bad bandwidth '" + entry->value +
                                         "' for expect_bandwidth");
        }
        spec.validate.expect_bandwidth = *bw;
      }
      if (spec.validate.flows + 1 > spec.validate.nodes) {
        const KvEntry* blame =
            flows_entry != nullptr ? flows_entry : nodes_entry;
        return fail(blame != nullptr ? blame->source : "[workload]",
                    "validate needs nodes > flows (a fairness sink besides "
                    "the sources)");
      }
    }
  }
  if (!ok) {
    result.spec.reset();
    result.error = error;
    return result;
  }
  if (const KvEntry* stray = c.workload.first_unconsumed()) {
    const bool other_type =
        is_swarm ? (contains(kPingKeys, stray->key) ||
                    contains(kValidateKeys, stray->key))
        : is_ping ? (contains(kSwarmKeys, stray->key) ||
                     contains(kValidateKeys, stray->key))
                  : (contains(kSwarmKeys, stray->key) ||
                     contains(kPingKeys, stray->key));
    if (other_type) {
      return fail(stray->source,
                  "key '" + stray->key + "' is not valid for workload type " +
                      workload_type_name(spec.workload));
    }
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [workload]");
  }

  // [engine]
  ok = take_count(c.engine, "shards", [&](std::uint64_t v, const KvEntry&) {
    spec.engine.shards = static_cast<std::size_t>(v);
  });
  const KvEntry* transport_entry = c.engine.take("transport");
  if (ok && transport_entry != nullptr) {
    if (transport_entry->value == "flow") {
      spec.engine.transport = TransportModel::kFlow;
    } else if (transport_entry->value == "tcp") {
      spec.engine.transport = TransportModel::kTcp;
    } else {
      return fail(transport_entry->source,
                  "unknown transport '" + transport_entry->value +
                      "' (tcp|flow)");
    }
  }
  const KvEntry* pnodes_entry = c.engine.take("physical_nodes");
  if (ok && pnodes_entry != nullptr && pnodes_entry->value != "auto") {
    const auto value = parse_u64(pnodes_entry->value);
    if (!value || *value == 0) {
      return fail(pnodes_entry->source,
                  "bad count '" + pnodes_entry->value +
                      "' for physical_nodes (a positive number, or auto)");
    }
    spec.engine.physical_nodes = static_cast<std::size_t>(*value);
  }
  const KvEntry* fold_entry = nullptr;
  ok = ok && take_count(c.engine, "fold",
                        [&](std::uint64_t v, const KvEntry& entry) {
                          spec.engine.fold = static_cast<std::size_t>(v);
                          fold_entry = &entry;
                        });
  if (ok && fold_entry != nullptr) {
    if (*spec.engine.fold == 0) {
      return fail(fold_entry->source, "fold must be positive");
    }
    if (spec.engine.physical_nodes) {
      return fail(fold_entry->source,
                  "fold and physical_nodes are mutually exclusive");
    }
  }
  ok = ok && take_count(c.engine, "seed",
                        [&](std::uint64_t v, const KvEntry&) {
                          spec.engine.seed = v;
                        });
  const KvEntry* stop_entry = c.engine.take("stop");
  if (ok && stop_entry != nullptr) {
    if (stop_entry->value == "all_complete") {
      spec.engine.stop = StopMode::kAllComplete;
    } else if (stop_entry->value == "survivors_complete") {
      spec.engine.stop = StopMode::kSurvivorsComplete;
    } else if (stop_entry->value == "time") {
      spec.engine.stop = StopMode::kTime;
    } else {
      return fail(stop_entry->source,
                  "unknown stop mode '" + stop_entry->value +
                      "' (all_complete|survivors_complete|time)");
    }
  }
  const KvEntry* run_for_entry = nullptr;
  ok = ok && take_duration(c.engine, "run_for",
                           [&](Duration v, const KvEntry& entry) {
                             spec.engine.run_for = v;
                             run_for_entry = &entry;
                           });
  ok = ok && take_bool(c.engine, "check_invariants",
                       [&](bool v) { spec.engine.check_invariants = v; });
  ok = ok && take_bool(c.engine, "trace",
                       [&](bool v) { spec.engine.trace = v; });
  ok = ok && take_bool(c.engine, "profile",
                       [&](bool v) { spec.engine.profile = v; });
  ok = ok && take_bool(c.engine, "pin",
                       [&](bool v) { spec.engine.pin_workers = v; });
  if (!ok) {
    result.spec.reset();
    result.error = error;
    return result;
  }
  if (spec.engine.stop == StopMode::kTime &&
      spec.engine.run_for <= Duration::zero()) {
    return fail(stop_entry != nullptr ? stop_entry->source : "[engine]",
                "stop=time requires run_for");
  }
  if (run_for_entry != nullptr && spec.engine.stop != StopMode::kTime) {
    return fail(run_for_entry->source, "run_for requires stop=time");
  }
  if (const KvEntry* stray = c.engine.first_unconsumed()) {
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [engine]");
  }

  // [outputs] — the workload decides which keys make sense; the others
  // fall through to the "not valid for workload type" error below.
  ok = true;
  if (is_swarm) {
    const KvEntry* grid_entry = nullptr;
    ok = take_duration(c.outputs, "grid",
                       [&](Duration v, const KvEntry& entry) {
                         spec.outputs.grid = v;
                         grid_entry = &entry;
                       });
    if (ok && grid_entry != nullptr &&
        spec.outputs.grid <= Duration::zero()) {
      return fail(grid_entry->source, "grid must be positive");
    }
    ok = ok && take_string(c.outputs, "progress_envelope",
                           &spec.outputs.progress_envelope);
    ok = ok &&
         take_string(c.outputs, "completions", &spec.outputs.completions);
    ok = ok && take_string(c.outputs, "completions_note",
                           &spec.outputs.completions_note);
    ok = ok && take_string(c.outputs, "sampled_progress",
                           &spec.outputs.sampled_progress);
    const KvEntry* every_entry = nullptr;
    ok = ok && take_count(c.outputs, "sampled_every",
                          [&](std::uint64_t v, const KvEntry& entry) {
                            spec.outputs.sampled_every =
                                static_cast<std::size_t>(v);
                            every_entry = &entry;
                          });
    if (ok && every_entry != nullptr && spec.outputs.sampled_every == 0) {
      return fail(every_entry->source, "sampled_every must be positive");
    }
    ok = ok && take_string(c.outputs, "completion_curve",
                           &spec.outputs.completion_curve);
    ok = ok && take_string(c.outputs, "completion_curve_note",
                           &spec.outputs.completion_curve_note);
    ok = ok && take_string(c.outputs, "summary", &spec.outputs.summary);
    ok = ok && take_string(c.outputs, "metrics", &spec.outputs.metrics);
    ok = ok && take_string(c.outputs, "trace", &spec.outputs.trace_file);
  } else if (is_ping) {
    ok = take_string(c.outputs, "csv", &spec.outputs.csv);
    ok = ok && take_string(c.outputs, "csv_note", &spec.outputs.csv_note);
  } else {
    ok = take_string(c.outputs, "accuracy_json",
                     &spec.outputs.accuracy_json);
  }
  ok = ok && take_string(c.outputs, "bench_json", &spec.outputs.bench_json);
  ok = ok && take_string(c.outputs, "profile_trace",
                         &spec.outputs.profile_trace);
  ok = ok && take_bool(c.outputs, "report",
                       [&](bool v) { spec.outputs.report = v; });
  if (!ok) {
    result.spec.reset();
    result.error = error;
    return result;
  }
  if (const KvEntry* stray = c.outputs.first_unconsumed()) {
    const bool other_type =
        is_swarm ? (contains(kPingOutputKeys, stray->key) ||
                    contains(kValidateOutputKeys, stray->key))
        : is_ping ? (contains(kSwarmOutputKeys, stray->key) ||
                     contains(kValidateOutputKeys, stray->key))
                  : (contains(kSwarmOutputKeys, stray->key) ||
                     contains(kPingOutputKeys, stray->key));
    if (other_type) {
      return fail(stray->source,
                  "key '" + stray->key + "' is not valid for workload type " +
                      workload_type_name(spec.workload));
    }
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [outputs]");
  }
  if (!spec.outputs.trace_file.empty()) spec.engine.trace = true;
  // Naming a profile output turns profiling on, mirroring trace.
  if (!spec.outputs.profile_trace.empty()) spec.engine.profile = true;

  // [topology]
  if (c.topo_auto &&
      (c.topo_include.has_value() || !c.topo_inline.empty())) {
    return fail_line(c.topo_auto->line,
                     "[topology] cannot mix 'auto' with other topology "
                     "sources");
  }
  if (c.topo_include && !c.topo_inline.empty()) {
    return fail_line(c.topo_include->line,
                     "[topology] cannot mix 'include' with inline "
                     "directives");
  }
  if (c.topo_auto) {
    spec.topology.source = TopologySource::kAuto;
    for (std::size_t i = 1; i < c.topo_auto_tokens.size(); ++i) {
      const std::string& token = c.topo_auto_tokens[i];
      if (const auto v = value_of(token, "down")) {
        const auto bw = topology::parse_bandwidth(*v);
        if (!bw) return fail_line(c.topo_auto->line, "bad down bandwidth");
        spec.topology.auto_link.down = *bw;
      } else if (const auto v2 = value_of(token, "up")) {
        const auto bw = topology::parse_bandwidth(*v2);
        if (!bw) return fail_line(c.topo_auto->line, "bad up bandwidth");
        spec.topology.auto_link.up = *bw;
      } else if (const auto v3 = value_of(token, "latency")) {
        const auto d = topology::parse_duration(*v3);
        if (!d) return fail_line(c.topo_auto->line, "bad latency");
        spec.topology.auto_link.latency = *d;
      } else if (const auto v4 = value_of(token, "loss")) {
        const auto p = parse_probability(*v4);
        if (!p) return fail_line(c.topo_auto->line, "bad loss rate");
        spec.topology.auto_link.loss_rate = *p;
      } else {
        return fail_line(c.topo_auto->line,
                         "unknown auto attribute '" + token + "'");
      }
    }
  } else if (c.topo_include) {
    const std::string path =
        resolve_path(options.base_dir, c.topo_include->text);
    const auto contents = read_file(path);
    if (!contents) {
      return fail_line(c.topo_include->line, "include '" +
                                                 c.topo_include->text +
                                                 "': cannot read file");
    }
    auto sub = topology::parse_topology(*contents);
    if (!sub.topology) {
      return fail_line(c.topo_include->line,
                       "include '" + c.topo_include->text + "': " +
                           sub.error);
    }
    spec.topology.source = TopologySource::kInline;
    spec.topology.built = std::move(*sub.topology);
  } else if (!c.topo_inline.empty()) {
    auto sub = topology::parse_topology(padded_text(c.topo_inline));
    if (!sub.topology) {
      result.spec.reset();
      result.error = sub.error;  // already "line N: ..." in our numbering
      return result;
    }
    spec.topology.source = TopologySource::kInline;
    spec.topology.built = std::move(*sub.topology);
  }
  if (spec.topology.built &&
      spec.topology.built->total_nodes() < spec.vnodes()) {
    return fail_line(0, "topology has " +
                            std::to_string(spec.topology.built->total_nodes()) +
                            " nodes but the workload needs " +
                            std::to_string(spec.vnodes()));
  }

  // [faults]
  if (c.faults_include && !c.faults_inline.empty()) {
    return fail_line(c.faults_include->line,
                     "[faults] cannot mix 'include' with inline directives");
  }
  if (c.faults_include) {
    const std::string path =
        resolve_path(options.base_dir, c.faults_include->text);
    const auto contents = read_file(path);
    if (!contents) {
      return fail_line(c.faults_include->line, "include '" +
                                                   c.faults_include->text +
                                                   "': cannot read file");
    }
    auto sub = fault::FaultPlan::parse(*contents);
    if (!sub.plan) {
      return fail_line(c.faults_include->line,
                       "include '" + c.faults_include->text + "': " +
                           sub.error);
    }
    spec.faults.plan = std::move(*sub.plan);
  } else if (!c.faults_inline.empty()) {
    auto sub = fault::FaultPlan::parse(padded_text(c.faults_inline));
    if (!sub.plan) {
      result.spec.reset();
      result.error = sub.error;  // already in our line numbering
      return result;
    }
    spec.faults.plan = std::move(*sub.plan);
  }
  if (c.churn_directive) {
    ChurnDirective& churn = spec.faults.churn;
    churn.enabled = true;
    bool window_seen = false;
    for (std::size_t i = 1; i < c.churn_tokens.size(); ++i) {
      const std::string& token = c.churn_tokens[i];
      const int at = c.churn_directive->line;
      if (const auto v = value_of(token, "fraction")) {
        const auto p = parse_probability(*v);
        if (!p) return fail_line(at, "bad churn fraction");
        churn.fraction = *p;
      } else if (const auto v2 = value_of(token, "window")) {
        const std::string window(*v2);
        const auto dots = window.find("..");
        if (dots == std::string::npos) {
          return fail_line(at, "churn window=START..END");
        }
        const auto start =
            fault::parse_scenario_duration(window.substr(0, dots));
        const auto end =
            fault::parse_scenario_duration(window.substr(dots + 2));
        if (!start || !end) {
          return fail_line(at, "bad churn window '" + window + "'");
        }
        if (*end < *start) {
          return fail_line(at, "churn window end before start");
        }
        churn.window_start = *start;
        churn.window_end = *end;
        window_seen = true;
      } else if (const auto v3 = value_of(token, "rejoin")) {
        const auto p = parse_probability(*v3);
        if (!p) return fail_line(at, "bad churn rejoin fraction");
        churn.rejoin_fraction = *p;
      } else if (const auto v4 = value_of(token, "rejoin_min")) {
        const auto d = fault::parse_scenario_duration(*v4);
        if (!d) return fail_line(at, "bad churn rejoin_min");
        churn.rejoin_min = *d;
      } else if (const auto v5 = value_of(token, "rejoin_max")) {
        const auto d = fault::parse_scenario_duration(*v5);
        if (!d) return fail_line(at, "bad churn rejoin_max");
        churn.rejoin_max = *d;
      } else if (const auto v6 = value_of(token, "leave")) {
        const auto p = parse_probability(*v6);
        if (!p) return fail_line(at, "bad churn leave fraction");
        churn.leave_fraction = *p;
      } else if (const auto v7 = value_of(token, "first")) {
        const auto n = parse_u64(*v7);
        if (!n) return fail_line(at, "bad churn first node");
        churn.first_node = static_cast<std::size_t>(*n);
      } else if (const auto v8 = value_of(token, "last")) {
        const auto n = parse_u64(*v8);
        if (!n) return fail_line(at, "bad churn last node");
        churn.last_node = static_cast<std::size_t>(*n);
      } else if (const auto v9 = value_of(token, "seed")) {
        const auto n = parse_u64(*v9);
        if (!n) return fail_line(at, "bad churn seed");
        churn.rng_stream = *n;
      } else {
        return fail_line(at, "unknown churn attribute '" + token + "'");
      }
    }
    if (!window_seen) {
      return fail_line(c.churn_directive->line,
                       "churn needs window=START..END");
    }
  }
  if (!spec.faults.empty() && !is_swarm) {
    const int at = c.faults_include ? c.faults_include->line
                   : c.churn_directive ? c.churn_directive->line
                   : !c.faults_inline.empty() ? c.faults_inline.front().line
                                              : 0;
    return fail_line(at, "[faults] requires workload type swarm");
  }
  if (spec.engine.stop == StopMode::kSurvivorsComplete && !is_swarm) {
    return fail(stop_entry != nullptr ? stop_entry->source : "[engine]",
                "stop=survivors_complete requires workload type swarm");
  }

  result.spec = std::move(spec);
  result.error.clear();
  return result;
}

ParseResult parse_scenario_file(const std::string& path,
                                const std::vector<std::string>& overrides) {
  const auto contents = read_file(path);
  if (!contents) {
    ParseResult result;
    result.error = "cannot read file";
    return result;
  }
  ParseOptions options;
  options.overrides = overrides;
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) options.base_dir = path.substr(0, slash);
  return parse_scenario(*contents, options);
}

}  // namespace p2plab::scenario
