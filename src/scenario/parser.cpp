#include "scenario/parser.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "scenario/workload.hpp"
#include "topology/parser.hpp"

namespace p2plab::scenario {

namespace {

/// Whitespace tokenizer with '#' comments and double-quoted tokens (quotes
/// keep spaces and '#'). Returns nullopt on an unterminated quote.
std::optional<std::vector<std::string>> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string token;
  bool in_quotes = false;
  bool quoted = false;  // current token came from quotes (may be empty)
  auto flush = [&] {
    if (!token.empty() || quoted) tokens.push_back(token);
    token.clear();
    quoted = false;
  };
  for (const char c : line) {
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
      } else {
        token.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      quoted = true;
      continue;
    }
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  if (in_quotes) return std::nullopt;
  flush();
  return tokens;
}

/// "key=value" -> value for the expected key.
std::optional<std::string_view> value_of(std::string_view token,
                                         std::string_view key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return std::nullopt;
  }
  return token.substr(key.size() + 1);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string resolve_path(const std::string& base_dir,
                         const std::string& path) {
  if (base_dir.empty() || (!path.empty() && path[0] == '/')) return path;
  return base_dir + "/" + path;
}

struct RawLine {
  int line = 0;
  std::string text;
};

/// Reassemble inline [topology]/[faults] lines at their original line
/// numbers (blank padding in between), so the sub-parser's "line N"
/// messages point into the enclosing .scn file.
std::string padded_text(const std::vector<RawLine>& lines) {
  std::string text;
  int emitted = 0;
  for (const RawLine& raw : lines) {
    while (emitted < raw.line - 1) {
      text += '\n';
      ++emitted;
    }
    text += raw.text;
    text += '\n';
    ++emitted;
  }
  return text;
}

/// Everything collected in the first (lexical) pass. KvEntry/KvSection
/// live in workload.hpp now, shared with the plugins' ParamReaders.
struct Collected {
  std::string name;

  bool topo_section = false;
  std::optional<RawLine> topo_auto;
  std::vector<std::string> topo_auto_tokens;
  std::optional<RawLine> topo_include;  // text = path
  std::vector<RawLine> topo_inline;

  bool faults_section = false;
  std::optional<RawLine> faults_include;  // text = path
  std::vector<RawLine> faults_inline;
  std::optional<RawLine> churn_directive;
  std::vector<std::string> churn_tokens;

  KvSection workload{"workload", {}};
  KvSection engine{"engine", {}};
  KvSection outputs{"outputs", {}};
};

/// The cross-type stray-key diagnostic: true when some *other* plugin
/// claims `key` in the given section, so "key 'X' is not valid for
/// workload type Y" beats a bare "unknown key". The registry is the
/// single source of truth for every plugin's key surface.
bool claimed_by_other_plugin(const WorkloadRegistry& registry,
                             const WorkloadPlugin* plugin,
                             std::string_view key, bool outputs) {
  for (const WorkloadPlugin* other : registry.plugins()) {
    if (other == plugin) continue;
    for (const char* candidate :
         outputs ? other->output_keys() : other->workload_keys()) {
      if (key == candidate) return true;
    }
  }
  return false;
}

}  // namespace

std::optional<DataSize> parse_data_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double multiplier = 1.0;
  std::string_view digits = text;
  const char suffix = text.back();
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1024.0;
    digits.remove_suffix(1);
  } else if (suffix == 'M') {
    multiplier = 1024.0 * 1024.0;
    digits.remove_suffix(1);
  } else if (suffix == 'G') {
    multiplier = 1024.0 * 1024.0 * 1024.0;
    digits.remove_suffix(1);
  }
  if (digits.empty()) return std::nullopt;
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
      value <= 0) {
    return std::nullopt;
  }
  return DataSize::bytes(static_cast<std::uint64_t>(value * multiplier));
}

ParseResult parse_scenario(std::string_view text,
                           const ParseOptions& options) {
  Collected c;
  ParseResult result;
  auto fail = [&](const std::string& source, const std::string& message) {
    result.spec.reset();
    result.error = source + ": " + message;
    return result;
  };
  auto fail_line = [&](int line, const std::string& message) {
    return fail("line " + std::to_string(line), message);
  };

  // -- pass 1: lexical — route every line to its section -------------------
  enum class Section { kNone, kTopology, kWorkload, kFaults, kEngine,
                       kOutputs };
  Section section = Section::kNone;
  bool seen[5] = {false, false, false, false, false};
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (!tokens) return fail_line(line_number, "unterminated quote");
    if (tokens->empty()) continue;
    const std::string& head = tokens->front();

    if (head.size() >= 2 && head.front() == '[' && head.back() == ']') {
      if (tokens->size() != 1) {
        return fail_line(line_number, "unexpected tokens after " + head);
      }
      const std::string name = head.substr(1, head.size() - 2);
      if (c.name.empty()) {
        return fail_line(line_number,
                         "expected 'scenario <name>' before any section");
      }
      std::size_t index = 0;
      if (name == "topology") {
        section = Section::kTopology;
        index = 0;
        c.topo_section = true;
      } else if (name == "workload") {
        section = Section::kWorkload;
        index = 1;
      } else if (name == "faults") {
        section = Section::kFaults;
        index = 2;
        c.faults_section = true;
      } else if (name == "engine") {
        section = Section::kEngine;
        index = 3;
      } else if (name == "outputs") {
        section = Section::kOutputs;
        index = 4;
      } else {
        return fail_line(line_number, "unknown section [" + name + "]");
      }
      if (seen[index]) {
        return fail_line(line_number, "duplicate section [" + name + "]");
      }
      seen[index] = true;
      continue;
    }

    switch (section) {
      case Section::kNone: {
        if (head == "scenario") {
          if (!c.name.empty()) {
            return fail_line(line_number, "duplicate 'scenario' directive");
          }
          if (tokens->size() != 2 || (*tokens)[1].empty()) {
            return fail_line(line_number, "scenario <name>");
          }
          c.name = (*tokens)[1];
          continue;
        }
        return fail_line(line_number,
                         c.name.empty()
                             ? "expected 'scenario <name>' before any section"
                             : "directive '" + head + "' outside a section");
      }
      case Section::kTopology: {
        if (head == "auto") {
          if (c.topo_auto) {
            return fail_line(line_number,
                             "duplicate 'auto' directive in [topology]");
          }
          c.topo_auto = RawLine{line_number, line};
          c.topo_auto_tokens = *tokens;
          continue;
        }
        if (head == "include") {
          if (tokens->size() != 2) {
            return fail_line(line_number, "include <path>");
          }
          if (c.topo_include) {
            return fail_line(line_number,
                             "duplicate 'include' in [topology]");
          }
          c.topo_include = RawLine{line_number, (*tokens)[1]};
          continue;
        }
        c.topo_inline.push_back(RawLine{line_number, line});
        continue;
      }
      case Section::kFaults: {
        if (head == "include") {
          if (tokens->size() != 2) {
            return fail_line(line_number, "include <path>");
          }
          if (c.faults_include) {
            return fail_line(line_number, "duplicate 'include' in [faults]");
          }
          c.faults_include = RawLine{line_number, (*tokens)[1]};
          continue;
        }
        if (head == "churn") {
          if (c.churn_directive) {
            return fail_line(line_number,
                             "duplicate 'churn' directive in [faults]");
          }
          c.churn_directive = RawLine{line_number, line};
          c.churn_tokens = *tokens;
          continue;
        }
        c.faults_inline.push_back(RawLine{line_number, line});
        continue;
      }
      case Section::kWorkload:
      case Section::kEngine:
      case Section::kOutputs: {
        KvSection& kv = section == Section::kWorkload ? c.workload
                        : section == Section::kEngine ? c.engine
                                                      : c.outputs;
        if (tokens->size() != 2) {
          return fail_line(line_number, "expected '<key> <value>' in [" +
                                            std::string(kv.name) + "]");
        }
        if (kv.find(head) != nullptr) {
          return fail_line(line_number, "duplicate key '" + head + "' in [" +
                                            std::string(kv.name) + "]");
        }
        kv.entries.push_back(KvEntry{
            head, (*tokens)[1], "line " + std::to_string(line_number)});
        continue;
      }
    }
  }
  if (c.name.empty()) {
    return fail_line(0, "missing 'scenario <name>' directive");
  }

  // -- pass 2: apply --set overrides ---------------------------------------
  for (const std::string& override_arg : options.overrides) {
    const std::string source = "--set " + override_arg;
    const auto eq = override_arg.find('=');
    const auto dot = override_arg.find('.');
    if (eq == std::string::npos || dot == std::string::npos || dot > eq ||
        dot == 0 || dot + 1 == eq) {
      return fail(source, "expected section.key=value");
    }
    const std::string sect = override_arg.substr(0, dot);
    const std::string key = override_arg.substr(dot + 1, eq - dot - 1);
    const std::string value = override_arg.substr(eq + 1);
    KvSection* kv = nullptr;
    if (sect == "workload") {
      kv = &c.workload;
    } else if (sect == "engine") {
      kv = &c.engine;
    } else if (sect == "outputs") {
      kv = &c.outputs;
    } else if (sect == "topology" || sect == "faults") {
      return fail(source, "section [" + sect +
                              "] has no key=value entries to override");
    } else {
      return fail(source, "unknown section '" + sect + "'");
    }
    if (KvEntry* existing = kv->find(key)) {
      existing->value = value;
      existing->source = source;
    } else {
      kv->entries.push_back(KvEntry{key, value, source});
    }
  }

  // -- pass 3: interpret ---------------------------------------------------
  ScenarioSpec spec;
  spec.name = c.name;

  const WorkloadRegistry& registry = WorkloadRegistry::instance();
  std::string error;
  auto fail_with_error = [&] {
    result.spec.reset();
    result.error = error;
    return result;
  };

  // [workload] — the type name picks the plugin; the plugin consumes its
  // own keys through the shared typed readers (workload.hpp), so every
  // workload gets identical error shapes and --set override behavior.
  const WorkloadPlugin* plugin = registry.find("swarm");
  if (KvEntry* entry = c.workload.take("type")) {
    plugin = registry.find(entry->value);
    if (plugin == nullptr) {
      return fail(entry->source, "unknown workload type '" + entry->value +
                                     "' (expected " +
                                     registry.joined_names("|") + ")");
    }
  }
  spec.workload = plugin->name();
  ParamReader workload_params(c.workload, error);
  if (!plugin->parse_workload(workload_params, spec)) {
    return fail_with_error();
  }
  if (const KvEntry* stray = c.workload.first_unconsumed()) {
    if (claimed_by_other_plugin(registry, plugin, stray->key,
                                /*outputs=*/false)) {
      return fail(stray->source,
                  "key '" + stray->key + "' is not valid for workload type " +
                      std::string(plugin->name()));
    }
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [workload]");
  }

  // [engine]
  ParamReader engine_params(c.engine, error);
  bool ok = engine_params.take_count(
      "shards", [&](std::uint64_t v, const KvEntry&) {
        spec.engine.shards = static_cast<std::size_t>(v);
      });
  const KvEntry* transport_entry = c.engine.take("transport");
  if (ok && transport_entry != nullptr) {
    if (transport_entry->value == "flow") {
      spec.engine.transport = TransportModel::kFlow;
    } else if (transport_entry->value == "tcp") {
      spec.engine.transport = TransportModel::kTcp;
    } else {
      return fail(transport_entry->source,
                  "unknown transport '" + transport_entry->value +
                      "' (tcp|flow)");
    }
  }
  const KvEntry* pnodes_entry = c.engine.take("physical_nodes");
  if (ok && pnodes_entry != nullptr && pnodes_entry->value != "auto") {
    const auto value = parse_u64(pnodes_entry->value);
    if (!value || *value == 0) {
      return fail(pnodes_entry->source,
                  "bad count '" + pnodes_entry->value +
                      "' for physical_nodes (a positive number, or auto)");
    }
    spec.engine.physical_nodes = static_cast<std::size_t>(*value);
  }
  const KvEntry* fold_entry = nullptr;
  ok = ok && engine_params.take_count(
                 "fold", [&](std::uint64_t v, const KvEntry& entry) {
                   spec.engine.fold = static_cast<std::size_t>(v);
                   fold_entry = &entry;
                 });
  if (ok && fold_entry != nullptr) {
    if (*spec.engine.fold == 0) {
      return fail(fold_entry->source, "fold must be positive");
    }
    if (spec.engine.physical_nodes) {
      return fail(fold_entry->source,
                  "fold and physical_nodes are mutually exclusive");
    }
  }
  ok = ok && engine_params.take_count(
                 "seed",
                 [&](std::uint64_t v, const KvEntry&) { spec.engine.seed = v; });
  const KvEntry* stop_entry = c.engine.take("stop");
  if (ok && stop_entry != nullptr) {
    if (stop_entry->value == "all_complete") {
      spec.engine.stop = StopMode::kAllComplete;
    } else if (stop_entry->value == "survivors_complete") {
      spec.engine.stop = StopMode::kSurvivorsComplete;
    } else if (stop_entry->value == "time") {
      spec.engine.stop = StopMode::kTime;
    } else {
      return fail(stop_entry->source,
                  "unknown stop mode '" + stop_entry->value +
                      "' (all_complete|survivors_complete|time)");
    }
  }
  const KvEntry* run_for_entry = nullptr;
  ok = ok && engine_params.take_duration(
                 "run_for", [&](Duration v, const KvEntry& entry) {
                   spec.engine.run_for = v;
                   run_for_entry = &entry;
                 });
  ok = ok && engine_params.take_bool("check_invariants", [&](bool v) {
    spec.engine.check_invariants = v;
  });
  ok = ok && engine_params.take_bool(
                 "trace", [&](bool v) { spec.engine.trace = v; });
  ok = ok && engine_params.take_bool(
                 "profile", [&](bool v) { spec.engine.profile = v; });
  ok = ok && engine_params.take_bool(
                 "pin", [&](bool v) { spec.engine.pin_workers = v; });
  if (!ok) return fail_with_error();
  if (spec.engine.stop == StopMode::kTime &&
      spec.engine.run_for <= Duration::zero()) {
    return fail(stop_entry != nullptr ? stop_entry->source : "[engine]",
                "stop=time requires run_for");
  }
  if (run_for_entry != nullptr && spec.engine.stop != StopMode::kTime) {
    return fail(run_for_entry->source, "run_for requires stop=time");
  }
  if (const KvEntry* stray = c.engine.first_unconsumed()) {
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [engine]");
  }

  // [outputs] — the plugin consumes its own keys; strays from another
  // workload's surface get the "not valid for workload type" error below.
  ParamReader output_params(c.outputs, error);
  if (!plugin->parse_outputs(output_params, spec)) return fail_with_error();
  ok = output_params.take_string("bench_json", &spec.outputs.bench_json);
  ok = ok && output_params.take_string("profile_trace",
                                       &spec.outputs.profile_trace);
  ok = ok && output_params.take_bool(
                 "report", [&](bool v) { spec.outputs.report = v; });
  if (!ok) return fail_with_error();
  if (const KvEntry* stray = c.outputs.first_unconsumed()) {
    if (claimed_by_other_plugin(registry, plugin, stray->key,
                                /*outputs=*/true)) {
      return fail(stray->source,
                  "key '" + stray->key + "' is not valid for workload type " +
                      std::string(plugin->name()));
    }
    return fail(stray->source,
                "unknown key '" + stray->key + "' in [outputs]");
  }
  if (!spec.outputs.trace_file.empty()) spec.engine.trace = true;
  // Naming a profile output turns profiling on, mirroring trace.
  if (!spec.outputs.profile_trace.empty()) spec.engine.profile = true;

  // [topology]
  if (c.topo_auto &&
      (c.topo_include.has_value() || !c.topo_inline.empty())) {
    return fail_line(c.topo_auto->line,
                     "[topology] cannot mix 'auto' with other topology "
                     "sources");
  }
  if (c.topo_include && !c.topo_inline.empty()) {
    return fail_line(c.topo_include->line,
                     "[topology] cannot mix 'include' with inline "
                     "directives");
  }
  if (c.topo_auto) {
    spec.topology.source = TopologySource::kAuto;
    for (std::size_t i = 1; i < c.topo_auto_tokens.size(); ++i) {
      const std::string& token = c.topo_auto_tokens[i];
      if (const auto v = value_of(token, "down")) {
        const auto bw = topology::parse_bandwidth(*v);
        if (!bw) return fail_line(c.topo_auto->line, "bad down bandwidth");
        spec.topology.auto_link.down = *bw;
      } else if (const auto v2 = value_of(token, "up")) {
        const auto bw = topology::parse_bandwidth(*v2);
        if (!bw) return fail_line(c.topo_auto->line, "bad up bandwidth");
        spec.topology.auto_link.up = *bw;
      } else if (const auto v3 = value_of(token, "latency")) {
        const auto d = topology::parse_duration(*v3);
        if (!d) return fail_line(c.topo_auto->line, "bad latency");
        spec.topology.auto_link.latency = *d;
      } else if (const auto v4 = value_of(token, "loss")) {
        const auto p = parse_probability(*v4);
        if (!p) return fail_line(c.topo_auto->line, "bad loss rate");
        spec.topology.auto_link.loss_rate = *p;
      } else {
        return fail_line(c.topo_auto->line,
                         "unknown auto attribute '" + token + "'");
      }
    }
  } else if (c.topo_include) {
    const std::string path =
        resolve_path(options.base_dir, c.topo_include->text);
    const auto contents = read_file(path);
    if (!contents) {
      return fail_line(c.topo_include->line, "include '" +
                                                 c.topo_include->text +
                                                 "': cannot read file");
    }
    auto sub = topology::parse_topology(*contents);
    if (!sub.topology) {
      return fail_line(c.topo_include->line,
                       "include '" + c.topo_include->text + "': " +
                           sub.error);
    }
    spec.topology.source = TopologySource::kInline;
    spec.topology.built = std::move(*sub.topology);
  } else if (!c.topo_inline.empty()) {
    auto sub = topology::parse_topology(padded_text(c.topo_inline));
    if (!sub.topology) {
      result.spec.reset();
      result.error = sub.error;  // already "line N: ..." in our numbering
      return result;
    }
    spec.topology.source = TopologySource::kInline;
    spec.topology.built = std::move(*sub.topology);
  }
  if (spec.topology.built &&
      spec.topology.built->total_nodes() < spec.vnodes()) {
    return fail_line(0, "topology has " +
                            std::to_string(spec.topology.built->total_nodes()) +
                            " nodes but the workload needs " +
                            std::to_string(spec.vnodes()));
  }

  // [faults]
  if (c.faults_include && !c.faults_inline.empty()) {
    return fail_line(c.faults_include->line,
                     "[faults] cannot mix 'include' with inline directives");
  }
  if (c.faults_include) {
    const std::string path =
        resolve_path(options.base_dir, c.faults_include->text);
    const auto contents = read_file(path);
    if (!contents) {
      return fail_line(c.faults_include->line, "include '" +
                                                   c.faults_include->text +
                                                   "': cannot read file");
    }
    auto sub = fault::FaultPlan::parse(*contents);
    if (!sub.plan) {
      return fail_line(c.faults_include->line,
                       "include '" + c.faults_include->text + "': " +
                           sub.error);
    }
    spec.faults.plan = std::move(*sub.plan);
  } else if (!c.faults_inline.empty()) {
    auto sub = fault::FaultPlan::parse(padded_text(c.faults_inline));
    if (!sub.plan) {
      result.spec.reset();
      result.error = sub.error;  // already in our line numbering
      return result;
    }
    spec.faults.plan = std::move(*sub.plan);
  }
  if (c.churn_directive) {
    ChurnDirective& churn = spec.faults.churn;
    churn.enabled = true;
    bool window_seen = false;
    for (std::size_t i = 1; i < c.churn_tokens.size(); ++i) {
      const std::string& token = c.churn_tokens[i];
      const int at = c.churn_directive->line;
      if (const auto v = value_of(token, "fraction")) {
        const auto p = parse_probability(*v);
        if (!p) return fail_line(at, "bad churn fraction");
        churn.fraction = *p;
      } else if (const auto v2 = value_of(token, "window")) {
        const std::string window(*v2);
        const auto dots = window.find("..");
        if (dots == std::string::npos) {
          return fail_line(at, "churn window=START..END");
        }
        const auto start =
            fault::parse_scenario_duration(window.substr(0, dots));
        const auto end =
            fault::parse_scenario_duration(window.substr(dots + 2));
        if (!start || !end) {
          return fail_line(at, "bad churn window '" + window + "'");
        }
        if (*end < *start) {
          return fail_line(at, "churn window end before start");
        }
        churn.window_start = *start;
        churn.window_end = *end;
        window_seen = true;
      } else if (const auto v3 = value_of(token, "rejoin")) {
        const auto p = parse_probability(*v3);
        if (!p) return fail_line(at, "bad churn rejoin fraction");
        churn.rejoin_fraction = *p;
      } else if (const auto v4 = value_of(token, "rejoin_min")) {
        const auto d = fault::parse_scenario_duration(*v4);
        if (!d) return fail_line(at, "bad churn rejoin_min");
        churn.rejoin_min = *d;
      } else if (const auto v5 = value_of(token, "rejoin_max")) {
        const auto d = fault::parse_scenario_duration(*v5);
        if (!d) return fail_line(at, "bad churn rejoin_max");
        churn.rejoin_max = *d;
      } else if (const auto v6 = value_of(token, "leave")) {
        const auto p = parse_probability(*v6);
        if (!p) return fail_line(at, "bad churn leave fraction");
        churn.leave_fraction = *p;
      } else if (const auto v7 = value_of(token, "first")) {
        const auto n = parse_u64(*v7);
        if (!n) return fail_line(at, "bad churn first node");
        churn.first_node = static_cast<std::size_t>(*n);
      } else if (const auto v8 = value_of(token, "last")) {
        const auto n = parse_u64(*v8);
        if (!n) return fail_line(at, "bad churn last node");
        churn.last_node = static_cast<std::size_t>(*n);
      } else if (const auto v9 = value_of(token, "seed")) {
        const auto n = parse_u64(*v9);
        if (!n) return fail_line(at, "bad churn seed");
        churn.rng_stream = *n;
      } else {
        return fail_line(at, "unknown churn attribute '" + token + "'");
      }
    }
    if (!window_seen) {
      return fail_line(c.churn_directive->line,
                       "churn needs window=START..END");
    }
  }
  if (!spec.faults.empty() && !plugin->supports_faults()) {
    const int at = c.faults_include ? c.faults_include->line
                   : c.churn_directive ? c.churn_directive->line
                   : !c.faults_inline.empty() ? c.faults_inline.front().line
                                              : 0;
    return fail_line(at, "[faults] requires workload type " +
                             registry.fault_capable_names());
  }
  if (spec.engine.stop == StopMode::kSurvivorsComplete &&
      !plugin->supports_survivors_stop()) {
    return fail(stop_entry != nullptr ? stop_entry->source : "[engine]",
                "stop=survivors_complete requires workload type " +
                    registry.survivors_stop_names());
  }
  // Whole-spec validation owned by the plugin (e.g. gossip requires
  // stop=time), blamed on the [engine] stop source like the stop checks.
  if (std::string message = plugin->validate_spec(spec); !message.empty()) {
    return fail(stop_entry != nullptr ? stop_entry->source : "[engine]",
                message);
  }

  result.spec = std::move(spec);
  result.error.clear();
  return result;
}

ParseResult parse_scenario_file(const std::string& path,
                                const std::vector<std::string>& overrides) {
  const auto contents = read_file(path);
  if (!contents) {
    ParseResult result;
    result.error = "cannot read file";
    return result;
  }
  ParseOptions options;
  options.overrides = overrides;
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) options.base_dir = path.substr(0, slash);
  return parse_scenario(*contents, options);
}

}  // namespace p2plab::scenario
