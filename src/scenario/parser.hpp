// The scenario DSL: one file per experiment.
//
// A `.scn` file opens with `scenario <name>` and then holds up to five
// bracketed sections; '#' starts a comment anywhere, values with spaces are
// double-quoted. Grammar (DESIGN.md §10 documents every key):
//
//   scenario fig8
//
//   [topology]            # optional; default: auto (homogeneous DSL)
//   auto [down=2M up=128k latency=30ms loss=0]
//   # ... or `include <file.topo>`, or inline topology DSL directives
//   # (zone/container/latency — see topology/parser.hpp)
//
//   [workload]
//   type swarm            # or ping_sweep
//   clients 160           # swarm: seeders, file_size, piece_length,
//   start_interval 10     # start_interval, content_seed, verify_hashes,
//                         # max_duration; ping_sweep: nodes, rules_max,
//                         # rules_step, probes
//
//   [faults]              # optional; `include <file.fault>`, inline fault
//   crash node=5 at=30    # directives (fault/plan.hpp), and/or one
//   churn fraction=0.3 window=200..1200 rejoin=0.5   # generated schedule
//
//   [engine]
//   shards 0              # physical_nodes N|auto, fold K, seed,
//   stop all_complete     # survivors_complete | time (+ run_for),
//   check_invariants off  # trace on|off
//
//   [outputs]             # every key names a file in $P2PLAB_RESULTS_DIR
//   progress_envelope fig8_progress_envelope
//   completions fig8_completion_times
//   bench_json BENCH_fig8
//
// Durations follow the fault-file convention (bare numbers are seconds);
// sizes take k/M/G (KiB/MiB/GiB) suffixes; bandwidths and link latencies in
// `auto`/inline topology lines follow the topology DSL convention.
//
// `--set section.key=value` overrides (the p2plab_run flags) replace the
// matching entry after the file is read; errors they cause are reported
// against the override, not a file line.
//
// Errors carry the line number of the offending directive; errors inside
// inline [topology]/[faults] blocks keep the enclosing file's numbering,
// and errors inside an `include`d file are prefixed with the including
// line and path.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace p2plab::scenario {

struct ParseResult {
  std::optional<ScenarioSpec> spec;  // nullopt on error
  std::string error;                 // human-readable, with line number
};

struct ParseOptions {
  /// Directory `include` paths are resolved against ("" = cwd).
  std::string base_dir;
  /// "section.key=value" overrides, applied after the file is read.
  std::vector<std::string> overrides;
};

ParseResult parse_scenario(std::string_view text,
                           const ParseOptions& options = {});

/// Read and parse `path`; includes resolve against its directory.
ParseResult parse_scenario_file(const std::string& path,
                                const std::vector<std::string>& overrides = {});

/// Building blocks, exposed for reuse and tests.
std::optional<DataSize> parse_data_size(std::string_view text);

}  // namespace p2plab::scenario
