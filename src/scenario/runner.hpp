// The experiment runner: one ScenarioSpec in, one finished experiment out.
//
// ExperimentRunner owns everything a run needs — registry, platform, swarm
// (or the ping sweep), fault injector, health monitor — wired in the exact
// order the figure harnesses established (registry before platform so
// teardown still counts; churn RNG forked after the swarm exists; the
// monitor started last), so a spec-driven run is bit-identical to the
// hand-written bench it replaced.
//
// Lifecycle: setup() builds the stack, execute() drives the run and writes
// every declared output, run() does both and returns the process exit code
// (nonzero iff an enabled invariant check failed). The split exists for
// callers that interpose between construction and execution — fig9 runs
// one external HealthMonitor across five runner instances.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bittorrent/swarm.hpp"
#include "core/platform.hpp"
#include "fault/injector.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "scenario/spec.hpp"

namespace p2plab::scenario {

struct InvariantResult;  // validate.hpp

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ScenarioSpec spec);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Build the platform and the workload, arm the faults. Call once.
  void setup();
  /// Drive the run to its stop condition, evaluate the enabled invariant
  /// checks and write every declared output. Returns the exit code:
  /// 0, or 1 if any check failed. Requires setup().
  int execute();
  /// setup() + execute().
  int run();

  const ScenarioSpec& spec() const { return spec_; }
  /// Valid after setup().
  core::Platform& platform() { return *platform_; }
  /// Valid after setup(), swarm workloads only.
  bt::Swarm& swarm() { return *swarm_; }
  metrics::Registry& registry() { return registry_; }

  /// Median completion time (seconds) of the finished clients; -1 if none.
  /// Valid after execute().
  double median_completion_sec() const;
  /// Reference median from a clean run, reported in the churn summary CSV
  /// (-1 = no baseline was run).
  void set_baseline_median(double median) { baseline_median_ = median; }

 private:
  void setup_swarm();
  void setup_faults();
  int execute_swarm();
  int execute_ping();
  int execute_validate();  // validate.cpp
  void write_swarm_outputs(double wall_seconds);
  void write_accuracy_json(const std::vector<InvariantResult>& results,
                           bool pass);  // validate.cpp
  void write_profile_outputs();
  void write_bench_json(double wall_seconds, double scale_field);

  ScenarioSpec spec_;
  // Declaration order is destruction-order-critical: the registry must
  // outlive the platform (teardown increments bound counters), the
  // platform must outlive swarm/injector/monitor users.
  metrics::Registry registry_;
  std::unique_ptr<core::Platform> platform_;
  std::unique_ptr<bt::Swarm> swarm_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<metrics::HealthMonitor> monitor_;

  std::size_t first_client_vnode_ = 0;
  std::vector<bool> faulted_;   // per client: scheduled to crash or leave
  std::vector<bool> rejoins_;   // per client: scheduled to come back
  std::size_t node_failures_ = 0;
  double baseline_median_ = -1.0;
  SimTime end_of_run_;  // clock right after the stop condition (pre-drain)
  bool set_up_ = false;
};

}  // namespace p2plab::scenario
