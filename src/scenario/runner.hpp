// The experiment runner: one ScenarioSpec in, one finished experiment out.
//
// ExperimentRunner owns only the workload-agnostic stack — metrics
// registry, topology, platform, tracing/profiling — and delegates
// everything workload-specific to the plugin the spec's `[workload] type`
// resolves to (workload.hpp). setup() builds the platform and asks the
// plugin's Workload to build itself on it; execute() hands control to the
// workload, which drives the run to its stop condition and writes its
// outputs. The runner contains zero workload-specific branches: adding a
// protocol never touches this file.
//
// Lifecycle: setup() builds the stack, execute() drives the run and writes
// every declared output, run() does both and returns the process exit code
// (nonzero iff an enabled invariant check failed). The split exists for
// callers that interpose between construction and execution — fig9 runs
// one external HealthMonitor across five runner instances.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bittorrent/swarm.hpp"
#include "core/platform.hpp"
#include "metrics/registry.hpp"
#include "scenario/spec.hpp"
#include "scenario/workload.hpp"

namespace p2plab::scenario {

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ScenarioSpec spec);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Build the platform and the workload, arm the faults. Call once.
  void setup();
  /// Drive the run to its stop condition, evaluate the enabled invariant
  /// checks and write every declared output. Returns the exit code:
  /// 0, or 1 if any check failed. Requires setup().
  int execute();
  /// setup() + execute().
  int run();

  const ScenarioSpec& spec() const { return spec_; }
  /// Valid after setup().
  core::Platform& platform() { return *platform_; }
  metrics::Registry& registry() { return registry_; }

  /// Valid after setup(), swarm workloads only (defined in
  /// workload_swarm.cpp beside the type it casts to).
  bt::Swarm& swarm();
  /// Median completion time (seconds) of the finished clients; -1 if none.
  /// Valid after execute(). Swarm workloads only.
  double median_completion_sec() const;
  /// Reference median from a clean run, reported in the churn summary CSV
  /// (-1 = no baseline was run).
  void set_baseline_median(double median) { baseline_median_ = median; }
  double baseline_median() const { return baseline_median_; }

  // Shared services for Workload implementations.
  /// Clock right after the stop condition (pre-drain); time-series outputs
  /// sample up to here.
  void set_end_of_run(SimTime t) { end_of_run_ = t; }
  SimTime end_of_run() const { return end_of_run_; }
  /// Fold the BSP profile into the registry and flush the Perfetto
  /// timeline; no-op when profiling is off.
  void write_profile_outputs();
  /// The standardized BENCH_*.json run summary (core/bench_report.hpp):
  /// the run economics plus the workload's scale field and any extra
  /// workload metrics. No-op when outputs.bench_json is empty.
  void write_bench_json(
      double wall_seconds, const char* scale_key, double scale_value,
      const std::vector<std::pair<std::string, double>>& extra = {});

 private:
  ScenarioSpec spec_;
  // Declaration order is destruction-order-critical: the registry must
  // outlive the platform (teardown increments bound counters), and the
  // platform must outlive the workload (swarm/injector/monitor users) —
  // workload_ is declared last so it is destroyed first.
  metrics::Registry registry_;
  std::unique_ptr<core::Platform> platform_;
  const WorkloadPlugin* plugin_ = nullptr;
  std::unique_ptr<Workload> workload_;

  double baseline_median_ = -1.0;
  SimTime end_of_run_;
  bool set_up_ = false;
};

}  // namespace p2plab::scenario
