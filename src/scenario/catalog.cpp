#include "scenario/catalog.hpp"

#include "common/assert.hpp"
#include "topology/parser.hpp"

namespace p2plab::scenario::catalog {

ScenarioSpec fig6() {
  ScenarioSpec spec;
  spec.name = "fig6";
  spec.workload = "ping_sweep";
  spec.outputs.csv = "fig6_ipfw_rules";
  spec.outputs.csv_note =
      "paper: ~linear, reaching ~5 ms RTT at 50k rules "
      "(2 traversals x 50 ns/rule)";
  spec.outputs.bench_json = "BENCH_fig6";
  spec.outputs.report = true;
  return spec;
}

ScenarioSpec fig8(std::size_t clients) {
  ScenarioSpec spec;
  spec.name = "fig8";
  spec.swarm.clients = clients;  // everything else: the paper's defaults
  spec.outputs.progress_envelope = "fig8_progress_envelope";
  spec.outputs.completions = "fig8_completion_times";
  spec.outputs.completions_note =
      "paper: three swarm phases visible; completions cluster ~1500-2000 s";
  spec.outputs.bench_json = "BENCH_fig8";
  spec.outputs.metrics = "fig8_metrics";
  return spec;
}

ScenarioSpec fig9_fold(std::size_t clients, std::size_t fold) {
  ScenarioSpec spec;
  spec.name = "fig9_fold" + std::to_string(fold);
  spec.swarm.clients = clients;
  // The paper's 160/16/8/4/2 deployments of the clients (tracker and
  // seeders ride along).
  spec.engine.physical_nodes = clients / fold + 1;
  return spec;
}

ScenarioSpec fig10(std::size_t clients) {
  ScenarioSpec spec;
  spec.name = "fig10";
  spec.swarm.clients = clients;
  spec.swarm.start_interval = Duration::millis(250);
  spec.swarm.max_duration = Duration::sec(30000);
  spec.engine.fold = 32;  // the paper's 32 vnodes per pnode
  spec.outputs.sampled_progress = "fig10_sampled_progress";
  spec.outputs.sampled_every = 50;
  spec.outputs.completion_curve = "fig11_completion_curve";
  spec.outputs.completion_curve_note =
      "paper: S-curve; most of the swarm completes together";
  spec.outputs.bench_json = "BENCH_fig10";
  spec.outputs.metrics = "fig10_metrics";
  return spec;
}

ScenarioSpec churn(std::size_t clients, double churn_pct) {
  ScenarioSpec spec;
  spec.name = "churn";
  spec.swarm.clients = clients;

  spec.faults.churn.enabled = true;
  spec.faults.churn.fraction = churn_pct / 100.0;
  spec.faults.churn.window_start = Duration::sec(200);
  spec.faults.churn.window_end = Duration::sec(1200);
  // rejoin 0.5 in 30..120 s: the ChurnDirective defaults.

  // Tracker outage (announce backoff + cached peers must carry the swarm)
  // plus link faults on two never-crashed clients, for coverage. Client c
  // lives on vnode first + c (Swarm's layout contract).
  const std::size_t first = 1 + spec.swarm.seeders;
  spec.faults.plan.tracker_outage(SimTime::zero() + Duration::sec(400),
                                  Duration::sec(120));
  spec.faults.plan.link_down(first, SimTime::zero() + Duration::sec(300),
                             Duration::sec(20));
  spec.faults.plan.burst_loss(first + 1, SimTime::zero() + Duration::sec(500),
                              Duration::sec(60),
                              ipfw::GilbertElliott{.p_good_to_bad = 0.02,
                                                   .p_bad_to_good = 0.3,
                                                   .loss_bad = 0.7});
  spec.faults.plan.latency_spike(first + 2,
                                 SimTime::zero() + Duration::sec(600),
                                 Duration::ms(200), Duration::sec(60));
  // Keep time order, like the DSL parser does: equivalence is exact.
  spec.faults.plan.sort();

  spec.engine.stop = StopMode::kSurvivorsComplete;
  spec.engine.check_invariants = true;
  spec.engine.trace = true;
  spec.outputs.summary = "churn_summary";
  spec.outputs.bench_json = "BENCH_churn";
  spec.outputs.metrics = "churn_metrics";
  spec.outputs.trace_file = "trace.jsonl";
  return spec;
}

ScenarioSpec churn_baseline(std::size_t clients) {
  ScenarioSpec spec;
  spec.name = "churn_baseline";
  spec.swarm.clients = clients;
  return spec;  // no outputs: the churn bench only reads the median
}

ScenarioSpec flash_crowd() {
  ScenarioSpec spec;
  spec.name = "flashcrowd";
  spec.swarm.clients = 256;
  spec.swarm.seeders = 2;
  spec.swarm.file_size = DataSize::mib(4);
  spec.swarm.start_interval = Duration::millis(250);
  spec.swarm.max_duration = Duration::sec(8000);
  spec.engine.fold = 32;
  spec.faults.plan.tracker_outage(SimTime::zero() + Duration::sec(60),
                                  Duration::sec(60));
  spec.outputs.progress_envelope = "flashcrowd_progress_envelope";
  spec.outputs.completion_curve = "flashcrowd_completion_curve";
  spec.outputs.bench_json = "BENCH_flashcrowd";
  spec.outputs.metrics = "flashcrowd_metrics";
  return spec;
}

ScenarioSpec gossip(std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "gossip";
  spec.workload = "gossip";
  spec.gossip.nodes = nodes;

  // A quarter of the members (never the introducer, vnode 0) fails inside
  // the 30..90 s window; half come back after 20-40 s down.
  spec.faults.churn.enabled = true;
  spec.faults.churn.fraction = 0.25;
  spec.faults.churn.window_start = Duration::sec(30);
  spec.faults.churn.window_end = Duration::sec(90);
  spec.faults.churn.rejoin_fraction = 0.5;
  spec.faults.churn.rejoin_min = Duration::sec(20);
  spec.faults.churn.rejoin_max = Duration::sec(40);

  // Two bursty-loss windows on never-churned-by-default members: lost
  // pings must escalate to indirect probes and suspicion, not straight to
  // a false confirm.
  spec.faults.plan.burst_loss(2, SimTime::zero() + Duration::sec(40),
                              Duration::sec(20),
                              ipfw::GilbertElliott{.p_good_to_bad = 0.05,
                                                   .p_bad_to_good = 0.3,
                                                   .loss_bad = 0.8});
  spec.faults.plan.burst_loss(3, SimTime::zero() + Duration::sec(100),
                              Duration::sec(20),
                              ipfw::GilbertElliott{.p_good_to_bad = 0.05,
                                                   .p_bad_to_good = 0.3,
                                                   .loss_bad = 0.8});
  // Keep time order, like the DSL parser does: equivalence is exact.
  spec.faults.plan.sort();

  spec.engine.stop = StopMode::kTime;
  spec.engine.run_for = Duration::sec(180);
  spec.engine.check_invariants = true;
  spec.outputs.detection_csv = "gossip_detection";
  spec.outputs.fp_summary = "gossip_fp_summary";
  spec.outputs.bench_json = "BENCH_gossip";
  return spec;
}

ScenarioSpec accuracy() {
  ScenarioSpec spec;
  spec.name = "accuracy";
  spec.workload = "validate";
  // Built through the same topology-DSL parser the .scn file goes
  // through, so catalog and file cannot diverge on link semantics.
  auto topo = topology::parse_topology(
      "zone senders 10.1.0.0/24 nodes=4 down=8M up=2M latency=20ms\n"
      "zone sink    10.2.0.0/24 nodes=2 down=2M up=2M latency=30ms\n"
      "zone far     10.3.0.0/24 nodes=4 down=2M up=512k latency=40ms\n"
      "latency senders sink 100ms\n"
      "latency senders far 400ms\n"
      "latency sink far 200ms\n");
  P2PLAB_ASSERT(topo.topology.has_value());
  spec.topology.source = TopologySource::kInline;
  spec.topology.built = std::move(*topo.topology);
  spec.validate.nodes = 10;
  spec.validate.flows = 4;
  spec.validate.transfer = DataSize::mib(2);
  spec.validate.message = DataSize::kib(16);
  spec.validate.loss_datagrams = 20000;
  spec.engine.transport = TransportModel::kTcp;
  spec.outputs.accuracy_json = "ACCURACY";
  spec.outputs.bench_json = "BENCH_accuracy";
  return spec;
}

}  // namespace p2plab::scenario::catalog
