#include "profile/profiler.hpp"

#include <sched.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/assert.hpp"

namespace p2plab::profile {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Crash-path drain: installed per thread via set_thread_active. Reads of
/// other workers' rings are best-effort by design — the process is about to
/// abort, and a torn sample costs one bogus line in a post-mortem file.
thread_local Profiler* g_active_profiler = nullptr;

void crash_dump() {
  Profiler* const profiler = g_active_profiler;
  if (profiler == nullptr) return;
  if (profiler->write_perfetto_to_results(nullptr)) {
    std::fprintf(stderr, "p2plab: profiler rings dumped alongside the "
                         "flight recorder\n");
  }
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kExecute: return "execute";
    case Phase::kBarrierWait: return "barrier_wait";
    case Phase::kMerge: return "merge";
    case Phase::kCompact: return "compact";
  }
  return "unknown";
}

SampleRing::SampleRing(std::size_t capacity) {
  P2PLAB_ASSERT_MSG(capacity > 0, "profiler ring needs capacity");
  buf_.resize(capacity);
}

std::vector<PhaseSample> SampleRing::samples() const {
  std::vector<PhaseSample> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest surviving sample: at next_ once wrapped, at 0 before.
  const std::size_t start = total_ <= buf_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

Profiler::Profiler(std::size_t shards, std::size_t ring_capacity)
    : coordinator_ring_(ring_capacity), epoch_ns_(steady_now_ns()) {
  P2PLAB_ASSERT_MSG(shards >= 1, "profiler needs at least one shard ring");
  shard_rings_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_rings_.push_back(std::make_unique<SampleRing>(ring_capacity));
  }
  stats_.resize(shards);
}

std::uint64_t Profiler::now_ns() const { return steady_now_ns() - epoch_ns_; }

Profiler::ThreadTime Profiler::thread_rusage() {
  ThreadTime t;
#ifdef RUSAGE_THREAD
  rusage usage{};
  if (getrusage(RUSAGE_THREAD, &usage) == 0) {
    auto seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) * 1e-6;
    };
    t.user_s = seconds(usage.ru_utime);
    t.sys_s = seconds(usage.ru_stime);
  }
#endif
  return t;
}

Profiler::Rollup Profiler::rollup() const {
  Rollup r;
  r.shards.resize(shard_count());
  std::uint64_t span_begin_ns = UINT64_MAX;
  std::uint64_t span_end_ns = 0;
  auto cover = [&](const PhaseSample& s) {
    span_begin_ns = std::min(span_begin_ns, s.start_ns);
    span_end_ns = std::max(span_end_ns, s.start_ns + s.dur_ns);
  };

  for (std::size_t k = 0; k < shard_count(); ++k) {
    ShardRollup& shard = r.shards[k];
    for (const PhaseSample& s : shard_rings_[k]->samples()) {
      cover(s);
      const double dur_s = static_cast<double>(s.dur_ns) * 1e-9;
      switch (s.phase) {
        case Phase::kExecute:
          shard.execute_s += dur_s;
          shard.events += s.events;
          break;
        case Phase::kBarrierWait: shard.barrier_wait_s += dur_s; break;
        case Phase::kCompact: shard.compact_s += dur_s; break;
        case Phase::kMerge: break;  // coordinator-only; not expected here
      }
      shard.max_queue_depth = std::max(shard.max_queue_depth, s.queue_depth);
    }
    shard.stats = stats_[k];
    r.ring_dropped += shard_rings_[k]->dropped();
  }
  for (const PhaseSample& s : coordinator_ring_.samples()) {
    cover(s);
    if (s.phase == Phase::kMerge) {
      r.merge_s += static_cast<double>(s.dur_ns) * 1e-9;
    }
  }
  r.ring_dropped += coordinator_ring_.dropped();

  if (span_end_ns > span_begin_ns) {
    r.span_s = static_cast<double>(span_end_ns - span_begin_ns) * 1e-9;
  }
  double accounted_s = 0.0;
  double wait_s = 0.0;
  double max_events = 0.0;
  double total_events = 0.0;
  for (ShardRollup& shard : r.shards) {
    if (r.span_s > 0.0) {
      shard.utilization_pct = 100.0 * shard.execute_s / r.span_s;
    }
    accounted_s += shard.execute_s + shard.barrier_wait_s + shard.compact_s;
    wait_s += shard.barrier_wait_s;
    max_events = std::max(max_events, static_cast<double>(shard.events));
    total_events += static_cast<double>(shard.events);
  }
  if (accounted_s > 0.0) r.barrier_wait_share = wait_s / accounted_s;
  if (r.span_s > 0.0) r.merge_share = r.merge_s / r.span_s;
  const double mean_events =
      total_events / static_cast<double>(r.shards.size());
  // 1.0 = perfectly balanced; an idle run reports neutral balance.
  r.imbalance_ratio = mean_events > 0.0 ? max_events / mean_events : 1.0;
  return r;
}

std::string Profiler::perfetto_json() const {
  std::vector<std::string> lines;
  char buf[256];
  auto meta = [&](unsigned tid, const char* key, const char* value) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, \"name\": "
                  "\"%s\", \"args\": {\"name\": \"%s\"}}",
                  tid, key, value);
    lines.emplace_back(buf);
  };
  meta(0, "process_name", "p2plab");
  meta(0, "thread_name", "coordinator");
  for (std::size_t s = 0; s < shard_count(); ++s) {
    std::snprintf(buf, sizeof buf, "shard %zu", s);
    const std::string name = buf;
    meta(static_cast<unsigned>(s + 1), "thread_name", name.c_str());
  }
  auto emit_ring = [&](unsigned tid, const SampleRing& ring) {
    for (const PhaseSample& s : ring.samples()) {
      std::snprintf(
          buf, sizeof buf,
          "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
          "\"dur\": %.3f, \"cat\": \"bsp\", \"name\": \"%s\", \"args\": "
          "{\"window\": %llu, \"events\": %llu, \"queue\": %llu}}",
          tid, static_cast<double>(s.start_ns) / 1000.0,
          static_cast<double>(s.dur_ns) / 1000.0, phase_name(s.phase),
          static_cast<unsigned long long>(s.window),
          static_cast<unsigned long long>(s.events),
          static_cast<unsigned long long>(s.queue_depth));
      lines.emplace_back(buf);
    }
  };
  emit_ring(0, coordinator_ring_);
  for (std::size_t s = 0; s < shard_count(); ++s) {
    emit_ring(static_cast<unsigned>(s + 1), *shard_rings_[s]);
  }

  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    json += lines[i];
    if (i + 1 < lines.size()) json += ',';
    json += '\n';
  }
  json += "]}\n";
  return json;
}

bool Profiler::write_perfetto_to_results(const char* filename) const {
  if (filename == nullptr) filename = crash_filename_.c_str();
  const char* dir = std::getenv("P2PLAB_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string json = perfetto_json();
  std::fputs(json.c_str(), out);
  std::fclose(out);
  return true;
}

void Profiler::fold_into(metrics::Registry& reg) const {
  const Rollup r = rollup();
  char name[64];
  for (std::size_t k = 0; k < r.shards.size(); ++k) {
    std::snprintf(name, sizeof name, "profile.shard%zu.utilization_pct", k);
    reg.gauge(name).set(r.shards[k].utilization_pct);
  }
  reg.gauge("profile.barrier_wait.share").set(r.barrier_wait_share);
  reg.gauge("profile.merge.share").set(r.merge_share);
  reg.gauge("profile.imbalance.ratio").set(r.imbalance_ratio);
  reg.gauge("profile.ring.dropped")
      .set(static_cast<double>(r.ring_dropped));
}

void Profiler::set_crash_filename(std::string filename) {
  crash_filename_ = std::move(filename);
}

void Profiler::set_thread_active(Profiler* profiler) {
  g_active_profiler = profiler;
  detail::g_profile_assert_hook = profiler != nullptr ? &crash_dump : nullptr;
}

std::vector<int> Profiler::online_cpu_list() {
  std::vector<int> cpus;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
  if (cpus.empty()) {
    // No affinity syscall (or an empty mask): fall back on the topology.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

int Profiler::online_cores() {
  return static_cast<int>(online_cpu_list().size());
}

}  // namespace p2plab::profile
