// Wall-clock BSP profiler — strictly outside simulated state.
//
// The profiler answers the question the scaling benches cannot: where does
// shard wall-time go? Each engine worker records one sample per BSP-window
// phase — barrier wait, window execute, compaction — and the barrier
// coordinator records the cross-shard merge, into per-shard fixed-capacity
// rings of POD samples. Nothing here touches virtual time, event order or
// any simulation state: a profiled run is bit-identical to an unprofiled
// one (the determinism suite asserts this at K = 1/2/4). The rings are
// single-writer (one worker per ring; the coordinator ring is written under
// the barrier mutex) and are drained after run() joins the workers — and
// best-effort on assertion failure, alongside the flight recorder.
//
// Two sinks:
//   * perfetto_json(): a Chrome trace-event / Perfetto-compatible timeline,
//     one track per shard worker plus a coordinator track, so barrier skew
//     and shard imbalance are visible at ui.perfetto.dev;
//   * rollup(): aggregate per-shard utilization %, barrier-wait share,
//     merge share and the event-count imbalance ratio (max/mean shard) —
//     merged into the BENCH_*.json summaries and, via fold_into(), exposed
//     as `profile.*` metrics registry entries.
//
// Overflowing a ring drops the oldest sample without blocking the worker;
// drops are counted (profile.ring.dropped) so a truncated rollup is never
// silent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/registry.hpp"

namespace p2plab::profile {

/// The BSP-window phases a worker's wall-time divides into.
enum class Phase : std::uint8_t {
  kExecute,      // running the shard's events inside the window
  kBarrierWait,  // blocked at the window barrier (includes coordinator skew)
  kMerge,        // cross-shard packet merge/re-acquire (coordinator only)
  kCompact,      // kernel slab compaction at a window boundary
};

const char* phase_name(Phase phase);

/// One timed phase. POD: pushing a sample is a handful of stores.
struct PhaseSample {
  std::uint64_t start_ns = 0;  // wall clock, ns since the profiler's epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t window = 0;       // BSP window index (chunk index classic)
  std::uint64_t events = 0;       // kernel events dispatched in the phase
  std::uint64_t queue_depth = 0;  // pending events at phase end
  Phase phase = Phase::kExecute;
};

/// Fixed-capacity single-writer sample ring. push() never blocks and never
/// allocates: overflow overwrites the oldest sample and counts the drop —
/// a slow drain must not perturb the worker it is measuring.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  void push(const PhaseSample& sample) {
    buf_[next_] = sample;
    next_ = (next_ + 1) % buf_.size();
    ++total_;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return total_ < buf_.size() ? total_ : buf_.size(); }
  std::uint64_t total() const { return total_; }
  /// Samples lost to wraparound (oldest-first eviction).
  std::uint64_t dropped() const {
    return total_ <= buf_.size() ? 0 : total_ - buf_.size();
  }

  /// Surviving samples, oldest first. Call only when the writer is parked
  /// (post-join, or the crash path's best-effort dump).
  std::vector<PhaseSample> samples() const;

 private:
  std::vector<PhaseSample> buf_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

class Profiler {
 public:
  /// Per-worker wall-resource accounting, filled in by the owning thread.
  struct WorkerStats {
    double user_s = 0.0;  // getrusage(RUSAGE_THREAD), summed over runs
    double sys_s = 0.0;
    int pinned_cpu = -1;  // -1 = not pinned
  };

  struct ShardRollup {
    double execute_s = 0.0;
    double barrier_wait_s = 0.0;
    double compact_s = 0.0;
    double utilization_pct = 0.0;  // execute / profiled span
    std::uint64_t events = 0;
    std::uint64_t max_queue_depth = 0;
    WorkerStats stats;
  };

  struct Rollup {
    std::vector<ShardRollup> shards;
    double span_s = 0.0;               // first sample start .. last sample end
    double merge_s = 0.0;              // coordinator merge total
    double barrier_wait_share = 0.0;   // Σ wait / Σ accounted worker time
    double merge_share = 0.0;          // merge_s / span_s
    double imbalance_ratio = 0.0;      // max/mean per-shard event count
    std::uint64_t ring_dropped = 0;    // over all rings
  };

  /// One ring per shard worker plus the coordinator ring. `shards` >= 1
  /// (classic mode profiles as one shard).
  explicit Profiler(std::size_t shards, std::size_t ring_capacity = 1 << 15);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  std::size_t shard_count() const { return shard_rings_.size(); }
  SampleRing& shard_ring(std::size_t shard) { return *shard_rings_.at(shard); }
  const SampleRing& shard_ring(std::size_t shard) const {
    return *shard_rings_.at(shard);
  }
  SampleRing& coordinator_ring() { return coordinator_ring_; }
  const SampleRing& coordinator_ring() const { return coordinator_ring_; }
  /// Single writer per slot: the shard's own worker thread (or the main
  /// thread in classic mode); read after the workers joined.
  WorkerStats& worker_stats(std::size_t shard) { return stats_.at(shard); }

  /// Wall nanoseconds since this profiler's construction (steady clock).
  std::uint64_t now_ns() const;

  /// getrusage(RUSAGE_THREAD) totals of the calling thread (zeros where
  /// unavailable). Engine workers add their totals at thread exit; the
  /// classic path adds the delta across one run (the main thread persists,
  /// so raw totals would double-count).
  struct ThreadTime {
    double user_s = 0.0;
    double sys_s = 0.0;
  };
  static ThreadTime thread_rusage();
  void add_worker_time(std::size_t shard, const ThreadTime& t) {
    stats_.at(shard).user_s += t.user_s;
    stats_.at(shard).sys_s += t.sys_s;
  }

  Rollup rollup() const;

  /// Chrome trace-event JSON (Perfetto-loadable): complete "X" events in
  /// microseconds, one pid, tid 0 = coordinator, tid s+1 = shard s. One
  /// event per line, so line-oriented tools can grep the timeline.
  std::string perfetto_json() const;
  /// Write perfetto_json() to $P2PLAB_RESULTS_DIR/<filename>; false if the
  /// env var is unset or the file cannot be written.
  bool write_perfetto_to_results(const char* filename) const;

  /// Merge the rollup into `reg` as `profile.*` gauges (idempotent — set,
  /// not add, so repeated folds cannot double-count).
  void fold_into(metrics::Registry& reg) const;

  /// File name the crash-path dump writes (default "profile.json").
  void set_crash_filename(std::string filename);

  /// Install/clear the assertion-failure drain for the calling thread: on
  /// P2PLAB_ASSERT failure the rings are dumped best-effort to the results
  /// dir, alongside the flight recorder's post-mortem. Pass nullptr on
  /// thread exit.
  static void set_thread_active(Profiler* profiler);

  /// CPUs this process may run on (affinity mask), ascending; the real
  /// online core count is the size of this list — *not*
  /// hardware_concurrency(), which ignores cpuset/affinity limits.
  static std::vector<int> online_cpu_list();
  static int online_cores();

 private:
  std::vector<std::unique_ptr<SampleRing>> shard_rings_;
  SampleRing coordinator_ring_;
  std::vector<WorkerStats> stats_;
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin
  std::string crash_filename_ = "profile.json";
};

using ShardRollup = Profiler::ShardRollup;
using Rollup = Profiler::Rollup;

}  // namespace p2plab::profile
