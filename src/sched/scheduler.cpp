#include "sched/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/assert.hpp"

namespace p2plab::sched {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBsd4: return "4BSD";
    case SchedulerKind::kUle: return "ULE";
    case SchedulerKind::kUleFreebsd5: return "ULE-FreeBSD5";
    case SchedulerKind::kLinuxOne: return "Linux-2.6";
  }
  return "?";
}

SchedulerTraits SchedulerTraits::for_kind(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBsd4:
      return {.context_switch = Duration::us(5),
              .batch_fixed_cost = Duration::ms(35),
              .slice_bias_spread = 0.0,
              .privileged_chance = 0.0,
              .per_cpu_queues = false,
              .steal_on_idle = true,
              .vm_thrash_factor = 10.0};
    case SchedulerKind::kUle:
      return {.context_switch = Duration::us(6),
              .batch_fixed_cost = Duration::ms(38),
              .slice_bias_spread = 0.15,
              .privileged_chance = 0.0,
              .per_cpu_queues = true,
              .steal_on_idle = true,
              .vm_thrash_factor = 10.0};
    case SchedulerKind::kUleFreebsd5:
      return {.context_switch = Duration::us(6),
              .batch_fixed_cost = Duration::ms(38),
              .slice_bias_spread = 0.15,
              .privileged_chance = 0.05,
              .per_cpu_queues = true,
              .steal_on_idle = false,
              .vm_thrash_factor = 10.0};
    case SchedulerKind::kLinuxOne:
      return {.context_switch = Duration::us(4),
              .batch_fixed_cost = Duration::ms(30),
              .slice_bias_spread = 0.0,
              .privileged_chance = 0.0,
              .per_cpu_queues = false,
              .steal_on_idle = true,
              .vm_thrash_factor = 0.3};
  }
  P2PLAB_ASSERT_MSG(false, "unknown scheduler kind");
}

double RunResult::avg_normalized_time_sec(Duration batch_fixed_cost) const {
  P2PLAB_ASSERT(!procs.empty());
  double total = 0.0;
  for (const ProcResult& p : procs) {
    total += (p.cpu_occupied + p.overhead).to_seconds();
  }
  const double n = static_cast<double>(procs.size());
  return total / n + batch_fixed_cost.to_seconds() / n;
}

CpuHost::CpuHost(HostConfig config)
    : config_(config), traits_(SchedulerTraits::for_kind(config.kind)) {
  P2PLAB_ASSERT(config_.n_cpus >= 1);
  P2PLAB_ASSERT(config_.quantum > Duration::zero());
  P2PLAB_ASSERT(config_.ram > config_.os_reserved);
}

namespace {

struct Proc {
  size_t spec_index = 0;
  double remaining_work_sec = 0.0;
  double weight = 1.0;   // persistent CPU-share bias (ULE quantization)
  std::uint64_t wss_bytes = 0;
  SimTime spawn;
  SimTime available_at;  // a process cannot run two slices concurrently
  bool started = false;
  ProcResult result;
};

}  // namespace

RunResult CpuHost::run(std::span<const ProcSpec> specs) {
  RunResult out;
  if (specs.empty()) return out;

  Rng rng(config_.seed);
  const int n_cpus = config_.n_cpus;
  const double usable_ram_bytes = static_cast<double>(
      (config_.ram - config_.os_reserved).count_bytes());

  // --- build processes -----------------------------------------------------
  std::vector<Proc> procs(specs.size());
  // Spawn order sorted by time; ties keep spec order (the paper starts
  // instances from a high-priority launcher, which serializes spawns).
  std::vector<size_t> spawn_order(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) spawn_order[i] = i;
  std::stable_sort(spawn_order.begin(), spawn_order.end(),
                   [&](size_t a, size_t b) {
                     return specs[a].spawn_time < specs[b].spawn_time;
                   });

  for (size_t i = 0; i < specs.size(); ++i) {
    Proc& p = procs[i];
    p.spec_index = i;
    double work = specs[i].work.to_seconds();
    if (config_.work_noise > 0.0) {
      work *= std::max(0.5, rng.normal(1.0, config_.work_noise));
    }
    p.remaining_work_sec = work;
    p.weight = 1.0;
    if (traits_.slice_bias_spread > 0.0) {
      p.weight += rng.uniform_double(-traits_.slice_bias_spread,
                                     traits_.slice_bias_spread);
    }
    if (traits_.privileged_chance > 0.0 &&
        rng.chance(traits_.privileged_chance)) {
      p.weight *= 3.0;  // FreeBSD 5 ULE: some processes excessively favored
    }
    p.wss_bytes = specs[i].working_set.count_bytes();
    p.spawn = specs[i].spawn_time;
    p.result.spawn = p.spawn;
    p.result.initial_cpu =
        traits_.per_cpu_queues ? static_cast<int>(rng.uniform(
                                     static_cast<std::uint64_t>(n_cpus)))
                               : 0;
  }

  // --- run queues ----------------------------------------------------------
  // With a global queue, all CPUs share queue 0.
  const size_t n_queues =
      traits_.per_cpu_queues ? static_cast<size_t>(n_cpus) : 1;
  std::vector<std::deque<size_t>> queues(n_queues);
  auto queue_of_cpu = [&](int cpu) -> std::deque<size_t>& {
    return queues[traits_.per_cpu_queues ? static_cast<size_t>(cpu) : 0];
  };

  std::vector<SimTime> cpu_time(static_cast<size_t>(n_cpus), SimTime::zero());
  size_t next_spawn = 0;     // index into spawn_order
  size_t remaining = specs.size();
  double active_wss_bytes = 0.0;  // working set of spawned, unfinished procs

  auto admit_up_to = [&](SimTime t) {
    while (next_spawn < spawn_order.size() &&
           procs[spawn_order[next_spawn]].spawn <= t) {
      Proc& p = procs[spawn_order[next_spawn]];
      queue_of_cpu(p.result.initial_cpu).push_back(spawn_order[next_spawn]);
      active_wss_bytes += static_cast<double>(p.wss_bytes);
      ++next_spawn;
    }
  };

  auto thrash_factor = [&]() -> double {
    const double over = active_wss_bytes / usable_ram_bytes;
    if (over <= 1.0) return 1.0;
    return 1.0 + traits_.vm_thrash_factor * (over - 1.0);
  };

  auto try_steal = [&](int cpu) -> bool {
    // Move half of the longest queue to this CPU's (empty) queue.
    size_t longest = n_queues;
    size_t longest_size = 1;  // need at least 2 to be worth stealing from
    for (size_t q = 0; q < n_queues; ++q) {
      if (queues[q].size() > longest_size) {
        longest = q;
        longest_size = queues[q].size();
      }
    }
    if (longest == n_queues) return false;
    auto& own = queue_of_cpu(cpu);
    const size_t take = longest_size / 2;
    for (size_t i = 0; i < take; ++i) {
      own.push_back(queues[longest].back());
      queues[longest].pop_back();
    }
    return take > 0;
  };

  // --- main loop: always advance the CPU with the earliest local clock ----
  while (remaining > 0) {
    int cpu = 0;
    for (int c = 1; c < n_cpus; ++c) {
      if (cpu_time[static_cast<size_t>(c)] < cpu_time[static_cast<size_t>(cpu)]) {
        cpu = c;
      }
    }
    SimTime& t = cpu_time[static_cast<size_t>(cpu)];
    admit_up_to(t);

    auto& queue = queue_of_cpu(cpu);
    if (queue.empty()) {
      bool stole = false;
      if (traits_.per_cpu_queues && traits_.steal_on_idle) stole = try_steal(cpu);
      if (!stole && queue.empty()) {
        if (next_spawn < spawn_order.size()) {
          // Idle until the next process appears.
          t = std::max(t, procs[spawn_order[next_spawn]].spawn);
          continue;
        }
        // Nothing to run and nothing will spawn: park this CPU past every
        // other CPU so it is never selected again.
        SimTime latest = t;
        for (int c = 0; c < n_cpus; ++c) {
          latest = std::max(latest, cpu_time[static_cast<size_t>(c)]);
        }
        t = latest + config_.quantum;
        continue;
      }
    }

    const size_t pi = queue.front();
    queue.pop_front();
    Proc& p = procs[pi];
    // A process requeued by another CPU is not runnable until its previous
    // slice (observed on that CPU's clock) has ended on the wall clock;
    // without this, two CPUs would execute the same process concurrently.
    t = std::max(t, p.available_at);
    if (!p.started) {
      p.started = true;
      p.result.first_run = t;
    }

    const double slowdown = thrash_factor();
    const double nominal_slice = config_.quantum.to_seconds() * p.weight;
    const double wall_to_finish = p.remaining_work_sec * slowdown;
    const double slice_wall = std::min(nominal_slice, wall_to_finish);
    p.remaining_work_sec -= slice_wall / slowdown;
    p.result.cpu_occupied += Duration::seconds(slice_wall);
    t += Duration::seconds(slice_wall);

    if (p.remaining_work_sec <= 1e-12) {
      p.result.finish = t;
      active_wss_bytes -= static_cast<double>(p.wss_bytes);
      --remaining;
    } else {
      queue.push_back(pi);
    }
    // Context switch at every slice boundary.
    p.result.overhead += traits_.context_switch;
    t += traits_.context_switch;
    p.available_at = t;
    ++out.context_switches;
  }

  out.procs.reserve(procs.size());
  SimTime first_spawn = SimTime::max();
  SimTime last_finish = SimTime::zero();
  for (const Proc& p : procs) {
    out.procs.push_back(p.result);
    first_spawn = std::min(first_spawn, p.result.spawn);
    last_finish = std::max(last_finish, p.result.finish);
  }
  out.makespan = last_finish - first_spawn;
  return out;
}

}  // namespace p2plab::sched
