// CPU scheduler models for the platform-suitability study.
//
// The paper evaluates whether FreeBSD can host hundreds of virtual nodes by
// measuring (a) per-process execution time vs. process count for CPU-bound
// work (Fig 1), (b) the same under memory pressure where FreeBSD's VM
// thrashes once swap is needed while Linux 2.6 does not (Fig 2), and
// (c) fairness as the CDF of completion times of 100 identical processes
// (Fig 3: 4BSD and Linux are tight; ULE shows a wide spread; FreeBSD 5's
// ULE was pathologically unfair, fixed in FreeBSD 6).
//
// We model the *mechanisms* that produce those macroscopic shapes:
//   - Bsd4      : single global round-robin run queue -> near-perfect
//                 fairness across identical processes.
//   - LinuxOne  : O(1)-style scheduler; globally balanced, cheap context
//                 switches -> also tight.
//   - Ule       : per-CPU run queues, work-stealing only when a CPU idles,
//                 and interactivity-score quantization that gives each
//                 process a persistent slice-length bias -> the smooth
//                 completion-time spread of Figure 3.
//   - UleFreebsd5: no stealing at all plus occasional pathologically
//                 privileged processes (the behaviour reported in the
//                 authors' earlier Hot-P2P paper, reference [12]).
//
// Memory model: when the aggregate working set of active processes exceeds
// usable RAM, progress is divided by a thrash factor that grows linearly in
// the overcommit ratio; the growth constant is an order of magnitude larger
// for the FreeBSD-style VM than for the Linux-style VM (Fig 2's contrast).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace p2plab::sched {

enum class SchedulerKind { kBsd4, kUle, kUleFreebsd5, kLinuxOne };

const char* to_string(SchedulerKind kind);

/// Per-scheduler cost/behaviour constants; defaults are the calibration
/// described in DESIGN.md §6.
struct SchedulerTraits {
  Duration context_switch;   // charged on every slice boundary
  Duration batch_fixed_cost; // per-batch harness cost, amortized over n
  double slice_bias_spread;  // +/- fraction of persistent per-proc CPU bias
  double privileged_chance;  // probability a proc is pathologically favored
  bool per_cpu_queues;       // per-CPU run queues (vs one global queue)
  bool steal_on_idle;        // idle CPUs steal from the longest queue
  double vm_thrash_factor;   // slowdown slope per unit of memory overcommit

  static SchedulerTraits for_kind(SchedulerKind kind);
};

/// One process to run: pure CPU demand when run alone, and its working set.
struct ProcSpec {
  Duration work = Duration::sec(1);
  DataSize working_set = DataSize::zero();
  SimTime spawn_time = SimTime::zero();
};

/// Outcome for one process.
struct ProcResult {
  SimTime spawn;
  SimTime first_run;
  SimTime finish;
  Duration cpu_occupied;  // wall time spent holding a CPU (work + thrash)
  Duration overhead;      // context-switch time charged to this process
  int initial_cpu = 0;
};

struct RunResult {
  std::vector<ProcResult> procs;
  Duration makespan = Duration::zero();
  std::uint64_t context_switches = 0;

  /// The paper's Figure 1/2 metric: average per-process execution time,
  /// i.e. CPU time consumed per process plus the batch-fixed cost amortized
  /// over the batch — flat in n when the scheduler scales, rising when the
  /// VM thrashes.
  double avg_normalized_time_sec(Duration batch_fixed_cost) const;
};

struct HostConfig {
  int n_cpus = 2;                          // GridExplorer: Dual-Opteron
  DataSize ram = DataSize::mib(2048);      // 2 GB per node
  DataSize os_reserved = DataSize::mib(200);
  Duration quantum = Duration::ms(10);
  SchedulerKind kind = SchedulerKind::kBsd4;
  std::uint64_t seed = 1;
  /// Per-process multiplicative work noise (std-dev fraction); models the
  /// real run-to-run variance of the benchmark program.
  double work_noise = 0.0;
};

/// A closed simulation of one multi-CPU host running a batch of processes
/// under one scheduler model. Independent from the network simulation: the
/// scheduler study is a standalone experiment in the paper as well.
class CpuHost {
 public:
  explicit CpuHost(HostConfig config);

  const HostConfig& config() const { return config_; }
  const SchedulerTraits& traits() const { return traits_; }

  /// Run the batch to completion and report per-process results in spec
  /// order.
  RunResult run(std::span<const ProcSpec> specs);

 private:
  HostConfig config_;
  SchedulerTraits traits_;
};

}  // namespace p2plab::sched
