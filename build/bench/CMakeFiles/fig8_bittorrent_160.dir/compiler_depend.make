# Empty compiler generated dependencies file for fig8_bittorrent_160.
# This may be replaced when dependencies are built.
