file(REMOVE_RECURSE
  "CMakeFiles/fig8_bittorrent_160.dir/fig8_bittorrent_160.cpp.o"
  "CMakeFiles/fig8_bittorrent_160.dir/fig8_bittorrent_160.cpp.o.d"
  "fig8_bittorrent_160"
  "fig8_bittorrent_160.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bittorrent_160.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
