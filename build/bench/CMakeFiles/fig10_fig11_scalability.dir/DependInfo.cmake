
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_fig11_scalability.cpp" "bench/CMakeFiles/fig10_fig11_scalability.dir/fig10_fig11_scalability.cpp.o" "gcc" "bench/CMakeFiles/fig10_fig11_scalability.dir/fig10_fig11_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2plab_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2plab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/p2plab_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2plab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipfw/CMakeFiles/p2plab_ipfw.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/p2plab_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
