file(REMOVE_RECURSE
  "CMakeFiles/fig10_fig11_scalability.dir/fig10_fig11_scalability.cpp.o"
  "CMakeFiles/fig10_fig11_scalability.dir/fig10_fig11_scalability.cpp.o.d"
  "fig10_fig11_scalability"
  "fig10_fig11_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fig11_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
