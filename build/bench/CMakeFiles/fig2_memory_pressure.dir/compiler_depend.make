# Empty compiler generated dependencies file for fig2_memory_pressure.
# This may be replaced when dependencies are built.
