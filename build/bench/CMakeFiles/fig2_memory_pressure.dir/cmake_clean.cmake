file(REMOVE_RECURSE
  "CMakeFiles/fig2_memory_pressure.dir/fig2_memory_pressure.cpp.o"
  "CMakeFiles/fig2_memory_pressure.dir/fig2_memory_pressure.cpp.o.d"
  "fig2_memory_pressure"
  "fig2_memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
