file(REMOVE_RECURSE
  "CMakeFiles/abl_nic_saturation.dir/abl_nic_saturation.cpp.o"
  "CMakeFiles/abl_nic_saturation.dir/abl_nic_saturation.cpp.o.d"
  "abl_nic_saturation"
  "abl_nic_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nic_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
