# Empty compiler generated dependencies file for abl_nic_saturation.
# This may be replaced when dependencies are built.
