# Empty compiler generated dependencies file for fig1_concurrent_cpu.
# This may be replaced when dependencies are built.
