
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_concurrent_cpu.cpp" "bench/CMakeFiles/fig1_concurrent_cpu.dir/fig1_concurrent_cpu.cpp.o" "gcc" "bench/CMakeFiles/fig1_concurrent_cpu.dir/fig1_concurrent_cpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/p2plab_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p2plab_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2plab_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
