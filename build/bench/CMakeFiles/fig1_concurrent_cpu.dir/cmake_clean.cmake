file(REMOVE_RECURSE
  "CMakeFiles/fig1_concurrent_cpu.dir/fig1_concurrent_cpu.cpp.o"
  "CMakeFiles/fig1_concurrent_cpu.dir/fig1_concurrent_cpu.cpp.o.d"
  "fig1_concurrent_cpu"
  "fig1_concurrent_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_concurrent_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
