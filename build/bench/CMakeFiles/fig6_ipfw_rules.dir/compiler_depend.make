# Empty compiler generated dependencies file for fig6_ipfw_rules.
# This may be replaced when dependencies are built.
