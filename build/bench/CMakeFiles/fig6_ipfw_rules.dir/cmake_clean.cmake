file(REMOVE_RECURSE
  "CMakeFiles/fig6_ipfw_rules.dir/fig6_ipfw_rules.cpp.o"
  "CMakeFiles/fig6_ipfw_rules.dir/fig6_ipfw_rules.cpp.o.d"
  "fig6_ipfw_rules"
  "fig6_ipfw_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ipfw_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
