# Empty dependencies file for fig9_folding_ratio.
# This may be replaced when dependencies are built.
