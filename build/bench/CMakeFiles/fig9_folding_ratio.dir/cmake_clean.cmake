file(REMOVE_RECURSE
  "CMakeFiles/fig9_folding_ratio.dir/fig9_folding_ratio.cpp.o"
  "CMakeFiles/fig9_folding_ratio.dir/fig9_folding_ratio.cpp.o.d"
  "fig9_folding_ratio"
  "fig9_folding_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_folding_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
