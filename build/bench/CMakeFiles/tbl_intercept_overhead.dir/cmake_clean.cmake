file(REMOVE_RECURSE
  "CMakeFiles/tbl_intercept_overhead.dir/tbl_intercept_overhead.cpp.o"
  "CMakeFiles/tbl_intercept_overhead.dir/tbl_intercept_overhead.cpp.o.d"
  "tbl_intercept_overhead"
  "tbl_intercept_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_intercept_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
