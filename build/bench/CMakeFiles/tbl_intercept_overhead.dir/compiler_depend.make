# Empty compiler generated dependencies file for tbl_intercept_overhead.
# This may be replaced when dependencies are built.
