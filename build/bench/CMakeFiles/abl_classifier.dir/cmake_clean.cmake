file(REMOVE_RECURSE
  "CMakeFiles/abl_classifier.dir/abl_classifier.cpp.o"
  "CMakeFiles/abl_classifier.dir/abl_classifier.cpp.o.d"
  "abl_classifier"
  "abl_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
