
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_fairness_cdf.cpp" "bench/CMakeFiles/fig3_fairness_cdf.dir/fig3_fairness_cdf.cpp.o" "gcc" "bench/CMakeFiles/fig3_fairness_cdf.dir/fig3_fairness_cdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/p2plab_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p2plab_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2plab_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
