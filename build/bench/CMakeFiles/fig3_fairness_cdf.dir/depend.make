# Empty dependencies file for fig3_fairness_cdf.
# This may be replaced when dependencies are built.
