# Empty compiler generated dependencies file for locality_study.
# This may be replaced when dependencies are built.
