file(REMOVE_RECURSE
  "CMakeFiles/locality_study.dir/locality_study.cpp.o"
  "CMakeFiles/locality_study.dir/locality_study.cpp.o.d"
  "locality_study"
  "locality_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
