# Empty compiler generated dependencies file for bittorrent_swarm.
# This may be replaced when dependencies are built.
