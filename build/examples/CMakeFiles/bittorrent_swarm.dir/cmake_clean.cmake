file(REMOVE_RECURSE
  "CMakeFiles/bittorrent_swarm.dir/bittorrent_swarm.cpp.o"
  "CMakeFiles/bittorrent_swarm.dir/bittorrent_swarm.cpp.o.d"
  "bittorrent_swarm"
  "bittorrent_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bittorrent_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
