
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/link_server_test.cpp" "tests/CMakeFiles/test_net.dir/net/link_server_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/link_server_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/test_net.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/p2plab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipfw/CMakeFiles/p2plab_ipfw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
