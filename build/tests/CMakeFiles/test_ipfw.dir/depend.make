# Empty dependencies file for test_ipfw.
# This may be replaced when dependencies are built.
