file(REMOVE_RECURSE
  "CMakeFiles/test_ipfw.dir/ipfw/firewall_test.cpp.o"
  "CMakeFiles/test_ipfw.dir/ipfw/firewall_test.cpp.o.d"
  "CMakeFiles/test_ipfw.dir/ipfw/pipe_test.cpp.o"
  "CMakeFiles/test_ipfw.dir/ipfw/pipe_test.cpp.o.d"
  "CMakeFiles/test_ipfw.dir/ipfw/rule_test.cpp.o"
  "CMakeFiles/test_ipfw.dir/ipfw/rule_test.cpp.o.d"
  "test_ipfw"
  "test_ipfw.pdb"
  "test_ipfw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
