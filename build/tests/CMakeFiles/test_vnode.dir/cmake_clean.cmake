file(REMOVE_RECURSE
  "CMakeFiles/test_vnode.dir/vnode/vnode_test.cpp.o"
  "CMakeFiles/test_vnode.dir/vnode/vnode_test.cpp.o.d"
  "test_vnode"
  "test_vnode.pdb"
  "test_vnode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
