# Empty compiler generated dependencies file for test_vnode.
# This may be replaced when dependencies are built.
