file(REMOVE_RECURSE
  "CMakeFiles/test_bittorrent.dir/bittorrent/bencode_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/bencode_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/bitfield_rate_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/bitfield_rate_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/choker_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/choker_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/client_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/client_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/metainfo_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/metainfo_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/picker_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/picker_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/piece_store_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/piece_store_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/sha1_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/sha1_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/swarm_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/swarm_test.cpp.o.d"
  "CMakeFiles/test_bittorrent.dir/bittorrent/tracker_test.cpp.o"
  "CMakeFiles/test_bittorrent.dir/bittorrent/tracker_test.cpp.o.d"
  "test_bittorrent"
  "test_bittorrent.pdb"
  "test_bittorrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bittorrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
