
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bittorrent/bencode_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/bencode_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/bencode_test.cpp.o.d"
  "/root/repo/tests/bittorrent/bitfield_rate_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/bitfield_rate_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/bitfield_rate_test.cpp.o.d"
  "/root/repo/tests/bittorrent/choker_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/choker_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/choker_test.cpp.o.d"
  "/root/repo/tests/bittorrent/client_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/client_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/client_test.cpp.o.d"
  "/root/repo/tests/bittorrent/metainfo_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/metainfo_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/metainfo_test.cpp.o.d"
  "/root/repo/tests/bittorrent/picker_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/picker_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/picker_test.cpp.o.d"
  "/root/repo/tests/bittorrent/piece_store_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/piece_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/piece_store_test.cpp.o.d"
  "/root/repo/tests/bittorrent/sha1_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/sha1_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/sha1_test.cpp.o.d"
  "/root/repo/tests/bittorrent/swarm_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/swarm_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/swarm_test.cpp.o.d"
  "/root/repo/tests/bittorrent/tracker_test.cpp" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/test_bittorrent.dir/bittorrent/tracker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2plab_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2plab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/p2plab_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2plab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipfw/CMakeFiles/p2plab_ipfw.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/p2plab_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
