# Empty dependencies file for test_bittorrent.
# This may be replaced when dependencies are built.
