file(REMOVE_RECURSE
  "CMakeFiles/test_sockets.dir/sockets/backpressure_test.cpp.o"
  "CMakeFiles/test_sockets.dir/sockets/backpressure_test.cpp.o.d"
  "CMakeFiles/test_sockets.dir/sockets/datagram_test.cpp.o"
  "CMakeFiles/test_sockets.dir/sockets/datagram_test.cpp.o.d"
  "CMakeFiles/test_sockets.dir/sockets/socket_test.cpp.o"
  "CMakeFiles/test_sockets.dir/sockets/socket_test.cpp.o.d"
  "test_sockets"
  "test_sockets.pdb"
  "test_sockets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
