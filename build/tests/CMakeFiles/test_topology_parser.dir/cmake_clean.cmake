file(REMOVE_RECURSE
  "CMakeFiles/test_topology_parser.dir/topology/parser_test.cpp.o"
  "CMakeFiles/test_topology_parser.dir/topology/parser_test.cpp.o.d"
  "test_topology_parser"
  "test_topology_parser.pdb"
  "test_topology_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
