# Empty dependencies file for test_topology_parser.
# This may be replaced when dependencies are built.
