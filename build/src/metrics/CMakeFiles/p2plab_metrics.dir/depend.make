# Empty dependencies file for p2plab_metrics.
# This may be replaced when dependencies are built.
