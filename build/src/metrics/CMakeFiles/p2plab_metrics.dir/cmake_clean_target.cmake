file(REMOVE_RECURSE
  "libp2plab_metrics.a"
)
