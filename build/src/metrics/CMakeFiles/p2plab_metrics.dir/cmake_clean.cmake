file(REMOVE_RECURSE
  "CMakeFiles/p2plab_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/p2plab_metrics.dir/timeseries.cpp.o.d"
  "CMakeFiles/p2plab_metrics.dir/trace.cpp.o"
  "CMakeFiles/p2plab_metrics.dir/trace.cpp.o.d"
  "libp2plab_metrics.a"
  "libp2plab_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
