file(REMOVE_RECURSE
  "libp2plab_sockets.a"
)
