file(REMOVE_RECURSE
  "CMakeFiles/p2plab_sockets.dir/socket.cpp.o"
  "CMakeFiles/p2plab_sockets.dir/socket.cpp.o.d"
  "libp2plab_sockets.a"
  "libp2plab_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
