# Empty dependencies file for p2plab_sockets.
# This may be replaced when dependencies are built.
