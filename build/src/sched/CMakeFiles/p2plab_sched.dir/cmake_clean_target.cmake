file(REMOVE_RECURSE
  "libp2plab_sched.a"
)
