# Empty compiler generated dependencies file for p2plab_sched.
# This may be replaced when dependencies are built.
