file(REMOVE_RECURSE
  "CMakeFiles/p2plab_sched.dir/scheduler.cpp.o"
  "CMakeFiles/p2plab_sched.dir/scheduler.cpp.o.d"
  "libp2plab_sched.a"
  "libp2plab_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
