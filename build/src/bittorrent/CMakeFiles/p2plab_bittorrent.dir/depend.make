# Empty dependencies file for p2plab_bittorrent.
# This may be replaced when dependencies are built.
