file(REMOVE_RECURSE
  "libp2plab_bittorrent.a"
)
