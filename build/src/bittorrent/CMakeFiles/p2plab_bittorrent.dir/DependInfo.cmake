
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bittorrent/bencode.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/bencode.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/bencode.cpp.o.d"
  "/root/repo/src/bittorrent/choker.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/choker.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/choker.cpp.o.d"
  "/root/repo/src/bittorrent/client.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/client.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/client.cpp.o.d"
  "/root/repo/src/bittorrent/metainfo.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/metainfo.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/metainfo.cpp.o.d"
  "/root/repo/src/bittorrent/picker.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/picker.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/picker.cpp.o.d"
  "/root/repo/src/bittorrent/piece_store.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/piece_store.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/piece_store.cpp.o.d"
  "/root/repo/src/bittorrent/sha1.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/sha1.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/sha1.cpp.o.d"
  "/root/repo/src/bittorrent/swarm.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/swarm.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/swarm.cpp.o.d"
  "/root/repo/src/bittorrent/tracker.cpp" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/tracker.cpp.o" "gcc" "src/bittorrent/CMakeFiles/p2plab_bittorrent.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2plab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2plab_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/p2plab_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2plab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2plab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipfw/CMakeFiles/p2plab_ipfw.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/p2plab_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
