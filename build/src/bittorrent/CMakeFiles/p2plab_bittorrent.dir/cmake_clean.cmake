file(REMOVE_RECURSE
  "CMakeFiles/p2plab_bittorrent.dir/bencode.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/bencode.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/choker.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/choker.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/client.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/client.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/metainfo.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/metainfo.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/picker.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/picker.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/piece_store.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/piece_store.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/sha1.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/sha1.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/swarm.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/swarm.cpp.o.d"
  "CMakeFiles/p2plab_bittorrent.dir/tracker.cpp.o"
  "CMakeFiles/p2plab_bittorrent.dir/tracker.cpp.o.d"
  "libp2plab_bittorrent.a"
  "libp2plab_bittorrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_bittorrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
