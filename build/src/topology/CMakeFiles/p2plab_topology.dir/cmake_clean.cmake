file(REMOVE_RECURSE
  "CMakeFiles/p2plab_topology.dir/parser.cpp.o"
  "CMakeFiles/p2plab_topology.dir/parser.cpp.o.d"
  "CMakeFiles/p2plab_topology.dir/topology.cpp.o"
  "CMakeFiles/p2plab_topology.dir/topology.cpp.o.d"
  "libp2plab_topology.a"
  "libp2plab_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
