file(REMOVE_RECURSE
  "libp2plab_topology.a"
)
