# Empty compiler generated dependencies file for p2plab_topology.
# This may be replaced when dependencies are built.
