file(REMOVE_RECURSE
  "CMakeFiles/p2plab_net.dir/host.cpp.o"
  "CMakeFiles/p2plab_net.dir/host.cpp.o.d"
  "CMakeFiles/p2plab_net.dir/network.cpp.o"
  "CMakeFiles/p2plab_net.dir/network.cpp.o.d"
  "libp2plab_net.a"
  "libp2plab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
