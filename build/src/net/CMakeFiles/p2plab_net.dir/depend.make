# Empty dependencies file for p2plab_net.
# This may be replaced when dependencies are built.
