file(REMOVE_RECURSE
  "libp2plab_net.a"
)
