file(REMOVE_RECURSE
  "CMakeFiles/p2plab_workload.dir/tasks.cpp.o"
  "CMakeFiles/p2plab_workload.dir/tasks.cpp.o.d"
  "libp2plab_workload.a"
  "libp2plab_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
