file(REMOVE_RECURSE
  "libp2plab_workload.a"
)
