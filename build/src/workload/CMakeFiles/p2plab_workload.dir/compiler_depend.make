# Empty compiler generated dependencies file for p2plab_workload.
# This may be replaced when dependencies are built.
