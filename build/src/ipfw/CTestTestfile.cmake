# CMake generated Testfile for 
# Source directory: /root/repo/src/ipfw
# Build directory: /root/repo/build/src/ipfw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
