file(REMOVE_RECURSE
  "libp2plab_ipfw.a"
)
