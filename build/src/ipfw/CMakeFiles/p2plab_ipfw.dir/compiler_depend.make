# Empty compiler generated dependencies file for p2plab_ipfw.
# This may be replaced when dependencies are built.
