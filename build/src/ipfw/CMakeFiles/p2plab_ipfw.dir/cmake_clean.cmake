file(REMOVE_RECURSE
  "CMakeFiles/p2plab_ipfw.dir/firewall.cpp.o"
  "CMakeFiles/p2plab_ipfw.dir/firewall.cpp.o.d"
  "CMakeFiles/p2plab_ipfw.dir/pipe.cpp.o"
  "CMakeFiles/p2plab_ipfw.dir/pipe.cpp.o.d"
  "CMakeFiles/p2plab_ipfw.dir/rule.cpp.o"
  "CMakeFiles/p2plab_ipfw.dir/rule.cpp.o.d"
  "libp2plab_ipfw.a"
  "libp2plab_ipfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_ipfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
