# Empty compiler generated dependencies file for p2plab_core.
# This may be replaced when dependencies are built.
