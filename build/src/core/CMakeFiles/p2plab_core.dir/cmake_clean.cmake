file(REMOVE_RECURSE
  "CMakeFiles/p2plab_core.dir/platform.cpp.o"
  "CMakeFiles/p2plab_core.dir/platform.cpp.o.d"
  "libp2plab_core.a"
  "libp2plab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
