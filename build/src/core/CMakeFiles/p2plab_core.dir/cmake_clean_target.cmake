file(REMOVE_RECURSE
  "libp2plab_core.a"
)
