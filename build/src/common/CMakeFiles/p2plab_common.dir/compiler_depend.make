# Empty compiler generated dependencies file for p2plab_common.
# This may be replaced when dependencies are built.
