file(REMOVE_RECURSE
  "CMakeFiles/p2plab_common.dir/ipv4.cpp.o"
  "CMakeFiles/p2plab_common.dir/ipv4.cpp.o.d"
  "CMakeFiles/p2plab_common.dir/time.cpp.o"
  "CMakeFiles/p2plab_common.dir/time.cpp.o.d"
  "CMakeFiles/p2plab_common.dir/units.cpp.o"
  "CMakeFiles/p2plab_common.dir/units.cpp.o.d"
  "libp2plab_common.a"
  "libp2plab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2plab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
