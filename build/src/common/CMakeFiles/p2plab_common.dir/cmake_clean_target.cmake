file(REMOVE_RECURSE
  "libp2plab_common.a"
)
