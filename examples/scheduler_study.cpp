// Scheduler suitability study (the paper's "Suitability of FreeBSD").
//
//   $ ./examples/scheduler_study
//
// Runs the three experiments the paper uses to qualify a host OS for
// process-level virtualization, on the scheduler models:
//   1. throughput under oversubscription (Figure 1's question);
//   2. behaviour under memory pressure / swap (Figure 2's);
//   3. fairness across identical processes (Figure 3's).
#include <algorithm>
#include <cstdio>

#include "metrics/stats.hpp"
#include "sched/scheduler.hpp"
#include "workload/tasks.hpp"

using namespace p2plab;

namespace {

const sched::SchedulerKind kKinds[] = {
    sched::SchedulerKind::kUle, sched::SchedulerKind::kBsd4,
    sched::SchedulerKind::kLinuxOne, sched::SchedulerKind::kUleFreebsd5};

sched::HostConfig host_for(sched::SchedulerKind kind) {
  sched::HostConfig config;
  config.kind = kind;
  config.seed = 7;
  config.work_noise = 0.01;
  return config;
}

}  // namespace

int main() {
  std::printf("1) %d concurrent CPU-bound processes (1.65 s alone): "
              "average per-process time\n",
              500);
  for (const auto kind : kKinds) {
    sched::CpuHost host(host_for(kind));
    const auto result =
        host.run(workload::batch(workload::ackermann_task(), 500));
    std::printf("   %-13s %.4f s  (makespan %.0f s, %llu ctx switches)\n",
                sched::to_string(kind),
                result.avg_normalized_time_sec(
                    host.traits().batch_fixed_cost),
                result.makespan.to_seconds(),
                static_cast<unsigned long long>(result.context_switches));
  }

  std::printf("\n2) 50 memory-hungry processes (60 MiB each, 2 GiB RAM): "
              "swap behaviour\n");
  for (const auto kind :
       {sched::SchedulerKind::kBsd4, sched::SchedulerKind::kLinuxOne}) {
    sched::CpuHost host(host_for(kind));
    const auto result =
        host.run(workload::batch(workload::matrix_task(), 50));
    std::printf("   %-13s %.2f s per process (1.2 s alone) — %s\n",
                sched::to_string(kind),
                result.avg_normalized_time_sec(
                    host.traits().batch_fixed_cost),
                kind == sched::SchedulerKind::kBsd4
                    ? "FreeBSD thrashes once swap is needed"
                    : "Linux 2.6 shrugs it off");
  }

  std::printf("\n3) fairness: 100 identical 5 s processes, completion-time "
              "spread\n");
  for (const auto kind : kKinds) {
    sched::CpuHost host(host_for(kind));
    const auto result =
        host.run(workload::batch(workload::fairness_task(), 100));
    metrics::Distribution finish;
    for (const auto& proc : result.procs) {
      finish.add(proc.finish.to_seconds());
    }
    std::printf("   %-13s min %.0f s  median %.0f s  max %.0f s  "
                "(spread %.0f s)%s\n",
                sched::to_string(kind), finish.min(), finish.median(),
                finish.max(), finish.max() - finish.min(),
                kind == sched::SchedulerKind::kUleFreebsd5
                    ? "  <- the FreeBSD 5 pathology"
                    : "");
  }

  std::printf("\nThe paper's conclusion: use FreeBSD with the 4BSD "
              "scheduler for P2PLab, keep working sets in RAM.\n");
  return 0;
}
