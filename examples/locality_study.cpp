// Locality study on the Figure 7 topology.
//
//   $ ./examples/locality_study
//
// The paper adds *groups* of nodes to the emulation model precisely so
// that locality questions can be studied ("in a real system, those groups
// would match nodes from the same ISP, from the same country, or from the
// same continent"). This example builds the exact emulated topology of
// Figure 7 and measures what an application would see: intra-subnet,
// inter-subnet and inter-continent round-trip times, including the 853 ms
// worked example, then demonstrates the effect on a small file transfer.
#include <cstdio>

#include "core/platform.hpp"
#include "topology/topology.hpp"

using namespace p2plab;

namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

void measure(core::Platform& platform, const char* label, const char* from,
             const char* to) {
  platform.ping(ip(from), ip(to), [=](Duration rtt) {
    std::printf("  %-34s %15s -> %-15s rtt %8.1f ms\n", label, from, to,
                rtt.to_millis());
  });
  platform.sim().run();
}

}  // namespace

int main() {
  core::PlatformConfig config;
  config.physical_nodes = 11;  // 250 vnodes per machine
  core::Platform platform(topology::figure7(), config);

  std::printf("Figure 7 topology: %zu virtual nodes in %zu zones on %zu "
              "physical machines, %zu rules total\n\n",
              platform.vnode_count(), platform.topology().zones().size(),
              platform.physical_node_count(), platform.total_rules());

  std::printf("round-trip times (compare the paper's 853 ms example):\n");
  measure(platform, "same subnet (8M DSL, 20ms)", "10.1.3.207", "10.1.3.5");
  measure(platform, "ISP subnets, 100ms apart", "10.1.3.207", "10.1.1.5");
  measure(platform, "modem subnet internally", "10.1.1.10", "10.1.1.20");
  measure(platform, "paper's example (853 ms)", "10.1.3.207", "10.2.2.117");
  measure(platform, "to the far group (600ms)", "10.1.3.207", "10.3.0.7");
  measure(platform, "between remote groups (1s)", "10.2.2.117", "10.3.0.7");

  // The application-level consequence: fetch 512 KiB from a local peer vs
  // from another continent over the same 10 Mb/s class links.
  auto fetch = [&](const char* label, std::size_t server_idx,
                   std::size_t client_idx) {
    auto listener = platform.api(server_idx)
                        .listen(9000, [&](sockets::StreamSocketPtr sock) {
                          sock->on_message([sock](sockets::Message&&) {
                            sockets::Message file;
                            file.type = 2;
                            file.size = DataSize::kib(512);
                            sock->send(file);
                          });
                        });
    const SimTime start = platform.sim().now();
    platform.api(client_idx)
        .connect(platform.vnode(server_idx).ip(), 9000,
                 [&](sockets::StreamSocketPtr sock) {
                   sock->on_message([&, start, label](sockets::Message&&) {
                     std::printf("  %-34s %8.2f s\n", label,
                                 (platform.sim().now() - start).to_seconds());
                   });
                   sockets::Message req;
                   req.type = 1;
                   req.size = DataSize::bytes(100);
                   sock->send(req);
                 });
    platform.sim().run();
  };

  // Node indices: 10.2.0.0/16 zone spans indices 750..1749.
  std::printf("\n512 KiB fetch over 10 Mb/s links:\n");
  fetch("within 10.2.0.0/16", 750, 751);
  // 10.3.0.0/16 zone spans 1750..2749; crossing 10.2 <-> 10.3 adds 1 s
  // of one-way latency but bandwidth is the same.
  fetch("from 10.3 to 10.2 (1 s away)", 750, 1750);

  std::printf("\nconclusion: group latencies dominate short transfers; the "
              "access link dominates long ones.\n");
  return 0;
}
