// A complete BitTorrent experiment, scaled down from the paper's Figure 8:
// a 4 MiB torrent seeded by 2 initial seeders, downloaded by 24 clients on
// DSL access links, folded onto 4 emulated physical machines.
//
//   $ ./examples/bittorrent_swarm
//
// Prints the per-client completion table and a coarse ASCII progress chart
// (the same data the figure harnesses dump as CSV).
#include <algorithm>
#include <cstdio>

#include "bittorrent/swarm.hpp"

using namespace p2plab;

int main() {
  bt::SwarmConfig config;
  config.file_size = DataSize::mib(4);
  config.seeders = 2;
  config.clients = 24;
  config.start_interval = Duration::sec(10);
  config.verify_hashes = true;  // full SHA-1 verification at this scale

  core::PlatformConfig platform_config;
  platform_config.physical_nodes = 4;
  core::Platform platform(
      topology::homogeneous_dsl(bt::swarm_vnodes(config)), platform_config);

  bt::Swarm swarm(platform, config);
  std::printf("torrent %s: %s in %u pieces, infohash %s...\n",
              swarm.metainfo().name.c_str(),
              swarm.metainfo().total_size.to_string().c_str(),
              swarm.metainfo().piece_count(),
              bt::to_hex(swarm.metainfo().info_hash).substr(0, 12).c_str());
  std::printf("%zu clients + %zu seeders + tracker on %zu machines "
              "(%zu vnodes each)\n\n",
              config.clients, config.seeders,
              platform.physical_node_count(), platform.folding_ratio());

  swarm.run();

  std::printf("client  start(s)  done(s)  downloaded  uploaded  dup-blocks\n");
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    const bt::Client& client = swarm.client(i);
    std::printf("%6zu  %8.0f  %7.0f  %10s  %8s  %10llu\n", i,
                static_cast<double>(i) *
                    config.start_interval.to_seconds(),
                client.has_completed()
                    ? client.completion_time().to_seconds()
                    : -1.0,
                DataSize::bytes(client.stats().bytes_down).to_string().c_str(),
                DataSize::bytes(client.stats().bytes_up).to_string().c_str(),
                static_cast<unsigned long long>(
                    client.stats().duplicate_blocks));
  }

  // ASCII swarm progress: one row per 60 s, '#' per 10% average progress.
  const SimTime end = platform.sim().now();
  std::printf("\nswarm average progress over time:\n");
  for (SimTime t = SimTime::zero(); t <= end; t += Duration::sec(60)) {
    double total = 0.0;
    for (std::size_t i = 0; i < swarm.client_count(); ++i) {
      total += swarm.client(i).progress().value_at(t);
    }
    const double avg = total / static_cast<double>(swarm.client_count());
    std::printf("t=%5.0fs |", t.to_seconds());
    for (int bar = 0; bar < static_cast<int>(avg / 2.5); ++bar) {
      std::fputc('#', stdout);
    }
    std::printf(" %.0f%%\n", avg);
  }

  const auto times = swarm.completion_times_sec();
  const auto [min_it, max_it] =
      std::minmax_element(times.begin(), times.end());
  std::printf("\nall %zu clients done between %.0f s and %.0f s "
              "(simulated); tracker served %llu announces\n",
              times.size(), *min_it, *max_it,
              static_cast<unsigned long long>(
                  swarm.tracker().announces_served()));
  return 0;
}
