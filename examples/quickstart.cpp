// Quickstart: build a small emulated platform, ping across it, and run a
// toy client/server on two virtual nodes.
//
//   $ ./examples/quickstart
//
// Walks through the three layers a P2PLab user touches:
//   1. topology::Topology — what the emulated Internet looks like;
//   2. core::Platform    — folding virtual nodes onto physical ones and
//                          compiling the Dummynet/IPFW rules;
//   3. sockets::SocketApi — the BSD-style sockets the studied application
//                          uses, bound to each virtual node via $BINDIP.
#include <cstdio>

#include "core/platform.hpp"
#include "topology/topology.hpp"

using namespace p2plab;

int main() {
  // Eight DSL nodes (2 Mb/s down, 128 kb/s up, 30 ms) folded onto two
  // physical machines — four virtual nodes each.
  core::PlatformConfig config;
  config.physical_nodes = 2;
  core::Platform platform(topology::homogeneous_dsl(8), config);

  std::printf("platform: %zu virtual nodes on %zu physical nodes "
              "(%zu per machine), %zu firewall rules\n",
              platform.vnode_count(), platform.physical_node_count(),
              platform.folding_ratio(), platform.total_rules());
  for (std::size_t i = 0; i < platform.vnode_count(); ++i) {
    std::printf("  vnode %zu: %s on %s (BINDIP=%s)\n", i,
                platform.vnode(i).ip().to_string().c_str(),
                platform.host_of_vnode(i).name().c_str(),
                platform.process(i).getenv("BINDIP")->c_str());
  }

  // Ping between two co-located vnodes and two remote ones: both pay the
  // emulated access-link latency; only the remote pair crosses the switch.
  platform.ping(platform.vnode(0).ip(), platform.vnode(1).ip(),
                [](Duration rtt) {
                  std::printf("ping vnode0 -> vnode1 (same machine): %s\n",
                              rtt.to_string().c_str());
                });
  platform.ping(platform.vnode(0).ip(), platform.vnode(7).ip(),
                [](Duration rtt) {
                  std::printf("ping vnode0 -> vnode7 (across switch): %s\n",
                              rtt.to_string().c_str());
                });

  // A toy request/response application across the emulated network.
  auto listener = platform.api(7).listen(
      9000, [&](sockets::StreamSocketPtr sock) {
        sock->on_message([&, sock](sockets::Message&& msg) {
          std::printf("server: got %s request at t=%s, replying\n",
                      DataSize::bytes(msg.size.count_bytes())
                          .to_string()
                          .c_str(),
                      platform.sim().now().to_string().c_str());
          sockets::Message reply;
          reply.type = 2;
          reply.size = DataSize::kib(64);
          sock->send(reply);
        });
      });

  platform.api(0).connect(
      platform.vnode(7).ip(), 9000, [&](sockets::StreamSocketPtr sock) {
        sock->on_message([&](sockets::Message&&) {
          std::printf("client: reply received at t=%s "
                      "(64 KiB through the server's 128 kb/s uplink "
                      "~ 4.1 s + latency)\n",
                      platform.sim().now().to_string().c_str());
        });
        sockets::Message request;
        request.type = 1;
        request.size = DataSize::bytes(200);
        sock->send(request);
      });

  platform.sim().run();
  std::printf("done at simulated t=%s after %llu events\n",
              platform.sim().now().to_string().c_str(),
              static_cast<unsigned long long>(
                  platform.sim().dispatched_events()));
  return 0;
}
