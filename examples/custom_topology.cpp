// Describing an experiment in P2PLab's text topology format.
//
//   $ ./examples/custom_topology                 # built-in description
//   $ ./examples/custom_topology my-topology.txt # or your own file
//
// Shows the full workflow a platform user follows: write a topology file,
// parse it, fold it onto a cluster, inspect the compiled rule set, and
// probe the emulated latencies.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/platform.hpp"
#include "topology/parser.hpp"

using namespace p2plab;

namespace {

constexpr const char* kDefaultDescription = R"(# Two ISPs and a campus LAN.
container ispA 10.10.0.0/16
zone adsl   10.10.1.0/24 nodes=40 down=2M   up=128k latency=30ms
zone fiber  10.10.2.0/24 nodes=20 down=100M up=50M  latency=5ms
zone campus 10.20.0.0/24 nodes=40 down=10M  up=10M  latency=2ms loss=0.001
latency adsl fiber 20ms
latency ispA campus 250ms
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultDescription;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const auto parsed = topology::parse_topology(text);
  if (!parsed.topology) {
    std::fprintf(stderr, "topology error: %s\n", parsed.error.c_str());
    return 1;
  }
  const topology::Topology& topo = *parsed.topology;

  std::printf("parsed %zu zones, %zu latency pairs, %zu nodes total\n",
              topo.zones().size(), topo.latencies().size(),
              topo.total_nodes());
  for (const auto& zone : topo.zones()) {
    std::printf("  %-8s %-15s nodes=%-4zu down=%s up=%s latency=%s\n",
                zone.name.c_str(), zone.subnet.to_string().c_str(),
                zone.node_count, zone.link.down.to_string().c_str(),
                zone.link.up.to_string().c_str(),
                zone.link.latency.to_string().c_str());
  }

  core::Platform platform(topo, core::PlatformConfig{.physical_nodes = 4});
  std::printf("\nfolded onto %zu machines (%zu vnodes each), %zu rules\n",
              platform.physical_node_count(), platform.folding_ratio(),
              platform.total_rules());

  const Ipv4Addr adsl = topo.node_address(0);
  const Ipv4Addr fiber = topo.node_address(40);
  const Ipv4Addr campus = topo.node_address(60);
  auto probe = [&](const char* label, Ipv4Addr a, Ipv4Addr b) {
    platform.ping(a, b, [=](Duration rtt) {
      std::printf("  %-22s %-12s -> %-12s  %8.1f ms\n", label,
                  a.to_string().c_str(), b.to_string().c_str(),
                  rtt.to_millis());
    });
    platform.sim().run();
  };
  std::printf("\nprobes:\n");
  probe("adsl -> fiber", adsl, fiber);
  probe("adsl -> campus", adsl, campus);
  probe("fiber -> campus", fiber, campus);
  probe("within campus", campus, topo.node_address(61));
  return 0;
}
