#include "topology/parser.hpp"

#include <gtest/gtest.h>

namespace p2plab::topology {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

constexpr const char* kFigure7Text = R"(
# The paper's Figure 7 topology.
container isp1 10.1.0.0/16
zone modems 10.1.1.0/24 nodes=250 down=56k  up=33600 latency=100ms
zone dsl    10.1.2.0/24 nodes=250 down=512k up=128k  latency=40ms
zone fast   10.1.3.0/24 nodes=250 down=8M   up=1M    latency=20ms
zone g2     10.2.0.0/16 nodes=1000 down=10M up=10M   latency=5ms
zone g3     10.3.0.0/16 nodes=1000 down=1M  up=1M    latency=10ms
latency modems dsl 100ms
latency modems fast 100ms
latency dsl fast 100ms
latency isp1 g2 400ms
latency isp1 g3 600ms
latency g2 g3 1s
)";

TEST(ParseBandwidth, UnitsAndErrors) {
  EXPECT_EQ(*parse_bandwidth("56k"), Bandwidth::kbps(56));
  EXPECT_EQ(*parse_bandwidth("512K"), Bandwidth::kbps(512));
  EXPECT_EQ(*parse_bandwidth("2M"), Bandwidth::mbps(2));
  EXPECT_EQ(*parse_bandwidth("1G"), Bandwidth::gbps(1));
  EXPECT_EQ(*parse_bandwidth("33600"), Bandwidth::bps(33600));
  EXPECT_EQ(*parse_bandwidth("1.5M"), Bandwidth::bps(1500000));
  EXPECT_FALSE(parse_bandwidth("").has_value());
  EXPECT_FALSE(parse_bandwidth("fast").has_value());
  EXPECT_FALSE(parse_bandwidth("-2M").has_value());
  EXPECT_FALSE(parse_bandwidth("M").has_value());
}

TEST(ParseDuration, UnitsAndErrors) {
  EXPECT_EQ(*parse_duration("30ms"), Duration::ms(30));
  EXPECT_EQ(*parse_duration("1s"), Duration::sec(1));
  EXPECT_EQ(*parse_duration("2.5s"), Duration::ms(2500));
  EXPECT_EQ(*parse_duration("250us"), Duration::us(250));
  EXPECT_EQ(*parse_duration("400"), Duration::ms(400));  // bare = ms
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("soon").has_value());
  EXPECT_FALSE(parse_duration("-1s").has_value());
}

TEST(ParseTopology, Figure7RoundTrip) {
  const auto result = parse_topology(kFigure7Text);
  ASSERT_TRUE(result.topology.has_value()) << result.error;
  const Topology& parsed = *result.topology;
  const Topology reference = figure7();

  EXPECT_EQ(parsed.total_nodes(), reference.total_nodes());
  EXPECT_EQ(parsed.zones().size(), reference.zones().size());
  EXPECT_EQ(parsed.latencies().size(), reference.latencies().size());
  // Spot-check semantics: addresses and effective latencies agree.
  EXPECT_EQ(parsed.node_address(250 + 250 + 206), ip("10.1.3.207"));
  EXPECT_EQ(*parsed.inter_zone_latency(ip("10.1.3.207"), ip("10.2.2.117")),
            Duration::ms(400));
  EXPECT_EQ(*parsed.inter_zone_latency(ip("10.2.0.1"), ip("10.3.0.1")),
            Duration::sec(1));
  EXPECT_EQ(parsed.link_of_node(0).up, Bandwidth::bps(33600));
}

TEST(ParseTopology, CommentsAndBlankLines) {
  const auto result = parse_topology(
      "# just a comment\n\n"
      "zone a 10.0.0.0/24 nodes=3 down=2M up=128k latency=30ms # inline\n");
  ASSERT_TRUE(result.topology.has_value()) << result.error;
  EXPECT_EQ(result.topology->total_nodes(), 3u);
}

TEST(ParseTopology, LossAttribute) {
  const auto result = parse_topology(
      "zone a 10.0.0.0/24 nodes=3 down=2M up=128k latency=30ms loss=0.01\n");
  ASSERT_TRUE(result.topology.has_value()) << result.error;
  EXPECT_DOUBLE_EQ(result.topology->zones()[0].link.loss_rate, 0.01);
}

TEST(ParseTopology, ErrorsCarryLineNumbers) {
  const auto cases = {
      std::make_pair("zone a 10.0.0.0/24 nodes=3 down=2M up=128k\n",
                     "line 1"),                                   // no latency
      std::make_pair("frobnicate\n", "unknown directive"),
      std::make_pair("zone a bad-cidr nodes=3 down=2M up=1M latency=1ms\n",
                     "bad CIDR"),
      std::make_pair("latency a b 5ms\n", "unknown zone"),
      std::make_pair("zone a 10.0.0.0/30 nodes=9 down=2M up=1M latency=1ms\n",
                     "too small"),
      std::make_pair("", "no nodes"),
  };
  for (const auto& [text, expected] : cases) {
    const auto result = parse_topology(text);
    EXPECT_FALSE(result.topology.has_value()) << text;
    EXPECT_NE(result.error.find(expected), std::string::npos)
        << "got: " << result.error;
  }
}

TEST(ParseTopology, RejectsDuplicateNames) {
  const auto result = parse_topology(
      "zone a 10.0.0.0/24 nodes=1 down=1M up=1M latency=1ms\n"
      "zone a 10.1.0.0/24 nodes=1 down=1M up=1M latency=1ms\n");
  EXPECT_FALSE(result.topology.has_value());
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(ParseTopology, RejectsOverlappingZones) {
  const auto result = parse_topology(
      "zone a 10.0.0.0/16 nodes=1 down=1M up=1M latency=1ms\n"
      "zone b 10.0.1.0/24 nodes=1 down=1M up=1M latency=1ms\n");
  EXPECT_FALSE(result.topology.has_value());
  EXPECT_NE(result.error.find("overlaps"), std::string::npos);
}

TEST(ParseTopology, RejectsOverlappingLatencyPair) {
  const auto result = parse_topology(
      "container c 10.0.0.0/8\n"
      "zone a 10.0.0.0/24 nodes=1 down=1M up=1M latency=1ms\n"
      "latency c a 5ms\n");
  EXPECT_FALSE(result.topology.has_value());
  EXPECT_NE(result.error.find("overlap"), std::string::npos);
}

}  // namespace
}  // namespace p2plab::topology
