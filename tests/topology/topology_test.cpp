#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace p2plab::topology {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

TEST(LinkClasses, PaperProfiles) {
  EXPECT_EQ(dsl_2m().down, Bandwidth::mbps(2));
  EXPECT_EQ(dsl_2m().up, Bandwidth::kbps(128));
  EXPECT_EQ(dsl_2m().latency, Duration::ms(30));
  EXPECT_EQ(modem_56k().up, Bandwidth::bps(33600));
  EXPECT_EQ(dsl_8m().down, Bandwidth::mbps(8));
  EXPECT_EQ(sym_10m().down, sym_10m().up);
}

TEST(Topology, HomogeneousAddressing) {
  const Topology topo = homogeneous_dsl(160);
  EXPECT_EQ(topo.total_nodes(), 160u);
  EXPECT_EQ(topo.node_address(0), ip("10.0.0.1"));
  EXPECT_EQ(topo.node_address(159), ip("10.0.0.160"));
  EXPECT_EQ(topo.zone_of_node(0), topo.zone_of_node(159));
}

TEST(Topology, AddressesAreDistinct) {
  const Topology topo = homogeneous_dsl(1000);
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.insert(topo.node_address(i).to_u32());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Topology, LargeSwarmCrossesOctetBoundary) {
  const Topology topo = homogeneous_dsl(5760);
  EXPECT_EQ(topo.node_address(255), ip("10.0.1.0"));
  EXPECT_EQ(topo.node_address(5759), ip("10.0.22.128"));
}

TEST(Topology, ZoneLookupMostSpecific) {
  const Topology topo = figure7();
  const auto z = topo.zone_of(ip("10.1.3.207"));
  ASSERT_TRUE(z.has_value());
  EXPECT_EQ(topo.zones()[*z].name, "10.1.3.0/24");  // not the /16 container
  EXPECT_FALSE(topo.zone_of(ip("10.9.0.1")).has_value());
}

TEST(Figure7, Structure) {
  const Topology topo = figure7();
  EXPECT_EQ(topo.total_nodes(), 250u + 250 + 250 + 1000 + 1000);
  EXPECT_EQ(topo.zones().size(), 6u);  // 1 container + 5 node zones
  EXPECT_EQ(topo.latencies().size(), 6u);
}

TEST(Figure7, NodeAddressesMatchPaper) {
  const Topology topo = figure7();
  // 10.1.3.207 is the 207th node of the third ISP subnet.
  const std::size_t idx_13_207 = 250 + 250 + 206;
  EXPECT_EQ(topo.node_address(idx_13_207), ip("10.1.3.207"));
  // 10.2.2.117 is node offset 2*256+117-1 = 628 of the 10.2.0.0/16 zone.
  const std::size_t idx_22_117 = 750 + 2 * 256 + 117 - 1;
  EXPECT_EQ(topo.node_address(idx_22_117), ip("10.2.2.117"));
}

TEST(Figure7, InterZoneLatencies) {
  const Topology topo = figure7();
  // Within the ISP: 100 ms between subnets, none within one subnet.
  EXPECT_EQ(*topo.inter_zone_latency(ip("10.1.3.207"), ip("10.1.1.5")),
            Duration::ms(100));
  EXPECT_FALSE(
      topo.inter_zone_latency(ip("10.1.3.207"), ip("10.1.3.5")).has_value());
  // Continental distances.
  EXPECT_EQ(*topo.inter_zone_latency(ip("10.1.3.207"), ip("10.2.2.117")),
            Duration::ms(400));
  EXPECT_EQ(*topo.inter_zone_latency(ip("10.2.2.117"), ip("10.1.3.207")),
            Duration::ms(400));
  EXPECT_EQ(*topo.inter_zone_latency(ip("10.1.1.1"), ip("10.3.0.5")),
            Duration::ms(600));
  EXPECT_EQ(*topo.inter_zone_latency(ip("10.2.0.1"), ip("10.3.0.1")),
            Duration::sec(1));
}

TEST(Figure7, LinkClassesPerZone) {
  const Topology topo = figure7();
  EXPECT_EQ(topo.link_of_node(0).down, Bandwidth::kbps(56));     // 10.1.1.x
  EXPECT_EQ(topo.link_of_node(250).down, Bandwidth::kbps(512));  // 10.1.2.x
  EXPECT_EQ(topo.link_of_node(500).down, Bandwidth::mbps(8));    // 10.1.3.x
  EXPECT_EQ(topo.link_of_node(750).down, Bandwidth::mbps(10));   // 10.2.x
  EXPECT_EQ(topo.link_of_node(1750).down, Bandwidth::mbps(1));   // 10.3.x
}

TEST(Topology, RejectsOverlappingNodeZones) {
  Topology topo;
  topo.add_zone("a", *CidrBlock::parse("10.0.0.0/24"), 10, dsl_2m());
  EXPECT_DEATH(
      topo.add_zone("b", *CidrBlock::parse("10.0.0.0/16"), 10, dsl_2m()),
      "disjoint");
}

TEST(Topology, RejectsOverfullZone) {
  Topology topo;
  EXPECT_DEATH(
      topo.add_zone("a", *CidrBlock::parse("10.0.0.0/28"), 100, dsl_2m()),
      "too small");
}

TEST(Topology, RejectsOverlappingLatencyPair) {
  Topology topo = figure7();
  // Zone 0 is the 10.1.0.0/16 container, zone 1 is 10.1.1.0/24 inside it.
  EXPECT_DEATH(topo.add_latency(0, 1, Duration::ms(5)), "disjoint");
}

}  // namespace
}  // namespace p2plab::topology
