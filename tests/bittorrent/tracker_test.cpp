#include "bittorrent/tracker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/platform.hpp"

namespace p2plab::bt {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

Sha1Digest hash_of(const char* text) {
  return Sha1::hash(std::string_view{text});
}

AnnounceRequest announce_from(Ipv4Addr peer_ip, const Sha1Digest& info_hash,
                              AnnounceEvent event = AnnounceEvent::kStarted) {
  AnnounceRequest req;
  req.info_hash = info_hash;
  req.peer = PeerInfo{peer_ip, 6881};
  req.event = event;
  req.numwant = 50;
  return req;
}

class TrackerPolicyTest : public ::testing::Test {
 protected:
  core::Platform platform{topology::homogeneous_dsl(2),
                          core::PlatformConfig{.physical_nodes = 1}};
  Tracker tracker{platform.api(0), Tracker::Config{}, Rng{1}};
  Sha1Digest torrent = hash_of("torrent-a");
};

TEST_F(TrackerPolicyTest, RegistersAndSamples) {
  for (std::uint32_t i = 1; i <= 10; ++i) {
    tracker.handle_announce(
        announce_from(ip("10.0.0.0").offset(i), torrent));
  }
  EXPECT_EQ(tracker.swarm_size(torrent), 10u);

  const auto resp = tracker.handle_announce(
      announce_from(ip("10.0.0.0").offset(1), torrent,
                    AnnounceEvent::kPeriodic));
  // 9 other peers known; the requester itself is excluded.
  EXPECT_EQ(resp.peers.size(), 9u);
  for (const PeerInfo& p : resp.peers) {
    EXPECT_NE(p.ip, ip("10.0.0.1"));
  }
}

TEST_F(TrackerPolicyTest, NumwantCapsResponse) {
  for (std::uint32_t i = 1; i <= 80; ++i) {
    tracker.handle_announce(
        announce_from(ip("10.0.0.0").offset(i), torrent));
  }
  auto req = announce_from(ip("10.0.9.9"), torrent);
  req.numwant = 50;
  const auto resp = tracker.handle_announce(req);
  EXPECT_EQ(resp.peers.size(), 50u);
  std::set<std::uint32_t> unique;
  for (const PeerInfo& p : resp.peers) unique.insert(p.ip.to_u32());
  EXPECT_EQ(unique.size(), 50u);
}

TEST_F(TrackerPolicyTest, StoppedRemovesPeer) {
  tracker.handle_announce(announce_from(ip("10.0.0.1"), torrent));
  tracker.handle_announce(announce_from(ip("10.0.0.2"), torrent));
  tracker.handle_announce(
      announce_from(ip("10.0.0.1"), torrent, AnnounceEvent::kStopped));
  EXPECT_EQ(tracker.swarm_size(torrent), 1u);
}

TEST_F(TrackerPolicyTest, CompletedCountsSeeders) {
  tracker.handle_announce(announce_from(ip("10.0.0.1"), torrent));
  tracker.handle_announce(
      announce_from(ip("10.0.0.1"), torrent, AnnounceEvent::kCompleted));
  const auto resp =
      tracker.handle_announce(announce_from(ip("10.0.0.2"), torrent));
  EXPECT_EQ(resp.complete, 1u);
}

TEST_F(TrackerPolicyTest, SwarmsAreIsolatedByInfohash) {
  tracker.handle_announce(announce_from(ip("10.0.0.1"), torrent));
  tracker.handle_announce(
      announce_from(ip("10.0.0.2"), hash_of("torrent-b")));
  const auto resp = tracker.handle_announce(
      announce_from(ip("10.0.0.3"), hash_of("torrent-b")));
  ASSERT_EQ(resp.peers.size(), 1u);
  EXPECT_EQ(resp.peers[0].ip, ip("10.0.0.2"));
}

TEST_F(TrackerPolicyTest, DuplicateAnnouncesIdempotent) {
  for (int i = 0; i < 5; ++i) {
    tracker.handle_announce(announce_from(ip("10.0.0.1"), torrent,
                                          AnnounceEvent::kPeriodic));
  }
  EXPECT_EQ(tracker.swarm_size(torrent), 1u);
  EXPECT_EQ(tracker.announces_served(), 5u);
}

TEST(TrackerWire, AnnounceOverSockets) {
  // Full round trip over the emulated network.
  core::Platform platform(topology::homogeneous_dsl(3),
                          core::PlatformConfig{.physical_nodes = 1});
  Tracker tracker(platform.api(0), Tracker::Config{}, Rng{1});
  tracker.start();
  const Sha1Digest torrent = hash_of("wire");

  // Seed the swarm with one other peer.
  tracker.handle_announce(
      announce_from(platform.vnode(2).ip(), torrent));

  std::optional<AnnounceResponse> got;
  platform.api(1).connect(
      platform.vnode(0).ip(), 6969, [&](sockets::StreamSocketPtr sock) {
        sock->on_message([&, sock](sockets::Message&& msg) {
          got = msg.as<TrackerResponseMsg>().response;
          sock->close();
        });
        sockets::Message msg;
        msg.type = static_cast<std::uint32_t>(MsgType::kTrackerAnnounce);
        msg.size = announce_request_wire_size();
        msg.body = std::make_shared<const TrackerAnnounceMsg>(
            TrackerAnnounceMsg{announce_from(platform.vnode(1).ip(), torrent)});
        sock->send(std::move(msg));
      });
  platform.sim().run();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->peers.size(), 1u);
  EXPECT_EQ(got->peers[0].ip, platform.vnode(2).ip());
  EXPECT_EQ(got->interval, Duration::sec(1800));
}

TEST(TrackerWire, ResponseSizeScalesWithPeers) {
  EXPECT_EQ(announce_response_wire_size(0).count_bytes(), 120u);
  EXPECT_EQ(announce_response_wire_size(50).count_bytes(), 120u + 300u);
}

}  // namespace
}  // namespace p2plab::bt
