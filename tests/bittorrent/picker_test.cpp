#include "bittorrent/picker.hpp"

#include <gtest/gtest.h>

#include <set>

namespace p2plab::bt {
namespace {

class PickerTest : public ::testing::Test {
 protected:
  // 8 pieces of 4 blocks (512 KiB, 64 KiB pieces).
  MetaInfo meta = MetaInfo::make_synthetic("f", DataSize::kib(512), 1,
                                           false, DataSize::kib(64));
  PieceStore store{meta, false};
  PiecePicker picker{meta, store, Rng{3}};

  Bitfield full_have() {
    Bitfield bf(meta.piece_count());
    bf.set_all();
    return bf;
  }

  void complete_piece(std::uint32_t p) {
    for (std::uint32_t b = 0; b < meta.blocks_in_piece(p); ++b) {
      picker.on_block_received(BlockRef{p, b});
      store.add_block(p, b, true);
    }
  }
};

TEST_F(PickerTest, AvailabilityBookkeeping) {
  picker.peer_has(3);
  picker.peer_has(3);
  EXPECT_EQ(picker.availability(3), 2u);
  Bitfield have(meta.piece_count());
  have.set(3);
  have.set(5);
  picker.peer_has_bitfield(have);
  EXPECT_EQ(picker.availability(3), 3u);
  EXPECT_EQ(picker.availability(5), 1u);
  picker.peer_lost(have);
  EXPECT_EQ(picker.availability(3), 2u);
  EXPECT_EQ(picker.availability(5), 0u);
}

TEST_F(PickerTest, PicksOnlyWhatPeerHas) {
  Bitfield have(meta.piece_count());
  have.set(6);
  picker.peer_has_bitfield(have);
  const auto ref = picker.pick(have);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->piece, 6u);
}

TEST_F(PickerTest, NothingToPickFromEmptyPeer) {
  Bitfield have(meta.piece_count());
  EXPECT_FALSE(picker.pick(have).has_value());
}

TEST_F(PickerTest, RarestFirstAfterFirstPiece) {
  // Complete piece 0 so random-first mode ends.
  complete_piece(0);
  // Piece 2 is rare (availability 1), the rest are common (3).
  for (std::uint32_t p = 1; p < meta.piece_count(); ++p) {
    picker.peer_has(p);
    picker.peer_has(p);
    if (p != 2) picker.peer_has(p);
  }
  const auto ref = picker.pick(full_have());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->piece, 2u);
}

TEST_F(PickerTest, StrictPriorityFinishesStartedPieces) {
  complete_piece(0);
  // Start piece 5 (one block received), make piece 3 much rarer.
  picker.peer_has(5);
  picker.peer_has(5);
  picker.peer_has(5);
  picker.peer_has(3);
  store.add_block(5, 0, true);
  const auto ref = picker.pick(full_have());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->piece, 5u);  // partial beats rare
  EXPECT_EQ(ref->block, 1u);
}

TEST_F(PickerTest, RequestedBlocksNotRepicked) {
  const Bitfield have = full_have();
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  // Pick every block in the torrent once.
  for (std::uint32_t i = 0; i < 32; ++i) {
    const auto ref = picker.pick(have);
    ASSERT_TRUE(ref.has_value()) << i;
    EXPECT_TRUE(seen.emplace(ref->piece, ref->block).second)
        << "block picked twice";
    picker.on_requested(*ref);
  }
  EXPECT_FALSE(picker.pick(have).has_value());
  EXPECT_TRUE(picker.all_missing_requested());
}

TEST_F(PickerTest, DiscardMakesBlockPickableAgain) {
  const Bitfield have = full_have();
  const auto ref = picker.pick(have);
  ASSERT_TRUE(ref.has_value());
  picker.on_requested(*ref);
  picker.on_request_discarded(*ref);
  // With random-first picking the same piece may or may not come back, but
  // the block must be reachable again: drain all picks and count.
  std::size_t picked = 0;
  while (picker.pick(have)) {
    const auto next = picker.pick(have);
    if (!next) break;
    picker.on_requested(*next);
    ++picked;
  }
  EXPECT_EQ(picked, 32u);  // every block still reachable exactly once
}

TEST_F(PickerTest, EndgameMissingBlocks) {
  const Bitfield have = full_have();
  // Request everything.
  while (auto ref = picker.pick(have)) picker.on_requested(*ref);
  EXPECT_TRUE(picker.all_missing_requested());
  const auto missing = picker.missing_blocks(have);
  EXPECT_EQ(missing.size(), 32u);  // nothing received yet
  // Receive one block: it leaves the missing set.
  picker.on_block_received(missing[0]);
  store.add_block(missing[0].piece, missing[0].block, true);
  EXPECT_EQ(picker.missing_blocks(have).size(), 31u);
}

TEST_F(PickerTest, CompletedPiecesNeverPicked) {
  complete_piece(0);
  complete_piece(1);
  Bitfield have(meta.piece_count());
  have.set(0);
  have.set(1);
  EXPECT_FALSE(picker.pick(have).has_value());
}

TEST_F(PickerTest, DuplicateDiscardIsSafe) {
  const auto ref = BlockRef{2, 1};
  picker.on_requested(ref);
  picker.on_request_discarded(ref);
  picker.on_request_discarded(ref);  // double release must not underflow
  picker.on_block_received(ref);     // receipt without request is fine
}

TEST_F(PickerTest, RandomFirstPieceSpreadsChoice) {
  // Before any piece completes, picks should not always start at piece 0.
  std::set<std::uint32_t> picked_pieces;
  for (int trial = 0; trial < 30; ++trial) {
    PiecePicker fresh(meta, store, Rng{static_cast<std::uint64_t>(trial)});
    const auto ref = fresh.pick(full_have());
    ASSERT_TRUE(ref.has_value());
    picked_pieces.insert(ref->piece);
  }
  EXPECT_GT(picked_pieces.size(), 3u);
}

}  // namespace
}  // namespace p2plab::bt
