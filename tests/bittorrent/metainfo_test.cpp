#include "bittorrent/metainfo.hpp"

#include <gtest/gtest.h>

namespace p2plab::bt {
namespace {

TEST(MetaInfo, PieceGeometry16MiB) {
  // The paper's torrent: 16 MB file, 256 KB pieces -> 64 pieces.
  const auto meta =
      MetaInfo::make_synthetic("f", DataSize::mib(16), 1, false);
  EXPECT_EQ(meta.piece_count(), 64u);
  EXPECT_EQ(meta.piece_size(0), 256u * 1024);
  EXPECT_EQ(meta.piece_size(63), 256u * 1024);
  EXPECT_EQ(meta.blocks_in_piece(0), 16u);  // 256 KiB / 16 KiB
  EXPECT_EQ(meta.block_size(0, 0), kBlockLength);
}

TEST(MetaInfo, ShortLastPiece) {
  const auto meta = MetaInfo::make_synthetic(
      "f", DataSize::bytes(256 * 1024 + 20000), 1, false);
  EXPECT_EQ(meta.piece_count(), 2u);
  EXPECT_EQ(meta.piece_size(1), 20000u);
  EXPECT_EQ(meta.blocks_in_piece(1), 2u);  // 16384 + 3616
  EXPECT_EQ(meta.block_size(1, 0), kBlockLength);
  EXPECT_EQ(meta.block_size(1, 1), 20000u - kBlockLength);
}

TEST(MetaInfo, SyntheticContentIsDeterministic) {
  const auto a = MetaInfo::make_synthetic("f", DataSize::kib(512), 7, false);
  const auto b = MetaInfo::make_synthetic("f", DataSize::kib(512), 7, false);
  EXPECT_EQ(a.generate_piece(0), b.generate_piece(0));
  EXPECT_EQ(a.generate_piece(1), b.generate_piece(1));
}

TEST(MetaInfo, DifferentSeedsDifferentContent) {
  const auto a = MetaInfo::make_synthetic("f", DataSize::kib(512), 7, false);
  const auto b = MetaInfo::make_synthetic("f", DataSize::kib(512), 8, false);
  EXPECT_NE(a.generate_piece(0), b.generate_piece(0));
}

TEST(MetaInfo, HashedPiecesVerify) {
  const auto meta = MetaInfo::make_synthetic("f", DataSize::mib(1), 3, true);
  ASSERT_EQ(meta.piece_hashes.size(), meta.piece_count());
  for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
    EXPECT_EQ(Sha1::hash(meta.generate_piece(p)), meta.piece_hashes[p]);
  }
}

TEST(MetaInfo, InfohashStableAndUnique) {
  const auto a1 = MetaInfo::make_synthetic("f", DataSize::mib(1), 3, true);
  const auto a2 = MetaInfo::make_synthetic("f", DataSize::mib(1), 3, true);
  const auto b = MetaInfo::make_synthetic("f", DataSize::mib(1), 4, true);
  const auto c = MetaInfo::make_synthetic("g", DataSize::mib(1), 3, true);
  EXPECT_EQ(a1.info_hash, a2.info_hash);
  EXPECT_NE(a1.info_hash, b.info_hash);
  EXPECT_NE(a1.info_hash, c.info_hash);
}

TEST(MetaInfo, UnhashedInfohashStillUniquePerSeed) {
  const auto a = MetaInfo::make_synthetic("f", DataSize::mib(1), 3, false);
  const auto b = MetaInfo::make_synthetic("f", DataSize::mib(1), 4, false);
  EXPECT_NE(a.info_hash, b.info_hash);
  EXPECT_TRUE(a.piece_hashes.empty());
}

TEST(MetaInfo, PieceBytesMatchDeclaredSizes) {
  const auto meta = MetaInfo::make_synthetic(
      "f", DataSize::bytes(300 * 1024), 9, false);
  for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
    EXPECT_EQ(meta.generate_piece(p).size(), meta.piece_size(p));
  }
}

}  // namespace
}  // namespace p2plab::bt
