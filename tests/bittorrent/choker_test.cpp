#include "bittorrent/choker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace p2plab::bt {
namespace {

bool contains(const std::vector<PeerKey>& v, PeerKey k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

PeerSnapshot peer(PeerKey key, double rate, bool interested = true,
                  bool snubbed = false) {
  return PeerSnapshot{key, interested, snubbed, rate};
}

TEST(Choker, TopRatesGetRegularSlots) {
  Choker choker;
  Rng rng(1);
  const std::vector<PeerSnapshot> peers = {
      peer(1, 100), peer(2, 500), peer(3, 300), peer(4, 50), peer(5, 400),
  };
  const auto unchoked = choker.rechoke(SimTime::zero(), peers, rng);
  // 3 regular slots: peers 2, 5, 3. Plus one optimistic from {1, 4}.
  EXPECT_TRUE(contains(unchoked, 2));
  EXPECT_TRUE(contains(unchoked, 5));
  EXPECT_TRUE(contains(unchoked, 3));
  EXPECT_EQ(unchoked.size(), 4u);
  EXPECT_TRUE(contains(unchoked, 1) || contains(unchoked, 4));
}

TEST(Choker, UninterestedPeersNeverUnchoked) {
  Choker choker;
  Rng rng(1);
  const std::vector<PeerSnapshot> peers = {
      peer(1, 1000, /*interested=*/false),
      peer(2, 10),
  };
  const auto unchoked = choker.rechoke(SimTime::zero(), peers, rng);
  EXPECT_FALSE(contains(unchoked, 1));
  EXPECT_TRUE(contains(unchoked, 2));
}

TEST(Choker, SnubbedPeersLoseRegularSlots) {
  Choker choker;
  Rng rng(1);
  const std::vector<PeerSnapshot> peers = {
      peer(1, 1000, true, /*snubbed=*/true),
      peer(2, 100),
      peer(3, 90),
      peer(4, 80),
      peer(5, 70),
  };
  const auto unchoked = choker.rechoke(SimTime::zero(), peers, rng);
  // Peer 1 is fastest but snubbed: it can only hold the optimistic slot.
  EXPECT_TRUE(contains(unchoked, 2));
  EXPECT_TRUE(contains(unchoked, 3));
  EXPECT_TRUE(contains(unchoked, 4));
}

TEST(Choker, OptimisticRotatesOnInterval) {
  Choker choker;
  Rng rng(1);
  std::vector<PeerSnapshot> peers;
  for (PeerKey k = 1; k <= 10; ++k) peers.push_back(peer(k, 0));

  SimTime now = SimTime::zero();
  const auto first = choker.rechoke(now, peers, rng);
  const PeerKey optimistic1 = choker.optimistic();
  EXPECT_NE(optimistic1, kNoPeer);
  EXPECT_TRUE(contains(first, optimistic1));

  // Within 30 s: stable.
  now += Duration::sec(10);
  choker.rechoke(now, peers, rng);
  EXPECT_EQ(choker.optimistic(), optimistic1);

  // Across many rotations, different peers get the slot.
  std::set<PeerKey> seen;
  for (int i = 0; i < 20; ++i) {
    now += Duration::sec(30);
    choker.rechoke(now, peers, rng);
    seen.insert(choker.optimistic());
  }
  EXPECT_GT(seen.size(), 3u);
}

TEST(Choker, OptimisticReplacedWhenPeerLeaves) {
  Choker choker;
  Rng rng(2);
  // Three fast peers occupy the regular slots; two slow ones compete for
  // the optimistic slot.
  std::vector<PeerSnapshot> peers = {peer(1, 300), peer(2, 200),
                                     peer(3, 100), peer(4, 0), peer(5, 0)};
  choker.rechoke(SimTime::zero(), peers, rng);
  const PeerKey gone = choker.optimistic();
  ASSERT_TRUE(gone == 4 || gone == 5);
  // Remove the optimistic peer from the snapshot; the next rechoke
  // (within the interval) must pick a replacement.
  peers.erase(std::remove_if(peers.begin(), peers.end(),
                             [&](const PeerSnapshot& p) {
                               return p.key == gone;
                             }),
              peers.end());
  const auto unchoked =
      choker.rechoke(SimTime::zero() + Duration::sec(1), peers, rng);
  EXPECT_NE(choker.optimistic(), gone);
  EXPECT_EQ(choker.optimistic(), gone == 4 ? 5u : 4u);
  EXPECT_EQ(unchoked.size(), 4u);
}

TEST(Choker, NoInterestedPeersNoUnchokes) {
  Choker choker;
  Rng rng(3);
  const std::vector<PeerSnapshot> peers = {
      peer(1, 100, false), peer(2, 100, false)};
  EXPECT_TRUE(choker.rechoke(SimTime::zero(), peers, rng).empty());
  EXPECT_EQ(choker.optimistic(), kNoPeer);
}

TEST(Choker, SlotCountRespectsConfig) {
  Choker choker(ChokerConfig{.unchoke_slots = 2,
                             .optimistic_interval = Duration::sec(30)});
  Rng rng(4);
  std::vector<PeerSnapshot> peers;
  for (PeerKey k = 1; k <= 8; ++k) peers.push_back(peer(k, double(k)));
  const auto unchoked = choker.rechoke(SimTime::zero(), peers, rng);
  EXPECT_EQ(unchoked.size(), 2u);  // 1 regular + 1 optimistic
  EXPECT_TRUE(contains(unchoked, 8));
}

TEST(Choker, FewerPeersThanSlots) {
  Choker choker;
  Rng rng(5);
  const std::vector<PeerSnapshot> peers = {peer(1, 10), peer(2, 20)};
  const auto unchoked = choker.rechoke(SimTime::zero(), peers, rng);
  EXPECT_EQ(unchoked.size(), 2u);
  EXPECT_TRUE(contains(unchoked, 1));
  EXPECT_TRUE(contains(unchoked, 2));
}

}  // namespace
}  // namespace p2plab::bt
