// Protocol-level tests of the BitTorrent client against small controlled
// swarms (the swarm_test.cpp suite covers end-to-end downloads; here we
// pin down individual mechanisms).
#include "bittorrent/client.hpp"

#include <gtest/gtest.h>

#include "bittorrent/swarm.hpp"
#include "core/platform.hpp"

namespace p2plab::bt {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kVnodes = 6;  // tracker + up to 5 peers

  ClientTest()
      : platform(topology::homogeneous_dsl(kVnodes),
                 core::PlatformConfig{.physical_nodes = 2}),
        meta(MetaInfo::make_synthetic("t", DataSize::kib(512), 3, true)),
        tracker(platform.api(0), Tracker::Config{},
                platform.rng().fork(1)) {
    tracker.start();
  }

  std::unique_ptr<Client> make_client(std::size_t vnode, bool seed,
                                      ClientConfig config = {}) {
    config.verify_hashes = true;
    return std::make_unique<Client>(
        platform.sim(), platform.api(vnode), meta,
        PeerInfo{platform.vnode(0).ip(), tracker.port()}, config, seed,
        platform.rng().fork(100 + vnode));
  }

  void run_for(int seconds) {
    platform.sim().run_until(platform.sim().now() +
                             Duration::sec(seconds));
  }

  core::Platform platform;
  MetaInfo meta;
  Tracker tracker;
};

TEST_F(ClientTest, SeedAndLeecherConnectViaTracker) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(30);
  EXPECT_EQ(seed->peer_count(), 1u);
  EXPECT_EQ(leech->peer_count(), 1u);
  EXPECT_EQ(tracker.swarm_size(meta.info_hash), 2u);
}

TEST_F(ClientTest, LeecherDownloadsAndBecomesSeed) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(600);
  EXPECT_TRUE(leech->complete());
  EXPECT_TRUE(leech->has_completed());
  EXPECT_FALSE(seed->has_completed());  // initial seeds don't "complete"
  // The new seed announces completion to the tracker.
  EXPECT_GE(leech->stats().announces, 2u);  // started + completed
  // Progress trace ends at 100%.
  EXPECT_DOUBLE_EQ(leech->progress().last_value(), 100.0);
}

TEST_F(ClientTest, WrongInfohashPeerIsDropped) {
  auto seed = make_client(1, true);
  seed->start();
  // A client for a *different* torrent learns of the seed out of band and
  // dials it: the handshake must be rejected.
  MetaInfo other = MetaInfo::make_synthetic("other", DataSize::kib(512),
                                            99, true);
  Client stranger(platform.sim(), platform.api(2), other,
                  PeerInfo{platform.vnode(0).ip(), tracker.port()},
                  ClientConfig{.verify_hashes = true}, false,
                  platform.rng().fork(7));
  stranger.start();
  run_for(10);
  // The tracker keys swarms by infohash, so they never meet through it;
  // inject the seed as a known peer by announcing the stranger under the
  // seed's swarm... instead simply dial: use tracker state to verify
  // isolation.
  EXPECT_EQ(tracker.swarm_size(meta.info_hash), 1u);
  EXPECT_EQ(tracker.swarm_size(other.info_hash), 1u);
  EXPECT_EQ(seed->peer_count(), 0u);
}

TEST_F(ClientTest, SeedIsNeverInterested) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(15);  // mid-download (512 KiB at 128 kb/s takes ~33 s)
  ASSERT_FALSE(leech->complete());
  auto peers = seed->debug_peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_FALSE(peers[0].am_interested);
  EXPECT_TRUE(peers[0].peer_interested);  // the leecher wants data
}

TEST_F(ClientTest, LeecherLosesInterestWhenDone) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(600);
  ASSERT_TRUE(leech->complete());
  for (const auto& p : leech->debug_peers()) {
    EXPECT_FALSE(p.am_interested);
  }
}

TEST_F(ClientTest, TwoSeedsSplitTheUpload) {
  auto seed1 = make_client(1, true);
  auto seed2 = make_client(2, true);
  auto leech = make_client(3, false);
  seed1->start();
  seed2->start();
  leech->start();
  run_for(600);
  EXPECT_TRUE(leech->complete());
  EXPECT_GT(seed1->stats().bytes_up, 0u);
  EXPECT_GT(seed2->stats().bytes_up, 0u);
  EXPECT_EQ(seed1->stats().bytes_up + seed2->stats().bytes_up +
                leech->stats().bytes_up,
            leech->stats().bytes_down);
}

TEST_F(ClientTest, StopAnnouncesAndDisconnects) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(30);
  ASSERT_EQ(seed->peer_count(), 1u);
  leech->stop();
  run_for(30);
  EXPECT_EQ(seed->peer_count(), 0u);
  EXPECT_EQ(tracker.swarm_size(meta.info_hash), 1u);  // leecher deregistered
}

TEST_F(ClientTest, UploadPacingKeepsSocketShallow) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(15);  // mid-download
  ASSERT_FALSE(leech->complete());
  const auto peers = seed->debug_peers();
  ASSERT_EQ(peers.size(), 1u);
  // The seed never floods the socket: at most watermark + one block.
  EXPECT_LE(peers[0].sock_unsent,
            ClientConfig{}.upload_watermark.count_bytes() + 16 * 1024 + 13);
}

TEST_F(ClientTest, ChokedPeerGetsNothing) {
  // A 1-slot choker with 2 leechers: at any instant at most slots peers
  // are unchoked by the seed.
  ClientConfig tight;
  tight.choker.unchoke_slots = 1;
  auto seed = make_client(1, true, tight);
  auto l1 = make_client(2, false);
  auto l2 = make_client(3, false);
  seed->start();
  l1->start();
  l2->start();
  run_for(90);
  int unchoked = 0;
  for (const auto& p : seed->debug_peers()) unchoked += !p.am_choking;
  EXPECT_LE(unchoked, 1);
}

TEST_F(ClientTest, ProgressSeriesIsMonotone) {
  auto seed = make_client(1, true);
  auto leech = make_client(2, false);
  seed->start();
  leech->start();
  run_for(600);
  double prev = -1;
  for (const auto& [t, pct] : leech->progress().points()) {
    EXPECT_GE(pct, prev);
    prev = pct;
  }
}

}  // namespace
}  // namespace p2plab::bt
