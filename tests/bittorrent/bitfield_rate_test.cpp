#include <gtest/gtest.h>

#include "bittorrent/bitfield.hpp"
#include "bittorrent/rate.hpp"

namespace p2plab::bt {
namespace {

TEST(Bitfield, SetClearCount) {
  Bitfield bf(100);
  EXPECT_TRUE(bf.none());
  bf.set(0);
  bf.set(64);
  bf.set(99);
  EXPECT_EQ(bf.count(), 3u);
  EXPECT_TRUE(bf.get(64));
  EXPECT_FALSE(bf.get(63));
  bf.set(64);  // idempotent
  EXPECT_EQ(bf.count(), 3u);
  bf.clear(64);
  EXPECT_EQ(bf.count(), 2u);
  bf.clear(64);  // idempotent
  EXPECT_EQ(bf.count(), 2u);
}

TEST(Bitfield, SetAllAndAll) {
  Bitfield bf(65);
  bf.set_all();
  EXPECT_TRUE(bf.all());
  EXPECT_EQ(bf.count(), 65u);
}

TEST(Bitfield, OtherHasMissing) {
  Bitfield mine(10);
  Bitfield theirs(10);
  EXPECT_FALSE(mine.other_has_missing(theirs));
  theirs.set(3);
  EXPECT_TRUE(mine.other_has_missing(theirs));
  mine.set(3);
  EXPECT_FALSE(mine.other_has_missing(theirs));
  mine.set(5);  // we have more than them: still nothing to gain
  EXPECT_FALSE(mine.other_has_missing(theirs));
}

TEST(Bitfield, WireBytes) {
  EXPECT_EQ(Bitfield(64).wire_bytes(), 8u);
  EXPECT_EQ(Bitfield(65).wire_bytes(), 9u);
  EXPECT_EQ(Bitfield(1).wire_bytes(), 1u);
}

TEST(RateEstimator, SteadyRate) {
  RateEstimator rate;
  // 10 KiB/s for 40 s; the 20 s window should report ~10 KiB/s.
  for (int s = 0; s < 40; ++s) {
    rate.add(SimTime::zero() + Duration::sec(s), 10 * 1024);
  }
  EXPECT_NEAR(rate.rate_bps(SimTime::zero() + Duration::sec(40)),
              10.0 * 1024, 1024.0);
}

TEST(RateEstimator, WindowForgetsOldTraffic) {
  RateEstimator rate;
  rate.add(SimTime::zero() + Duration::sec(1), 1000000);
  EXPECT_GT(rate.rate_bps(SimTime::zero() + Duration::sec(2)), 0.0);
  // 30 s later the burst is outside the 20 s window.
  EXPECT_DOUBLE_EQ(rate.rate_bps(SimTime::zero() + Duration::sec(31)), 0.0);
}

TEST(RateEstimator, TotalInWindow) {
  RateEstimator rate;
  rate.add(SimTime::zero() + Duration::sec(5), 500);
  rate.add(SimTime::zero() + Duration::sec(6), 700);
  EXPECT_EQ(rate.total_in_window(SimTime::zero() + Duration::sec(7)), 1200u);
  EXPECT_EQ(rate.total_in_window(SimTime::zero() + Duration::sec(60)), 0u);
}

TEST(RateEstimator, PartialExpiry) {
  RateEstimator rate;  // 20 x 1 s buckets
  rate.add(SimTime::zero() + Duration::sec(1), 100);
  rate.add(SimTime::zero() + Duration::sec(10), 200);
  // At t=22 the first bucket expired, the second has not.
  EXPECT_EQ(rate.total_in_window(SimTime::zero() + Duration::sec(22)), 200u);
}

}  // namespace
}  // namespace p2plab::bt
