#include "bittorrent/piece_store.hpp"

#include <gtest/gtest.h>

namespace p2plab::bt {
namespace {

class PieceStoreTest : public ::testing::Test {
 protected:
  // 1 MiB, 256 KiB pieces -> 4 pieces of 16 blocks, with real hashes.
  MetaInfo meta =
      MetaInfo::make_synthetic("f", DataSize::mib(1), 5, /*hash=*/true);
};

TEST_F(PieceStoreTest, StartsEmpty) {
  PieceStore store(meta, true);
  EXPECT_FALSE(store.complete());
  EXPECT_EQ(store.have().count(), 0u);
  EXPECT_DOUBLE_EQ(store.fraction_complete(), 0.0);
  EXPECT_EQ(store.bytes_downloaded(), DataSize::zero());
}

TEST_F(PieceStoreTest, FillCompleteMakesSeed) {
  PieceStore store(meta, true);
  store.fill_complete();
  EXPECT_TRUE(store.complete());
  EXPECT_DOUBLE_EQ(store.fraction_complete(), 1.0);
  EXPECT_TRUE(store.have_block(3, 15));
}

TEST_F(PieceStoreTest, BlockAccumulationCompletesPiece) {
  PieceStore store(meta, true);
  for (std::uint32_t b = 0; b < 15; ++b) {
    EXPECT_EQ(store.add_block(0, b, true),
              PieceStore::BlockResult::kAccepted);
  }
  EXPECT_FALSE(store.have_piece(0));
  EXPECT_EQ(store.blocks_received(0), 15u);
  EXPECT_EQ(store.add_block(0, 15, true),
            PieceStore::BlockResult::kPieceComplete);
  EXPECT_TRUE(store.have_piece(0));
  EXPECT_EQ(store.bytes_downloaded(), DataSize::kib(256));
}

TEST_F(PieceStoreTest, DuplicateBlockDetected) {
  PieceStore store(meta, true);
  store.add_block(1, 3, true);
  EXPECT_EQ(store.add_block(1, 3, true),
            PieceStore::BlockResult::kDuplicate);
  EXPECT_EQ(store.blocks_received(1), 1u);
}

TEST_F(PieceStoreTest, CorruptedBlockRejectsWholePiece) {
  PieceStore store(meta, true);
  for (std::uint32_t b = 0; b < 15; ++b) store.add_block(2, b, true);
  EXPECT_EQ(store.add_block(2, 15, /*intact=*/false),
            PieceStore::BlockResult::kPieceRejected);
  // The real client drops the piece and re-downloads it.
  EXPECT_FALSE(store.have_piece(2));
  EXPECT_EQ(store.blocks_received(2), 0u);
  EXPECT_EQ(store.hash_failures(), 1u);
  EXPECT_EQ(store.bytes_downloaded(), DataSize::zero());
  // Re-download succeeds.
  for (std::uint32_t b = 0; b < 15; ++b) store.add_block(2, b, true);
  EXPECT_EQ(store.add_block(2, 15, true),
            PieceStore::BlockResult::kPieceComplete);
}

TEST_F(PieceStoreTest, VerificationPassesOnIntactContent) {
  // With verify on, intact blocks complete: SHA-1 over the regenerated
  // synthetic content matches the metainfo hashes.
  PieceStore store(meta, /*verify=*/true);
  for (std::uint32_t p = 0; p < meta.piece_count(); ++p) {
    for (std::uint32_t b = 0; b < meta.blocks_in_piece(p); ++b) {
      store.add_block(p, b, true);
    }
  }
  EXPECT_TRUE(store.complete());
  EXPECT_EQ(store.hash_failures(), 0u);
}

TEST_F(PieceStoreTest, FractionCountsBlocks) {
  PieceStore store(meta, true);
  for (std::uint32_t b = 0; b < 16; ++b) store.add_block(0, b, true);
  for (std::uint32_t b = 0; b < 8; ++b) store.add_block(1, b, true);
  // 24 of 64 blocks.
  EXPECT_NEAR(store.fraction_complete(), 24.0 / 64.0, 1e-12);
}

TEST_F(PieceStoreTest, NoVerifyModeSkipsHashes) {
  const auto unhashed =
      MetaInfo::make_synthetic("f", DataSize::mib(1), 5, /*hash=*/false);
  PieceStore store(unhashed, /*verify=*/false);
  for (std::uint32_t b = 0; b < 16; ++b) store.add_block(0, b, true);
  EXPECT_TRUE(store.have_piece(0));
  // Corruption still caught via the integrity flag even without hashes.
  for (std::uint32_t b = 0; b < 15; ++b) store.add_block(1, b, true);
  EXPECT_EQ(store.add_block(1, 15, false),
            PieceStore::BlockResult::kPieceRejected);
}

TEST_F(PieceStoreTest, VerifyWithoutHashesAsserts) {
  const auto unhashed =
      MetaInfo::make_synthetic("f", DataSize::mib(1), 5, /*hash=*/false);
  EXPECT_DEATH(PieceStore(unhashed, /*verify=*/true), "no hashes");
}

}  // namespace
}  // namespace p2plab::bt
