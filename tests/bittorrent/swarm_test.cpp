// Swarm integration tests: full BitTorrent downloads over the emulated
// platform, at small scale so they stay fast in CI.
#include "bittorrent/swarm.hpp"

#include <gtest/gtest.h>

namespace p2plab::bt {
namespace {

SwarmConfig small_swarm(std::size_t clients) {
  SwarmConfig config;
  config.file_size = DataSize::mib(1);
  config.seeders = 1;
  config.clients = clients;
  config.start_interval = Duration::sec(2);
  config.verify_hashes = true;  // small file: run the full SHA-1 path
  config.max_duration = Duration::sec(4000);
  return config;
}

core::PlatformConfig fast_platform(std::size_t pnodes) {
  return core::PlatformConfig{.physical_nodes = pnodes};
}

TEST(Swarm, SmallSwarmCompletesWithVerification) {
  SwarmConfig config = small_swarm(6);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(3));
  Swarm swarm(platform, config);
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    EXPECT_TRUE(swarm.client(i).complete());
    EXPECT_EQ(swarm.client(i).store().hash_failures(), 0u);
    // Downloaded bytes = file size plus wasted duplicates (choke churn and
    // endgame); the waste must stay a small fraction of the file.
    const auto& stats = swarm.client(i).stats();
    EXPECT_GE(stats.bytes_down, DataSize::mib(1).count_bytes());
    EXPECT_LT(static_cast<double>(stats.bytes_down),
              1.25 * static_cast<double>(DataSize::mib(1).count_bytes()));
  }
}

TEST(Swarm, CompletionTimesAreOrderedSanely) {
  SwarmConfig config = small_swarm(6);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(3));
  Swarm swarm(platform, config);
  swarm.run();
  const auto times = swarm.completion_times_sec();
  ASSERT_EQ(times.size(), 6u);
  for (double t : times) {
    // 1 MiB = 8 Mbit at 2 Mb/s down is >= 4 s even unconstrained;
    // upload-constrained swarms take much longer but must finish within
    // the cutoff.
    EXPECT_GT(t, 4.0);
    EXPECT_LT(t, 4000.0);
  }
}

TEST(Swarm, SeedersUploadLeechersDownload) {
  SwarmConfig config = small_swarm(4);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(2));
  Swarm swarm(platform, config);
  swarm.run();
  EXPECT_GT(swarm.seeder(0).stats().bytes_up, 0u);
  EXPECT_EQ(swarm.seeder(0).stats().bytes_down, 0u);
  // Conservation: everything downloaded was uploaded by someone. Upload
  // counters may run slightly ahead (blocks still in flight when the last
  // client finishes and the run stops).
  std::uint64_t up = swarm.seeder(0).stats().bytes_up;
  std::uint64_t down = 0;
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    up += swarm.client(i).stats().bytes_up;
    down += swarm.client(i).stats().bytes_down;
  }
  EXPECT_GE(up, down);
  EXPECT_LT(static_cast<double>(up - down), 0.05 * static_cast<double>(down));
}

TEST(Swarm, PeersShareWithEachOtherNotJustTheSeed) {
  // Tit-for-tat: with several leechers, peer-to-peer traffic must appear
  // (the seed's upload alone cannot account for all bytes).
  SwarmConfig config = small_swarm(6);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(3));
  Swarm swarm(platform, config);
  swarm.run();
  std::uint64_t peer_up = 0;
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    peer_up += swarm.client(i).stats().bytes_up;
  }
  EXPECT_GT(peer_up, DataSize::mib(1).count_bytes());
}

TEST(Swarm, DeterministicForSameSeed) {
  auto run_once = [] {
    SwarmConfig config = small_swarm(5);
    core::PlatformConfig pc = fast_platform(2);
    pc.seed = 99;
    core::Platform platform(
        topology::homogeneous_dsl(swarm_vnodes(config)), pc);
    Swarm swarm(platform, config);
    swarm.run();
    return swarm.completion_times_sec();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Swarm, FoldingDoesNotChangeOutcomes) {
  // The Figure 9 claim in miniature: the same swarm folded 1:1 vs 8:1
  // produces nearly identical aggregate results.
  auto run_with = [](std::size_t pnodes) {
    SwarmConfig config = small_swarm(7);  // 9 vnodes with tracker+seed
    core::Platform platform(
        topology::homogeneous_dsl(swarm_vnodes(config)),
        fast_platform(pnodes));
    Swarm swarm(platform, config);
    swarm.run();
    double total = 0;
    for (double t : swarm.completion_times_sec()) total += t;
    return total / 7.0;
  };
  const double spread_out = run_with(9);
  const double folded = run_with(1);
  EXPECT_NEAR(folded, spread_out, 0.15 * spread_out);
}

TEST(Swarm, CompletionCurveIsMonotone) {
  SwarmConfig config = small_swarm(5);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(2));
  Swarm swarm(platform, config);
  swarm.run();
  const auto curve = swarm.completion_curve();
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.points().back().second, 5.0);
}

TEST(Swarm, TotalBytesCurveReachesFullVolume) {
  SwarmConfig config = small_swarm(4);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(2));
  Swarm swarm(platform, config);
  swarm.run();
  // Round the grid end up so the final sample reflects full completion.
  const SimTime end = platform.sim().now() + Duration::sec(10);
  const auto curve = swarm.total_bytes_curve(Duration::sec(10), end);
  ASSERT_FALSE(curve.empty());
  // All 4 clients fetched the full 1 MiB.
  EXPECT_DOUBLE_EQ(curve.back(),
                   4.0 * static_cast<double>(DataSize::mib(1).count_bytes()));
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(Swarm, LateClientsStillFinish) {
  // Clients starting long after the first wave join a swarm of seeds.
  SwarmConfig config = small_swarm(4);
  config.start_interval = Duration::sec(120);
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config)), fast_platform(2));
  Swarm swarm(platform, config);
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
}

TEST(Swarm, SurvivesLossyAccessLinks) {
  SwarmConfig config = small_swarm(3);
  auto link = topology::dsl_2m();
  link.loss_rate = 0.01;  // 1% loss on every access link
  core::Platform platform(
      topology::homogeneous_dsl(swarm_vnodes(config), link),
      fast_platform(2));
  Swarm swarm(platform, config);
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  for (std::size_t i = 0; i < swarm.client_count(); ++i) {
    EXPECT_EQ(swarm.client(i).store().hash_failures(), 0u);
  }
}

}  // namespace
}  // namespace p2plab::bt
