// Graceful degradation under faults: tracker-outage announce backoff,
// cached-peer survival, and peer-crash request re-queueing.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bittorrent/swarm.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"

namespace p2plab::bt {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

SwarmConfig small_swarm(std::size_t clients) {
  SwarmConfig config;
  config.file_size = DataSize::mib(1);
  config.seeders = 1;
  config.clients = clients;
  config.start_interval = Duration::sec(2);
  config.verify_hashes = true;
  config.max_duration = Duration::sec(4000);
  return config;
}

TEST(AnnounceBackoff, GrowsExponentiallyWithJitterAndCaps) {
  // One client, tracker address with nothing listening: every announce is
  // refused, so the failure streak climbs and backoff() must follow
  // min(base * 2^(streak-1), cap).
  core::Platform platform(topology::homogeneous_dsl(2),
                          core::PlatformConfig{.physical_nodes = 1});
  const MetaInfo meta = MetaInfo::make_synthetic(
      "t.dat", DataSize::kib(256), /*content_seed=*/1, /*hash_pieces=*/false);
  ClientConfig config;
  config.announce_retry_base = Duration::sec(5);
  config.announce_retry_cap = Duration::sec(40);
  Client client(platform.sim(), platform.api(1), meta,
                PeerInfo{platform.vnode(0).ip(), 6969}, config,
                /*start_as_seed=*/false, platform.rng().fork(1));
  client.start();

  std::vector<double> backoffs_sec;
  std::uint64_t seen_failures = 0;
  sim::Simulation& sim = platform.sim();
  while (backoffs_sec.size() < 7 && sim.now() < at_sec(600)) {
    sim.run_until(sim.now() + Duration::ms(100));
    if (client.stats().announce_failures > seen_failures) {
      seen_failures = client.stats().announce_failures;
      backoffs_sec.push_back(client.announce_backoff().to_seconds());
    }
  }
  client.stop();
  ASSERT_EQ(backoffs_sec.size(), 7u);
  const std::vector<double> expected{5, 10, 20, 40, 40, 40, 40};
  EXPECT_EQ(backoffs_sec, expected);  // exponential, then capped
  // Retries actually fired (with jitter the spacing varies, but each
  // failure past the first was produced by a scheduled retry).
  EXPECT_GE(client.stats().announce_retries, 6u);
}

TEST(AnnounceBackoff, RetryDelayIsJittered) {
  // Two clients with different RNG streams facing the same dead tracker
  // must retry at different instants (jitter desynchronizes the herd), and
  // the same stream must replay identically.
  auto failure_times = [](std::uint64_t stream) {
    core::Platform platform(topology::homogeneous_dsl(2),
                            core::PlatformConfig{.physical_nodes = 1});
    const MetaInfo meta =
        MetaInfo::make_synthetic("t.dat", DataSize::kib(256), 1, false);
    Client client(platform.sim(), platform.api(1), meta,
                  PeerInfo{platform.vnode(0).ip(), 6969}, ClientConfig{},
                  /*start_as_seed=*/false, platform.rng().fork(stream));
    client.start();
    std::vector<double> times;
    std::uint64_t seen = 0;
    sim::Simulation& sim = platform.sim();
    while (times.size() < 4 && sim.now() < at_sec(300)) {
      sim.run_until(sim.now() + Duration::ms(50));
      if (client.stats().announce_failures > seen) {
        seen = client.stats().announce_failures;
        times.push_back(sim.now().to_seconds());
      }
    }
    client.stop();
    return times;
  };
  const auto a = failure_times(1);
  const auto b = failure_times(2);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NE(a, b);                   // different jitter draws
  EXPECT_EQ(a, failure_times(1));    // deterministic replay
}

TEST(TrackerOutage, SwarmFinishesOnCachedPeersThroughFullOutage) {
  // Let the swarm form, then kill the tracker for good: every further
  // announce fails, but clients keep trading with connected and cached
  // peers and the download still completes.
  SwarmConfig config = small_swarm(6);
  core::Platform platform(topology::homogeneous_dsl(swarm_vnodes(config)),
                          core::PlatformConfig{.physical_nodes = 3});
  Swarm swarm(platform, config);
  platform.sim().schedule_at(
      at_sec(30), [&] { swarm.tracker().set_online(false); });
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  std::uint64_t failures = 0;
  for (std::size_t c = 0; c < swarm.client_count(); ++c) {
    failures += swarm.client(c).stats().announce_failures;
  }
  EXPECT_GT(failures, 0u);  // the outage was actually felt
}

TEST(TrackerOutage, TemporaryOutageWindowViaInjector) {
  SwarmConfig config = small_swarm(6);
  core::Platform platform(topology::homogeneous_dsl(swarm_vnodes(config)),
                          core::PlatformConfig{.physical_nodes = 3});
  Swarm swarm(platform, config);
  fault::FaultPlan plan;
  plan.tracker_outage(at_sec(10), Duration::sec(60));
  fault::FaultInjector injector(platform, plan);
  injector.set_service_hooks(fault::ServiceHooks{
      .on_tracker_outage = [&] { swarm.tracker().set_online(false); },
      .on_tracker_restore = [&] { swarm.tracker().set_online(true); }});
  injector.arm();
  swarm.run();
  EXPECT_TRUE(swarm.all_complete());
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
  EXPECT_TRUE(swarm.tracker().online());
}

TEST(PeerCrash, SurvivorsRequeueAndComplete) {
  // Crash a third of the swarm mid-download (no rejoin). Surviving
  // leechers must re-enter the pieces they had inflight to dead peers and
  // still finish; nothing may wedge the event queue afterwards.
  SwarmConfig config = small_swarm(9);
  core::Platform platform(topology::homogeneous_dsl(swarm_vnodes(config)),
                          core::PlatformConfig{.physical_nodes = 3});
  Swarm swarm(platform, config);
  const std::size_t first_client_vnode = 1 + config.seeders;

  fault::FaultPlan plan;
  const std::vector<std::size_t> victims{0, 3, 7};  // client indices
  for (std::size_t i = 0; i < victims.size(); ++i) {
    plan.crash(first_client_vnode + victims[i],
               at_sec(20.0 + 5.0 * static_cast<double>(i)));
  }
  fault::FaultInjector injector(platform, plan);
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) {
        swarm.client(v - first_client_vnode).crash();
      },
      .on_leave = nullptr,
      .on_rejoin = nullptr});
  injector.arm();

  auto is_victim = [&](std::size_t c) {
    return std::find(victims.begin(), victims.end(), c) != victims.end();
  };
  sim::Simulation& sim = platform.sim();
  const SimTime cutoff = SimTime::zero() + config.max_duration;
  auto survivors_done = [&] {
    for (std::size_t c = 0; c < config.clients; ++c) {
      if (!is_victim(c) && !swarm.client(c).has_completed()) return false;
    }
    return true;
  };
  while (!survivors_done() && sim.now() < cutoff &&
         sim.pending_events() > 0) {
    sim.run_until(std::min(cutoff, sim.now() + Duration::sec(5)));
  }
  EXPECT_TRUE(survivors_done());
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
  for (const std::size_t c : victims) {
    EXPECT_FALSE(swarm.client(c).complete());
  }

  // No wedged timers: stop everything and the queue must drain.
  for (std::size_t c = 0; c < config.clients; ++c) {
    if (!is_victim(c)) swarm.client(c).stop();
  }
  swarm.seeder(0).stop();
  swarm.tracker().set_online(false);
  sim.run_until(sim.now() + Duration::sec(600));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeerCrash, CrashAndRejoinResumesDownload) {
  SwarmConfig config = small_swarm(6);
  core::Platform platform(topology::homogeneous_dsl(swarm_vnodes(config)),
                          core::PlatformConfig{.physical_nodes = 3});
  Swarm swarm(platform, config);
  const std::size_t first_client_vnode = 1 + config.seeders;
  const std::size_t victim = 2;

  fault::FaultPlan plan;
  plan.crash_and_rejoin(first_client_vnode + victim, at_sec(25),
                        Duration::sec(40));
  fault::FaultInjector injector(platform, plan);
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) {
        swarm.client(v - first_client_vnode).crash();
      },
      .on_leave = nullptr,
      .on_rejoin = [&](std::size_t v) {
        swarm.client(v - first_client_vnode).start();
      }});
  injector.arm();
  swarm.run();
  // The victim resumed from its surviving store and finished too.
  EXPECT_TRUE(swarm.all_complete());
  EXPECT_EQ(injector.stats().unrecovered(), 0u);
}

}  // namespace
}  // namespace p2plab::bt
