#include "bittorrent/sha1.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace p2plab::bt {
namespace {

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyInput) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{"abc"})),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{
                "The quick brown fox jumps over the lazy dog"})),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

// Property: incremental hashing over arbitrary chunk splits equals one-shot.
TEST(Sha1, IncrementalMatchesOneShot) {
  Rng rng(7);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  const Sha1Digest expected = Sha1::hash(data);

  for (int trial = 0; trial < 20; ++trial) {
    Sha1 h;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t chunk =
          1 + rng.uniform(std::min<std::size_t>(200, data.size() - pos));
      h.update(std::span<const std::uint8_t>(data.data() + pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(h.finish(), expected);
  }
}

TEST(Sha1, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes exercise the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string data(n, 'x');
    Sha1 split;
    split.update(std::string_view(data).substr(0, n / 2));
    split.update(std::string_view(data).substr(n / 2));
    EXPECT_EQ(split.finish(), Sha1::hash(std::string_view(data))) << n;
  }
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::hash(std::string_view{"a"}),
            Sha1::hash(std::string_view{"b"}));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(std::string_view{"garbage"});
  h.reset();
  h.update(std::string_view{"abc"});
  EXPECT_EQ(to_hex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

}  // namespace
}  // namespace p2plab::bt
