#include "bittorrent/bencode.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace p2plab::bt {
namespace {

TEST(Bencode, EncodePrimitives) {
  EXPECT_EQ(bencode(BValue{42}), "i42e");
  EXPECT_EQ(bencode(BValue{-7}), "i-7e");
  EXPECT_EQ(bencode(BValue{0}), "i0e");
  EXPECT_EQ(bencode(BValue{"spam"}), "4:spam");
  EXPECT_EQ(bencode(BValue{""}), "0:");
}

TEST(Bencode, EncodeList) {
  EXPECT_EQ(bencode(BValue{BList{BValue{"spam"}, BValue{42}}}),
            "l4:spami42ee");
  EXPECT_EQ(bencode(BValue{BList{}}), "le");
}

TEST(Bencode, EncodeDictSortsKeys) {
  BDict dict;
  dict.emplace("zebra", BValue{1});
  dict.emplace("apple", BValue{2});
  EXPECT_EQ(bencode(BValue{dict}), "d5:applei2e5:zebrai1ee");
}

TEST(Bencode, DecodePrimitives) {
  EXPECT_EQ(*bdecode("i42e"), BValue{42});
  EXPECT_EQ(*bdecode("i-7e"), BValue{-7});
  EXPECT_EQ(*bdecode("4:spam"), BValue{"spam"});
  EXPECT_EQ(*bdecode("0:"), BValue{""});
}

TEST(Bencode, DecodeNested) {
  const auto value = bdecode("d4:infod6:lengthi16777216e4:name3:fooee");
  ASSERT_TRUE(value.has_value());
  const BValue* info = value->find("info");
  ASSERT_NE(info, nullptr);
  ASSERT_NE(info->find("length"), nullptr);
  EXPECT_EQ(info->find("length")->as_int(), 16777216);
  EXPECT_EQ(info->find("name")->as_string(), "foo");
}

TEST(Bencode, FindOnNonDict) {
  EXPECT_EQ(BValue{42}.find("x"), nullptr);
  BValue d{BDict{}};
  EXPECT_EQ(d.find("missing"), nullptr);
}

TEST(Bencode, RejectsMalformed) {
  EXPECT_FALSE(bdecode("").has_value());
  EXPECT_FALSE(bdecode("i42").has_value());         // unterminated int
  EXPECT_FALSE(bdecode("ie").has_value());          // empty int
  EXPECT_FALSE(bdecode("i042e").has_value());       // leading zero
  EXPECT_FALSE(bdecode("i-0e").has_value());        // negative zero
  EXPECT_FALSE(bdecode("5:spam").has_value());      // short string
  EXPECT_FALSE(bdecode("4spam").has_value());       // missing colon
  EXPECT_FALSE(bdecode("l4:spam").has_value());     // unterminated list
  EXPECT_FALSE(bdecode("d4:spame").has_value());    // key without value
  EXPECT_FALSE(bdecode("i42ei43e").has_value());    // trailing garbage
  EXPECT_FALSE(bdecode("x").has_value());           // unknown type
  EXPECT_FALSE(bdecode("di42e4:spame").has_value()); // non-string key
}

TEST(Bencode, RejectsExcessiveNesting) {
  std::string deep(100, 'l');
  deep += std::string(100, 'e');
  EXPECT_FALSE(bdecode(deep).has_value());
}

TEST(Bencode, BinaryStringsSurvive) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  const std::string encoded = bencode(BValue{blob});
  const auto decoded = bdecode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->as_string(), blob);
}

// Property: encode(decode(encode(v))) == encode(v) for random values.
BValue random_value(Rng& rng, int depth) {
  const auto kind = rng.uniform(depth > 3 ? 2 : 4);
  switch (kind) {
    case 0:
      return BValue{rng.uniform_int(-1000000, 1000000)};
    case 1: {
      std::string s;
      const auto len = rng.uniform(20);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.uniform(256)));
      }
      return BValue{s};
    }
    case 2: {
      BList list;
      const auto len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        list.push_back(random_value(rng, depth + 1));
      }
      return BValue{list};
    }
    default: {
      BDict dict;
      const auto len = rng.uniform(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        dict.emplace("k" + std::to_string(rng.uniform(1000)),
                     random_value(rng, depth + 1));
      }
      return BValue{dict};
    }
  }
}

TEST(Bencode, RoundTripProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const BValue value = random_value(rng, 0);
    const std::string encoded = bencode(value);
    const auto decoded = bdecode(encoded);
    ASSERT_TRUE(decoded.has_value()) << encoded;
    EXPECT_EQ(bencode(*decoded), encoded);
    EXPECT_EQ(*decoded, value);
  }
}

}  // namespace
}  // namespace p2plab::bt
