#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/stats.hpp"
#include "workload/tasks.hpp"

namespace p2plab::sched {
namespace {

using workload::batch;

HostConfig config_for(SchedulerKind kind, std::uint64_t seed = 1) {
  HostConfig cfg;
  cfg.kind = kind;
  cfg.seed = seed;
  return cfg;
}

double spread_seconds(const RunResult& result) {
  SimTime lo = SimTime::max();
  SimTime hi = SimTime::zero();
  for (const auto& p : result.procs) {
    lo = std::min(lo, p.finish);
    hi = std::max(hi, p.finish);
  }
  return (hi - lo).to_seconds();
}

TEST(CpuHost, SingleProcessRunsForItsWork) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const ProcSpec spec{.work = Duration::sec(5)};
  const auto result = host.run(std::vector<ProcSpec>{spec});
  ASSERT_EQ(result.procs.size(), 1u);
  // Finish = work + context-switch overhead (one per 10 ms quantum).
  const double finish = result.procs[0].finish.to_seconds();
  EXPECT_NEAR(finish, 5.0, 0.01);
  EXPECT_GE(finish, 5.0);
  EXPECT_NEAR(result.procs[0].cpu_occupied.to_seconds(), 5.0, 1e-9);
}

TEST(CpuHost, TwoProcessesUseBothCpus) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const auto result = host.run(batch({.work = Duration::sec(5)}, 2));
  // Two CPUs -> both finish in ~5 s, not 10 s.
  for (const auto& p : result.procs) {
    EXPECT_NEAR(p.finish.to_seconds(), 5.0, 0.05);
  }
}

TEST(CpuHost, OversubscriptionScalesMakespan) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const auto result = host.run(batch({.work = Duration::sec(5)}, 100));
  // 100 procs x 5 s over 2 CPUs = 250 s of wall clock (plus overhead).
  EXPECT_NEAR(result.makespan.to_seconds(), 250.0, 2.0);
}

TEST(CpuHost, WorkConservation) {
  // Sum of occupied CPU time equals total work regardless of scheduler.
  for (auto kind : {SchedulerKind::kBsd4, SchedulerKind::kUle,
                    SchedulerKind::kUleFreebsd5, SchedulerKind::kLinuxOne}) {
    CpuHost host(config_for(kind));
    const auto result = host.run(batch({.work = Duration::sec(2)}, 30));
    double total = 0.0;
    for (const auto& p : result.procs) total += p.cpu_occupied.to_seconds();
    EXPECT_NEAR(total, 60.0, 1e-6) << to_string(kind);
  }
}

TEST(CpuHost, MakespanBoundedByWorkOverCpus) {
  // Makespan >= total work / n_cpus for any scheduler (no free lunch).
  for (auto kind : {SchedulerKind::kBsd4, SchedulerKind::kUle,
                    SchedulerKind::kUleFreebsd5, SchedulerKind::kLinuxOne}) {
    CpuHost host(config_for(kind));
    const auto result = host.run(batch({.work = Duration::sec(1)}, 40));
    EXPECT_GE(result.makespan.to_seconds(), 40.0 / 2.0 - 1e-9)
        << to_string(kind);
  }
}

TEST(CpuHost, Bsd4IsFair) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const auto result = host.run(batch({.work = Duration::sec(5)}, 100));
  // Global round robin: everyone finishes within a few quanta.
  EXPECT_LT(spread_seconds(result), 5.0);
}

TEST(CpuHost, LinuxIsFair) {
  CpuHost host(config_for(SchedulerKind::kLinuxOne));
  const auto result = host.run(batch({.work = Duration::sec(5)}, 100));
  EXPECT_LT(spread_seconds(result), 5.0);
}

TEST(CpuHost, UleSpreadsCompletionTimes) {
  // Figure 3: ULE shows a wide completion-time spread, 4BSD does not.
  CpuHost ule(config_for(SchedulerKind::kUle, 7));
  CpuHost bsd(config_for(SchedulerKind::kBsd4, 7));
  const auto spec = workload::fairness_task();
  const double ule_spread = spread_seconds(ule.run(batch(spec, 100)));
  const double bsd_spread = spread_seconds(bsd.run(batch(spec, 100)));
  EXPECT_GT(ule_spread, 10.0);
  EXPECT_GT(ule_spread, 5.0 * bsd_spread);
}

TEST(CpuHost, UleFreebsd5IsWorseThanUle6) {
  // The FreeBSD 5 ULE pathology (reference [12]): even wider spread.
  metrics::Summary ule6;
  metrics::Summary ule5;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CpuHost h6(config_for(SchedulerKind::kUle, seed));
    CpuHost h5(config_for(SchedulerKind::kUleFreebsd5, seed));
    const auto spec = workload::fairness_task();
    ule6.add(spread_seconds(h6.run(batch(spec, 100))));
    ule5.add(spread_seconds(h5.run(batch(spec, 100))));
  }
  EXPECT_GT(ule5.mean(), ule6.mean());
}

TEST(CpuHost, MemoryPressureSlowsFreeBsdNotLinux) {
  // Figure 2: at 50 matrix processes the working set (3000 MiB) exceeds
  // RAM (2 GiB); FreeBSD thrashes, Linux barely notices.
  const auto spec = workload::matrix_task();
  CpuHost bsd(config_for(SchedulerKind::kBsd4));
  CpuHost linux_host(config_for(SchedulerKind::kLinuxOne));
  const auto r_bsd = bsd.run(batch(spec, 50));
  const auto r_linux = linux_host.run(batch(spec, 50));
  const double t_bsd =
      r_bsd.avg_normalized_time_sec(bsd.traits().batch_fixed_cost);
  const double t_linux =
      r_linux.avg_normalized_time_sec(linux_host.traits().batch_fixed_cost);
  EXPECT_GT(t_bsd, 4.0 * spec.work.to_seconds());
  EXPECT_LT(t_linux, 1.5 * spec.work.to_seconds());
}

TEST(CpuHost, NoMemoryPressureBelowRam) {
  const auto spec = workload::matrix_task();
  CpuHost bsd(config_for(SchedulerKind::kBsd4));
  const auto result = bsd.run(batch(spec, 10));  // 600 MiB < 2 GiB
  const double t =
      result.avg_normalized_time_sec(bsd.traits().batch_fixed_cost);
  EXPECT_NEAR(t, spec.work.to_seconds(), 0.05);
}

TEST(CpuHost, NormalizedTimeFlatInProcessCount) {
  // Figure 1: per-process time does not grow with concurrency.
  const auto spec = workload::ackermann_task();
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const double t10 = host.run(batch(spec, 10))
                         .avg_normalized_time_sec(host.traits().batch_fixed_cost);
  const double t500 = host.run(batch(spec, 500))
                          .avg_normalized_time_sec(host.traits().batch_fixed_cost);
  EXPECT_NEAR(t10, spec.work.to_seconds(), 0.01);
  EXPECT_NEAR(t500, spec.work.to_seconds(), 0.01);
  // ...and decreases slightly (fixed batch costs amortize).
  EXPECT_LT(t500, t10);
}

TEST(CpuHost, StaggeredSpawnsRespectSpawnTimes) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  auto specs = workload::staggered_batch({.work = Duration::sec(1)}, 5,
                                         Duration::sec(10));
  const auto result = host.run(specs);
  for (size_t i = 0; i < result.procs.size(); ++i) {
    EXPECT_GE(result.procs[i].first_run, result.procs[i].spawn);
    EXPECT_EQ(result.procs[i].spawn,
              SimTime::zero() + Duration::sec(10) * static_cast<std::int64_t>(i));
    // With 2 idle CPUs, each proc finishes before the next spawns.
    EXPECT_NEAR((result.procs[i].finish - result.procs[i].spawn).to_seconds(),
                1.0, 0.01);
  }
}

TEST(CpuHost, DeterministicForSeed) {
  const auto spec = workload::fairness_task();
  CpuHost a(config_for(SchedulerKind::kUle, 42));
  CpuHost b(config_for(SchedulerKind::kUle, 42));
  const auto ra = a.run(batch(spec, 50));
  const auto rb = b.run(batch(spec, 50));
  ASSERT_EQ(ra.procs.size(), rb.procs.size());
  for (size_t i = 0; i < ra.procs.size(); ++i) {
    EXPECT_EQ(ra.procs[i].finish, rb.procs[i].finish);
  }
}

TEST(CpuHost, WorkNoiseChangesIndividualsNotTotal) {
  auto cfg = config_for(SchedulerKind::kBsd4, 5);
  cfg.work_noise = 0.02;
  CpuHost host(cfg);
  const auto result = host.run(batch({.work = Duration::sec(5)}, 50));
  metrics::Summary occupied;
  for (const auto& p : result.procs) occupied.add(p.cpu_occupied.to_seconds());
  EXPECT_NEAR(occupied.mean(), 5.0, 0.1);
  EXPECT_GT(occupied.stddev(), 0.01);
}

TEST(CpuHost, ContextSwitchesCounted) {
  CpuHost host(config_for(SchedulerKind::kBsd4));
  const auto result = host.run(batch({.work = Duration::sec(1)}, 4));
  // Each proc needs ~100 quanta of 10 ms.
  EXPECT_NEAR(static_cast<double>(result.context_switches), 400.0, 8.0);
}

TEST(SchedulerTraits, NamesAndKinds) {
  EXPECT_STREQ(to_string(SchedulerKind::kBsd4), "4BSD");
  EXPECT_STREQ(to_string(SchedulerKind::kUle), "ULE");
  EXPECT_STREQ(to_string(SchedulerKind::kUleFreebsd5), "ULE-FreeBSD5");
  EXPECT_STREQ(to_string(SchedulerKind::kLinuxOne), "Linux-2.6");
  EXPECT_TRUE(SchedulerTraits::for_kind(SchedulerKind::kUle).per_cpu_queues);
  EXPECT_FALSE(
      SchedulerTraits::for_kind(SchedulerKind::kBsd4).per_cpu_queues);
  EXPECT_FALSE(
      SchedulerTraits::for_kind(SchedulerKind::kUleFreebsd5).steal_on_idle);
  EXPECT_LT(SchedulerTraits::for_kind(SchedulerKind::kLinuxOne).vm_thrash_factor,
            SchedulerTraits::for_kind(SchedulerKind::kBsd4).vm_thrash_factor);
}

// Parameterized sweep: fairness-ordering property holds across seeds.
class FairnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairnessSweep, UleSpreadExceedsBsd4Spread) {
  const auto spec = workload::fairness_task();
  CpuHost ule(config_for(SchedulerKind::kUle, GetParam()));
  CpuHost bsd(config_for(SchedulerKind::kBsd4, GetParam()));
  EXPECT_GT(spread_seconds(ule.run(batch(spec, 100))),
            spread_seconds(bsd.run(batch(spec, 100))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace p2plab::sched
