#include "workload/tasks.hpp"

#include <gtest/gtest.h>

namespace p2plab::workload {
namespace {

TEST(Ackermann, KnownValues) {
  EXPECT_EQ(ackermann(0, 0), 1u);
  EXPECT_EQ(ackermann(1, 1), 3u);
  EXPECT_EQ(ackermann(2, 2), 7u);
  EXPECT_EQ(ackermann(3, 3), 61u);
  // A(3, n) = 2^(n+3) - 3.
  EXPECT_EQ(ackermann(3, 7), (1u << 10) - 3);
  EXPECT_EQ(ackermann(3, 10), (1u << 13) - 3);
}

TEST(Tasks, CalibrationMatchesPaper) {
  EXPECT_NEAR(ackermann_task().work.to_seconds(), 1.65, 1e-9);
  EXPECT_NEAR(fairness_task().work.to_seconds(), 5.0, 1e-9);
  EXPECT_GT(matrix_task().working_set, DataSize::mib(32));
}

TEST(Tasks, BatchReplicates) {
  const auto specs = batch(ackermann_task(), 7);
  ASSERT_EQ(specs.size(), 7u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.work, ackermann_task().work);
    EXPECT_EQ(s.spawn_time, SimTime::zero());
  }
}

TEST(Tasks, StaggeredBatchSpacesSpawns) {
  const auto specs = staggered_batch(fairness_task(), 4, Duration::sec(10));
  ASSERT_EQ(specs.size(), 4u);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].spawn_time,
              SimTime::zero() + Duration::sec(10) * static_cast<std::int64_t>(i));
  }
}

}  // namespace
}  // namespace p2plab::workload
