// MembershipTable unit tests: SWIM precedence, suspicion aging,
// incarnation refutation and the piggyback budget — the pure state
// machine, no sockets or sim involved.
#include "gossip/protocol.hpp"

#include <gtest/gtest.h>

namespace p2plab::gossip {
namespace {

SimTime at(int seconds) { return SimTime::zero() + Duration::sec(seconds); }

TEST(MembershipTable, StartsKnowingOnlyItself) {
  MembershipTable table(3, 8);
  EXPECT_TRUE(table.entry(3).known);
  EXPECT_EQ(table.entry(3).state, MemberState::kAlive);
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i != 3) EXPECT_FALSE(table.entry(i).known);
  }
  EXPECT_TRUE(table.probe_candidates().empty());
}

TEST(MembershipTable, AliveNeedsStrictlyHigherIncarnationOnceKnown) {
  MembershipTable table(0, 4);
  EXPECT_TRUE(table.apply(Update{1, MemberState::kAlive, 0}, at(1)));
  // Same incarnation again: no change, no rumor churn.
  EXPECT_FALSE(table.apply(Update{1, MemberState::kAlive, 0}, at(2)));
  EXPECT_TRUE(table.apply(Update{1, MemberState::kAlive, 1}, at(3)));
  EXPECT_EQ(table.entry(1).incarnation, 1u);
}

TEST(MembershipTable, SuspectOverridesAliveAtSameIncarnation) {
  MembershipTable table(0, 4);
  table.apply(Update{1, MemberState::kAlive, 2}, at(1));
  EXPECT_TRUE(table.apply(Update{1, MemberState::kSuspect, 2}, at(2)));
  EXPECT_EQ(table.entry(1).state, MemberState::kSuspect);
  // Alive at the same incarnation does NOT clear the suspicion...
  EXPECT_FALSE(table.apply(Update{1, MemberState::kAlive, 2}, at(3)));
  EXPECT_EQ(table.entry(1).state, MemberState::kSuspect);
  // ...but the refuting (higher) incarnation does.
  EXPECT_TRUE(table.apply(Update{1, MemberState::kAlive, 3}, at(4)));
  EXPECT_EQ(table.entry(1).state, MemberState::kAlive);
}

TEST(MembershipTable, RejoinWithHigherIncarnationOverridesConfirmed) {
  MembershipTable table(0, 4);
  table.apply(Update{1, MemberState::kAlive, 0}, at(1));
  table.mark_suspect(1, at(2));
  EXPECT_TRUE(table.mark_confirmed(1, at(3)));
  EXPECT_EQ(table.entry(1).state, MemberState::kConfirmed);
  // The documented deviation: a rejoined member (bumped incarnation)
  // heals the confirm instead of staying dead forever.
  EXPECT_FALSE(table.apply(Update{1, MemberState::kAlive, 0}, at(4)));
  EXPECT_TRUE(table.apply(Update{1, MemberState::kAlive, 1}, at(5)));
  EXPECT_EQ(table.entry(1).state, MemberState::kAlive);
}

TEST(MembershipTable, SuspectTimeoutSweep) {
  MembershipTable table(0, 4);
  table.apply(Update{1, MemberState::kAlive, 0}, at(1));
  table.apply(Update{2, MemberState::kAlive, 0}, at(1));
  ASSERT_TRUE(table.mark_suspect(1, at(10)));
  ASSERT_TRUE(table.mark_suspect(2, at(12)));
  // Cutoff at t=10: only the older suspicion has expired.
  EXPECT_EQ(table.expired_suspects(at(10)),
            (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(table.expired_suspects(at(12)),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(table.mark_confirmed(1, at(14)));
  // Confirmed members leave the suspect sweep and the probe pool.
  EXPECT_EQ(table.expired_suspects(at(14)),
            (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(table.probe_candidates(), (std::vector<std::uint32_t>{2}));
}

TEST(MembershipTable, SelfSuspicionTriggersRefutation) {
  MembershipTable table(2, 4);
  EXPECT_EQ(table.incarnation(), 0u);
  // Hearing ourselves suspected at our current incarnation: refute.
  EXPECT_TRUE(table.apply(Update{2, MemberState::kSuspect, 0}, at(1)));
  EXPECT_EQ(table.incarnation(), 1u);
  EXPECT_EQ(table.refutations(), 1u);
  EXPECT_EQ(table.entry(2).state, MemberState::kAlive);
  // A stale suspicion (older incarnation) is ignored, no bump.
  EXPECT_FALSE(table.apply(Update{2, MemberState::kSuspect, 0}, at(2)));
  EXPECT_EQ(table.incarnation(), 1u);
  EXPECT_EQ(table.refutations(), 1u);
  // The refutation queued an Alive rumor about ourselves.
  const std::vector<Update> rumors = table.piggyback(8);
  ASSERT_FALSE(rumors.empty());
  EXPECT_EQ(rumors[0].subject, 2u);
  EXPECT_EQ(rumors[0].state, MemberState::kAlive);
  EXPECT_EQ(rumors[0].incarnation, 1u);
}

TEST(MembershipTable, BumpSelfSupersedesSuspicion) {
  MembershipTable table(1, 4);
  table.bump_self(at(5));
  EXPECT_EQ(table.incarnation(), 1u);
  const std::vector<Update> rumors = table.piggyback(8);
  ASSERT_EQ(rumors.size(), 1u);
  EXPECT_EQ(rumors[0].subject, 1u);
  EXPECT_EQ(rumors[0].incarnation, 1u);
}

TEST(MembershipTable, PiggybackHonorsLimitAndBudget) {
  MembershipTable table(0, 64);
  for (std::uint32_t i = 1; i <= 12; ++i) {
    table.apply(Update{i, MemberState::kAlive, 1}, at(1));
  }
  EXPECT_EQ(table.rumor_count(), 12u);
  const std::vector<Update> first = table.piggyback(8);
  EXPECT_EQ(first.size(), 8u);
  // Distinct subjects per message — queue_rumor keeps one rumor/subject.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_NE(first[i].subject, first[i - 1].subject);
  }
  // Budget ~3·log2(64)+2 = 20 transmissions per rumor: drain until empty
  // and count that no rumor exceeds it.
  std::size_t sends = 0;
  while (table.rumor_count() > 0 && sends < 1000) {
    table.piggyback(8);
    ++sends;
  }
  EXPECT_LT(sends, 1000u) << "rumor budget never exhausted";
}

TEST(MembershipTable, SnapshotListsSelfFirst) {
  MembershipTable table(2, 4);
  table.apply(Update{0, MemberState::kAlive, 0}, at(1));
  table.apply(Update{1, MemberState::kSuspect, 0}, at(1));
  const std::vector<Update> snap = table.snapshot();
  ASSERT_GE(snap.size(), 3u);
  EXPECT_EQ(snap[0].subject, 2u);
  EXPECT_EQ(snap[0].state, MemberState::kAlive);
}

TEST(Protocol, WireBytesCountsHeaderAndRumors) {
  Payload p;
  EXPECT_EQ(wire_bytes(p), kGossipHeaderBytes);
  p.updates.resize(3);
  EXPECT_EQ(wire_bytes(p), kGossipHeaderBytes + 3 * kUpdateWireBytes);
}

}  // namespace
}  // namespace p2plab::gossip
