// gossip::Cluster integration tests on the real platform: failure
// detection end to end, refutation on rejoin, and the shard-count
// invariance contract — the same churn schedule at K = 0 (classic), 1, 2
// and 4 shards must produce a byte-identical event log.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "gossip/cluster.hpp"
#include "metrics/registry.hpp"
#include "topology/topology.hpp"

namespace p2plab::gossip {
namespace {

SimTime at_sec(double s) { return SimTime::zero() + Duration::seconds(s); }

Config small_cluster(std::size_t nodes) {
  Config config;
  config.nodes = nodes;
  config.period = Duration::sec(1);
  config.ping_timeout = Duration::millis(300);
  config.suspect_timeout = Duration::sec(4);
  config.indirect_k = 3;
  config.piggyback = 8;
  config.join_interval = Duration::millis(200);
  return config;
}

struct RunOutput {
  std::vector<std::string> event_log;
  std::vector<ConfirmRecord> confirms;
  std::uint64_t refutations = 0;
};

/// One full churn run: crash-and-rejoin, permanent crash, graceful leave.
RunOutput run_churn(std::size_t shards, std::size_t nodes = 16) {
  core::PlatformConfig pc;
  pc.physical_nodes = 4;
  pc.seed = 11;
  pc.shards = shards;
  const Config config = small_cluster(nodes);
  core::Platform platform(topology::homogeneous_dsl(nodes), pc);
  metrics::Registry registry;
  platform.bind_metrics(registry);

  Cluster cluster(platform, config);
  cluster.bind_metrics();

  fault::FaultPlan plan;
  plan.crash_and_rejoin(3, at_sec(20), Duration::sec(30));
  plan.crash(5, at_sec(25));
  plan.leave(7, at_sec(40));
  plan.sort();
  fault::FaultInjector injector(platform, std::move(plan));
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) { cluster.node(v).crash(); },
      .on_leave = [&](std::size_t v) { cluster.node(v).stop(); },
      .on_rejoin = [&](std::size_t v) { cluster.node(v).restart(); }});
  injector.arm();

  cluster.start();
  platform.run(at_sec(120));
  EXPECT_EQ(injector.stats().unrecovered(), 0u) << shards << " shard(s)";

  RunOutput out;
  out.event_log = cluster.event_log();
  out.confirms = cluster.confirm_log();
  out.refutations =
      static_cast<std::uint64_t>(registry.value("gossip.refutations"));
  return out;
}

TEST(GossipCluster, EveryMemberJoins) {
  core::PlatformConfig pc;
  pc.physical_nodes = 2;
  pc.seed = 3;
  const Config config = small_cluster(8);
  core::Platform platform(topology::homogeneous_dsl(8), pc);
  metrics::Registry registry;
  platform.bind_metrics(registry);
  Cluster cluster(platform, config);
  cluster.bind_metrics();
  cluster.start();
  platform.run(at_sec(30));
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.node(i).joined()) << "node " << i;
  }
  // A healthy cluster confirms nobody.
  EXPECT_TRUE(cluster.confirm_log().empty());
  EXPECT_GT(registry.value("gossip.pings"), 0.0);
}

TEST(GossipCluster, CrashIsDetectedClusterWide) {
  core::PlatformConfig pc;
  pc.physical_nodes = 2;
  pc.seed = 5;
  const Config config = small_cluster(8);
  core::Platform platform(topology::homogeneous_dsl(8), pc);
  metrics::Registry registry;
  platform.bind_metrics(registry);
  Cluster cluster(platform, config);
  cluster.bind_metrics();

  fault::FaultPlan plan;
  plan.crash(4, at_sec(20));
  fault::FaultInjector injector(platform, std::move(plan));
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) { cluster.node(v).crash(); },
      .on_leave = [&](std::size_t v) { cluster.node(v).stop(); },
      .on_rejoin = [&](std::size_t v) { cluster.node(v).restart(); }});
  injector.arm();
  cluster.start();
  platform.run(at_sec(90));

  const std::vector<ConfirmRecord> confirms = cluster.confirm_log();
  ASSERT_FALSE(confirms.empty());
  for (const ConfirmRecord& record : confirms) {
    EXPECT_EQ(record.victim, 4u);
    EXPECT_GT(record.at, at_sec(20));
    // Worst case: a full probe-ring traversal plus the suspicion age.
    EXPECT_LT(record.at, at_sec(20) + config.period * 8 +
                             config.suspect_timeout +
                             config.period * 2);
  }
  // Eventually every live member confirms the victim.
  std::size_t observers = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == 4) continue;
    observers +=
        cluster.node(i).table().entry(4).state == MemberState::kConfirmed;
  }
  EXPECT_EQ(observers, cluster.size() - 1);
}

TEST(GossipCluster, RejoinRefutesSuspicionAndHeals) {
  core::PlatformConfig pc;
  pc.physical_nodes = 2;
  pc.seed = 9;
  const Config config = small_cluster(8);
  core::Platform platform(topology::homogeneous_dsl(8), pc);
  metrics::Registry registry;
  platform.bind_metrics(registry);
  Cluster cluster(platform, config);
  cluster.bind_metrics();

  fault::FaultPlan plan;
  plan.crash_and_rejoin(4, at_sec(20), Duration::sec(20));
  fault::FaultInjector injector(platform, std::move(plan));
  injector.set_node_hooks(fault::NodeHooks{
      .on_crash = [&](std::size_t v) { cluster.node(v).crash(); },
      .on_leave = [&](std::size_t v) { cluster.node(v).stop(); },
      .on_rejoin = [&](std::size_t v) { cluster.node(v).restart(); }});
  injector.arm();
  cluster.start();
  platform.run(at_sec(150));

  // The victim came back with a bumped incarnation...
  EXPECT_TRUE(cluster.node(4).joined());
  EXPECT_GE(cluster.node(4).table().incarnation(), 1u);
  // ...and the cluster healed: everyone sees it alive again.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == 4) continue;
    EXPECT_EQ(cluster.node(i).table().entry(4).state, MemberState::kAlive)
        << "node " << i << " still thinks 4 is dead";
  }
}

TEST(GossipCluster, GossipIsShardCountInvariant) {
  const RunOutput classic = run_churn(0);
  ASSERT_FALSE(classic.event_log.empty());
  // The run must exercise the interesting paths, or identity is vacuous.
  EXPECT_FALSE(classic.confirms.empty());
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const RunOutput sharded = run_churn(shards);
    EXPECT_EQ(classic.event_log, sharded.event_log)
        << "event log diverged at K=" << shards;
    EXPECT_EQ(classic.refutations, sharded.refutations)
        << "refutation count diverged at K=" << shards;
  }
}

}  // namespace
}  // namespace p2plab::gossip
