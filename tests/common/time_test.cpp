#include "common/time.hpp"

#include <gtest/gtest.h>

namespace p2plab {
namespace {

TEST(Duration, FactoriesAgree) {
  EXPECT_EQ(Duration::sec(1), Duration::ms(1000));
  EXPECT_EQ(Duration::ms(1), Duration::us(1000));
  EXPECT_EQ(Duration::us(1), Duration::ns(1000));
  EXPECT_EQ(Duration::seconds(1.5), Duration::ms(1500));
  EXPECT_EQ(Duration::millis(0.5), Duration::us(500));
  EXPECT_EQ(Duration::micros(2.5), Duration::ns(2500));
}

TEST(Duration, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::seconds(1e-9 * 0.6).count_ns(), 1);
  EXPECT_EQ(Duration::seconds(1e-9 * 0.4).count_ns(), 0);
  EXPECT_EQ(Duration::seconds(-1e-9 * 0.6).count_ns(), -1);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(Duration::ms(3) - Duration::ms(1), Duration::ms(2));
  EXPECT_EQ(Duration::ms(3) * 2, Duration::ms(6));
  EXPECT_EQ(Duration::ms(6) / 2, Duration::ms(3));
  EXPECT_DOUBLE_EQ(Duration::ms(6) / Duration::ms(3), 2.0);
  EXPECT_EQ(-Duration::ms(1), Duration::ms(-1));
}

TEST(Duration, Scaled) {
  EXPECT_EQ(Duration::sec(10).scaled(0.5), Duration::sec(5));
}

TEST(SimTime, PointArithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::ms(30);
  EXPECT_EQ(t1 - t0, Duration::ms(30));
  EXPECT_EQ(t1 - Duration::ms(30), t0);
  EXPECT_LT(t0, t1);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ((SimTime::zero() + Duration::sec(2)).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((SimTime::zero() + Duration::ms(853)).to_millis(), 853.0);
}

TEST(TimeFormatting, HumanReadable) {
  EXPECT_EQ(Duration::ns(17).to_string(), "17ns");
  EXPECT_EQ(Duration::us(10).to_string(), "10.000us");
  EXPECT_EQ(Duration::ms(853).to_string(), "853.000ms");
  EXPECT_EQ(Duration::sec(5).to_string(), "5.000s");
  EXPECT_EQ(Duration::ms(-2).to_string(), "-2.000ms");
}

}  // namespace
}  // namespace p2plab
