#include "common/units.hpp"

#include <gtest/gtest.h>

namespace p2plab {
namespace {

TEST(DataSize, UnitsCompose) {
  EXPECT_EQ(DataSize::kib(1).count_bytes(), 1024u);
  EXPECT_EQ(DataSize::mib(16).count_bytes(), 16u * 1024 * 1024);
  EXPECT_EQ(DataSize::gib(2).count_bytes(), 2ull << 30);
  EXPECT_EQ(DataSize::mib(1).count_bits(), 8u * 1024 * 1024);
}

TEST(DataSize, Arithmetic) {
  EXPECT_EQ(DataSize::kib(1) + DataSize::kib(1), DataSize::kib(2));
  EXPECT_EQ(DataSize::kib(2) - DataSize::kib(1), DataSize::kib(1));
  EXPECT_EQ(DataSize::kib(1) * 3, DataSize::bytes(3072));
  EXPECT_LT(DataSize::kib(1), DataSize::mib(1));
}

TEST(DataSize, Format) {
  EXPECT_EQ(DataSize::bytes(17).to_string(), "17B");
  EXPECT_EQ(DataSize::mib(16).to_string(), "16.00MiB");
}

TEST(Bandwidth, TransmissionTimeMatchesPaperUnits) {
  // A 16 KiB BitTorrent block on a 128 kb/s DSL uplink: 16384*8/128000 s.
  const Duration t = Bandwidth::kbps(128).transmission_time(DataSize::kib(16));
  EXPECT_NEAR(t.to_seconds(), 1.024, 1e-9);
}

TEST(Bandwidth, TransmissionTimeGigabit) {
  const Duration t = Bandwidth::gbps(1).transmission_time(DataSize::kib(16));
  EXPECT_NEAR(t.to_micros(), 131.072, 1e-6);
}

TEST(Bandwidth, UnlimitedIsZeroTime) {
  EXPECT_TRUE(Bandwidth::unlimited().is_unlimited());
  EXPECT_EQ(Bandwidth::unlimited().transmission_time(DataSize::gib(1)),
            Duration::zero());
}

TEST(Bandwidth, BytesInInvertsTransmissionTime) {
  const Bandwidth bw = Bandwidth::mbps(2);
  const DataSize size = DataSize::kib(256);
  const Duration t = bw.transmission_time(size);
  const DataSize back = bw.bytes_in(t);
  // Floor rounding may lose a byte.
  EXPECT_NEAR(static_cast<double>(back.count_bytes()),
              static_cast<double>(size.count_bytes()), 1.0);
}

TEST(Bandwidth, Format) {
  EXPECT_EQ(Bandwidth::kbps(128).to_string(), "128.00kbps");
  EXPECT_EQ(Bandwidth::mbps(2).to_string(), "2.00Mbps");
  EXPECT_EQ(Bandwidth::unlimited().to_string(), "unlimited");
}

}  // namespace
}  // namespace p2plab
