#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace p2plab {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (f1.next_u64() == f2.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(7), 7u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(7);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(10);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.5);
  EXPECT_NEAR(total / n, 2.5, 0.1);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(11);
  double total = 0.0;
  double total_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    total += v;
    total_sq += v * v;
  }
  const double mean = total / n;
  const double var = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleSizeAndMembership) {
  Rng rng(13);
  std::vector<int> pool;
  for (int i = 0; i < 100; ++i) pool.push_back(i);
  const auto picked = rng.sample(pool, 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<int> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : picked) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, SampleSmallPoolReturnsAll) {
  Rng rng(14);
  std::vector<int> pool{1, 2, 3};
  const auto picked = rng.sample(pool, 50);
  EXPECT_EQ(picked.size(), 3u);
}

// Property: reservoir sampling is roughly uniform — each element appears
// with probability k/n.
TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(15);
  std::vector<int> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(i);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.sample(pool, 5)) ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.03);
  }
}

}  // namespace
}  // namespace p2plab
