#include "common/ipv4.hpp"

#include <gtest/gtest.h>

namespace p2plab {
namespace {

TEST(Ipv4Addr, OctetConstructionRoundTrips) {
  const auto a = Ipv4Addr::from_octets(10, 1, 3, 207);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 1);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 207);
  EXPECT_EQ(a.to_string(), "10.1.3.207");
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.168.38.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Addr::from_octets(192, 168, 38, 1));
}

TEST(Ipv4Addr, ParseBoundaries) {
  EXPECT_EQ(*Ipv4Addr::parse("0.0.0.0"), Ipv4Addr::from_u32(0));
  EXPECT_EQ(*Ipv4Addr::parse("255.255.255.255"), Ipv4Addr::from_u32(0xffffffff));
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.-1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10..0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.01").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.0.1 ").has_value());
}

TEST(Ipv4Addr, OrderingFollowsNumericValue) {
  EXPECT_LT(Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr::from_octets(10, 0, 0, 255), Ipv4Addr::from_octets(10, 0, 1, 0));
}

TEST(Ipv4Addr, OffsetIteratesHosts) {
  const auto base = Ipv4Addr::from_octets(10, 0, 0, 0);
  EXPECT_EQ(base.offset(1).to_string(), "10.0.0.1");
  EXPECT_EQ(base.offset(300).to_string(), "10.0.1.44");
}

TEST(CidrBlock, ParseAndFormat) {
  const auto block = CidrBlock::parse("10.1.0.0/16");
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->prefix_len(), 16);
  EXPECT_EQ(block->to_string(), "10.1.0.0/16");
}

TEST(CidrBlock, BaseIsMasked) {
  const CidrBlock block{Ipv4Addr::from_octets(10, 1, 3, 207), 24};
  EXPECT_EQ(block.base().to_string(), "10.1.3.0");
}

TEST(CidrBlock, ContainsAddress) {
  const auto block = *CidrBlock::parse("10.1.3.0/24");
  EXPECT_TRUE(block.contains(Ipv4Addr::from_octets(10, 1, 3, 207)));
  EXPECT_TRUE(block.contains(Ipv4Addr::from_octets(10, 1, 3, 0)));
  EXPECT_FALSE(block.contains(Ipv4Addr::from_octets(10, 1, 2, 207)));
  EXPECT_FALSE(block.contains(Ipv4Addr::from_octets(10, 2, 3, 207)));
}

TEST(CidrBlock, ContainsBlock) {
  const auto wide = *CidrBlock::parse("10.1.0.0/16");
  const auto narrow = *CidrBlock::parse("10.1.3.0/24");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(wide));
}

TEST(CidrBlock, Overlaps) {
  const auto a = *CidrBlock::parse("10.1.0.0/16");
  const auto b = *CidrBlock::parse("10.1.3.0/24");
  const auto c = *CidrBlock::parse("10.2.0.0/16");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(CidrBlock, AnyMatchesEverything) {
  EXPECT_TRUE(CidrBlock::any().contains(Ipv4Addr::from_u32(0)));
  EXPECT_TRUE(CidrBlock::any().contains(Ipv4Addr::from_u32(0xffffffff)));
  EXPECT_EQ(CidrBlock::any().size(), std::uint64_t{1} << 32);
}

TEST(CidrBlock, SizeAndHost) {
  const auto block = *CidrBlock::parse("10.0.0.0/8");
  EXPECT_EQ(block.size(), 1u << 24);
  EXPECT_EQ(block.host(1).to_string(), "10.0.0.1");
  const auto slash32 = *CidrBlock::parse("10.1.3.207/32");
  EXPECT_EQ(slash32.size(), 1u);
  EXPECT_TRUE(slash32.contains(Ipv4Addr::from_octets(10, 1, 3, 207)));
  EXPECT_FALSE(slash32.contains(Ipv4Addr::from_octets(10, 1, 3, 208)));
}

TEST(CidrBlock, ParseRejectsMalformed) {
  EXPECT_FALSE(CidrBlock::parse("10.0.0.0").has_value());
  EXPECT_FALSE(CidrBlock::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(CidrBlock::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(CidrBlock::parse("10.0.0/8").has_value());
  EXPECT_FALSE(CidrBlock::parse("10.0.0.0/").has_value());
}

// Property: every host generated from a block is contained in the block and
// distinct.
TEST(CidrBlock, HostsAreContainedAndDistinct) {
  const auto block = *CidrBlock::parse("10.1.3.0/24");
  Ipv4Addr prev = block.host(0);
  for (std::uint32_t i = 1; i < 256; ++i) {
    const Ipv4Addr h = block.host(i);
    EXPECT_TRUE(block.contains(h));
    EXPECT_LT(prev, h);
    prev = h;
  }
}

}  // namespace
}  // namespace p2plab
