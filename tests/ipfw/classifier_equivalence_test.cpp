// Property test: HashClassifier is a drop-in replacement for
// LinearClassifier. For randomized rule tables — host (/32) rules, group
// rules, deny rules, direction qualifiers, duplicate rule numbers, and the
// never-matching filler rules the Figure 6 sweep pads with — every probe
// must produce the identical verdict and the identical pipe sequence.
// Only rules_scanned may differ: that asymmetry IS the ablation.
#include "ipfw/rule.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace p2plab::ipfw {
namespace {

// The address pool is deliberately tiny (4 groups x 8 hosts) so random
// probes actually hit the random rules instead of falling through.
Ipv4Addr random_host(Rng& rng) {
  const std::uint32_t group = static_cast<std::uint32_t>(rng.uniform(4));
  const std::uint32_t host = static_cast<std::uint32_t>(rng.uniform(8));
  return *Ipv4Addr::parse("10." + std::to_string(group + 1) + ".0." +
                          std::to_string(host + 1));
}

CidrBlock random_block(Rng& rng) {
  switch (rng.uniform(3)) {
    case 0:
      return CidrBlock::any();
    case 1:  // group-level /16
      return CidrBlock{*Ipv4Addr::parse(
                           "10." + std::to_string(rng.uniform(4) + 1) + ".0.0"),
                       16};
    default:  // host-level /32 — the bucket-indexed case
      return CidrBlock{random_host(rng), 32};
  }
}

std::vector<Rule> random_rules(Rng& rng, std::size_t count) {
  std::vector<Rule> rules;
  for (std::size_t i = 0; i < count; ++i) {
    Rule r;
    // Coarse numbers produce duplicates; ipfw keeps insertion order among
    // equal numbers and both classifiers must honor it.
    r.number = static_cast<std::uint32_t>(rng.uniform(8)) * 100;
    r.src = random_block(rng);
    r.dst = random_block(rng);
    const std::uint64_t dir = rng.uniform(4);
    r.dir = dir == 0 ? RuleDir::kIn : dir == 1 ? RuleDir::kOut : RuleDir::kAny;
    const std::uint64_t action = rng.uniform(8);
    if (action == 0) {
      r.action = RuleAction::kDeny;
    } else if (action == 1) {
      r.action = RuleAction::kAllow;
    } else {
      r.action = RuleAction::kPipe;
      r.pipe = static_cast<PipeId>(rng.uniform(16) + 1);
    }
    rules.push_back(r);
  }
  // Figure 6-style padding: never-matching host rules at the tail. The
  // linear classifier scans them all; the hash classifier indexes them away.
  const std::size_t fillers = rng.uniform(50);
  for (std::size_t i = 0; i < fillers; ++i) {
    rules.push_back(Rule{.number = 100000 + static_cast<std::uint32_t>(i),
                         .src = CidrBlock{Ipv4Addr::from_u32(0xfffffffe), 32},
                         .dst = CidrBlock::any(),
                         .action = RuleAction::kDeny});
  }
  // Firewall::add_rule keeps the list sorted by number with ties in
  // insertion order; replicate that contract for the bare classifiers.
  std::stable_sort(rules.begin(), rules.end(),
                   [](const Rule& a, const Rule& b) {
                     return a.number < b.number;
                   });
  return rules;
}

TEST(ClassifierEquivalence, RandomTablesIdenticalVerdictsAndPipes) {
  Rng rng(20260806);
  for (int table = 0; table < 40; ++table) {
    const auto rules = random_rules(rng, 1 + rng.uniform(60));
    LinearClassifier lin;
    HashClassifier hash;
    lin.rebuild(rules);
    hash.rebuild(rules);
    for (int probe = 0; probe < 50; ++probe) {
      const Ipv4Addr src = random_host(rng);
      const Ipv4Addr dst = random_host(rng);
      const std::uint64_t d = rng.uniform(3);
      const RuleDir pass =
          d == 0 ? RuleDir::kIn : d == 1 ? RuleDir::kOut : RuleDir::kAny;
      const MatchResult a = lin.classify(src, dst, pass);
      const MatchResult b = hash.classify(src, dst, pass);
      ASSERT_EQ(a.denied, b.denied)
          << "table " << table << ": " << src.to_string() << " -> "
          << dst.to_string();
      ASSERT_EQ(a.pipes, b.pipes)
          << "table " << table << ": " << src.to_string() << " -> "
          << dst.to_string();
    }
  }
}

TEST(ClassifierEquivalence, EqualRuleNumbersKeepInsertionOrder) {
  // Two pipe rules with the same number and the same host key: the packet
  // must traverse the pipes in insertion order under both classifiers.
  const CidrBlock host{*Ipv4Addr::parse("10.1.0.1"), 32};
  const std::vector<Rule> rules = {
      Rule{.number = 100, .src = host, .dst = CidrBlock::any(),
           .action = RuleAction::kPipe, .pipe = 7},
      Rule{.number = 100, .src = host, .dst = CidrBlock::any(),
           .action = RuleAction::kPipe, .pipe = 3},
  };
  LinearClassifier lin;
  HashClassifier hash;
  lin.rebuild(rules);
  hash.rebuild(rules);
  const Ipv4Addr src = *Ipv4Addr::parse("10.1.0.1");
  const Ipv4Addr dst = *Ipv4Addr::parse("10.2.0.1");
  const MatchResult a = lin.classify(src, dst, RuleDir::kAny);
  const MatchResult b = hash.classify(src, dst, RuleDir::kAny);
  EXPECT_EQ(a.pipes, (std::vector<PipeId>{7, 3}));
  EXPECT_EQ(b.pipes, a.pipes);
}

TEST(ClassifierEquivalence, FillerRulesOnlyChangeScanCount) {
  // The exact Figure 6 setup: a real host rule plus thousands of filler
  // rules. Verdict and pipes match; the scan counts must NOT (that gap is
  // the whole point of the ablation).
  std::vector<Rule> rules = {
      Rule{.number = 10, .src = CidrBlock{*Ipv4Addr::parse("10.1.0.1"), 32},
           .dst = CidrBlock::any(), .action = RuleAction::kPipe, .pipe = 1},
  };
  for (std::uint32_t i = 0; i < 5000; ++i) {
    rules.push_back(Rule{.number = 1000 + i,
                         .src = CidrBlock{Ipv4Addr::from_u32(0xfffffffe), 32},
                         .dst = CidrBlock::any(),
                         .action = RuleAction::kDeny});
  }
  LinearClassifier lin;
  HashClassifier hash;
  lin.rebuild(rules);
  hash.rebuild(rules);
  const Ipv4Addr src = *Ipv4Addr::parse("10.1.0.1");
  const Ipv4Addr dst = *Ipv4Addr::parse("10.9.0.1");
  const MatchResult a = lin.classify(src, dst, RuleDir::kAny);
  const MatchResult b = hash.classify(src, dst, RuleDir::kAny);
  EXPECT_EQ(a.pipes, b.pipes);
  EXPECT_EQ(a.denied, b.denied);
  EXPECT_EQ(a.rules_scanned, 5001u);  // walks every filler
  EXPECT_LE(b.rules_scanned, 2u);     // indexed lookup
}

}  // namespace
}  // namespace p2plab::ipfw
