#include "ipfw/rule.hpp"

#include <gtest/gtest.h>

namespace p2plab::ipfw {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

Rule pipe_rule(std::uint32_t number, const char* src, const char* dst,
               PipeId pipe) {
  return Rule{.number = number,
              .src = cidr(src),
              .dst = cidr(dst),
              .action = RuleAction::kPipe,
              .pipe = pipe};
}

TEST(Rule, MatchesBySrcAndDst) {
  const Rule r = pipe_rule(100, "10.1.3.0/24", "10.1.1.0/24", 1);
  EXPECT_TRUE(r.matches(ip("10.1.3.207"), ip("10.1.1.5"), RuleDir::kAny));
  EXPECT_FALSE(r.matches(ip("10.1.2.207"), ip("10.1.1.5"), RuleDir::kAny));
  EXPECT_FALSE(r.matches(ip("10.1.3.207"), ip("10.1.2.5"), RuleDir::kAny));
}

TEST(Rule, DirectionQualifier) {
  Rule out_rule = pipe_rule(100, "10.0.0.1/32", "0.0.0.0/0", 1);
  out_rule.dir = RuleDir::kOut;
  EXPECT_TRUE(out_rule.matches(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kOut));
  EXPECT_FALSE(out_rule.matches(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kIn));
  // Diagnostic (kAny) passes see every rule.
  EXPECT_TRUE(out_rule.matches(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kAny));
}

TEST(LinearClassifier, EmptyListImplicitAllow) {
  LinearClassifier c;
  c.rebuild({});
  const auto result = c.classify(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kAny);
  EXPECT_FALSE(result.denied);
  EXPECT_TRUE(result.pipes.empty());
  EXPECT_EQ(result.rules_scanned, 0u);
}

TEST(LinearClassifier, PipeRulesAccumulateInOrder) {
  // The paper's Figure 7 path: the vnode's own pipe AND an inter-group
  // latency pipe both apply to one packet (one_pass=0 semantics).
  LinearClassifier c;
  c.rebuild({
      pipe_rule(100, "10.1.3.207/32", "0.0.0.0/0", 1),  // vnode uplink
      pipe_rule(200, "10.1.0.0/16", "10.2.0.0/16", 2),  // group latency
  });
  const auto result = c.classify(ip("10.1.3.207"), ip("10.2.2.117"), RuleDir::kAny);
  EXPECT_EQ(result.pipes, (std::vector<PipeId>{1, 2}));
  EXPECT_EQ(result.rules_scanned, 2u);
}

TEST(LinearClassifier, DenyStopsScan) {
  LinearClassifier c;
  c.rebuild({
      Rule{.number = 50, .src = cidr("10.9.0.0/16"), .dst = CidrBlock::any(),
           .action = RuleAction::kDeny},
      pipe_rule(100, "0.0.0.0/0", "0.0.0.0/0", 1),
  });
  const auto denied = c.classify(ip("10.9.1.1"), ip("10.0.0.1"), RuleDir::kAny);
  EXPECT_TRUE(denied.denied);
  EXPECT_TRUE(denied.pipes.empty());
  EXPECT_EQ(denied.rules_scanned, 1u);

  const auto passed = c.classify(ip("10.8.1.1"), ip("10.0.0.1"), RuleDir::kAny);
  EXPECT_FALSE(passed.denied);
  EXPECT_EQ(passed.pipes, (std::vector<PipeId>{1}));
  EXPECT_EQ(passed.rules_scanned, 2u);
}

TEST(LinearClassifier, AllowStopsScan) {
  LinearClassifier c;
  c.rebuild({
      Rule{.number = 10, .src = cidr("192.168.38.0/24"),
           .dst = CidrBlock::any(), .action = RuleAction::kAllow},
      pipe_rule(100, "0.0.0.0/0", "0.0.0.0/0", 1),
  });
  const auto result = c.classify(ip("192.168.38.1"), ip("10.0.0.1"), RuleDir::kAny);
  EXPECT_FALSE(result.denied);
  EXPECT_TRUE(result.pipes.empty());  // admin traffic bypasses shaping
  EXPECT_EQ(result.rules_scanned, 1u);
}

TEST(LinearClassifier, ScanCountIsListLength) {
  // Figure 6's mechanism: a non-matching packet walks every rule.
  LinearClassifier c;
  std::vector<Rule> rules;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    rules.push_back(Rule{.number = i,
                         .src = cidr("255.255.255.255/32"),
                         .dst = CidrBlock::any(),
                         .action = RuleAction::kDeny});
  }
  c.rebuild(rules);
  const auto result = c.classify(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kAny);
  EXPECT_EQ(result.rules_scanned, 1000u);
  EXPECT_FALSE(result.denied);
}

TEST(HashClassifier, MatchesSameAsLinear) {
  const std::vector<Rule> rules = {
      pipe_rule(100, "10.1.3.207/32", "0.0.0.0/0", 1),
      pipe_rule(110, "0.0.0.0/0", "10.1.3.207/32", 2),
      pipe_rule(200, "10.1.0.0/16", "10.2.0.0/16", 3),
      pipe_rule(210, "10.1.0.0/16", "10.3.0.0/16", 4),
  };
  LinearClassifier lin;
  HashClassifier hash;
  lin.rebuild(rules);
  hash.rebuild(rules);

  const std::pair<const char*, const char*> probes[] = {
      {"10.1.3.207", "10.2.2.117"}, {"10.2.2.117", "10.1.3.207"},
      {"10.1.3.207", "10.3.0.5"},   {"10.1.2.7", "10.2.0.9"},
      {"10.5.0.1", "10.6.0.1"},
  };
  for (const auto& [s, d] : probes) {
    const auto a = lin.classify(ip(s), ip(d), RuleDir::kAny);
    const auto b = hash.classify(ip(s), ip(d), RuleDir::kAny);
    EXPECT_EQ(a.pipes, b.pipes) << s << " -> " << d;
    EXPECT_EQ(a.denied, b.denied);
  }
}

TEST(HashClassifier, ScanCountIndependentOfHostRuleCount) {
  // The ablation the paper wished for: host-addressed rules are indexed,
  // so classification cost does not grow with the number of hosted vnodes.
  std::vector<Rule> rules;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const Ipv4Addr host = ip("10.0.0.0").offset(i + 1);
    rules.push_back(Rule{.number = 2 * i,
                         .src = CidrBlock{host, 32},
                         .dst = CidrBlock::any(),
                         .action = RuleAction::kPipe,
                         .pipe = i + 1});
  }
  rules.push_back(pipe_rule(100000, "10.1.0.0/16", "10.2.0.0/16", 5000));
  HashClassifier hash;
  hash.rebuild(rules);
  const auto result = hash.classify(ip("10.0.0.5"), ip("10.9.9.9"), RuleDir::kAny);
  ASSERT_EQ(result.pipes.size(), 1u);
  EXPECT_EQ(result.pipes[0], 5u);
  EXPECT_LE(result.rules_scanned, 4u);  // hit + residual, not 2001
}

TEST(HashClassifier, PreservesRuleOrderAcrossBuckets) {
  // A dst-host rule numbered earlier must apply before a src-host rule
  // numbered later, even though they live in different buckets.
  const std::vector<Rule> rules = {
      Rule{.number = 10, .src = CidrBlock::any(), .dst = cidr("10.0.0.2/32"),
           .action = RuleAction::kDeny},
      pipe_rule(20, "10.0.0.1/32", "0.0.0.0/0", 1),
  };
  HashClassifier hash;
  hash.rebuild(rules);
  const auto result = hash.classify(ip("10.0.0.1"), ip("10.0.0.2"), RuleDir::kAny);
  EXPECT_TRUE(result.denied);
  EXPECT_TRUE(result.pipes.empty());
}

}  // namespace
}  // namespace p2plab::ipfw
