#include "ipfw/firewall.hpp"

#include <gtest/gtest.h>

namespace p2plab::ipfw {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

class FirewallTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Firewall fw{sim, FirewallConfig{}, Rng{1}};
};

TEST_F(FirewallTest, PipeIdsStartAtOne) {
  const PipeId a = fw.create_pipe({.bandwidth = Bandwidth::mbps(2)});
  const PipeId b = fw.create_pipe({.bandwidth = Bandwidth::kbps(128)});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(fw.pipe(a).config().bandwidth, Bandwidth::mbps(2));
  EXPECT_EQ(fw.pipe(b).config().bandwidth, Bandwidth::kbps(128));
  EXPECT_EQ(fw.pipe_count(), 2u);
}

TEST_F(FirewallTest, RulesSortByNumber) {
  const PipeId p = fw.create_pipe({});
  fw.add_rule({.number = 300, .src = cidr("10.0.0.3/32"),
               .dst = CidrBlock::any(), .action = RuleAction::kPipe,
               .pipe = p});
  fw.add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
               .dst = CidrBlock::any(), .action = RuleAction::kDeny});
  fw.add_rule({.number = 200, .src = cidr("10.0.0.1/32"),
               .dst = CidrBlock::any(), .action = RuleAction::kPipe,
               .pipe = p});
  // Rule 100 (deny) must win over rule 200 despite insertion order.
  const auto result = fw.classify(ip("10.0.0.1"), ip("10.0.0.9"));
  EXPECT_TRUE(result.denied);
  EXPECT_TRUE(result.pipes.empty());
}

TEST_F(FirewallTest, ScanCostScalesWithRules) {
  // The Figure 6 mechanism, at the firewall API level.
  fw.add_filler_rules(1000, 5000);
  const auto result = fw.classify(ip("10.0.0.1"), ip("10.0.0.2"));
  EXPECT_EQ(result.rules_scanned, 5000u);
  // 5000 rules at 50 ns each = 250 us of scan latency.
  EXPECT_NEAR(fw.scan_cost(result).to_micros(), 250.0, 1e-9);
}

TEST_F(FirewallTest, HashClassifierAblationFlattens) {
  sim::Simulation sim2;
  Firewall hash_fw{sim2, FirewallConfig{.use_hash_classifier = true}, Rng{1}};
  hash_fw.add_filler_rules(1000, 5000);
  const auto result = hash_fw.classify(ip("10.0.0.1"), ip("10.0.0.2"));
  EXPECT_LE(result.rules_scanned, 1u);
  EXPECT_STREQ(hash_fw.classifier_name(), "hash");
}

TEST_F(FirewallTest, VnodeShapingScenario) {
  // The paper's per-vnode setup: one pipe+rule per direction.
  const PipeId up = fw.create_pipe({.bandwidth = Bandwidth::kbps(128),
                                    .delay = Duration::ms(30)});
  const PipeId down = fw.create_pipe({.bandwidth = Bandwidth::mbps(2),
                                      .delay = Duration::ms(30)});
  fw.add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
               .dst = CidrBlock::any(), .action = RuleAction::kPipe,
               .pipe = up});
  fw.add_rule({.number = 110, .src = CidrBlock::any(),
               .dst = cidr("10.0.0.1/32"), .action = RuleAction::kPipe,
               .pipe = down});

  const auto outgoing = fw.classify(ip("10.0.0.1"), ip("10.0.5.9"));
  ASSERT_EQ(outgoing.pipes.size(), 1u);
  EXPECT_EQ(outgoing.pipes[0], up);

  const auto incoming = fw.classify(ip("10.0.5.9"), ip("10.0.0.1"));
  ASSERT_EQ(incoming.pipes.size(), 1u);
  EXPECT_EQ(incoming.pipes[0], down);
}

TEST_F(FirewallTest, DefaultPerRuleCostMatchesCalibration) {
  EXPECT_EQ(fw.config().per_rule_cost, Duration::ns(50));
  EXPECT_STREQ(fw.classifier_name(), "linear");
}

}  // namespace
}  // namespace p2plab::ipfw
