#include "ipfw/pipe.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2plab::ipfw {
namespace {

class PipeTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Rng rng{1};

  Pipe::Segment seg(DataSize size, FlowId flow, std::vector<SimTime>* exits) {
    return Pipe::Segment{
        .size = size, .flow = flow,
        .on_exit = [this, exits] { exits->push_back(sim.now()); },
        .on_drop = nullptr};
  }
};

TEST_F(PipeTest, PureDelayElement) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::unlimited(),
                  .delay = Duration::ms(400)},
            rng);
  std::vector<SimTime> exits;
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  sim.run();
  ASSERT_EQ(exits.size(), 2u);
  // No serialization: both exit at exactly the delay.
  EXPECT_EQ(exits[0], SimTime::zero() + Duration::ms(400));
  EXPECT_EQ(exits[1], SimTime::zero() + Duration::ms(400));
}

TEST_F(PipeTest, BandwidthSerializes) {
  // 128 kb/s uplink: a 16 KiB block takes 1.024 s on the wire.
  Pipe pipe(sim, {.bandwidth = Bandwidth::kbps(128)}, rng);
  std::vector<SimTime> exits;
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  sim.run();
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_NEAR(exits[0].to_seconds(), 1.024, 1e-6);
  EXPECT_NEAR(exits[1].to_seconds(), 2.048, 1e-6);
}

TEST_F(PipeTest, BandwidthPlusDelay) {
  // The paper's DSL model: shaping then propagation delay.
  Pipe pipe(sim, {.bandwidth = Bandwidth::mbps(2), .delay = Duration::ms(30)},
            rng);
  std::vector<SimTime> exits;
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  sim.run();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_NEAR(exits[0].to_seconds(), 16384.0 * 8 / 2e6 + 0.030, 1e-6);
}

TEST_F(PipeTest, DrrSharesBandwidthAcrossFlows) {
  // Two flows, equal backlog: each should get ~half the link.
  Pipe pipe(sim, {.bandwidth = Bandwidth::mbps(1),
                  .queue_limit = DataSize::mib(10)},
            rng);
  std::vector<SimTime> exits_a;
  std::vector<SimTime> exits_b;
  for (int i = 0; i < 20; ++i) {
    pipe.enqueue(seg(DataSize::kib(4), 1, &exits_a));
    pipe.enqueue(seg(DataSize::kib(4), 2, &exits_b));
  }
  sim.run();
  ASSERT_EQ(exits_a.size(), 20u);
  ASSERT_EQ(exits_b.size(), 20u);
  // Total: 160 KiB at 1 Mb/s = ~1.31 s. Each flow's last segment should
  // leave near the end (fair interleaving), not one flow first.
  const double total = 160.0 * 1024 * 8 / 1e6;
  EXPECT_NEAR(exits_a.back().to_seconds(), total, 0.1);
  EXPECT_NEAR(exits_b.back().to_seconds(), total, 0.1);
}

TEST_F(PipeTest, FifoServesInArrivalOrder) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::mbps(1),
                  .queue_limit = DataSize::mib(10), .fair_queue = false},
            rng);
  std::vector<SimTime> exits_a;
  std::vector<SimTime> exits_b;
  for (int i = 0; i < 10; ++i) pipe.enqueue(seg(DataSize::kib(4), 1, &exits_a));
  for (int i = 0; i < 10; ++i) pipe.enqueue(seg(DataSize::kib(4), 2, &exits_b));
  sim.run();
  // FIFO: flow 1 drains completely before flow 2's last segments.
  EXPECT_LT(exits_a.back().to_seconds(), exits_b.front().to_seconds() + 0.04);
}

TEST_F(PipeTest, QueueOverflowDrops) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::kbps(64),
                  .queue_limit = DataSize::bytes(3000)},
            rng);
  int dropped = 0;
  std::vector<SimTime> exits;
  for (int i = 0; i < 10; ++i) {
    Pipe::Segment s = seg(DataSize::bytes(1500), 1, &exits);
    s.on_drop = [&dropped] { ++dropped; };
    pipe.enqueue(std::move(s));
  }
  sim.run();
  // 1 in service + 2 queued fit; the rest drop.
  EXPECT_EQ(dropped, 7);
  EXPECT_EQ(exits.size(), 3u);
  EXPECT_EQ(pipe.stats().segments_dropped, 7u);
}

TEST_F(PipeTest, RandomLossDropsExpectedFraction) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::unlimited(), .loss_rate = 0.2}, rng);
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 5000; ++i) {
    pipe.enqueue(Pipe::Segment{.size = DataSize::bytes(100), .flow = 1,
                               .on_exit = [&delivered] { ++delivered; },
                               .on_drop = [&dropped] { ++dropped; }});
  }
  sim.run();
  EXPECT_EQ(delivered + dropped, 5000);
  EXPECT_NEAR(static_cast<double>(dropped) / 5000.0, 0.2, 0.02);
}

TEST_F(PipeTest, StatsAccounting) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::mbps(1)}, rng);
  std::vector<SimTime> exits;
  pipe.enqueue(seg(DataSize::kib(1), 1, &exits));
  pipe.enqueue(seg(DataSize::kib(2), 1, &exits));
  sim.run();
  EXPECT_EQ(pipe.stats().segments_in, 2u);
  EXPECT_EQ(pipe.stats().segments_out, 2u);
  EXPECT_EQ(pipe.stats().bytes_in, 3u * 1024);
  EXPECT_EQ(pipe.stats().bytes_out, 3u * 1024);
  EXPECT_EQ(pipe.stats().segments_dropped, 0u);
}

TEST_F(PipeTest, ReconfigureChangesRate) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::kbps(128)}, rng);
  std::vector<SimTime> exits;
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  sim.run();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_NEAR(exits[0].to_seconds(), 1.024, 1e-6);

  pipe.reconfigure({.bandwidth = Bandwidth::kbps(256)});
  pipe.enqueue(seg(DataSize::kib(16), 1, &exits));
  sim.run();
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_NEAR((exits[1] - exits[0]).to_seconds(), 0.512, 1e-6);
}

TEST_F(PipeTest, ZeroDelayZeroBandwidthDeliversImmediately) {
  Pipe pipe(sim, {}, rng);
  bool delivered = false;
  pipe.enqueue(Pipe::Segment{.size = DataSize::bytes(64), .flow = 1,
                             .on_exit = [&] { delivered = true; }});
  EXPECT_TRUE(delivered);  // synchronous: no events needed
}

TEST_F(PipeTest, ManyFlowsAllComplete) {
  Pipe pipe(sim, {.bandwidth = Bandwidth::mbps(10),
                  .queue_limit = DataSize::mib(100)},
            rng);
  int exits = 0;
  for (FlowId f = 1; f <= 50; ++f) {
    for (int i = 0; i < 4; ++i) {
      pipe.enqueue(Pipe::Segment{.size = DataSize::kib(8), .flow = f,
                                 .on_exit = [&exits] { ++exits; }});
    }
  }
  sim.run();
  EXPECT_EQ(exits, 200);
}

}  // namespace
}  // namespace p2plab::ipfw
