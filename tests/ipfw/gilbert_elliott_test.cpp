// Gilbert-Elliott bursty-loss model: burst statistics, determinism, and
// the administratively-down fault switch.
#include "ipfw/pipe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace p2plab::ipfw {
namespace {

class GilbertElliottTest : public ::testing::Test {
 protected:
  /// Feed `n` zero-delay segments through `pipe` one sim-step at a time
  /// and record, per segment, whether it was dropped.
  std::vector<bool> run_segments(Pipe& pipe, int n) {
    std::vector<bool> dropped;
    dropped.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto index = dropped.size();
      dropped.push_back(true);  // flipped back by on_exit
      pipe.enqueue(Pipe::Segment{
          .size = DataSize::bytes(1500),
          .flow = 1,
          .on_exit = [&dropped, index] { dropped[index] = false; },
          .on_drop = nullptr});
    }
    sim.run();
    return dropped;
  }

  static PipeConfig ge_config(double pgb, double pbg, double loss_bad,
                              double loss_good = 0.0) {
    return PipeConfig{
        .bandwidth = Bandwidth::unlimited(),
        .burst_loss = GilbertElliott{.p_good_to_bad = pgb,
                                     .p_bad_to_good = pbg,
                                     .loss_good = loss_good,
                                     .loss_bad = loss_bad},
        .queue_limit = DataSize::mib(64)};
  }

  sim::Simulation sim;
};

TEST_F(GilbertElliottTest, DisabledModelLosesNothing) {
  Pipe pipe(sim, PipeConfig{.bandwidth = Bandwidth::unlimited()}, Rng{7});
  const auto dropped = run_segments(pipe, 2000);
  for (const bool d : dropped) EXPECT_FALSE(d);
  EXPECT_EQ(pipe.stats().segments_dropped, 0u);
}

TEST_F(GilbertElliottTest, LongRunLossMatchesStationaryBadShare) {
  // pgb=0.1, pbg=0.25, loss_bad=1: stationary loss = 0.1/(0.1+0.25) ~ 28.6%.
  Pipe pipe(sim, ge_config(0.1, 0.25, 1.0), Rng{42});
  const int n = 40000;
  const auto dropped = run_segments(pipe, n);
  int losses = 0;
  for (const bool d : dropped) losses += d;
  const double rate = static_cast<double>(losses) / n;
  EXPECT_NEAR(rate, 0.1 / 0.35, 0.02);
  EXPECT_EQ(pipe.stats().segments_dropped_burst,
            static_cast<std::uint64_t>(losses));
  EXPECT_EQ(pipe.stats().segments_dropped,
            static_cast<std::uint64_t>(losses));
}

TEST_F(GilbertElliottTest, MeanBurstLengthIsInverseRecoveryProbability) {
  // With loss_bad=1 a burst lasts exactly the bad-state sojourn: geometric
  // with mean 1/p_bad_to_good = 4 segments.
  Pipe pipe(sim, ge_config(0.05, 0.25, 1.0), Rng{1234});
  const auto dropped = run_segments(pipe, 60000);
  std::vector<int> bursts;
  int current = 0;
  for (const bool d : dropped) {
    if (d) {
      ++current;
    } else if (current > 0) {
      bursts.push_back(current);
      current = 0;
    }
  }
  if (current > 0) bursts.push_back(current);
  ASSERT_GT(bursts.size(), 100u);
  double mean = 0;
  for (const int b : bursts) mean += b;
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 4.0, 0.4);  // within 10% over ~thousands of bursts
}

TEST_F(GilbertElliottTest, GoodStateLossStillApplies) {
  // loss_good adds background loss between bursts.
  Pipe pipe(sim, ge_config(0.01, 0.5, 1.0, /*loss_good=*/0.05), Rng{5});
  const auto dropped = run_segments(pipe, 40000);
  int losses = 0;
  for (const bool d : dropped) losses += d;
  // Stationary bad share = 0.01/0.51 ~ 2%; total ~ 2% + 98%*5% ~ 6.9%.
  const double rate = static_cast<double>(losses) / 40000.0;
  EXPECT_NEAR(rate, 0.069, 0.01);
}

TEST_F(GilbertElliottTest, DeterministicUnderFixedSeed) {
  auto pattern = [this](std::uint64_t seed) {
    sim::Simulation local_sim;
    Pipe pipe(local_sim, ge_config(0.1, 0.3, 0.9), Rng{seed});
    std::vector<bool> dropped;
    for (int i = 0; i < 5000; ++i) {
      const auto index = dropped.size();
      dropped.push_back(true);
      pipe.enqueue(Pipe::Segment{
          .size = DataSize::bytes(1500),
          .flow = 1,
          .on_exit = [&dropped, index] { dropped[index] = false; },
          .on_drop = nullptr});
    }
    local_sim.run();
    return dropped;
  };
  EXPECT_EQ(pattern(77), pattern(77));
  EXPECT_NE(pattern(77), pattern(78));
}

TEST_F(GilbertElliottTest, ChainStateSurvivesReconfigure) {
  // Reconfiguring bandwidth mid-run must not reset the chain (a latency
  // spike on a bursty link should not heal the link).
  Pipe pipe(sim, ge_config(0.5, 0.001, 1.0), Rng{9});
  run_segments(pipe, 200);  // almost surely in the bad state now
  const auto before = pipe.stats().segments_dropped_burst;
  EXPECT_GT(before, 0u);
  PipeConfig cfg = pipe.config();
  cfg.delay = Duration::ms(100);
  pipe.reconfigure(cfg);
  const auto dropped = run_segments(pipe, 200);
  int losses = 0;
  for (const bool d : dropped) losses += d;
  // p_bad_to_good=0.001: had the chain reset to good, p_good_to_bad=0.5
  // would still lose far fewer than the ~all-lost of a bad-state chain.
  EXPECT_GT(losses, 150);
}

TEST_F(GilbertElliottTest, BurstLengthsPassChiSquareAgainstGeometric) {
  // The accuracy harness (DESIGN.md §13) trusts the G-E implementation for
  // its loss invariant; this pins the full distribution, not just moments.
  // With loss_bad=1, burst lengths are the bad-state sojourn: geometric
  // with P(L=k) = pbg*(1-pbg)^(k-1). Seeded, so the statistic is a fixed
  // number — the threshold is chi-square df=8, p=0.001.
  const double pgb = 0.02, pbg = 0.25;
  Pipe pipe(sim, ge_config(pgb, pbg, 1.0), Rng{20260809});
  const int n = 80000;
  const auto dropped = run_segments(pipe, n);

  std::vector<int> bursts;
  int losses = 0, current = 0;
  for (const bool d : dropped) {
    losses += d;
    if (d) {
      ++current;
    } else if (current > 0) {
      bursts.push_back(current);
      current = 0;
    }
  }
  if (current > 0) bursts.push_back(current);

  // Observed loss rate vs the chain's stationary bad share.
  EXPECT_NEAR(static_cast<double>(losses) / n, pgb / (pgb + pbg), 0.01);

  // Mean burst length vs 1/pbg.
  ASSERT_GT(bursts.size(), 1000u);
  double mean = 0;
  for (const int b : bursts) mean += b;
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 1.0 / pbg, 0.1 / pbg);  // within 10%

  // Chi-square over bins {1..8, >=9}. Expected counts under the geometric
  // law all exceed ~45, comfortably above the >=5 rule of thumb.
  constexpr int kBins = 8;
  double observed[kBins + 1] = {};
  for (const int b : bursts) ++observed[b <= kBins ? b - 1 : kBins];
  const double total = static_cast<double>(bursts.size());
  double chi2 = 0, tail_p = 1.0;
  for (int k = 0; k < kBins; ++k) {
    const double p_k = pbg * std::pow(1.0 - pbg, k);
    tail_p -= p_k;
    const double expected = total * p_k;
    chi2 += (observed[k] - expected) * (observed[k] - expected) / expected;
  }
  const double expected_tail = total * tail_p;
  chi2 += (observed[kBins] - expected_tail) * (observed[kBins] - expected_tail)
          / expected_tail;
  EXPECT_LT(chi2, 26.12) << "burst lengths deviate from Geometric(p_bad_to_"
                            "good) at the p=0.001 level";
}

TEST_F(GilbertElliottTest, AdminDownDropsEverythingUntilRestored) {
  Pipe pipe(sim, PipeConfig{.bandwidth = Bandwidth::unlimited()}, Rng{3});
  pipe.set_down(true);
  EXPECT_TRUE(pipe.is_down());
  auto dropped = run_segments(pipe, 50);
  for (const bool d : dropped) EXPECT_TRUE(d);
  EXPECT_EQ(pipe.stats().segments_dropped_down, 50u);
  pipe.set_down(false);
  dropped = run_segments(pipe, 50);
  for (const bool d : dropped) EXPECT_FALSE(d);
  EXPECT_EQ(pipe.stats().segments_dropped_down, 50u);
}

}  // namespace
}  // namespace p2plab::ipfw
