#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace p2plab::net {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }

TEST(PacketPool, RecyclesCellsInsteadOfGrowing) {
  PacketPool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  {
    const PacketRef a = pool.acquire(Packet{});
    const PacketRef b = pool.acquire(Packet{});
    EXPECT_EQ(pool.capacity(), 2u);
    EXPECT_EQ(pool.in_flight(), 2u);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.available(), 2u);
  const PacketRef c = pool.acquire(Packet{});
  EXPECT_EQ(pool.capacity(), 2u);  // steady state: no growth
  EXPECT_EQ(pool.in_flight(), 1u);
}

TEST(PacketPool, ReleaseDropsOwnedPayloadPromptly) {
  PacketPool pool;
  auto body = std::make_shared<int>(5);
  std::weak_ptr<int> weak = body;
  {
    Packet p;
    p.body = std::move(body);
    const PacketRef ref = pool.acquire(std::move(p));
    EXPECT_FALSE(weak.expired());
  }
  // The cell sits on the free list, but the payload is gone already.
  EXPECT_TRUE(weak.expired());
}

TEST(PacketPool, MoveTransfersOwnership) {
  PacketPool pool;
  PacketRef a = pool.acquire(Packet{});
  a->seq = 77;
  PacketRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(b);
  EXPECT_EQ(b->seq, 77u);
  EXPECT_EQ(pool.in_flight(), 1u);
}

TEST(PacketPool, OrphanedRefSurvivesPoolDestruction) {
  PacketRef survivor;
  {
    PacketPool pool;
    survivor = pool.acquire(Packet{});
    const PacketRef returned = pool.acquire(Packet{});
    // `returned` goes back to the free list; `survivor` stays out when the
    // pool dies — the teardown-order case (events outliving a Network).
  }
  ASSERT_TRUE(survivor);
  survivor = PacketRef{};  // frees the orphaned cell; must be ASan-clean
  EXPECT_FALSE(survivor);
}

// The drop paths return refs with no explicit recycling code: once the
// traffic drains — despite loss, queue overflow, and a mid-flight crash
// that withdraws the destination — every cell must be back in the pool.
TEST(PacketPool, CrashAndDropChurnReturnsEveryRef) {
  sim::Simulation sim;
  Network network{sim, Rng{7}};
  Host& a = network.add_host("a", ip("10.0.0.1"));
  Host& b = network.add_host("b", ip("10.0.0.2"));
  for (Host* host : {&a, &b}) {
    const CidrBlock self{host->admin_ip(), 32};
    const ipfw::PipeId up = host->firewall().create_pipe(
        {.bandwidth = Bandwidth::mbps(10),
         .delay = Duration::ms(5),
         .loss_rate = 0.2,
         .queue_limit = DataSize::bytes(6000)});  // 4 frames: forces overflow
    const ipfw::PipeId down = host->firewall().create_pipe(
        {.bandwidth = Bandwidth::mbps(10), .delay = Duration::ms(5)});
    host->firewall().add_rule({.number = 100,
                               .src = self,
                               .dir = ipfw::RuleDir::kOut,
                               .action = ipfw::RuleAction::kPipe,
                               .pipe = up});
    host->firewall().add_rule({.number = 110,
                               .dst = self,
                               .dir = ipfw::RuleDir::kIn,
                               .action = ipfw::RuleAction::kPipe,
                               .pipe = down});
  }
  int delivered = 0;
  network.set_socket_demux([&](Packet&&) { ++delivered; });
  auto blast = [&](Ipv4Addr src, Ipv4Addr dst) {
    for (int i = 0; i < 64; ++i) {
      Packet p;
      p.src = src;
      p.dst = dst;
      p.wire_size = DataSize::bytes(1500);
      p.flow = static_cast<ipfw::FlowId>(i);
      p.socket_demux = true;
      network.send(std::move(p));
    }
  };
  blast(ip("10.0.0.1"), ip("10.0.0.2"));
  // Let part of the burst into pipes and NICs, then crash the destination
  // mid-flight: its address withdraws and in-flight packets go unroutable.
  for (int i = 0; i < 40; ++i) sim.step();
  EXPECT_GT(network.pool().in_flight(), 0u);
  network.detach_address(ip("10.0.0.2"));
  blast(ip("10.0.0.1"), ip("10.0.0.2"));  // sent into the void
  sim.run();
  EXPECT_EQ(network.pool().in_flight(), 0u);
  EXPECT_EQ(network.pool().available(), network.pool().capacity());
  EXPECT_GT(network.pool().capacity(), 0u);
  EXPECT_LT(network.stats().packets_delivered, 128u);  // drops did happen
}

}  // namespace
}  // namespace p2plab::net
