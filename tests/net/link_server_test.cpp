#include "net/link_server.hpp"

#include <gtest/gtest.h>

namespace p2plab::net {
namespace {

SimTime at_ms(int ms) { return SimTime::zero() + Duration::ms(ms); }

TEST(LinkServer, IdleLinkDelayIsServicePlusLatency) {
  LinkServer link(Bandwidth::gbps(1), Duration::us(20), DataSize::kib(512));
  const auto delay = link.transmit(SimTime::zero(), DataSize::kib(16));
  ASSERT_TRUE(delay.has_value());
  EXPECT_NEAR(delay->to_micros(), 131.072 + 20.0, 0.001);
}

TEST(LinkServer, BackToBackSerializes) {
  LinkServer link(Bandwidth::mbps(10), Duration::zero(), DataSize::mib(1));
  const auto d1 = link.transmit(SimTime::zero(), DataSize::kib(16));
  const auto d2 = link.transmit(SimTime::zero(), DataSize::kib(16));
  ASSERT_TRUE(d1 && d2);
  EXPECT_NEAR(d2->to_seconds(), 2 * d1->to_seconds(), 1e-9);
}

TEST(LinkServer, BacklogDrainsOverTime) {
  LinkServer link(Bandwidth::mbps(10), Duration::zero(), DataSize::mib(1));
  link.transmit(SimTime::zero(), DataSize::kib(64));  // ~52 ms of backlog
  EXPECT_GT(link.backlog_at(at_ms(10)).to_millis(), 30.0);
  EXPECT_DOUBLE_EQ(link.backlog_at(at_ms(100)).to_millis(), 0.0);
  // A later packet after the drain sees an idle link again.
  const auto delay = link.transmit(at_ms(100), DataSize::kib(16));
  ASSERT_TRUE(delay.has_value());
  EXPECT_NEAR(delay->to_millis(), 13.1, 0.1);
}

TEST(LinkServer, QueueOverflowDrops) {
  LinkServer link(Bandwidth::kbps(64), Duration::zero(),
                  DataSize::bytes(3000));
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.transmit(SimTime::zero(), DataSize::bytes(1500))) ++accepted;
  }
  EXPECT_LT(accepted, 10);
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(link.stats().dropped, static_cast<std::uint64_t>(10 - accepted));
}

TEST(LinkServer, UnlimitedBandwidthIsPureLatency) {
  LinkServer link(Bandwidth::unlimited(), Duration::ms(5), DataSize::kib(1));
  for (int i = 0; i < 100; ++i) {
    const auto delay = link.transmit(SimTime::zero(), DataSize::mib(1));
    ASSERT_TRUE(delay.has_value());
    EXPECT_EQ(*delay, Duration::ms(5));
  }
}

TEST(LinkServer, StatsAccounting) {
  LinkServer link(Bandwidth::gbps(1), Duration::zero(), DataSize::mib(1));
  link.transmit(SimTime::zero(), DataSize::kib(1));
  link.transmit(SimTime::zero(), DataSize::kib(2));
  EXPECT_EQ(link.stats().packets, 2u);
  EXPECT_EQ(link.stats().bytes, 3u * 1024);
  EXPECT_EQ(link.stats().dropped, 0u);
}

// Property: total transfer time of n packets equals n * service (work
// conservation, no idle gaps with a saturating arrival pattern).
TEST(LinkServer, WorkConservation) {
  LinkServer link(Bandwidth::mbps(1), Duration::zero(), DataSize::mib(16));
  Duration last = Duration::zero();
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const auto delay = link.transmit(SimTime::zero(), DataSize::kib(8));
    ASSERT_TRUE(delay.has_value());
    last = *delay;
  }
  const double expected = n * (8.0 * 1024 * 8 / 1e6);
  EXPECT_NEAR(last.to_seconds(), expected, 1e-6);
}

}  // namespace
}  // namespace p2plab::net
