#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2plab::net {
namespace {

Ipv4Addr ip(const char* text) { return *Ipv4Addr::parse(text); }
CidrBlock cidr(const char* text) { return *CidrBlock::parse(text); }

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Network network{sim, Rng{1}};

  Packet packet(Ipv4Addr src, Ipv4Addr dst, DataSize size,
                std::vector<SimTime>* deliveries) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.wire_size = size;
    p.flow = 1;
    p.on_deliver = [this, deliveries](Packet&&) {
      deliveries->push_back(sim.now());
    };
    return p;
  }
};

TEST_F(NetworkTest, HostRegistration) {
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  EXPECT_EQ(network.host_of(ip("192.168.38.1")), &a);
  EXPECT_EQ(network.host_of(ip("192.168.38.2")), nullptr);
  a.add_alias(ip("10.0.0.1"));
  EXPECT_EQ(network.host_of(ip("10.0.0.1")), &a);
  EXPECT_EQ(network.host_count(), 1u);
}

TEST_F(NetworkTest, BasicDeliveryLatency) {
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  network.add_host("node2", ip("192.168.38.2"));
  (void)a;
  std::vector<SimTime> deliveries;
  network.send(
      packet(ip("192.168.38.1"), ip("192.168.38.2"), DataSize::bytes(64),
             &deliveries));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // Path: src cpu (10us/2cpus=5us) + NIC tx (64B@1Gbps + 20us) + switch
  // (30us) + NIC rx + dst cpu. All well under a millisecond.
  const double us = (deliveries[0] - SimTime::zero()).to_micros();
  EXPECT_GT(us, 50.0);
  EXPECT_LT(us, 200.0);
  EXPECT_EQ(network.stats().packets_delivered, 1u);
}

TEST_F(NetworkTest, UnroutableDropped) {
  network.add_host("node1", ip("192.168.38.1"));
  std::vector<SimTime> deliveries;
  network.send(packet(ip("192.168.38.1"), ip("10.99.0.1"),
                      DataSize::bytes(64), &deliveries));
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(network.stats().packets_unroutable, 1u);
}

TEST_F(NetworkTest, DenyRuleDrops) {
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  network.add_host("node2", ip("192.168.38.2"));
  a.firewall().add_rule({.number = 10, .src = CidrBlock::any(),
                         .dst = cidr("192.168.38.2/32"),
                         .action = ipfw::RuleAction::kDeny});
  std::vector<SimTime> deliveries;
  network.send(packet(ip("192.168.38.1"), ip("192.168.38.2"),
                      DataSize::bytes(64), &deliveries));
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(network.stats().packets_dropped_fw, 1u);
}

TEST_F(NetworkTest, VnodePipesShapeTraffic) {
  // The paper's setup: a vnode with a DSL-like uplink pipe on its host.
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  Host& b = network.add_host("node2", ip("192.168.38.2"));
  a.add_alias(ip("10.0.0.1"));
  b.add_alias(ip("10.0.0.51"));
  const auto up = a.firewall().create_pipe(
      {.bandwidth = Bandwidth::kbps(128), .delay = Duration::ms(30)});
  a.firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                         .dst = CidrBlock::any(),
                         .action = ipfw::RuleAction::kPipe, .pipe = up});
  const auto down = b.firewall().create_pipe(
      {.bandwidth = Bandwidth::mbps(2), .delay = Duration::ms(30)});
  b.firewall().add_rule({.number = 100, .src = CidrBlock::any(),
                         .dst = cidr("10.0.0.51/32"),
                         .action = ipfw::RuleAction::kPipe, .pipe = down});

  std::vector<SimTime> deliveries;
  network.send(
      packet(ip("10.0.0.1"), ip("10.0.0.51"), DataSize::kib(16), &deliveries));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // Uplink serialization 1.024 s + 30 ms + 30 ms + downlink serialization
  // ~65 ms + fabric/cpu noise.
  const double sec = deliveries[0].to_seconds();
  EXPECT_NEAR(sec, 1.024 + 0.030 + 0.030 + 0.0655, 0.01);
}

TEST_F(NetworkTest, CoLocatedVnodesStillShaped) {
  // Figure 9's prerequisite: two vnodes folded onto one host keep their
  // emulated access links even though traffic never leaves the machine.
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  a.add_alias(ip("10.0.0.1"));
  a.add_alias(ip("10.0.0.2"));
  const auto up = a.firewall().create_pipe(
      {.bandwidth = Bandwidth::kbps(128), .delay = Duration::ms(30)});
  a.firewall().add_rule({.number = 100, .src = cidr("10.0.0.1/32"),
                         .dst = CidrBlock::any(),
                         .action = ipfw::RuleAction::kPipe, .pipe = up});
  std::vector<SimTime> deliveries;
  network.send(
      packet(ip("10.0.0.1"), ip("10.0.0.2"), DataSize::kib(16), &deliveries));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_GT(deliveries[0].to_seconds(), 1.05);  // 1.024 s + 30 ms
  // ...but no NIC traversal: the NIC pipes saw nothing.
  EXPECT_EQ(a.nic_tx().stats().packets, 0u);
}

TEST_F(NetworkTest, GroupLatencyPipeApplies) {
  // One packet can match both the vnode pipe and a group-latency pipe.
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  network.add_host("node2", ip("192.168.38.2")).add_alias(ip("10.2.2.117"));
  a.add_alias(ip("10.1.3.207"));
  const auto up = a.firewall().create_pipe(
      {.bandwidth = Bandwidth::mbps(8), .delay = Duration::ms(20)});
  const auto group = a.firewall().create_pipe({.delay = Duration::ms(400)});
  a.firewall().add_rule({.number = 100, .src = cidr("10.1.3.207/32"),
                         .dst = CidrBlock::any(),
                         .action = ipfw::RuleAction::kPipe, .pipe = up});
  a.firewall().add_rule({.number = 200, .src = cidr("10.1.0.0/16"),
                         .dst = cidr("10.2.0.0/16"),
                         .action = ipfw::RuleAction::kPipe, .pipe = group});
  std::vector<SimTime> deliveries;
  network.send(packet(ip("10.1.3.207"), ip("10.2.2.117"), DataSize::bytes(64),
                      &deliveries));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_NEAR(deliveries[0].to_millis(), 420.0, 1.0);
}

TEST_F(NetworkTest, NicIsSharedBottleneck) {
  // Aggregate vnode traffic beyond NIC capacity must be limited by it:
  // the mechanism behind the folding limit the paper found.
  Host& a = network.add_host(
      "node1", ip("192.168.38.1"),
      HostConfig{.nic_bandwidth = Bandwidth::mbps(10),
                 .nic_queue = DataSize::mib(64)});
  network.add_host("node2", ip("192.168.38.2")).add_alias(ip("10.0.1.1"));
  a.add_alias(ip("10.0.0.1"));
  a.add_alias(ip("10.0.0.2"));

  std::vector<SimTime> deliveries;
  for (int i = 0; i < 20; ++i) {
    Packet p = packet(i % 2 == 0 ? ip("10.0.0.1") : ip("10.0.0.2"),
                      ip("10.0.1.1"), DataSize::kib(64), &deliveries);
    p.flow = static_cast<ipfw::FlowId>(i % 2);
    network.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 20u);
  // 20 x 64 KiB = 1.25 MiB at 10 Mb/s ~ 1.05 s.
  EXPECT_NEAR(deliveries.back().to_seconds(), 1.05, 0.05);
}

TEST_F(NetworkTest, ScanCostAddsLatency) {
  // Figure 6's mechanism end to end: filler rules slow every packet down.
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  network.add_host("node2", ip("192.168.38.2"));
  std::vector<SimTime> no_rules;
  const SimTime sent1 = sim.now();
  network.send(packet(ip("192.168.38.1"), ip("192.168.38.2"),
                      DataSize::bytes(64), &no_rules));
  sim.run();

  a.firewall().add_filler_rules(1000, 20000);
  std::vector<SimTime> with_rules;
  const SimTime sent2 = sim.now();
  network.send(packet(ip("192.168.38.1"), ip("192.168.38.2"),
                      DataSize::bytes(64), &with_rules));
  sim.run();
  ASSERT_EQ(no_rules.size(), 1u);
  ASSERT_EQ(with_rules.size(), 1u);
  const double baseline_us = (no_rules[0] - sent1).to_micros();
  const double padded_us = (with_rules[0] - sent2).to_micros();
  // 20000 rules x 50 ns = 1 ms of serial scan latency, one-way.
  EXPECT_NEAR(padded_us - baseline_us, 1000.0, 50.0);
}

TEST_F(NetworkTest, CpuUtilizationTracksWork) {
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  a.charge_cpu(Duration::ms(10));
  sim.run_until(SimTime::zero() + Duration::ms(100));
  EXPECT_NEAR(a.cpu_utilization(), 0.05, 1e-6);  // 10ms over 200ms capacity
}

TEST_F(NetworkTest, ChargeCpuQueues) {
  Host& a = network.add_host("node1", ip("192.168.38.1"));
  const Duration d1 = a.charge_cpu(Duration::ms(10));
  const Duration d2 = a.charge_cpu(Duration::ms(10));
  // Serial latency is the full work; the aggregate server drains at
  // 2 CPUs, so the second charge queues 5 ms behind the first.
  EXPECT_EQ(d1, Duration::ms(10));
  EXPECT_EQ(d2, Duration::ms(15));
}

TEST_F(NetworkTest, DuplicateAddressAsserts) {
  network.add_host("node1", ip("192.168.38.1"));
  EXPECT_DEATH(network.add_host("node2", ip("192.168.38.1")),
               "assigned twice");
}

}  // namespace
}  // namespace p2plab::net
